//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Criterion measures the wall-clock cost of each ablated configuration;
//! the *simulated-cycle* findings (the ablation verdicts themselves) are
//! printed once per benchmark so they appear in the bench log:
//!
//! * magnifier amplification with vs without path prefetching (§6.3.1);
//! * racing gadget with vs without the §4.1 cache-miss synchronization head;
//! * PLRU magnifier on the intended policy vs true LRU.

use criterion::{criterion_group, criterion_main, Criterion};
use hacky_racers::layout::Layout;
use hacky_racers::machine::Machine;
use hacky_racers::magnify::{ArbitraryReplacementMagnifier, PlruInput, PlruMagnifier};
use hacky_racers::path::{emit_sync_head, PathSpec};
use racer_cpu::CpuConfig;
use racer_isa::{AluOp, Asm};
use racer_mem::{CacheConfig, HierarchyConfig, ReplacementKind};
use std::hint::black_box;

fn ablation_prefetching(c: &mut Criterion) {
    let amp_with = |dist: usize| {
        let mut mag = ArbitraryReplacementMagnifier::new(Layout::default());
        mag.repeats = 8;
        mag.prefetch_dist = dist;
        let mut m = Machine::random_l1(9);
        mag.amplification(&mut m, 30)
    };
    eprintln!(
        "# ablation_prefetch: amplification with prefetch = {} cycles, without = {} cycles",
        amp_with(22),
        amp_with(0)
    );
    let mut group = c.benchmark_group("ablation_prefetch");
    group.sample_size(10);
    for (name, dist) in [("with_prefetch", 22usize), ("no_prefetch", 0usize)] {
        group.bench_function(name, |b| b.iter(|| black_box(amp_with(dist))));
    }
    group.finish();
}

fn sync_head_gap(with_head: bool) -> u64 {
    let mut m = Machine::baseline();
    let layout = m.layout();
    let mut asm = Asm::new();
    let seed = if with_head {
        emit_sync_head(&mut asm, layout.sync)
    } else {
        let r = asm.reg();
        asm.mov_imm(r, 0);
        r
    };
    let rm = PathSpec::op_chain(AluOp::Add, 20).emit(&mut asm, seed);
    let rb = PathSpec::op_chain(AluOp::Add, 20).emit(&mut asm, seed);
    let va = asm.reg();
    asm.load(va, racer_isa::MemOperand::base_disp(rm, 0x0700_0000));
    let vb = asm.reg();
    asm.load(vb, racer_isa::MemOperand::base_disp(rb, 0x0700_2000));
    asm.halt();
    let prog = asm.assemble().expect("ablation program assembles");
    m.flush(layout.sync);
    let r = m.run(&prog);
    let issue = |addr: u64| {
        r.loads
            .iter()
            .find(|l| l.addr == addr)
            .map(|l| l.issue_cycle)
            .unwrap_or(0)
    };
    issue(0x0700_0000).abs_diff(issue(0x0700_2000))
}

fn ablation_sync_head(c: &mut Criterion) {
    eprintln!(
        "# ablation_sync_head: equal-path terminal-issue gap with head = {} cycles, without = {} cycles",
        sync_head_gap(true),
        sync_head_gap(false)
    );
    let mut group = c.benchmark_group("ablation_sync_head");
    group.sample_size(10);
    for (name, with_head) in [("with_sync_head", true), ("without_sync_head", false)] {
        group.bench_function(name, |b| b.iter(|| black_box(sync_head_gap(with_head))));
    }
    group.finish();
}

fn plru_margin(kind: ReplacementKind) -> u64 {
    let mut hier = HierarchyConfig::small_plru();
    hier.l1d = CacheConfig {
        replacement: kind,
        ..hier.l1d
    };
    let mut m = Machine::with(CpuConfig::coffee_lake().with_load_recording(), hier);
    let mag = PlruMagnifier::with(m.layout(), 5, 300);
    mag.prepare(&mut m);
    let absent = mag.measure(&mut m, PlruInput::PresenceAbsence);
    mag.prepare(&mut m);
    let a = mag.line_a(&m);
    m.warm(a);
    let present = mag.measure(&mut m, PlruInput::PresenceAbsence);
    present.saturating_sub(absent)
}

fn ablation_plru_vs_lru(c: &mut Criterion) {
    eprintln!(
        "# ablation_plru_policy: P/A margin on tree-PLRU = {} cycles, on true LRU = {} cycles",
        plru_margin(ReplacementKind::TreePlru),
        plru_margin(ReplacementKind::Lru)
    );
    let mut group = c.benchmark_group("ablation_plru_policy");
    group.sample_size(10);
    for (name, kind) in [
        ("tree_plru", ReplacementKind::TreePlru),
        ("true_lru", ReplacementKind::Lru),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(plru_margin(kind))));
    }
    group.finish();
}

criterion_group!(
    ablations,
    ablation_prefetching,
    ablation_sync_head,
    ablation_plru_vs_lru
);
criterion_main!(ablations);
