//! Batch-engine scaling benchmarks: lockstep lanes vs whole-machine forks,
//! across a full lane-count ladder on both an ALU-bound and a memory-bound
//! workload.
//!
//! The interesting axis is lane count — the batch engine amortises decode,
//! scheduling-structure allocation and (in sweep use) warmup across lanes,
//! and its copy-on-write lane hierarchies share one cache image where the
//! per-machine baseline deep-copies it per fork. The ladder makes the
//! crossover visible: lockstep should at least match forked machines at
//! every rung (it historically lost ~0.55× at 64 lanes when every lane
//! cloned the full hierarchy and stepped in fixed 64-cycle slices), and
//! the `lockstep-64lane` row in `BENCH_pipeline.json` gates the 64-lane
//! ratio.
//!
//! Each rung benches its lockstep/forked pair *adjacently*: the ratio is
//! the signal, and host-speed drift over a minutes-long bench run would
//! swamp it if all lockstep rungs ran first and all forked rungs minutes
//! later.
//!
//! Run untimed as a CI smoke test with `cargo bench --bench batch -- --test`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use racer_cpu::workloads::{alu_chain, memory_stream};
use racer_cpu::{Backend, Cpu, CpuConfig, MachineBatch};
use racer_isa::Program;
use racer_mem::HierarchyConfig;
use std::hint::black_box;

const LANE_COUNTS: [usize; 6] = [1, 8, 16, 32, 64, 128];

/// The two workload shapes whose scaling behaviour differs: alu_chain
/// barely touches memory (tiny COW footprint per lane), memory_stream
/// cycles a multi-set working set (lanes materialise private chunks).
fn workloads() -> [(&'static str, Program); 2] {
    [("alu", alu_chain(500)), ("mem", memory_stream(500))]
}

fn warmed(prog: &Program) -> racer_cpu::Snapshot {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    cpu.run_one(prog, Backend::EventDriven);
    cpu.snapshot()
}

/// The full ladder: at every (workload, lane-count) rung, lockstep lanes
/// inside one reusable `MachineBatch` vs the per-machine baseline (one
/// whole-machine fork per lane), back to back.
fn bench_lane_ladder(c: &mut Criterion) {
    for (tag, prog) in workloads() {
        let snap = warmed(&prog);
        let dyn_instrs = snap.fork().run_one(&prog, Backend::EventDriven).committed;
        let mut group = c.benchmark_group("batch");
        group.sample_size(8);
        for lanes in LANE_COUNTS {
            group.throughput(Throughput::Elements(dyn_instrs * lanes as u64));
            group.bench_function(format!("lockstep_{tag}_{lanes}_lanes"), |b| {
                let mut batch = MachineBatch::from_snapshot(&snap);
                b.iter(|| {
                    for _ in 0..lanes {
                        batch.push(&prog);
                    }
                    black_box(batch.run().len())
                })
            });
            group.bench_function(format!("forked_machines_{tag}_{lanes}_lanes"), |b| {
                b.iter(|| {
                    let mut total = 0u64;
                    for _ in 0..lanes {
                        total += snap.fork().run_one(&prog, Backend::EventDriven).committed;
                    }
                    black_box(total)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(batch, bench_lane_ladder);
criterion_main!(batch);
