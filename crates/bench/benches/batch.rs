//! Batch-engine scaling benchmarks: lockstep lanes vs whole-machine forks.
//!
//! The interesting axis is lane count — the batch engine amortises decode,
//! scheduling-structure allocation and (in sweep use) warmup across lanes,
//! so committed-instructions-per-second should hold roughly flat from 1 to
//! 64 lanes while the per-machine baseline pays the fixed costs per lane.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use racer_cpu::workloads::alu_chain;
use racer_cpu::{Backend, Cpu, CpuConfig, MachineBatch};
use racer_mem::HierarchyConfig;
use std::hint::black_box;

const LANE_COUNTS: [usize; 3] = [1, 8, 64];

fn warmed() -> (racer_cpu::Snapshot, racer_isa::Program) {
    let prog = alu_chain(500);
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    cpu.run_one(&prog, Backend::EventDriven);
    (cpu.snapshot(), prog)
}

/// Lockstep lanes inside one reusable `MachineBatch`.
fn bench_lockstep_lanes(c: &mut Criterion) {
    let (snap, prog) = warmed();
    let dyn_instrs = snap.fork().run_one(&prog, Backend::EventDriven).committed;
    let mut group = c.benchmark_group("batch");
    for lanes in LANE_COUNTS {
        group.throughput(Throughput::Elements(dyn_instrs * lanes as u64));
        group.bench_function(format!("lockstep_{lanes}_lanes"), |b| {
            let mut batch = MachineBatch::from_snapshot(&snap);
            b.iter(|| {
                for _ in 0..lanes {
                    batch.push(&prog);
                }
                black_box(batch.run().len())
            })
        });
    }
    group.finish();
}

/// The per-machine baseline: one whole-machine fork per lane.
fn bench_forked_machines(c: &mut Criterion) {
    let (snap, prog) = warmed();
    let dyn_instrs = snap.fork().run_one(&prog, Backend::EventDriven).committed;
    let mut group = c.benchmark_group("batch");
    for lanes in LANE_COUNTS {
        group.throughput(Throughput::Elements(dyn_instrs * lanes as u64));
        group.bench_function(format!("forked_machines_{lanes}_lanes"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for _ in 0..lanes {
                    total += snap.fork().run_one(&prog, Backend::EventDriven).committed;
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(batch, bench_lockstep_lanes, bench_forked_machines);
criterion_main!(batch);
