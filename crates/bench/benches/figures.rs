//! One Criterion benchmark per paper table/figure: measures the wall-clock
//! cost of regenerating each artefact at smoke scale. Paper-scale sweeps
//! live in the `src/bin/fig*.rs` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use hacky_racers::experiments::{
    countermeasures, distribution, ev_eval, granularity, magnifier_sweeps, par_seq,
    repetition_figure, spectre_eval,
};
use std::hint::black_box;

fn bench_fig07(c: &mut Criterion) {
    c.bench_function("fig07_repetition_stacks", |b| {
        b.iter(|| black_box(repetition_figure::figure7(true, 10)))
    });
}

fn bench_fig08(c: &mut Criterion) {
    c.bench_function("fig08_granularity_add_ref", |b| {
        b.iter(|| black_box(granularity::figure8(12, 4, 70)))
    });
}

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("fig09_granularity_mul_ref", |b| {
        b.iter(|| black_box(granularity::figure9(24, 8, 60)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_reorder_distribution", |b| {
        b.iter(|| black_box(distribution::figure10(3, 300)))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_arbitrary_replacement_sweep", |b| {
        b.iter(|| black_box(magnifier_sweeps::figure11(&[2, 6], 30)))
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_arithmetic_sweep", |b| {
        b.iter(|| black_box(magnifier_sweeps::figure12(&[25, 75], 20, Some(20_000))))
    });
}

fn bench_table_granularity(c: &mut Criterion) {
    c.bench_function("table_s7_2_granularity_summary", |b| {
        b.iter(|| {
            let series = granularity::figure8(12, 4, 70);
            black_box(granularity::granularity_table(&series))
        })
    });
}

fn bench_table_par_seq(c: &mut Criterion) {
    c.bench_function("table_s6_3_3_par_seq_probability", |b| {
        b.iter(|| black_box(par_seq::par_seq_table(8, 500)))
    });
}

fn bench_spectre_back(c: &mut Criterion) {
    let mut group = c.benchmark_group("s7_3_spectre_back");
    group.sample_size(10);
    group.bench_function("leak_two_bytes_5us_timer", |b| {
        b.iter(|| black_box(spectre_eval::evaluate(b"OK", 5_000.0, 1)))
    });
    group.finish();
}

fn bench_eviction_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("s7_4_eviction_set");
    group.sample_size(10);
    group.bench_function("profile_one_target", |b| {
        b.iter(|| black_box(ev_eval::evaluate(1, 48)))
    });
    group.finish();
}

fn bench_countermeasures(c: &mut Criterion) {
    let mut group = c.benchmark_group("s8_countermeasures");
    group.sample_size(10);
    group.bench_function("gadget_vs_defence_matrix", |b| {
        b.iter(|| black_box(countermeasures::countermeasure_matrix()))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig07,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_table_granularity,
    bench_table_par_seq,
    bench_spectre_back,
    bench_eviction_set,
    bench_countermeasures,
);
criterion_main!(figures);
