//! Memory-substrate microbenchmarks for the flattened cache model.
//!
//! The pipeline-level `perf_baseline` scenario tracks end-to-end simulator
//! throughput; these benches isolate the `racer-mem` paths underneath it so
//! each has its own number:
//!
//! * the **L1-hit fast path** (`Hierarchy::access` early exit, reused
//!   lookup way) — the common case of every workload;
//! * the **L2 / L3 / DRAM miss paths**, including the fill and
//!   inclusive-eviction plumbing the fast path skips;
//! * the **packed tree-PLRU update** (bit-word touch + victim walk)
//!   against the boxed per-set policy object it replaced.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use racer_mem::{
    AccessKind, Addr, Cache, CacheConfig, CacheSet, Hierarchy, HierarchyConfig, LineAddr,
    ReplacementKind,
};
use std::hint::black_box;

/// Same-line loads: after the first fill every access exits through the
/// L1-hit fast path (one tag scan, no L2/L3 bookkeeping).
fn bench_l1_hit_fast_path(c: &mut Criterion) {
    const N: u64 = 4096;
    let mut group = c.benchmark_group("mem");
    group.throughput(Throughput::Elements(N));
    group.bench_function("l1_hit_fast_path_4k_loads", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::coffee_lake());
        // Warm 64 distinct lines (one per L1 set) so hits rotate sets.
        for k in 0..64u64 {
            h.load(Addr(k * 64 * 64));
        }
        b.iter(|| {
            for k in 0..N {
                black_box(h.load(Addr((k % 64) * 64 * 64)));
            }
        })
    });
    group.finish();
}

/// Loads that always hit a given deeper level, by re-evicting the line
/// from the levels above between accesses.
fn bench_miss_paths(c: &mut Criterion) {
    const N: u64 = 1024;
    let mut group = c.benchmark_group("mem");
    group.throughput(Throughput::Elements(N));

    // L2 hit: flush from L1 only (invalidate via l1d_mut), then load.
    group.bench_function("l2_hit_path_1k_loads", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::coffee_lake());
        let addr = Addr(0x4_0000);
        h.load(addr);
        b.iter(|| {
            for _ in 0..N {
                h.l1d_mut().invalidate(addr.line());
                black_box(h.load(addr));
            }
        })
    });

    // DRAM path: flush everywhere first, so every load walks all three
    // levels, fills them and runs the inclusive-eviction plumbing.
    group.bench_function("dram_miss_path_1k_loads", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::coffee_lake());
        let addr = Addr(0x8_0000);
        b.iter(|| {
            for _ in 0..N {
                h.flush(addr);
                black_box(h.load(addr));
            }
        })
    });

    // Streaming DRAM misses with live eviction pressure: a footprint far
    // beyond the L3 forces steady-state inclusive evictions.
    group.bench_function("dram_stream_evicting_1k_loads", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::coffee_lake());
        let mut k = 0u64;
        b.iter(|| {
            for _ in 0..N {
                k += 1;
                black_box(h.access(Addr((k * 64) << 6), AccessKind::Load));
            }
        })
    });
    group.finish();
}

/// Packed tree-PLRU (one bit-word per set, flattened `Cache`) vs the boxed
/// per-set policy object (`CacheSet`) on the same hit-heavy access mix.
fn bench_plru_update(c: &mut Criterion) {
    const N: u64 = 8192;
    let mut group = c.benchmark_group("mem");
    group.throughput(Throughput::Elements(N));

    group.bench_function("packed_plru_update_8k_touches", |b| {
        let mut l1 = Cache::new(CacheConfig::l1d_coffee_lake());
        for w in 0..8u64 {
            l1.fill(LineAddr(w * 64)); // fill set 0's eight ways
        }
        b.iter(|| {
            for k in 0..N {
                black_box(l1.access(LineAddr((k % 8) * 64)));
            }
        })
    });

    group.bench_function("boxed_plru_update_8k_touches", |b| {
        let mut set = CacheSet::new(ReplacementKind::TreePlru.build(8, 0x11d));
        for w in 0..8u64 {
            set.fill(LineAddr(w * 64));
        }
        b.iter(|| {
            for k in 0..N {
                black_box(set.touch(LineAddr((k % 8) * 64)));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_l1_hit_fast_path,
    bench_miss_paths,
    bench_plru_update
);
criterion_main!(benches);
