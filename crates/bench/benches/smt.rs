//! SMT issue-arbitration microbenchmarks.
//!
//! The pipeline-level `perf_baseline` scenario tracks end-to-end simulator
//! throughput (including the `smt-contention` co-schedule); these benches
//! isolate the two-thread issue-arbitration path so each policy has its
//! own number:
//!
//! * **round-robin vs ICOUNT** on a symmetric ALU-saturating co-schedule
//!   (every cycle arbitrates a full port conflict);
//! * a **mixed co-schedule** (divide chain vs ALU contender — the
//!   `smt_contention_eval` shape);
//! * the **single-thread baseline** through the same SMT driver, which
//!   pins the cost of the multi-context refactor on the classic path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use racer_cpu::workloads::{alu_saturate, div_race};
use racer_cpu::{Backend, Cpu, CpuConfig, SmtPolicy};
use racer_mem::HierarchyConfig;
use std::hint::black_box;

const ITERS: i64 = 400;

fn smt_cpu(policy: SmtPolicy) -> Cpu {
    let cfg = CpuConfig::coffee_lake()
        .with_threads(2)
        .with_smt_policy(policy);
    Cpu::new(cfg, HierarchyConfig::coffee_lake())
}

/// Both policies on the all-ports-contended symmetric co-schedule.
fn bench_arbitration_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt");
    let a = alu_saturate(ITERS, 8);
    let b = alu_saturate(ITERS, 8);
    let committed: u64 = {
        let mut cpu = smt_cpu(SmtPolicy::RoundRobin);
        cpu.run(&[&a, &b], Backend::EventDriven)
            .iter()
            .map(|r| r.committed)
            .sum()
    };
    group.throughput(Throughput::Elements(committed));
    for policy in [SmtPolicy::RoundRobin, SmtPolicy::Icount] {
        group.bench_function(
            format!("issue_arbitration_{policy}_alu_sat_pair"),
            |bench| {
                let mut cpu = smt_cpu(policy);
                bench.iter(|| black_box(cpu.run(&[&a, &b], Backend::EventDriven)))
            },
        );
    }
    group.finish();
}

/// The contention-eval shape: a divide-chain racer against an
/// ALU-saturating contender.
fn bench_mixed_coschedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt");
    let racer = div_race(ITERS / 4);
    let contender = alu_saturate(ITERS, 8);
    let committed: u64 = {
        let mut cpu = smt_cpu(SmtPolicy::RoundRobin);
        cpu.run(&[&racer, &contender], Backend::EventDriven)
            .iter()
            .map(|r| r.committed)
            .sum()
    };
    group.throughput(Throughput::Elements(committed));
    group.bench_function("issue_arbitration_round-robin_div_vs_alu", |bench| {
        let mut cpu = smt_cpu(SmtPolicy::RoundRobin);
        bench.iter(|| black_box(cpu.run(&[&racer, &contender], Backend::EventDriven)))
    });
    group.finish();
}

/// One thread through the SMT driver: the overhead watchdog for the
/// classic single-threaded path.
fn bench_single_thread_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt");
    let prog = alu_saturate(ITERS, 8);
    let committed = {
        let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
        cpu.run_one(&prog, Backend::EventDriven).committed
    };
    group.throughput(Throughput::Elements(committed));
    group.bench_function("single_thread_alu_sat_baseline", |bench| {
        let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
        bench.iter(|| black_box(cpu.run_one(&prog, Backend::EventDriven)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arbitration_policies,
    bench_mixed_coschedule,
    bench_single_thread_baseline
);
criterion_main!(benches);
