//! Substrate throughput benchmarks: how fast the simulator itself runs.
//! Useful for judging the cost of paper-scale sweeps and for regression
//! tracking of the simulation core.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use racer_cpu::{Backend, Cpu, CpuConfig};
use racer_isa::{Asm, Cond, MemOperand};
use racer_mem::{Addr, Cache, CacheConfig, Hierarchy, HierarchyConfig, ReplacementKind};
use std::hint::black_box;

/// Simulated cycles per wall second on a tight dependent-add loop.
fn bench_cpu_loop(c: &mut Criterion) {
    let mut asm = Asm::new();
    let (i, acc) = (asm.reg(), asm.reg());
    asm.mov_imm(i, 2_000);
    let top = asm.here();
    asm.add(acc, acc, i);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    let prog = asm.assemble().unwrap();

    let mut group = c.benchmark_group("cpu");
    group.throughput(Throughput::Elements(6_000)); // ~dynamic instructions
    group.bench_function("ooo_core_loop_6k_instructions", |b| {
        let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
        b.iter(|| black_box(cpu.run_one(&prog, Backend::EventDriven).cycles))
    });
    group.finish();
}

fn bench_cpu_memory_traffic(c: &mut Criterion) {
    let mut asm = Asm::new();
    let d = asm.reg();
    for k in 0..256u64 {
        asm.load(d, MemOperand::abs(0x10000 + k * 64));
    }
    asm.halt();
    let prog = asm.assemble().unwrap();

    let mut group = c.benchmark_group("cpu");
    group.throughput(Throughput::Elements(256));
    group.bench_function("ooo_core_256_independent_loads", |b| {
        let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
        b.iter(|| black_box(cpu.run_one(&prog, Backend::EventDriven).cycles))
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("hierarchy_4k_mixed_accesses", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::coffee_lake());
        b.iter(|| {
            for k in 0..4096u64 {
                black_box(h.load(Addr((k * 67) % (1 << 20) * 64)));
            }
        })
    });
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement");
    group.throughput(Throughput::Elements(10_000));
    for kind in [
        ReplacementKind::TreePlru,
        ReplacementKind::Lru,
        ReplacementKind::Random,
    ] {
        group.bench_function(format!("{kind}_10k_fills"), |b| {
            let mut cache = Cache::new(CacheConfig {
                sets: 64,
                ways: 8,
                hit_latency: 4,
                replacement: kind,
                seed: 1,
            });
            b.iter(|| {
                for k in 0..10_000u64 {
                    black_box(cache.fill(racer_mem::LineAddr(k * 131)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    substrates,
    bench_cpu_loop,
    bench_cpu_memory_traffic,
    bench_hierarchy,
    bench_policies
);
criterion_main!(substrates);
