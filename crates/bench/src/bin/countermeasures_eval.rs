//! §8 evaluation: which racing gadgets survive which hardware defences.

use hacky_racers::experiments::countermeasures::{countermeasure_matrix, render};
use racer_bench::header;

fn main() {
    header("§8", "countermeasure matrix: gadget vs defence");
    println!("{}", render(&countermeasure_matrix()));
    println!("# paper: Spectre-class defences stop transient P/A races only;");
    println!("# the branch-free reorder race requires actual in-order execution.");
}
