//! Legacy shim: the `countermeasures_eval` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run countermeasures_eval [--quick]`.

fn main() {
    racer_lab::shim("countermeasures_eval");
}
