//! Legacy shim: the `detection_eval` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run detection_eval [--quick]`.

fn main() {
    racer_lab::shim("detection_eval");
}
