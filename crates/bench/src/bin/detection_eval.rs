//! Extension: the §8 run-time detection study — performance-counter
//! profiles of gadget vs benign workloads, with two candidate detectors.

use hacky_racers::experiments::detection::{profile_suite, render};
use racer_bench::header;

fn main() {
    header("§8 detection", "hardware-counter profiles: gadgets vs benign workloads");
    println!("{}", render(&profile_suite()));
    println!("# paper: the L1-miss counter sees the PLRU magnifier but is a weak");
    println!("# classifier (benign pointer chasing trips it too); the arithmetic");
    println!("# gadget has no cache signature and needs a backend-bound detector.");
}
