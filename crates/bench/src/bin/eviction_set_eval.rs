//! §7.4 evaluation: eviction-set profiling success rate with the
//! Hacky-Racers timer.

use hacky_racers::experiments::ev_eval::{evaluate, render};
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let trials = scale.pick(3, 12);
    header("§7.4", "LLC eviction-set generation success rate");
    let eval = evaluate(trials, 48);
    println!("{}", render(&eval));
    println!("# paper: 100% success after replacing the SharedArrayBuffer timer.");
}
