//! Legacy shim: the `eviction_set_eval` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run eviction_set_eval [--quick]`.

fn main() {
    racer_lab::shim("eviction_set_eval");
}
