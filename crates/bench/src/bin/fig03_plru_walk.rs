//! Figures 3 & 4: the tree-PLRU magnifier's cache-state walk, printed
//! step by step — eviction candidate, hit/miss and set contents per access.

use racer_bench::header;
use racer_mem::{CacheSet, LineAddr, ReplacementKind};

/// Labelled 4-way set mirroring the figures' presentation.
struct Walk {
    set: CacheSet,
    names: Vec<(LineAddr, char)>,
    ways: [char; 4],
}

impl Walk {
    fn new() -> Self {
        Walk {
            set: CacheSet::new(ReplacementKind::TreePlru.build(4, 0)),
            names: Vec::new(),
            ways: ['-'; 4],
        }
    }

    fn line(&mut self, c: char) -> LineAddr {
        if let Some((l, _)) = self.names.iter().find(|(_, n)| *n == c) {
            return *l;
        }
        let l = LineAddr(100 + self.names.len() as u64);
        self.names.push((l, c));
        l
    }

    fn name(&self, l: LineAddr) -> char {
        self.names.iter().find(|(x, _)| *x == l).map(|(_, n)| *n).unwrap_or('?')
    }

    fn access(&mut self, c: char) {
        let l = self.line(c);
        if self.set.touch(l) {
            println!(
                "access {c}: hit             set=[{}]  EVC={}",
                self.ways.iter().collect::<String>(),
                self.evc()
            );
        } else {
            let out = self.set.fill(l);
            let evicted = out.evicted.map(|e| self.name(e));
            self.ways[out.way] = c;
            println!(
                "access {c}: MISS -> way {}{}  set=[{}]  EVC={}",
                out.way,
                evicted.map_or("           ".to_string(), |e| format!(" (evicts {e})")),
                self.ways.iter().collect::<String>(),
                self.evc()
            );
        }
    }

    fn evc(&self) -> char {
        self.set.eviction_candidate().map(|l| self.name(l)).unwrap_or('-')
    }
}

fn main() {
    header("Figures 3 & 4", "tree-PLRU magnifier state walks (4-way set)");

    println!("\n-- Figure 3: A present (inserted first); pattern B,C,E,C,D,C --");
    let mut w = Walk::new();
    for c in ['B', 'C', 'E', 'D'] {
        w.access(c); // initial fill: the Figure 3.1 state
    }
    println!("(initial state prepared; EVC = {})", w.evc());
    w.access('A');
    for round in 0..3 {
        println!("-- round {} --", round + 1);
        for c in ['B', 'C', 'E', 'C', 'D', 'C'] {
            w.access(c);
        }
    }
    println!("(A survives forever; 3 misses per round — the transmit-1 state)");

    println!("\n-- Figure 4: B touched before A; pattern C,E,C,D,C,B --");
    let mut w = Walk::new();
    for c in ['B', 'C', 'E', 'D'] {
        w.access(c);
    }
    w.access('B');
    w.access('A');
    for round in 0..3 {
        println!("-- round {} --", round + 1);
        for c in ['C', 'E', 'C', 'D', 'C', 'B'] {
            w.access(c);
        }
    }
    println!("(A is evicted early and the misses stop — the transmit-0 state)");
}
