//! Legacy shim: the `fig03_plru_walk` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run fig03_plru_walk [--quick]`.

fn main() {
    racer_lab::shim("fig03_plru_walk");
}
