//! Legacy shim: the `fig07_repetition` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run fig07_repetition [--quick]`.

fn main() {
    racer_lab::shim("fig07_repetition");
}
