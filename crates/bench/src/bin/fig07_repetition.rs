//! Figure 7: repetition-gadget stage-time stacks, bare (7a) and with a
//! racing gadget making the load stage constant-time (7b).

use hacky_racers::experiments::repetition_figure::figure7;
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let iterations = scale.pick(30, 200);
    header("Figure 7", "repetition gadgets need racing gadgets to show a difference");

    for racing in [false, true] {
        let fig = figure7(racing, iterations);
        println!("\n{}", fig.render());
    }
}
