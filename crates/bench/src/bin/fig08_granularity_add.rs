//! Figure 8: target operations measured by a reference path of ADDs.

use hacky_racers::experiments::granularity::figure8;
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let (max_target, step) = scale.pick((16, 4), (35, 1));
    header("Figure 8", "targets (add, mul, leal) vs ADD reference path");
    for series in figure8(max_target, step, 80) {
        println!("{}", series.render());
    }
}
