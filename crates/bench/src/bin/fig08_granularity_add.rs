//! Legacy shim: the `fig08_granularity_add` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run fig08_granularity_add [--quick]`.

fn main() {
    racer_lab::shim("fig08_granularity_add");
}
