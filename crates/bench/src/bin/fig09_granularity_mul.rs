//! Figure 9: target operations measured by a reference path of MULs.

use hacky_racers::experiments::granularity::figure9;
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let (max_target, step) = scale.pick((40, 8), (145, 4));
    header("Figure 9", "targets (add, div) vs MUL reference path");
    for series in figure9(max_target, step, 60) {
        println!("{}", series.render());
    }
}
