//! Legacy shim: the `fig09_granularity_mul` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run fig09_granularity_mul [--quick]`.

fn main() {
    racer_lab::shim("fig09_granularity_mul");
}
