//! Figure 10: execution-time distribution of the reorder magnifier after
//! 4000 pattern repetitions, for transmit-0 vs transmit-1.

use hacky_racers::experiments::distribution::figure10;
use racer_bench::{header, Scale};
use racer_time::Histogram;

fn main() {
    let scale = Scale::from_args();
    let (trials, rounds) = scale.pick((10, 800), (60, 4000));
    header("Figure 10", "reorder-magnifier distributions (transmit 0 vs 1)");
    let r = figure10(trials, rounds);
    println!("{}", r.render());

    // ASCII histograms like the figure.
    let lo = r.transmit0_ms.iter().chain(&r.transmit1_ms).fold(f64::INFINITY, |a, &b| a.min(b));
    let hi = r.transmit0_ms.iter().chain(&r.transmit1_ms).fold(0.0f64, |a, &b| a.max(b));
    let width = ((hi - lo) / 20.0).max(1e-6);
    println!("\n# transmit 0 histogram (ms):");
    println!("{}", Histogram::from_samples(&r.transmit0_ms, lo, width, 20).render(40));
    println!("# transmit 1 histogram (ms):");
    println!("{}", Histogram::from_samples(&r.transmit1_ms, lo, width, 20).render(40));
}
