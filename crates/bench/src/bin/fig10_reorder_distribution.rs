//! Legacy shim: the `fig10_reorder_distribution` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run fig10_reorder_distribution [--quick]`.

fn main() {
    racer_lab::shim("fig10_reorder_distribution");
}
