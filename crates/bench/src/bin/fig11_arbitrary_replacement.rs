//! Legacy shim: the `fig11_arbitrary_replacement` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run fig11_arbitrary_replacement [--quick]`.

fn main() {
    racer_lab::shim("fig11_arbitrary_replacement");
}
