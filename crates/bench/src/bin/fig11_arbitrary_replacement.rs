//! Figure 11: timing difference magnified by the arbitrary-replacement
//! gadget with cache-set reuse via prefetching, vs repeat count.

use hacky_racers::experiments::magnifier_sweeps::figure11;
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let points: Vec<usize> = scale.pick(
        vec![2, 4, 8, 12, 16],
        vec![25, 50, 100, 200, 300, 400, 500, 600, 700, 800],
    );
    header("Figure 11", "arbitrary-replacement magnifier sweep (random L1)");
    for series in figure11(&points, 30) {
        println!("{}", series.render());
    }
}
