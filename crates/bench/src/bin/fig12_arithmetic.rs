//! Figure 12: timing difference magnified by arithmetic operations alone,
//! saturating when the run spans the timer-interrupt interval.

use hacky_racers::experiments::magnifier_sweeps::figure12;
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let points: Vec<usize> = scale.pick(
        vec![25, 50, 100, 200],
        vec![100, 250, 500, 1000, 2500, 5000, 7500, 10000, 15000, 20000],
    );
    // Interrupt interval scaled so saturation lands inside the sweep, as
    // the paper's 4 ms tick does for its 15000-repeat knee.
    let interrupt = scale.pick(Some(20_000), Some(2_000_000));
    header("Figure 12", "arithmetic-only magnifier sweep (with interrupt bound)");
    println!("{}", figure12(&points, 20, interrupt).render());
    println!("# unbounded reference:");
    let small: Vec<usize> = points.iter().copied().take(4).collect();
    println!("{}", figure12(&small, 20, None).render());
}
