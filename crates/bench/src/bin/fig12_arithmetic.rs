//! Legacy shim: the `fig12_arithmetic` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run fig12_arithmetic [--quick]`.

fn main() {
    racer_lab::shim("fig12_arithmetic");
}
