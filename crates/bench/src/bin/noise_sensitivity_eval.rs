//! Legacy shim: the `noise_sensitivity_eval` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run noise_sensitivity_eval [--quick]`.

fn main() {
    racer_lab::shim("noise_sensitivity_eval");
}
