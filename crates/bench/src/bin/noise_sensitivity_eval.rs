//! Extension: SpectreBack accuracy vs DRAM-jitter magnitude.

use hacky_racers::experiments::noise_sensitivity::{render, sweep};
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let secret: &[u8] = scale.pick(b"OK".as_slice(), b"NOISE".as_slice());
    let levels: Vec<u64> = scale.pick(vec![0, 60], vec![0, 15, 30, 60, 120, 240, 400]);
    header("noise sensitivity", "SpectreBack bit accuracy vs DRAM jitter");
    println!("{}", render(&sweep(secret, &levels)));
    println!("# paper: >88% accuracy on live hardware; the margin above that bar");
    println!("# is visible here as jitter grows past realistic levels.");
}
