//! Legacy shim: the `perf_baseline` scenario now lives in the racer-lab
//! registry (equivalent to `racer-lab run perf_baseline [--quick]`), with
//! one extra behavior kept from the original binary: the measured payload
//! is also written to `BENCH_pipeline.json` (repo root when run from the
//! workspace) so the committed baseline that `racer-lab perf-check` gates
//! against can be refreshed with a paper-scale run.
//!
//! The baseline is written atomically (tmp + rename) like every other
//! pipeline artifact — an interrupted refresh can never leave a corrupt
//! committed baseline behind.

use std::path::Path;

fn main() {
    let report = racer_lab::shim("perf_baseline");
    let payload = report.json.get("results").expect("report has results");
    let path = "BENCH_pipeline.json";
    if let Err(e) = racer_lab::write_atomic(Path::new(path), &payload.to_pretty()) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
    println!("# wrote {path}");
}
