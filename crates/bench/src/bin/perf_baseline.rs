//! Simulator-throughput baseline: committed instructions per host second
//! for the event-driven scheduler vs. the retained scan-based reference
//! scheduler, across representative workload shapes.
//!
//! Writes `BENCH_pipeline.json` (repo root when run from the workspace) so
//! every future PR can compare against recorded numbers, and prints a
//! human-readable table. Pass `--quick` for a CI-sized run.
//!
//! Run with: `cargo run --release -p racer-bench --bin perf_baseline`

use racer_bench::Scale;
use racer_cpu::{Cpu, CpuConfig, RunResult};
use racer_isa::{Asm, Cond, MemOperand, Program};
use racer_mem::HierarchyConfig;
use std::time::Instant;

/// A named program plus the iteration count used when timing it.
struct Workload {
    name: &'static str,
    description: &'static str,
    prog: Program,
    reps: usize,
}

/// Dependent ALU chains inside a counter loop — the paper's reference-path
/// shape and the purest scheduler stress (every instruction wakes one
/// dependent).
fn alu_chain(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, acc) = (asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    asm.mov_imm(acc, 1);
    let top = asm.here();
    for _ in 0..16 {
        asm.addi(acc, acc, 1);
    }
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Data-dependent branches: a pseudo-random bit field steers control flow,
/// giving the ~25% mispredict rate of genuinely branchy integer code
/// (`mask = 3`), or an adversarial ~70% squash storm (`mask = 1`, the
/// alternating pattern a 2-bit counter can never learn).
fn branchy(iters: i64, mask: i64) -> Program {
    let mut asm = Asm::new();
    let (i, v, acc) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    let top = asm.here();
    asm.mul(v, i, 0x9E37i64);
    asm.emit(racer_isa::Instr::Alu {
        op: racer_isa::AluOp::Shr,
        dst: v,
        a: racer_isa::Operand::Reg(v),
        b: racer_isa::Operand::Imm(7),
    });
    asm.emit(racer_isa::Instr::Alu {
        op: racer_isa::AluOp::And,
        dst: v,
        a: racer_isa::Operand::Reg(v),
        b: racer_isa::Operand::Imm(mask),
    });
    let skip = asm.fwd_label();
    asm.br(Cond::Ne, v, 0i64, skip);
    asm.addi(acc, acc, 3);
    asm.addi(acc, acc, 5);
    asm.bind(skip);
    asm.addi(acc, acc, 1);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Streaming loads over many lines: MSHR pressure, store ordering and the
/// cache hierarchy on every issue.
fn memory_stream(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, d, addr) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    let top = asm.here();
    asm.mul(addr, i, 64);
    for k in 0..8u64 {
        asm.load(d, MemOperand::base_disp(addr, 0x10000 + (k * 64) as i64));
    }
    asm.store(d, MemOperand::abs(0x9000));
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Racing-gadget shape: a divide chain contended against wide independent
/// ALU work (the §6.4 arithmetic-magnifier mix).
fn div_race(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, x, y) = (asm.reg(), asm.reg(), asm.reg());
    let pars = asm.regs(4);
    asm.mov_imm(i, iters);
    asm.mov_imm(x, 1 << 20);
    let top = asm.here();
    asm.div(x, x, 3i64);
    asm.addi(x, x, 1 << 20);
    for (k, &p) in pars.iter().enumerate() {
        asm.mul(y, p, (k + 3) as i64);
        asm.add(p, p, y);
    }
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Time `reps` fresh-machine executions; returns (instrs/sec, cycles, IPC).
fn measure(prog: &Program, reps: usize, reference: bool) -> (f64, RunResult) {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    // Warm caches/predictor once so both schedulers see identical state.
    let _ = if reference { cpu.execute_reference(prog) } else { cpu.execute(prog) };
    let start = Instant::now();
    let mut committed = 0u64;
    let mut last = None;
    for _ in 0..reps {
        let r = if reference { cpu.execute_reference(prog) } else { cpu.execute(prog) };
        assert!(r.halted && !r.limit_hit, "workload must run to completion");
        committed += r.committed;
        last = Some(r);
    }
    let secs = start.elapsed().as_secs_f64();
    (committed as f64 / secs, last.expect("reps >= 1"))
}

fn main() {
    let scale = Scale::from_args();
    let (iters, reps) = scale.pick((2_000i64, 2usize), (12_000i64, 4usize));
    let workloads = [
        Workload {
            name: "alu-chain",
            description: "dependent 16-add chains in a counter loop",
            prog: alu_chain(iters),
            reps,
        },
        Workload {
            name: "branchy",
            description: "data-dependent branches, ~12% mispredict rate",
            prog: branchy(iters, 7),
            reps,
        },
        Workload {
            name: "squash-storm",
            description: "adversarial alternating branches, ~70% mispredict rate",
            prog: branchy(iters, 1),
            reps,
        },
        Workload {
            name: "memory-stream",
            description: "8 streaming loads/iteration over 64-line footprint",
            prog: memory_stream(iters),
            reps,
        },
        Workload {
            name: "div-race",
            description: "non-pipelined divide chain racing wide mul/add ILP",
            prog: div_race(iters / 4),
            reps,
        },
    ];

    println!("# pipeline scheduler throughput (committed Minstr/s, higher is better)");
    println!("# workload            event-driven   reference   speedup   ipc   mispredicts");
    let mut rows = String::new();
    for w in &workloads {
        let (fast_ips, fast_r) = measure(&w.prog, w.reps, false);
        let (ref_ips, ref_r) = measure(&w.prog, w.reps, true);
        assert_eq!(
            (fast_r.cycles, fast_r.committed, &fast_r.regs),
            (ref_r.cycles, ref_r.committed, &ref_r.regs),
            "schedulers diverged on {}",
            w.name
        );
        let speedup = fast_ips / ref_ips;
        println!(
            "{:<21} {:>10.2}M {:>10.2}M {:>8.1}x {:>6.2} {:>10}",
            w.name,
            fast_ips / 1e6,
            ref_ips / 1e6,
            speedup,
            fast_r.ipc(),
            fast_r.mispredicts,
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            concat!(
                "    {{\"workload\": \"{}\", \"description\": \"{}\", ",
                "\"dyn_instrs_per_run\": {}, \"cycles_per_run\": {}, ",
                "\"mispredicts_per_run\": {}, \"squashed_per_run\": {}, \"ipc\": {:.3}, ",
                "\"event_driven_instrs_per_sec\": {:.0}, ",
                "\"reference_instrs_per_sec\": {:.0}, \"speedup\": {:.2}}}"
            ),
            w.name,
            w.description,
            fast_r.committed,
            fast_r.cycles,
            fast_r.mispredicts,
            fast_r.squashed_instrs,
            fast_r.ipc(),
            fast_ips,
            ref_ips,
            speedup,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeline-scheduler-throughput\",\n",
            "  \"unit\": \"committed instructions per host second\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"config\": \"coffee_lake (224-entry ROB, 6-wide issue)\",\n",
            "  \"reference\": \"racer_cpu::reference (scan-based seed scheduler)\",\n",
            "  \"workloads\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if scale == Scale::Quick { "quick" } else { "paper" },
        rows,
    );
    let path = "BENCH_pipeline.json";
    std::fs::write(path, &json).expect("write benchmark json");
    println!("# wrote {path}");
}
