//! Legacy shim: the `perf_baseline` scenario now lives in the racer-lab
//! registry (equivalent to `racer-lab run perf_baseline [--quick]`), with
//! one extra behavior kept from the original binary: the measured payload
//! is also written to `BENCH_pipeline.json` (repo root when run from the
//! workspace) so the committed baseline that `racer-lab perf-check` gates
//! against can be refreshed with a paper-scale run.

fn main() {
    let report = racer_lab::shim("perf_baseline");
    let payload = report.json.get("results").expect("report has results");
    let path = "BENCH_pipeline.json";
    std::fs::write(path, payload.to_pretty()).expect("write benchmark json");
    println!("# wrote {path}");
}
