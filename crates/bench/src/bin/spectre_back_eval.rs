//! Legacy shim: the `spectre_back_eval` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run spectre_back_eval [--quick]`.

fn main() {
    racer_lab::shim("spectre_back_eval");
}
