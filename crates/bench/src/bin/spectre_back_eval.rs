//! §7.3 evaluation: SpectreBack leak rate and accuracy through a 5 µs
//! browser timer on a jittery machine.

use hacky_racers::experiments::spectre_eval::{evaluate, render};
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let secret: &[u8] = scale.pick(b"ASPLOS".as_slice(), b"Hacky Racers leak secrets backwards in time!".as_slice());
    header("§7.3", "SpectreBack leak rate and accuracy (5 µs timer, DRAM jitter)");
    let eval = evaluate(secret, 5_000.0, 0xD00D);
    println!("{}", render(&eval));
    println!("# paper: 4.3 kbit/s at >88% accuracy in Chrome 88.");
    println!("# (simulation has no JS/browser overhead, so the rate runs higher;");
    println!("#  the shape — kbit/s-scale with high accuracy — is what reproduces.)");
}
