//! Legacy shim: the `table_granularity` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run table_granularity [--quick]`.

fn main() {
    racer_lab::shim("table_granularity");
}
