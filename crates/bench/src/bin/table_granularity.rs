//! §7.2 summary table: slope, granularity and reach per (reference, target)
//! operation pair.

use hacky_racers::experiments::granularity::{figure8, figure9, granularity_table};
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let (t8, s8) = scale.pick((16, 4), (35, 1));
    let (t9, s9) = scale.pick((40, 8), (145, 4));
    header("§7.2 table", "racing-gadget granularity summary");
    let mut series = figure8(t8, s8, 80);
    series.extend(figure9(t9, s9, 60));
    println!("{}", granularity_table(&series).render());
    println!("# paper: granularity 1-3 ops (ADD ref), 2-4 ops (MUL ref);");
    println!("# reach limited by the instruction window (~54 ADD-cycles / ~140 via MUL).");
}
