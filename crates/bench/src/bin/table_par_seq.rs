//! Legacy shim: the `table_par_seq` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run table_par_seq [--quick]`.

fn main() {
    racer_lab::shim("table_par_seq");
}
