//! §6.3.3: probability that filling PAR_i evicts at least one SEQ_i member,
//! over the (SEQ, PAR) size grid, under random replacement.

use hacky_racers::experiments::par_seq::{par_seq_table, render};
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let trials = scale.pick(2_000, 50_000);
    header("§6.3.3 table", "SEQ/PAR eviction probability (8-way random set)");
    println!("{}", render(&par_seq_table(8, trials)));
    println!("# paper: SEQ=6, PAR=5 gives ≥1 miss with ~96% probability.");
}
