//! Legacy shim: the `timer_mitigations_eval` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run timer_mitigations_eval [--quick]`.

fn main() {
    racer_lab::shim("timer_mitigations_eval");
}
