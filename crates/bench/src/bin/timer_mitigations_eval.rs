//! Extension: classification accuracy of the PLRU reorder channel across
//! historical browser timer mitigations × magnification levels (§2.2/§8).

use hacky_racers::experiments::timer_mitigations::{render, sweep};
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let timers = ["5us", "5us+jitter", "fuzzy-5us", "100us", "1ms"];
    let rounds: Vec<usize> = scale.pick(vec![1_000, 8_000], vec![500, 2_000, 8_000, 40_000, 200_000]);
    let trials = scale.pick(3, 8);
    header("timer mitigations", "channel accuracy per timer model × magnifier rounds");
    let pts = sweep(&timers, &rounds, trials);
    println!("{}", render(&pts, &rounds));
    println!("# paper §8: some magnifiers can be out-coarsened, the PLRU gadgets cannot —");
    println!("# for every finite resolution there is a round count that restores accuracy.");
}
