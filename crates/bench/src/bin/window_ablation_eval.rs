//! Legacy shim: the `window_ablation_eval` scenario now lives in the racer-lab registry.
//! Equivalent to `racer-lab run window_ablation_eval [--quick]`.

fn main() {
    racer_lab::shim("window_ablation_eval");
}
