//! Extension: measurement-window ablation — the §7.2 window-limit claim
//! tied to the scheduler capacity.

use hacky_racers::experiments::window_ablation::{render, window_sweep};
use racer_bench::{header, Scale};

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<usize> = scale.pick(vec![32, 60], vec![24, 32, 48, 60, 97, 128, 160]);
    header("§7.2 ablation", "racing-gadget reach vs scheduler window size");
    println!("{}", render(&window_sweep(&sizes, 160)));
    println!("# paper: \"the ROB capacity limits the length of the ref path to 54,");
    println!("# which in turn limits the largest execution time that we can time\".");
}
