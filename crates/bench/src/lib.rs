//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary regenerates one table or figure from the paper's evaluation
//! and prints plot-ready text. Pass `--quick` to run a shrunken sweep
//! (useful in CI); the default scale mirrors the paper's.

/// Run scale selected on the command line.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub enum Scale {
    /// Shrunken parameters for smoke runs.
    Quick,
    /// Paper-scale parameters.
    Paper,
}

impl Scale {
    /// Parse from `std::env::args`: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Choose between the quick and paper-scale value.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Print the standard figure header.
pub fn header(figure: &str, description: &str) {
    println!("# ============================================================");
    println!("# {figure}: {description}");
    println!("# ============================================================");
}
