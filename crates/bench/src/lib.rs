//! Legacy entry points for the figure-regeneration binaries.
//!
//! Since the `racer-lab` experiment runner landed, every binary in
//! `src/bin/` is a one-line shim over the scenario registry
//! ([`racer_lab::registry`]): same names, same `--quick` flag, same
//! plot-ready text on stdout, plus a structured `results/<name>.json`
//! report. Prefer the CLI for anything new:
//!
//! ```text
//! racer-lab list
//! racer-lab run fig08_granularity_add --quick
//! racer-lab run --all --quick
//! ```
//!
//! The substrate benchmarks under `benches/` (criterion) are unaffected.

pub use racer_lab::{shim, Scale};
