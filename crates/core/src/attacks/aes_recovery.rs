//! First-round AES-style key recovery with an ILP-race timer — the classic
//! cache attack the paper's §2.1 lists among those "requiring timing
//! information", resurrected without any fine-grained timer.
//!
//! Victim model: a table lookup indexed by `plaintext ⊕ key` (the first
//! round of T-table AES). The table spans 16 cache lines, so the accessed
//! *line* reveals the high nibble of `p ⊕ k`. The attacker primes the
//! candidate L1 sets with its own congruent lines, triggers the victim,
//! then probes each prime line — deciding L1-hit vs miss (a 4-vs-12-cycle
//! difference!) with a transient P/A racing gadget instead of a timer.
//!
//! The probe uses [`PathSpec::IndirectLoad`](crate::path::PathSpec::IndirectLoad): the subject address lives in
//! attacker memory, so a *single* program serves every probe. Its branch is
//! trained against a dummy subject and detection then measures the real
//! one — no per-line retraining, and training never touches primed state.

use crate::attacks::probe::L1Probe;
use crate::layout::Layout;
use crate::machine::Machine;
use racer_isa::{Asm, MemOperand, Program};
use racer_mem::Addr;
use serde::{Deserialize, Serialize};

/// Result of one key-nibble recovery.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AesRecovery {
    /// The plaintext high nibbles used.
    pub plaintexts: Vec<u8>,
    /// The table line observed per plaintext (None = no line detected).
    pub observed_lines: Vec<Option<u8>>,
    /// The recovered high nibble of the key byte (majority vote).
    pub key_nibble: Option<u8>,
}

/// Driver for the AES-style recovery.
#[derive(Clone, Debug)]
pub struct AesAttack {
    layout: Layout,
    /// Reference-path ADD count separating an L1-hit probe body (~10
    /// cycles: pointer hop + hit) from an L1-miss body (~17): default 11.
    pub ref_adds: usize,
}

// Victim inputs live on dedicated lines in the x-flag region, at offsets
// whose L1 sets (35/36 on a 64-set L1) stay clear of both the monitored
// table sets (16..=31) and the probe plumbing (sets 33/34, see `L1Probe`).
const P_OFFSET: u64 = 0x8C0; // set 35: victim plaintext
const K_OFFSET: u64 = 0x900; // set 36: victim key byte

impl AesAttack {
    /// An attack driver over `layout`. Requires a 64-set L1 machine (e.g.
    /// `Machine::with(CpuConfig::coffee_lake().with_load_recording(),
    /// HierarchyConfig::coffee_lake())`).
    pub fn new(layout: Layout) -> Self {
        AesAttack {
            layout,
            ref_adds: 11,
        }
    }

    /// Base address of the victim's 16-line lookup table (its lines occupy
    /// L1 sets 16..=31, clear of the gadget infrastructure in set 0).
    pub fn table_base(&self, m: &Machine) -> Addr {
        let l1 = m.cpu().hierarchy().l1d();
        self.layout.plru_line(l1, 16 % l1.num_sets(), 0)
    }

    fn p_addr(&self) -> Addr {
        Addr(self.layout.x_flag.0 + P_OFFSET)
    }

    fn k_addr(&self) -> Addr {
        Addr(self.layout.x_flag.0 + K_OFFSET)
    }

    /// The victim program: `load T[((p ⊕ k) >> 4) * 64]` — the secret-
    /// dependent table access of first-round AES, one lookup.
    pub fn victim_program(&self, m: &Machine) -> Program {
        let table = self.table_base(m);
        let mut asm = Asm::new();
        let p = asm.reg();
        asm.load(p, MemOperand::abs(self.p_addr().0));
        let k = asm.reg();
        asm.load(k, MemOperand::abs(self.k_addr().0));
        let x = asm.reg();
        asm.xor(x, p, k);
        let line = asm.reg();
        asm.shr(line, x, 4i64);
        let off = asm.reg();
        asm.shl(off, line, 6i64); // line * 64 bytes
        let v = asm.reg();
        asm.load(v, MemOperand::base_disp(off, table.0 as i64));
        asm.halt();
        asm.assemble().expect("victim assembles")
    }

    /// Attacker lines congruent with table line `j` (same L1 set),
    /// disjoint from the table itself.
    fn prime_lines(&self, m: &Machine, j: u8) -> Vec<Addr> {
        let l1 = m.cpu().hierarchy().l1d();
        let set = (16 + j as usize) % l1.num_sets();
        let ways = l1.config().ways;
        (8..8 + ways)
            .map(|i| self.layout.plru_line(l1, set, i))
            .collect()
    }

    /// Probe one line with the racing-gadget timer: was it evicted from the
    /// L1? (Delegates to the shared [`L1Probe`].)
    fn line_was_evicted(&self, m: &mut Machine, line: Addr) -> bool {
        let mut probe = L1Probe::new(self.layout);
        probe.ref_adds = self.ref_adds;
        probe.was_evicted(m, line)
    }

    /// One prime → victim → probe round: which table line did the victim
    /// touch for plaintext `p_high << 4`?
    pub fn observe_victim_line(&self, m: &mut Machine, p_high: u8) -> Option<u8> {
        let victim = self.victim_program(m);
        m.cpu_mut()
            .mem_mut()
            .write(self.p_addr().0, (p_high as u64) << 4);
        m.warm(self.p_addr());
        m.warm(self.k_addr());

        // Prime every candidate set with attacker lines.
        let all_lines: Vec<(u8, Vec<Addr>)> =
            (0..16u8).map(|j| (j, self.prime_lines(m, j))).collect();
        for (_, lines) in &all_lines {
            for _ in 0..2 {
                for &l in lines {
                    m.warm(l);
                }
            }
        }

        // Victim executes its secret-dependent lookup.
        m.run(&victim);

        // Probe: the set whose prime line went missing is the victim's.
        for (j, lines) in &all_lines {
            if lines.iter().any(|&l| self.line_was_evicted(m, l)) {
                return Some(*j);
            }
        }
        None
    }

    /// Recover the key byte's high nibble from several plaintexts.
    pub fn recover_key_nibble(&self, m: &mut Machine, plaintexts: &[u8]) -> AesRecovery {
        let mut observed = Vec::new();
        let mut votes = [0u32; 16];
        for &p in plaintexts {
            let line = self.observe_victim_line(m, p);
            if let Some(l) = line {
                let k_guess = (l ^ p) & 0xF;
                votes[k_guess as usize] += 1;
            }
            observed.push(line);
        }
        let key_nibble = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .filter(|(_, &v)| v > 0)
            .map(|(i, _)| i as u8);
        AesRecovery {
            plaintexts: plaintexts.to_vec(),
            observed_lines: observed,
            key_nibble,
        }
    }

    /// Plant the victim's key byte.
    pub fn plant_key(&self, m: &mut Machine, key_byte: u8) {
        m.cpu_mut()
            .mem_mut()
            .write(self.k_addr().0, key_byte as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_cpu::CpuConfig;
    use racer_mem::HierarchyConfig;

    fn machine() -> Machine {
        Machine::with(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::coffee_lake(),
        )
    }

    #[test]
    fn victim_touches_the_expected_line() {
        let mut m = machine();
        let atk = AesAttack::new(m.layout());
        atk.plant_key(&mut m, 0xA7);
        let victim = atk.victim_program(&m);
        m.cpu_mut().mem_mut().write(atk.p_addr().0, 0x30);
        let r = m.run(&victim);
        // Expected line: (0x30 ^ 0xA7) >> 4 = 0x9.
        let expect = atk.table_base(&m).0 + 9 * 64;
        assert!(
            r.loads.iter().any(|l| l.addr == expect),
            "victim must access table line 9"
        );
    }

    #[test]
    fn probe_distinguishes_resident_from_evicted() {
        let mut m = machine();
        let atk = AesAttack::new(m.layout());
        let subject = atk.prime_lines(&m, 3)[0];
        m.warm(subject);
        assert!(
            !atk.line_was_evicted(&mut m, subject),
            "resident line misread as evicted"
        );
        m.evict_from_l1(subject);
        assert!(
            atk.line_was_evicted(&mut m, subject),
            "evicted line misread as resident"
        );
    }

    #[test]
    fn observes_the_victims_table_line() {
        let mut m = machine();
        let atk = AesAttack::new(m.layout());
        atk.plant_key(&mut m, 0x50);
        // p_high = 2 → index high nibble = 2 ^ 5 = 7.
        let line = atk.observe_victim_line(&mut m, 2);
        assert_eq!(line, Some(7), "prime+probe must localize the victim's line");
    }

    #[test]
    fn recovers_the_key_nibble() {
        let mut m = machine();
        let atk = AesAttack::new(m.layout());
        atk.plant_key(&mut m, 0xC3);
        let rec = atk.recover_key_nibble(&mut m, &[0x0, 0x5, 0xB]);
        assert_eq!(rec.key_nibble, Some(0xC), "high nibble of 0xC3");
    }

    #[test]
    fn different_keys_give_different_nibbles() {
        for key in [0x00u8, 0x40, 0xF0] {
            let mut m = machine();
            let atk = AesAttack::new(m.layout());
            atk.plant_key(&mut m, key);
            let rec = atk.recover_key_nibble(&mut m, &[0x1, 0x8]);
            assert_eq!(rec.key_nibble, Some(key >> 4), "key {key:#x}");
        }
    }
}
