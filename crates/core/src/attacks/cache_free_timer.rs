//! A completely cache-free fine-grained timer.
//!
//! The paper's §8 closes with the observation that even if every
//! cache-based gadget were mitigated, "an attacker can then change strategy
//! to transmit timing based on within-core contention". This module is
//! that strategy, end to end: a non-transient race between a target path
//! and a reference path feeds the **arithmetic-operation-only magnifier**
//! (§6.4) *directly* — the race's time difference becomes the magnifier's
//! path misalignment, amplified by divider contention to coarse-timer
//! scale. No load instructions are involved beyond the single §4.1
//! synchronization head; no cache state carries the secret at any point.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::magnify::ArithmeticMagnifier;
use crate::path::{emit_sync_head, PathSpec};
use racer_isa::{AluOp, Asm, Program};
use racer_time::Timer;

/// A timer that never touches the cache: race → divider-contention
/// magnifier → coarse clock.
#[derive(Clone, Debug)]
pub struct CacheFreeTimer {
    layout: Layout,
    /// Operation the reference path is chained from.
    pub ref_op: AluOp,
    /// Magnifier geometry (stage count controls amplification).
    pub magnifier: ArithmeticMagnifier,
}

impl CacheFreeTimer {
    /// A cache-free timer with an ADD-chained reference and a 60-stage
    /// magnifier (~2700 cycles ≈ 1.35 µs of amplification per decision at
    /// the default geometry — raise `magnifier.stages` for coarser clocks).
    pub fn new(layout: Layout) -> Self {
        let mut magnifier = ArithmeticMagnifier::new(layout);
        magnifier.stages = 60;
        CacheFreeTimer {
            layout,
            ref_op: AluOp::Add,
            magnifier,
        }
    }

    /// Build the composed program: sync head, then the reference path seeds
    /// the magnifier's PathA while the target path seeds PathB. If the
    /// target out-lasts the reference by more than the bistability margin
    /// (~16 cycles), the magnifier locks into its misaligned state and the
    /// whole program runs visibly longer.
    pub fn program(&self, target: &PathSpec, ref_ops: usize) -> Program {
        let mut asm = Asm::new();
        let seed = emit_sync_head(&mut asm, self.layout.sync);
        let seed_a = PathSpec::op_chain(self.ref_op, ref_ops).emit(&mut asm, seed);
        let seed_b = target.emit(&mut asm, seed);
        self.magnifier.emit_stages(&mut asm, seed_a, seed_b);
        asm.halt();
        asm.assemble().expect("cache-free timer assembles")
    }

    /// Run one measurement, returning the observed duration through
    /// `timer`.
    pub fn observe(
        &self,
        m: &mut Machine,
        target: &PathSpec,
        ref_ops: usize,
        timer: &mut dyn Timer,
    ) -> f64 {
        m.flush(self.layout.sync);
        let prog = self.program(target, ref_ops);
        m.run_timed(&prog, timer)
    }

    /// Does `target` exceed `ref_ops` reference operations (by at least the
    /// magnifier's lock-in margin)? Decided purely from `timer` readings
    /// against a calibrated `threshold_ns`.
    pub fn exceeds_observed(
        &self,
        m: &mut Machine,
        target: &PathSpec,
        ref_ops: usize,
        timer: &mut dyn Timer,
        threshold_ns: f64,
    ) -> bool {
        self.observe(m, target, ref_ops, timer) > threshold_ns
    }

    /// Calibrate the decision threshold from two known targets (well under
    /// and well over the reference).
    pub fn calibrate(&self, m: &mut Machine, ref_ops: usize, timer: &mut dyn Timer) -> f64 {
        let fast = PathSpec::op_chain(self.ref_op, 1);
        let slow = PathSpec::op_chain(self.ref_op, ref_ops * 2 + 40);
        let lo = self.observe(m, &fast, ref_ops, timer);
        let hi = self.observe(m, &slow, ref_ops, timer);
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_time::{CoarseTimer, PerfectTimer};

    #[test]
    fn distinguishes_fast_from_slow_targets() {
        let mut m = Machine::baseline();
        let timer = CacheFreeTimer::new(m.layout());
        let threshold = timer.calibrate(&mut m, 40, &mut PerfectTimer);
        let fast = PathSpec::op_chain(AluOp::Add, 10);
        let slow = PathSpec::op_chain(AluOp::Add, 70);
        assert!(!timer.exceeds_observed(&mut m, &fast, 40, &mut PerfectTimer, threshold));
        assert!(timer.exceeds_observed(&mut m, &slow, 40, &mut PerfectTimer, threshold));
    }

    #[test]
    fn works_through_a_5us_browser_timer() {
        let mut m = Machine::baseline();
        let mut timer = CacheFreeTimer::new(m.layout());
        // Enough stages that the misaligned state exceeds several ticks.
        timer.magnifier.stages = 400;
        let mut coarse = CoarseTimer::browser_5us();
        let threshold = timer.calibrate(&mut m, 40, &mut coarse);
        let fast = PathSpec::op_chain(AluOp::Add, 5);
        let slow = PathSpec::op_chain(AluOp::Add, 80);
        assert!(!timer.exceeds_observed(&mut m, &fast, 40, &mut coarse, threshold));
        assert!(timer.exceeds_observed(&mut m, &slow, 40, &mut coarse, threshold));
    }

    #[test]
    fn whole_pipeline_is_cache_free() {
        let mut m = Machine::baseline();
        let timer = CacheFreeTimer::new(m.layout());
        m.flush(m.layout().sync);
        let prog = timer.program(&PathSpec::op_chain(AluOp::Mul, 20), 40);
        // Static check: the only memory instruction is the sync head.
        let memory_instrs = prog.instrs().iter().filter(|i| i.is_memory()).count();
        assert_eq!(memory_instrs, 1, "only the §4.1 sync head may touch memory");
        // Dynamic check: one L1 access in the whole run.
        let r = m.run(&prog);
        assert!(r.mem_stats.l1d.accesses() <= 1, "{:?}", r.mem_stats.l1d);
    }

    #[test]
    fn timing_verdict_is_divider_contention_not_cache() {
        // Run the same measurement twice with a cold and a fully warm
        // hierarchy: the verdict must not change.
        let timer = CacheFreeTimer::new(Layout::default());
        let slow = PathSpec::op_chain(AluOp::Add, 70);
        let mut cold = Machine::baseline();
        let cold_obs = timer.observe(&mut cold, &slow, 40, &mut PerfectTimer);
        let mut warm = Machine::baseline();
        timer.observe(&mut warm, &slow, 40, &mut PerfectTimer);
        let warm_obs = timer.observe(&mut warm, &slow, 40, &mut PerfectTimer);
        let rel = (cold_obs - warm_obs).abs() / cold_obs.max(warm_obs);
        assert!(
            rel < 0.05,
            "cache temperature must not affect the verdict: {cold_obs} vs {warm_obs}"
        );
    }
}
