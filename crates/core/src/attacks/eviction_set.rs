//! LLC eviction-set generation with a Hacky-Racers timer (paper §7.4).
//!
//! The profiling algorithm only needs a timer that distinguishes "target
//! still cached (≤ LLC hit)" from "target evicted (DRAM)". The paper
//! replaces the SharedArrayBuffer timer of Purnal et al.'s profiling with a
//! transient P/A racing gadget whose reference path is a MUL chain — which
//! "can provide a fine enough granularity" — keeping the algorithm's 100%
//! success rate. This module reproduces exactly that composition, plus the
//! group-testing reduction of Vila et al. to shrink a candidate pool to a
//! minimal eviction set.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::magnify::{PlruInput, PlruMagnifier};
use crate::path::PathSpec;
use crate::racing::TransientPaRace;
use racer_isa::AluOp;
use racer_mem::Addr;
use racer_time::Timer;

/// Driver for §7.4 eviction-set profiling.
#[derive(Clone, Debug)]
pub struct EvictionSetAttack {
    layout: Layout,
    /// Reference-path MUL count: must out-last an LLC hit and under-last a
    /// DRAM access (default 30 ⇒ 90 cycles, between ~40 and ~240).
    pub ref_muls: usize,
    /// Magnifier rounds for the coarse-timer readout mode.
    pub magnifier_rounds: usize,
}

impl EvictionSetAttack {
    /// A driver with the default MUL reference.
    pub fn new(layout: Layout) -> Self {
        EvictionSetAttack {
            layout,
            ref_muls: 30,
            magnifier_rounds: 2400,
        }
    }

    fn race_for(&self, target: Addr) -> (TransientPaRace, PathSpec, PathSpec) {
        let race = TransientPaRace::new(self.layout);
        let reference = PathSpec::op_chain(AluOp::Mul, self.ref_muls);
        let measured = PathSpec::load_chain([target]);
        (race, reference, measured)
    }

    /// The Hacky-Racers timer (omniscient readout): prime `target`, access
    /// `candidates`, then decide via the racing gadget whether re-accessing
    /// `target` is slower than the MUL reference — i.e. whether the
    /// candidates evicted it.
    pub fn evicts(&self, m: &mut Machine, target: Addr, candidates: &[Addr]) -> bool {
        let (race, reference, measured) = self.race_for(target);
        let prog = race.program(&reference, &measured);
        // Training incidentally warms the target; priming follows, so the
        // measurement below still reflects the candidates' effect.
        race.train(m, &prog);
        m.warm(target);
        // Several passes over the candidates: unlike true LRU, tree-PLRU
        // does not guarantee that W fresh fills displace a W-way set's
        // prior content in one pass, so real eviction-set algorithms
        // traverse their sets repeatedly.
        for _ in 0..3 {
            for &c in candidates {
                m.warm(c);
            }
        }
        race.detect(m, &prog);
        // Probe present ⇒ the target load beat the MUL reference ⇒ fast ⇒
        // the candidates did NOT evict it. Absent ⇒ evicted.
        m.cpu().hierarchy().probe(self.layout.probe) == racer_mem::HitLevel::Memory
    }

    /// Same measurement, but the verdict is read through `timer` via a PLRU
    /// magnifier — the full §7.4 composition with no omniscient access.
    pub fn evicts_observed(
        &self,
        m: &mut Machine,
        target: Addr,
        candidates: &[Addr],
        timer: &mut dyn Timer,
        threshold_ns: f64,
    ) -> bool {
        let mag = PlruMagnifier::with(self.layout, 5, self.magnifier_rounds);
        let probe = mag.line_a(m);
        let (race, reference, measured) = {
            let race = TransientPaRace::new(self.layout).with_probe(probe);
            let reference = PathSpec::op_chain(AluOp::Mul, self.ref_muls);
            let measured = PathSpec::load_chain([target]);
            (race, reference, measured)
        };
        let prog = race.program(&reference, &measured);
        race.train(m, &prog);
        m.warm(target);
        for _ in 0..3 {
            for &c in candidates {
                m.warm(c);
            }
        }
        mag.prepare(m);
        race.detect(m, &prog);
        let observed = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
        // Slow magnifier ⇒ probe present ⇒ target was fast ⇒ not evicted.
        observed < threshold_ns
    }

    /// Calibrate the observed-mode threshold (midpoint of the magnifier's
    /// two states).
    pub fn calibrate(&self, m: &mut Machine, timer: &mut dyn Timer) -> f64 {
        let mag = PlruMagnifier::with(self.layout, 5, self.magnifier_rounds);
        mag.prepare(m);
        let absent = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
        mag.prepare(m);
        let a = mag.line_a(m);
        m.warm(a);
        let present = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
        (absent + present) / 2.0
    }

    /// Reduce `pool` to a minimal eviction set for `target` (Vila et al.
    /// group-testing): returns `ways` addresses that still evict the target,
    /// or `None` if the pool never evicted it in the first place.
    pub fn build_minimal_set(
        &self,
        m: &mut Machine,
        target: Addr,
        pool: &[Addr],
        ways: usize,
    ) -> Option<Vec<Addr>> {
        let mut set: Vec<Addr> = pool.to_vec();
        if !self.evicts(m, target, &set) {
            return None;
        }
        while set.len() > ways {
            // Split into *exactly* ways+1 (near-equal) groups: with at most
            // `ways` essential (congruent) members, the pigeonhole argument
            // guarantees some group holds none and is safely removable
            // (Vila et al.'s reduction invariant).
            let groups = ways + 1;
            let mut removed = false;
            for g in 0..groups {
                let lo = g * set.len() / groups;
                let hi = (g + 1) * set.len() / groups;
                if lo == hi {
                    continue;
                }
                let candidate: Vec<Addr> = set
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i < lo || *i >= hi)
                    .map(|(_, &a)| a)
                    .collect();
                if self.evicts(m, target, &candidate) {
                    set = candidate;
                    removed = true;
                    break;
                }
            }
            if !removed {
                // Cannot shrink further: fewer congruent members than
                // expected — fail loudly rather than return a bloated set.
                return None;
            }
        }
        Some(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_mem::candidate_pool;

    /// A machine with the scaled-down LLC plus a target and candidate pool
    /// where every second page is L3-congruent with the target.
    ///
    /// The page offset (0x800) steers the profiled set away from LLC set 0,
    /// where the gadget's own infrastructure lines (sync head, probe,
    /// inputs) live — the same discipline a real attacker applies so their
    /// timer's working set does not pollute the set being profiled.
    fn setup() -> (Machine, Addr, Vec<Addr>) {
        let m = Machine::small_llc();
        let pool_base = m.layout().ev_pool_base;
        let target = Addr(pool_base.0 + 0x800);
        let pool: Vec<Addr> = candidate_pool(Addr(pool_base.0 + 4096), 48, 0x800);
        (m, target, pool)
    }

    #[test]
    fn timer_distinguishes_cached_from_evicted() {
        let (mut m, target, pool) = setup();
        let atk = EvictionSetAttack::new(m.layout());
        // No candidates: target stays cached → not evicted.
        assert!(!atk.evicts(&mut m, target, &[]));
        // The whole pool contains ≥ 8 congruent lines → evicted.
        assert!(atk.evicts(&mut m, target, &pool));
    }

    #[test]
    fn non_congruent_candidates_do_not_evict() {
        let (mut m, target, pool) = setup();
        let atk = EvictionSetAttack::new(m.layout());
        let l3 = m.cpu().hierarchy().l3();
        let tset = l3.set_index(target.line());
        let non_congruent: Vec<Addr> = pool
            .iter()
            .copied()
            .filter(|a| l3.set_index(a.line()) != tset)
            .collect();
        assert!(non_congruent.len() >= 16);
        assert!(!atk.evicts(&mut m, target, &non_congruent));
    }

    #[test]
    fn builds_a_minimal_congruent_set() {
        let (mut m, target, pool) = setup();
        let atk = EvictionSetAttack::new(m.layout());
        let ways = m.cpu().hierarchy().l3().config().ways;
        let set = atk
            .build_minimal_set(&mut m, target, &pool, ways)
            .expect("pool must reduce to a minimal eviction set");
        assert_eq!(set.len(), ways);
        // Ground truth: every member is L3-congruent with the target.
        let l3 = m.cpu().hierarchy().l3();
        let tset = l3.set_index(target.line());
        for a in &set {
            assert_eq!(
                l3.set_index(a.line()),
                tset,
                "non-congruent member {a} in the reduced set"
            );
        }
        // And it still evicts.
        assert!(atk.evicts(&mut m, target, &set));
    }

    #[test]
    fn observed_mode_matches_omniscient_mode() {
        use racer_time::CoarseTimer;
        let (mut m, target, pool) = setup();
        let atk = EvictionSetAttack::new(m.layout());
        let mut timer = CoarseTimer::browser_5us();
        let threshold = atk.calibrate(&mut m, &mut timer);
        assert!(
            atk.evicts_observed(&mut m, target, &pool, &mut timer, threshold),
            "full pool must read as evicting through the coarse timer"
        );
        assert!(
            !atk.evicts_observed(&mut m, target, &[], &mut timer, threshold),
            "empty candidate set must read as not evicting"
        );
    }

    #[test]
    fn profiling_succeeds_across_page_offsets() {
        // The §7.4 success-rate claim: repeat profiling for several targets.
        let mut successes = 0;
        let trials = 4;
        for t in 0..trials {
            let mut m = Machine::small_llc();
            let base = m.layout().ev_pool_base;
            // Distinct line offsets per trial, clear of LLC set 0 where the
            // gadget's own lines live.
            let offset = 0x800 + (t as u64) * 128;
            let target = Addr(base.0 + offset);
            let pool = candidate_pool(Addr(base.0 + 4096), 48, offset);
            let atk = EvictionSetAttack::new(m.layout());
            let ways = m.cpu().hierarchy().l3().config().ways;
            if let Some(set) = atk.build_minimal_set(&mut m, target, &pool, ways) {
                let l3 = m.cpu().hierarchy().l3();
                let tset = l3.set_index(target.line());
                if set.iter().all(|a| l3.set_index(a.line()) == tset) {
                    successes += 1;
                }
            }
        }
        assert_eq!(
            successes, trials,
            "profiling must succeed every time (paper: 100%)"
        );
    }
}
