//! Website fingerprinting through a per-set cache-occupancy channel —
//! another §2.1 motivation ("website fingerprinting") resurrected with the
//! ILP-race timer.
//!
//! Each "website" is a victim workload touching a characteristic set of
//! cache lines. The attacker primes every L1 set with its own lines, lets
//! the victim run, then asks — per set, via the [`L1Probe`] racing gadget —
//! whether its prime lines survived. The resulting 0/1 occupancy vector is
//! the fingerprint; classification is nearest-Hamming-distance against
//! offline-profiled references.

use crate::attacks::probe::L1Probe;
use crate::layout::Layout;
use crate::machine::Machine;
use racer_isa::{Asm, MemOperand, Program};
use racer_mem::Addr;
use serde::{Deserialize, Serialize};

/// A synthetic "website": a deterministic workload touching `lines`
/// distinct cache lines chosen by `seed`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Website {
    /// Display name.
    pub name: String,
    /// Workload seed (selects which sets it touches).
    pub seed: u64,
    /// Number of distinct lines the site touches.
    pub lines: usize,
}

impl Website {
    /// The line addresses this site touches (a seeded pseudo-random spread
    /// over the monitored region).
    pub fn footprint(&self) -> Vec<Addr> {
        let mut state = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..self.lines)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Spread over 64 L1 sets within a dedicated region.
                let set = (state >> 33) % 64;
                let way_salt = (state >> 40) % 4;
                Addr(0x0B00_0000 + set * 64 + way_salt * 64 * 64)
            })
            .collect()
    }

    /// The site's "page load": a program visiting its footprint.
    pub fn workload(&self) -> Program {
        let mut asm = Asm::new();
        let d = asm.reg();
        for a in self.footprint() {
            asm.load(d, MemOperand::abs(a.0));
        }
        asm.halt();
        asm.assemble().expect("website workload assembles")
    }
}

/// The fingerprinting attack.
#[derive(Clone, Debug)]
pub struct FingerprintAttack {
    layout: Layout,
    /// Prime lines per monitored set.
    pub prime_ways: usize,
    /// Monitored L1 sets (all 64 by default would collide with gadget
    /// plumbing; sets 40..56 are used).
    pub sets: Vec<usize>,
}

impl FingerprintAttack {
    /// A 16-set monitor (L1 sets 40..56).
    pub fn new(layout: Layout) -> Self {
        FingerprintAttack {
            layout,
            prime_ways: 8,
            sets: (40..56).collect(),
        }
    }

    fn prime_lines(&self, m: &Machine, set: usize) -> Vec<Addr> {
        let l1 = m.cpu().hierarchy().l1d();
        (16..16 + self.prime_ways)
            .map(|i| self.layout.plru_line(l1, set, i))
            .collect()
    }

    /// One prime → visit → probe round: the occupancy vector (true = the
    /// site displaced something in that set).
    pub fn observe(&self, m: &mut Machine, site: &Website) -> Vec<bool> {
        let probe = L1Probe::new(self.layout);
        let workload = site.workload();
        // Prime all monitored sets.
        for &s in &self.sets {
            for _ in 0..2 {
                for l in self.prime_lines(m, s) {
                    m.warm(l);
                }
            }
        }
        // The victim "loads the page".
        m.run(&workload);
        // Probe every prime line per set: any eviction marks the set as
        // touched (a single victim fill displaces just one way, and the
        // PLRU victim choice is not ours to predict).
        self.sets
            .iter()
            .map(|&s| {
                self.prime_lines(m, s)
                    .into_iter()
                    .map(|line| probe.was_evicted(m, line))
                    .fold(false, |acc, e| acc | e)
            })
            .collect()
    }

    /// Offline profiling: reference fingerprints per site.
    pub fn profile(&self, m: &mut Machine, sites: &[Website]) -> Vec<(String, Vec<bool>)> {
        sites
            .iter()
            .map(|s| (s.name.clone(), self.observe(m, s)))
            .collect()
    }

    /// Classify an observed fingerprint against references
    /// (nearest Hamming distance).
    pub fn classify(references: &[(String, Vec<bool>)], observed: &[bool]) -> String {
        references
            .iter()
            .min_by_key(|(_, r)| r.iter().zip(observed).filter(|(a, b)| a != b).count())
            .map(|(name, _)| name.clone())
            .expect("at least one reference")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_cpu::CpuConfig;
    use racer_mem::HierarchyConfig;

    fn machine() -> Machine {
        Machine::with(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::coffee_lake(),
        )
    }

    fn sites() -> Vec<Website> {
        vec![
            Website {
                name: "news".into(),
                seed: 3,
                lines: 40,
            },
            Website {
                name: "mail".into(),
                seed: 17,
                lines: 12,
            },
            Website {
                name: "bank".into(),
                seed: 99,
                lines: 25,
            },
        ]
    }

    #[test]
    fn footprints_are_deterministic_and_distinct() {
        let s = sites();
        assert_eq!(s[0].footprint(), s[0].footprint());
        assert_ne!(s[0].footprint(), s[2].footprint());
    }

    #[test]
    fn occupancy_vectors_differ_between_sites() {
        let mut m = machine();
        let atk = FingerprintAttack::new(m.layout());
        let s = sites();
        let a = atk.observe(&mut m, &s[0]);
        let b = atk.observe(&mut m, &s[1]);
        assert_ne!(
            a, b,
            "a 40-line site and a 12-line site must look different"
        );
        assert!(a.iter().filter(|&&x| x).count() > b.iter().filter(|&&x| x).count());
    }

    #[test]
    fn classifies_repeat_visits_correctly() {
        let mut m = machine();
        let atk = FingerprintAttack::new(m.layout());
        let s = sites();
        let refs = atk.profile(&mut m, &s);
        for site in &s {
            let obs = atk.observe(&mut m, site);
            let got = FingerprintAttack::classify(&refs, &obs);
            assert_eq!(got, site.name, "revisit must classify as itself");
        }
    }
}
