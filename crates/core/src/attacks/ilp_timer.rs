//! The library's headline product: a fine-grained timer built from coarse
//! parts (racing gadget + magnifier gadget + coarse timer).
//!
//! [`IlpTimer`] answers "does this expression take longer than N reference
//! operations?" — and, by sweeping N, measures execution time in
//! reference-op units — using nothing the paper's §3 threat model forbids:
//! arithmetic, branches, loads, and a ≥5 µs timer.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::magnify::{PlruInput, PlruMagnifier};
use crate::path::PathSpec;
use crate::racing::TransientPaRace;
use racer_isa::AluOp;
use racer_time::Timer;

/// A fine-grained comparator/timer for arbitrary target expressions.
///
/// Two readout modes:
///
/// * [`IlpTimer::exceeds`] — omniscient readout of the racing gadget's probe
///   (used by the granularity experiments of Figures 8–9);
/// * [`IlpTimer::exceeds_observed`] — the full attacker pipeline: the race
///   leaves its verdict in a PLRU-magnifier set and the decision is made
///   from a *coarse timer reading alone*.
#[derive(Clone, Debug)]
pub struct IlpTimer {
    layout: Layout,
    /// Operation the reference path is chained from (`Add` ⇒ 1-cycle
    /// granularity ticks, `Mul` ⇒ 3-cycle ticks with longer reach — §7.2).
    pub ref_op: AluOp,
    /// Largest reference length to try (the §7.2 window limit).
    pub max_ref_ops: usize,
    /// Rounds the magnifier runs in observed mode.
    pub magnifier_rounds: usize,
}

impl IlpTimer {
    /// An ADD-referenced timer (finest granularity).
    pub fn new(layout: Layout) -> Self {
        IlpTimer {
            layout,
            ref_op: AluOp::Add,
            max_ref_ops: 80,
            magnifier_rounds: 1500,
        }
    }

    /// Use `op` for the reference path (e.g. `Mul` for a longer reach).
    pub fn with_ref_op(mut self, op: AluOp) -> Self {
        self.ref_op = op;
        self
    }

    /// Does `target` take *longer* than `ref_ops` chained reference ops?
    /// (Omniscient probe readout.)
    pub fn exceeds(&self, m: &mut Machine, target: &PathSpec, ref_ops: usize) -> bool {
        let race = TransientPaRace::new(self.layout);
        let reference = PathSpec::op_chain(self.ref_op, ref_ops);
        !race.target_beats_ref(m, target, &reference)
    }

    /// Measure `target`'s execution time in reference-op units: the minimal
    /// reference length that still out-lasts the target. Returns `None` when
    /// the target exceeds the measurable window (paper §7.2: the window
    /// limits "the largest execution time that we can time").
    pub fn measure_ref_ops(&self, m: &mut Machine, target: &PathSpec) -> Option<usize> {
        if self.exceeds(m, target, self.max_ref_ops) {
            return None;
        }
        // Monotone predicate: binary search the flip point.
        let (mut lo, mut hi) = (0usize, self.max_ref_ops);
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.exceeds(m, target, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }

    /// Measure `target` in (approximate) nanoseconds: reference-op units
    /// scaled by the reference op's latency and the machine clock. `None`
    /// past the measurable window.
    pub fn measure_ns(&self, m: &mut Machine, target: &PathSpec) -> Option<f64> {
        let ops = self.measure_ref_ops(m, target)?;
        let lat = m.cpu().config().latencies;
        let per_op = match self.ref_op {
            AluOp::Mul => lat.mul,
            AluOp::Div => lat.div_min + 1,
            _ => lat.alu,
        };
        Some(m.cpu().config().cycles_to_ns(ops as u64 * per_op))
    }

    /// Full coarse-timer pipeline: race `target` against the reference,
    /// leave the outcome in a PLRU set, magnify, and decide from `timer`
    /// readings only. `threshold_ns` comes from [`IlpTimer::calibrate`].
    pub fn exceeds_observed(
        &self,
        m: &mut Machine,
        target: &PathSpec,
        ref_ops: usize,
        timer: &mut dyn Timer,
        threshold_ns: f64,
    ) -> bool {
        let mag = PlruMagnifier::with(self.layout, 5, self.magnifier_rounds);
        let race = TransientPaRace::new(self.layout).with_probe(mag.line_a(m));
        let reference = PathSpec::op_chain(self.ref_op, ref_ops);
        let prog = race.program(&reference, target);
        race.train(m, &prog);
        mag.prepare(m);
        race.detect(m, &prog);
        let observed = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
        // Probe present (slow magnifier) ⇒ target finished first ⇒ target
        // does NOT exceed the reference.
        observed < threshold_ns
    }

    /// Calibrate the observed-mode decision threshold: run the magnifier in
    /// both known states and return the midpoint of the observed times.
    pub fn calibrate(&self, m: &mut Machine, timer: &mut dyn Timer) -> f64 {
        let mag = PlruMagnifier::with(self.layout, 5, self.magnifier_rounds);
        mag.prepare(m);
        let absent = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
        mag.prepare(m);
        let a = mag.line_a(m);
        m.warm(a);
        let present = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
        (absent + present) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_time::CoarseTimer;

    #[test]
    fn measures_add_chains_to_single_op_accuracy() {
        let timer = IlpTimer::new(Layout::default());
        for target_len in [8usize, 20, 33] {
            let mut m = Machine::baseline();
            let target = PathSpec::op_chain(AluOp::Add, target_len);
            let measured = timer.measure_ref_ops(&mut m, &target).expect("in window");
            assert!(
                measured.abs_diff(target_len) <= 4,
                "measured {measured} ref-ops for a {target_len}-add target"
            );
        }
    }

    #[test]
    fn mul_targets_measure_at_three_adds_each() {
        let timer = IlpTimer::new(Layout::default());
        let mut m = Machine::baseline();
        let t5 = timer
            .measure_ref_ops(&mut m, &PathSpec::op_chain(AluOp::Mul, 5))
            .expect("in window");
        let t10 = timer
            .measure_ref_ops(&mut m, &PathSpec::op_chain(AluOp::Mul, 10))
            .expect("in window");
        let slope = (t10 as f64 - t5 as f64) / 5.0;
        assert!(
            (2.5..=3.5).contains(&slope),
            "MUL targets should cost ~3 ADD-units each, slope {slope:.2}"
        );
    }

    #[test]
    fn too_long_targets_exceed_the_window() {
        let timer = IlpTimer::new(Layout::default());
        let mut m = Machine::baseline();
        let huge = PathSpec::op_chain(AluOp::Div, 40); // ≈ 560 cycles
        assert_eq!(timer.measure_ref_ops(&mut m, &huge), None);
    }

    #[test]
    fn observed_mode_agrees_with_omniscient_mode() {
        let timer = IlpTimer::new(Layout::default());
        let mut m = Machine::baseline();
        let mut coarse = CoarseTimer::browser_5us();
        let threshold = timer.calibrate(&mut m, &mut coarse);

        let short = PathSpec::op_chain(AluOp::Add, 8);
        let long = PathSpec::op_chain(AluOp::Add, 50);
        assert!(
            !timer.exceeds_observed(&mut m, &short, 25, &mut coarse, threshold),
            "8 adds must not exceed a 25-add reference (coarse-timer readout)"
        );
        assert!(
            timer.exceeds_observed(&mut m, &long, 25, &mut coarse, threshold),
            "50 adds must exceed a 25-add reference (coarse-timer readout)"
        );
    }
}
