//! End-to-end attacks built from racing + magnifier gadgets (paper §7),
//! plus the application attacks the paper's introduction motivates.
//!
//! * [`ilp_timer`] — the generic fine-grained timer API (§7.2's measurement
//!   capability productized);
//! * [`cache_free_timer`] — the same capability with zero cache use
//!   (§8's within-core-contention transmission);
//! * [`repetition`] — repetition gadgets with and without racing gadgets
//!   (§7.1, Figure 7);
//! * [`spectre_back`] — the backwards-in-time Spectre attack (§7.3);
//! * [`spectre_v1`] — the classic leaky.page-style baseline it defeats
//!   rollback defences relative to;
//! * [`eviction_set`] — LLC eviction-set generation without
//!   SharedArrayBuffer (§7.4);
//! * [`probe`] — the reusable racing-gadget L1 residency probe;
//! * [`aes_recovery`], [`rsa_bit_leak`], [`fingerprint`] — the §2.1
//!   motivations (AES, RSA-style exponentiation, website fingerprinting)
//!   resurrected without fine timers.

pub mod aes_recovery;
pub mod cache_free_timer;
pub mod eviction_set;
pub mod fingerprint;
pub mod ilp_timer;
pub mod probe;
pub mod repetition;
pub mod rsa_bit_leak;
pub mod spectre_back;
pub mod spectre_v1;

pub use aes_recovery::{AesAttack, AesRecovery};
pub use cache_free_timer::CacheFreeTimer;
pub use eviction_set::EvictionSetAttack;
pub use fingerprint::{FingerprintAttack, Website};
pub use ilp_timer::IlpTimer;
pub use probe::L1Probe;
pub use repetition::{run_repetition, RepetitionConfig, StageBreakdown};
pub use rsa_bit_leak::{ExponentLeak, RsaBitLeak};
pub use spectre_back::{LeakReport, SpectreBack};
pub use spectre_v1::SpectreV1;
