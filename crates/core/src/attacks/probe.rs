//! A reusable L1 residency probe built from a racing gadget.
//!
//! Answers "is this line still in the L1?" — a 4-vs-12-cycle question no
//! coarse timer can ask — via a transient P/A race whose measurement path
//! dereferences a *pointer held in attacker memory*
//! ([`PathSpec::IndirectLoad`]). One program therefore serves every probed
//! line: its branch is trained against a dummy subject and each detection
//! re-points the pointer, so training never touches the probed state and
//! the predictor never saturates.
//!
//! Used by the AES recovery (§2.1 motivation) and the website-fingerprint
//! demo; the readout is the gadget's standard presence/absence probe line.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::path::PathSpec;
use crate::racing::TransientPaRace;
use racer_isa::AluOp;
use racer_mem::{Addr, HitLevel};

/// The racing-gadget L1 residency probe.
#[derive(Clone, Debug)]
pub struct L1Probe {
    layout: Layout,
    /// Reference ADD-chain length separating the L1-hit body (~10 cycles:
    /// pointer hop + hit) from the L1-miss body (~17).
    pub ref_adds: usize,
    /// Attacker-memory cell holding the subject address.
    pub ptr: Addr,
    /// Always-warm dummy subject used for branch training.
    pub dummy: Addr,
}

impl L1Probe {
    /// A probe with default plumbing cells (L1 sets 33/34 on a 64-set L1,
    /// clear of the sets most experiments monitor).
    pub fn new(layout: Layout) -> Self {
        L1Probe {
            layout,
            ref_adds: 11,
            ptr: Addr(layout.x_flag.0 + 0x840),
            dummy: Addr(layout.x_flag.0 + 0x880),
        }
    }

    /// Probe whether `line` has been evicted from the L1.
    ///
    /// Perturbation: the detection reloads `line` (fill-at-issue), so a
    /// probed line reads as resident afterwards — like any real
    /// reload-style probe, each line should be probed once per round.
    pub fn was_evicted(&self, m: &mut Machine, line: Addr) -> bool {
        let race = TransientPaRace::new(self.layout);
        let reference = PathSpec::op_chain(AluOp::Add, self.ref_adds);
        let measured = PathSpec::IndirectLoad { ptr: self.ptr.0 };
        let prog = race.program(&reference, &measured);
        m.cpu_mut().mem_mut().write(self.ptr.0, self.dummy.0);
        m.warm(self.ptr);
        m.warm(self.dummy);
        race.train(m, &prog);
        m.cpu_mut().mem_mut().write(self.ptr.0, line.0);
        race.detect(m, &prog);
        m.cpu().hierarchy().probe(self.layout.probe) == HitLevel::Memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_cpu::CpuConfig;
    use racer_mem::HierarchyConfig;

    fn machine() -> Machine {
        Machine::with(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::coffee_lake(),
        )
    }

    #[test]
    fn distinguishes_resident_from_evicted() {
        let mut m = machine();
        let probe = L1Probe::new(m.layout());
        let subject = Addr(0x0A00_0000);
        m.warm(subject);
        assert!(!probe.was_evicted(&mut m, subject));
        m.evict_from_l1(subject);
        assert!(probe.was_evicted(&mut m, subject));
    }

    #[test]
    fn repeated_probes_stay_accurate() {
        let mut m = machine();
        let probe = L1Probe::new(m.layout());
        let subject = Addr(0x0A10_0000);
        for round in 0..6 {
            m.warm(subject);
            assert!(
                !probe.was_evicted(&mut m, subject),
                "round {round}: false positive"
            );
            m.evict_from_l1(subject);
            assert!(
                probe.was_evicted(&mut m, subject),
                "round {round}: false negative"
            );
        }
    }

    #[test]
    fn works_for_l2_resident_and_dram_cold_subjects() {
        let mut m = machine();
        let probe = L1Probe::new(m.layout());
        let l2_subject = Addr(0x0A20_0000);
        m.warm(l2_subject);
        m.evict_from_l1(l2_subject);
        assert!(
            probe.was_evicted(&mut m, l2_subject),
            "L2-resident = evicted from L1"
        );
        let cold = Addr(0x0A30_0000);
        assert!(
            probe.was_evicted(&mut m, cold),
            "never-touched = not L1-resident"
        );
    }
}
