//! Repetition gadgets, with and without racing gadgets (paper §7.1,
//! Figure 7).
//!
//! The paper's counter-intuitive observation: naively repeating a
//! Flush+Reload probe N times does **not** accumulate a timing difference,
//! because the victim-load stage and the attacker-reload stage have
//! *opposite* timing dependence on the secret (a hit saved in one is a miss
//! paid in the other), cancelling in the total. Wrapping the load stage in a
//! racing gadget whose baseline path out-lasts either load case makes that
//! stage constant-time, so the reload difference survives into the total.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::path::{emit_sync_head, PathSpec};
use racer_isa::{Asm, MemOperand, Program};
use racer_mem::Addr;
use serde::{Deserialize, Serialize};

/// Configuration of one repetition-gadget run.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct RepetitionConfig {
    /// Flush→load→reload iterations.
    pub iterations: usize,
    /// Whether the victim accesses the *same* address the attacker probes
    /// (the secret bit the channel transmits).
    pub same_addr: bool,
    /// Wrap the victim-load stage in a racing gadget (Figure 7b) or leave
    /// it bare (Figure 7a).
    pub use_racing: bool,
    /// Length of the constant baseline path when racing, in chained MULs.
    /// It must out-last a DRAM miss (95 × 3 = 285 cycles > ~245) while its
    /// instruction count stays far below the ROB capacity — a long ADD
    /// chain of equal duration would overflow the window and leak the
    /// victim's latency back out through dispatch backpressure (the §7.2
    /// window constraint, felt from the defender's side).
    pub baseline_ops: usize,
}

impl Default for RepetitionConfig {
    fn default() -> Self {
        RepetitionConfig {
            iterations: 40,
            same_addr: true,
            use_racing: false,
            baseline_ops: 95,
        }
    }
}

/// Cycle totals per stage across all iterations (the Figure 7 stack bars).
#[derive(Copy, Clone, Debug, Default, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Victim-load stage cycles.
    pub load: u64,
    /// Attacker-reload (probe) stage cycles.
    pub reload: u64,
    /// Eviction/flush stage cycles.
    pub evict: u64,
}

impl StageBreakdown {
    /// Total cycles over all stages.
    pub fn total(&self) -> u64 {
        self.load + self.reload + self.evict
    }
}

/// Run a full repetition-gadget attack and return the per-stage breakdown.
///
/// Stages per iteration, each its own program run (the attacker times each
/// stage separately in the paper's Figure 7 instrumentation):
///
/// 1. **evict**: flush the probe line (the baseline native attack uses
///    `clflush`; eviction-set variants behave identically here);
/// 2. **load**: the victim accesses its address — equal to the probe when
///    `same_addr`, a disjoint line otherwise;
/// 3. **reload**: the attacker probes the line.
pub fn run_repetition(m: &mut Machine, cfg: &RepetitionConfig) -> StageBreakdown {
    let layout = m.layout();
    let probe = layout.probe;
    let other = Addr(layout.probe.0 + 0x2000);
    let victim = if cfg.same_addr { probe } else { other };

    let evict_prog = flush_program(probe);
    let load_prog = if cfg.use_racing {
        raced_load_program(layout, victim, cfg.baseline_ops)
    } else {
        load_program(victim)
    };
    let reload_prog = load_program(probe);

    // Warm the non-probe victim line once (it stays warm thereafter, which
    // is exactly the asymmetry that makes the bare gadget cancel).
    m.warm(other);

    let mut out = StageBreakdown::default();
    for _ in 0..cfg.iterations {
        out.evict += m.run_cycles(&evict_prog);
        if cfg.use_racing {
            m.flush(layout.sync);
        }
        out.load += m.run_cycles(&load_prog);
        out.reload += m.run_cycles(&reload_prog);
    }
    out
}

fn flush_program(addr: Addr) -> Program {
    let mut asm = Asm::new();
    asm.flush(MemOperand::abs(addr.0));
    asm.halt();
    asm.assemble().expect("flush program assembles")
}

fn load_program(addr: Addr) -> Program {
    let mut asm = Asm::new();
    let d = asm.reg();
    asm.load(d, MemOperand::abs(addr.0));
    // Make the run time observe the load's completion.
    let e = asm.reg();
    asm.addi(e, d, 1);
    asm.halt();
    asm.assemble().expect("load program assembles")
}

/// The Figure 7b fix: the victim load is one path of a race whose baseline
/// path runs `baseline_ops` adds — longer than either load case — so the
/// stage's duration is the baseline's, constant.
fn raced_load_program(layout: Layout, victim: Addr, baseline_ops: usize) -> Program {
    let mut asm = Asm::new();
    let seed = emit_sync_head(&mut asm, layout.sync);
    let rm = PathSpec::load_chain([victim]).emit(&mut asm, seed);
    let rb = PathSpec::op_chain(racer_isa::AluOp::Mul, baseline_ops).emit(&mut asm, seed);
    let join = asm.reg();
    asm.add(join, rm, rb); // completion requires both paths
    asm.halt();
    asm.assemble().expect("raced load program assembles")
}

impl StageBreakdown {
    /// JSON form: per-stage cycles plus the total.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("load", self.load)
            .with("reload", self.reload)
            .with("evict", self.evict)
            .with("total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(same: bool, racing: bool) -> StageBreakdown {
        let mut m = Machine::baseline();
        let cfg = RepetitionConfig {
            iterations: 30,
            same_addr: same,
            use_racing: racing,
            baseline_ops: 95,
        };
        run_repetition(&mut m, &cfg)
    }

    /// Figure 7a: without racing, the per-stage differences cancel and the
    /// totals are indistinguishable.
    #[test]
    fn bare_repetition_cancels_in_the_total() {
        let same = run(true, false);
        let diff = run(false, false);
        // Reload differs strongly (same → hit, different → miss)…
        assert!(
            diff.reload > same.reload + 2000,
            "reload stage must favour same-addr: {same:?} vs {diff:?}"
        );
        // …load differs the opposite way (same → miss, different → hit)…
        assert!(
            same.load > diff.load + 2000,
            "load stage must favour different-addr: {same:?} vs {diff:?}"
        );
        // …and the totals cancel to within a few percent.
        let (a, b) = (same.total() as f64, diff.total() as f64);
        let rel = (a - b).abs() / a.max(b);
        assert!(
            rel < 0.05,
            "totals must cancel (Fig 7a): same={} different={} rel={rel:.3}",
            same.total(),
            diff.total()
        );
    }

    /// Figure 7b: with the load stage raced constant, the reload difference
    /// survives into the total.
    #[test]
    fn raced_repetition_exposes_the_difference() {
        let same = run(true, true);
        let diff = run(false, true);
        // The load stage is now constant-time…
        let load_rel =
            (same.load as f64 - diff.load as f64).abs() / same.load.max(diff.load) as f64;
        assert!(
            load_rel < 0.02,
            "raced load stage must be constant: same={} diff={}",
            same.load,
            diff.load
        );
        // …so the total now separates the two cases.
        assert!(
            diff.total() > same.total() + 2000,
            "raced totals must differ (Fig 7b): same={} different={}",
            same.total(),
            diff.total()
        );
    }

    /// The per-iteration signal matches Flush+Reload expectations.
    #[test]
    fn reload_hit_vs_miss_scale() {
        let same = run(true, false);
        let diff = run(false, false);
        let per_iter = (diff.reload - same.reload) / 30;
        assert!(
            (150..=300).contains(&per_iter),
            "per-iteration reload difference should be ~DRAM-L1: {per_iter}"
        );
    }
}
