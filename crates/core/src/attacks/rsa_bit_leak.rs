//! Leaking a square-and-multiply exponent through an ILP race — §4.2's
//! "embed the expression whose timing we would like to observe" applied to
//! the textbook RSA timing side channel.
//!
//! Victim model: one step of left-to-right binary exponentiation. Every
//! step squares; steps whose exponent bit is 1 also multiply:
//!
//! ```text
//! t = square(x)            // 1 MUL (3 cycles)
//! if bit == 1 { t *= x }   // +1 MUL
//! ```
//!
//! The 3-cycle difference is far below any coarse timer — and comfortably
//! inside the racing gadget's 1–3-cycle granularity (§7.2). The victim step
//! is embedded as the measurement path of a **reorder race** (§5.2) against
//! a reference ADD chain; the insertion order of two cache lines then
//! carries the exponent bit into a PLRU reorder magnifier (§6.2) and out
//! through the attacker's 5 µs clock.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::magnify::{PlruInput, PlruMagnifier};
use crate::path::{emit_sync_head, PathSpec};
use racer_isa::{AluOp, Asm, Cond, MemOperand, Program};
use racer_mem::Addr;
use racer_time::Timer;
use serde::{Deserialize, Serialize};

/// Result of leaking an exponent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExponentLeak {
    /// Recovered bits, most significant first.
    pub bits: Vec<bool>,
    /// Simulated nanoseconds spent.
    pub elapsed_ns: f64,
}

/// Driver for the exponent-bit leak.
#[derive(Clone, Debug)]
pub struct RsaBitLeak {
    layout: Layout,
    /// Reference ADD-chain length: between the bit-0 step (~1 MUL) and the
    /// bit-1 step (~2 MULs) of the victim.
    pub ref_adds: usize,
    /// Magnifier rounds per bit readout.
    pub magnifier_rounds: usize,
    /// Predictor warm-up runs per bit (settles the victim's own branch).
    pub warmups: usize,
}

impl RsaBitLeak {
    /// A leak driver over `layout`.
    pub fn new(layout: Layout) -> Self {
        RsaBitLeak {
            layout,
            ref_adds: 5,
            magnifier_rounds: 1200,
            warmups: 2,
        }
    }

    /// Address of exponent bit `i` in victim memory (one word per bit).
    pub fn bit_addr(&self, i: usize) -> Addr {
        Addr(self.layout.secret_base.0 + 0x2000 + i as u64 * 8)
    }

    /// Plant the victim's exponent bits.
    pub fn plant_exponent(&self, m: &mut Machine, bits: &[bool]) {
        for (i, &b) in bits.iter().enumerate() {
            m.cpu_mut()
                .mem_mut()
                .write(self.bit_addr(i).0, u64::from(b));
        }
    }

    /// Build the race program for exponent bit `i`:
    ///
    /// ```text
    /// seed = load [sync] & 0          ; §4.1 head
    /// ; measurement path = the victim's exponentiation step
    /// rb   = load [bit_i]             ; the victim reading its key bit
    /// t    = seed * 1                 ; square
    /// br rb == 0 → skip
    /// t    = t * 1                    ; conditional multiply
    /// skip:
    /// load [t + A]                    ; path_m terminal
    /// ; baseline path
    /// rref = ref ADD chain(seed)
    /// load [rref + B]                 ; path_b terminal
    /// ```
    pub fn program(&self, m: &Machine, i: usize) -> Program {
        let mag = self.magnifier();
        let (a, b) = (mag.line_a(m), mag.line_b(m));
        let mut asm = Asm::new();
        let seed = emit_sync_head(&mut asm, self.layout.sync);

        let rb = asm.reg();
        asm.load(rb, MemOperand::abs(self.bit_addr(i).0));
        let t = asm.reg();
        asm.mul(t, seed, 1i64); // square
        let skip = asm.fwd_label();
        asm.br(Cond::Eq, rb, 0i64, skip);
        asm.mul(t, t, 1i64); // multiply (bit = 1 only)
        asm.bind(skip);
        let va = asm.reg();
        asm.load(va, MemOperand::base_disp(t, a.0 as i64));

        let rref = PathSpec::op_chain(AluOp::Add, self.ref_adds).emit(&mut asm, seed);
        let vb = asm.reg();
        asm.load(vb, MemOperand::base_disp(rref, b.0 as i64));
        asm.halt();
        asm.assemble().expect("RSA bit-leak race assembles")
    }

    /// The reorder magnifier used for readout.
    pub fn magnifier(&self) -> PlruMagnifier {
        PlruMagnifier::with(self.layout, 5, self.magnifier_rounds)
    }

    /// Leak one exponent bit through `timer` against a calibrated
    /// `threshold_ns`. Large readings (A inserted first, misses forever)
    /// mean the victim step was *fast* — bit 0.
    pub fn leak_bit(
        &self,
        m: &mut Machine,
        i: usize,
        timer: &mut dyn Timer,
        threshold_ns: f64,
    ) -> bool {
        let prog = self.program(m, i);
        let mag = self.magnifier();
        m.warm(self.bit_addr(i));
        for _ in 0..self.warmups {
            m.flush(self.layout.sync);
            m.run(&prog);
        }
        mag.prepare(m);
        m.flush(self.layout.sync);
        m.run(&prog);
        let observed = m.run_timed(&mag.program(m, PlruInput::Reorder), timer);
        observed < threshold_ns // fast magnifier ⇒ B first ⇒ slow step ⇒ bit 1
    }

    /// Calibrate the threshold with attacker-known bits (the attacker runs
    /// the identical code shape against its own array).
    pub fn calibrate(&self, m: &mut Machine, timer: &mut dyn Timer) -> f64 {
        // Use two scratch victim slots the test/demo controls; a real
        // attacker uses its own function with known inputs — identical
        // timing classes by construction.
        let scratch = 62; // bit index reserved for calibration
        let mut readings = [0.0f64; 2];
        for known in [false, true] {
            m.cpu_mut()
                .mem_mut()
                .write(self.bit_addr(scratch).0, u64::from(known));
            let prog = self.program(m, scratch);
            let mag = self.magnifier();
            m.warm(self.bit_addr(scratch));
            for _ in 0..self.warmups {
                m.flush(self.layout.sync);
                m.run(&prog);
            }
            mag.prepare(m);
            m.flush(self.layout.sync);
            m.run(&prog);
            readings[usize::from(known)] = m.run_timed(&mag.program(m, PlruInput::Reorder), timer);
        }
        (readings[0] + readings[1]) / 2.0
    }

    /// Leak `n` exponent bits.
    pub fn leak_exponent(&self, m: &mut Machine, n: usize, timer: &mut dyn Timer) -> ExponentLeak {
        let start = m.elapsed_ns();
        let threshold = self.calibrate(m, timer);
        let bits = (0..n)
            .map(|i| self.leak_bit(m, i, timer, threshold))
            .collect();
        ExponentLeak {
            bits,
            elapsed_ns: m.elapsed_ns() - start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_time::{CoarseTimer, PerfectTimer};

    const EXPONENT: [bool; 12] = [
        true, false, true, true, false, false, true, false, true, true, true, false,
    ];

    #[test]
    fn leaks_the_exponent_with_a_perfect_timer() {
        let mut m = Machine::baseline();
        let atk = RsaBitLeak::new(m.layout());
        atk.plant_exponent(&mut m, &EXPONENT);
        let leak = atk.leak_exponent(&mut m, EXPONENT.len(), &mut PerfectTimer);
        assert_eq!(leak.bits, EXPONENT, "every exponent bit must be recovered");
    }

    #[test]
    fn leaks_the_exponent_with_a_5us_browser_timer() {
        let mut m = Machine::noisy(0x5A);
        let atk = RsaBitLeak::new(m.layout());
        atk.plant_exponent(&mut m, &EXPONENT);
        let mut timer = CoarseTimer::browser_5us();
        let leak = atk.leak_exponent(&mut m, EXPONENT.len(), &mut timer);
        let correct = leak
            .bits
            .iter()
            .zip(&EXPONENT)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            correct as f64 / EXPONENT.len() as f64 > 0.9,
            "coarse-timer recovery must be >90% accurate: {correct}/{}",
            EXPONENT.len()
        );
    }

    #[test]
    fn single_mul_difference_decides_the_race() {
        // The gadget resolves a 3-cycle (one MUL) difference — the paper's
        // §7.2 granularity claim applied to a real victim.
        let mut m = Machine::baseline();
        let atk = RsaBitLeak::new(m.layout());
        atk.plant_exponent(&mut m, &[false, true]);
        let threshold = atk.calibrate(&mut m, &mut PerfectTimer);
        assert!(!atk.leak_bit(&mut m, 0, &mut PerfectTimer, threshold));
        assert!(atk.leak_bit(&mut m, 1, &mut PerfectTimer, threshold));
    }
}
