//! SpectreBack: the backwards-in-time Spectre attack (paper §7.3,
//! Code Listing 3).
//!
//! A Spectre-v1 bounds-check bypass reads a secret bit and, *still inside
//! the transient window*, warms one of two lines (`OFF0`/`OFF1`). Two
//! pointer-chase paths — **earlier in program order** than the speculative
//! access — race through those lines to terminal accesses of the PLRU
//! magnifier's `A` and `B`. Out-of-order execution runs the speculative
//! access first, so by the time the mispredicted bounds check resolves and
//! rolls everything back, the secret has already been converted into the
//! *insertion order* of `A` and `B`: the leak happened **before** the
//! misspeculation was discovered, which is what defeats rollback-based
//! mitigations (§8).

use crate::layout::Layout;
use crate::machine::Machine;
use crate::magnify::{PlruInput, PlruMagnifier};
use crate::path::{emit_sync_head, PathSpec};
use racer_isa::{Asm, Cond, MemOperand, Program};
use racer_mem::Addr;
use racer_time::Timer;
use serde::{Deserialize, Serialize};

/// Result of leaking a run of secret bytes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LeakReport {
    /// The recovered bytes.
    pub recovered: Vec<u8>,
    /// Total bits transmitted.
    pub bits: usize,
    /// Simulated time spent, in nanoseconds.
    pub elapsed_ns: f64,
    /// Effective leak rate in kilobits per second.
    pub kbps: f64,
}

/// Driver for the SpectreBack attack.
#[derive(Clone, Debug)]
pub struct SpectreBack {
    layout: Layout,
    /// In-bounds length of the attacker-visible array (the bounds check's
    /// limit).
    pub array_len: u64,
    /// Branch-training iterations per byte.
    pub train_iters: usize,
    /// Reorder-magnifier rounds per bit readout.
    pub magnifier_rounds: usize,
}

impl SpectreBack {
    /// A driver with the default geometry (4 KiB in-bounds array, 1000
    /// magnifier rounds).
    pub fn new(layout: Layout) -> Self {
        SpectreBack {
            layout,
            array_len: 4096,
            train_iters: 4,
            magnifier_rounds: 1000,
        }
    }

    // Gadget inputs, all in the x-flag region on distinct lines.
    fn x_addr(&self) -> Addr {
        self.layout.x_flag
    }
    fn k_addr(&self) -> Addr {
        Addr(self.layout.x_flag.0 + 64)
    }
    fn size_addr(&self) -> Addr {
        Addr(self.layout.x_flag.0 + 128)
    }
    /// The two transmit lines the speculative access warms (256 bytes = 4
    /// lines apart, so `bit << 8` selects between them).
    fn off_addr(&self, bit: u64) -> Addr {
        Addr(self.layout.chase_base.0 + bit * 256)
    }

    /// The magnifier whose `A`/`B` lines the chase paths terminate in.
    pub fn magnifier(&self) -> PlruMagnifier {
        PlruMagnifier::with(self.layout, 5, self.magnifier_rounds)
    }

    /// Build the gadget program (one program serves every byte and bit:
    /// the secret index and bit number are memory inputs).
    ///
    /// ```text
    /// seed = load [sync] & 0              ; flushed head (§4.1)
    /// path_m: [OFF0, A] masked chase      ; racing gadget, program-order FIRST
    /// path_b: [OFF1, B] masked chase
    /// rx  = load [X]                      ; warm inputs
    /// rk  = load [K]
    /// rsz = load [SIZE]                   ; flushed → late branch resolution
    /// br rx >= rsz → skip                 ; the bounds check (trained not-taken)
    /// sv  = load [array + rx]             ; the out-of-bounds secret read
    /// t   = ((sv >> rk) & 1) << 8
    /// tv  = load [OFF + t]                ; warms OFF0 or OFF1 ← the leak
    /// skip: halt
    /// ```
    pub fn program(&self, m: &Machine) -> Program {
        let mag = self.magnifier();
        let (a, b) = (mag.line_a(m), mag.line_b(m));
        let mut asm = Asm::new();
        let seed = emit_sync_head(&mut asm, self.layout.sync);
        PathSpec::load_chain([self.off_addr(0), a]).emit(&mut asm, seed);
        PathSpec::load_chain([self.off_addr(1), b]).emit(&mut asm, seed);

        let rx = asm.reg();
        asm.load(rx, MemOperand::abs(self.x_addr().0));
        let rk = asm.reg();
        asm.load(rk, MemOperand::abs(self.k_addr().0));
        let rsz = asm.reg();
        asm.load(rsz, MemOperand::abs(self.size_addr().0));
        let skip = asm.fwd_label();
        asm.br(Cond::Ge, rx, rsz, skip);
        let sv = asm.reg();
        asm.load(
            sv,
            MemOperand::base_disp(rx, self.layout.array_base.0 as i64),
        );
        let t1 = asm.reg();
        asm.shr(t1, sv, rk);
        let t2 = asm.reg();
        asm.and(t2, t1, 1i64);
        let t3 = asm.reg();
        asm.shl(t3, t2, 8i64);
        let tv = asm.reg();
        asm.load(
            tv,
            MemOperand::base_disp(t3, self.layout.chase_base.0 as i64),
        );
        asm.bind(skip);
        asm.halt();
        asm.assemble().expect("SpectreBack gadget assembles")
    }

    /// Write the victim's secret bytes (as one word per byte, the layout the
    /// out-of-bounds read sees) and the bounds value.
    pub fn plant_secret(&self, m: &mut Machine, secret: &[u8]) {
        m.cpu_mut()
            .mem_mut()
            .write(self.size_addr().0, self.array_len);
        for (i, &byte) in secret.iter().enumerate() {
            m.cpu_mut()
                .mem_mut()
                .write(self.layout.secret_base.0 + i as u64 * 8, byte as u64);
        }
    }

    /// Train the bounds check with an in-bounds index.
    pub fn train(&self, m: &mut Machine, prog: &Program) {
        m.cpu_mut().mem_mut().write(self.x_addr().0, 0);
        for addr in [self.x_addr(), self.k_addr(), self.size_addr()] {
            m.warm(addr);
        }
        for _ in 0..self.train_iters {
            m.flush(self.layout.sync);
            m.run(prog);
        }
    }

    /// One transmission: run the gadget for (`byte_idx`, `bit`), then read
    /// the magnifier through `timer`. Returns the observed nanoseconds
    /// (small = `B` first = bit 1; large = `A` first = bit 0).
    pub fn transmit(
        &self,
        m: &mut Machine,
        prog: &Program,
        byte_idx: usize,
        bit: u32,
        timer: &mut dyn Timer,
    ) -> f64 {
        let mag = self.magnifier();
        let x = self.layout.secret_base.0 - self.layout.array_base.0 + byte_idx as u64 * 8;
        m.cpu_mut().mem_mut().write(self.x_addr().0, x);
        m.cpu_mut().mem_mut().write(self.k_addr().0, bit as u64);
        for addr in [self.x_addr(), self.k_addr()] {
            m.warm(addr);
        }
        // The victim touched its secret recently (standard Spectre-v1
        // assumption): its line is warm so the transient read is quick.
        m.warm(Addr(self.layout.array_base.0 + x));

        mag.prepare(m);
        for addr in [
            self.layout.sync,
            self.off_addr(0),
            self.off_addr(1),
            self.size_addr(),
        ] {
            m.flush(addr);
        }
        m.run(prog);
        m.run_timed(&mag.program(m, PlruInput::Reorder), timer)
    }

    /// Calibrate the bit-decision threshold using attacker-known in-bounds
    /// data (index 0 of the attacker's own array, planted with 0 then 1).
    pub fn calibrate(&self, m: &mut Machine, prog: &Program, timer: &mut dyn Timer) -> f64 {
        let mut readings = [0.0f64; 2];
        for known in [0u64, 1] {
            m.cpu_mut().mem_mut().write(self.layout.array_base.0, known);
            let mag = self.magnifier();
            m.cpu_mut().mem_mut().write(self.x_addr().0, 0);
            m.cpu_mut().mem_mut().write(self.k_addr().0, 0);
            m.warm(Addr(self.layout.array_base.0));
            mag.prepare(m);
            for addr in [self.layout.sync, self.off_addr(0), self.off_addr(1)] {
                m.flush(addr);
            }
            m.run(prog);
            readings[known as usize] = m.run_timed(&mag.program(m, PlruInput::Reorder), timer);
        }
        (readings[0] + readings[1]) / 2.0
    }

    /// Leak `n` bytes of the planted secret through `timer`.
    pub fn leak_bytes(&self, m: &mut Machine, n: usize, timer: &mut dyn Timer) -> LeakReport {
        let prog = self.program(m);
        let start_ns = m.elapsed_ns();
        self.train(m, &prog);
        let threshold = self.calibrate(m, &prog, timer);
        let mut recovered = Vec::with_capacity(n);
        for byte_idx in 0..n {
            let mut byte = 0u8;
            for bit in 0..8u32 {
                // Re-train before every transmission: each detection
                // mispredicts, and two consecutive mispredictions would
                // saturate the 2-bit counter towards taken, closing the
                // transient window.
                self.train(m, &prog);
                let observed = self.transmit(m, &prog, byte_idx, bit, timer);
                if observed < threshold {
                    byte |= 1 << bit;
                }
            }
            recovered.push(byte);
        }
        let elapsed_ns = m.elapsed_ns() - start_ns;
        let bits = n * 8;
        LeakReport {
            recovered,
            bits,
            elapsed_ns,
            kbps: racer_time::stats::leak_rate_kbps(bits as u64, elapsed_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_time::{CoarseTimer, PerfectTimer};

    const SECRET: &[u8] = b"HACKY";

    #[test]
    fn leaks_secret_with_perfect_timer() {
        let mut m = Machine::baseline();
        let atk = SpectreBack::new(m.layout());
        atk.plant_secret(&mut m, SECRET);
        let report = atk.leak_bytes(&mut m, SECRET.len(), &mut PerfectTimer);
        assert_eq!(
            report.recovered, SECRET,
            "baseline machine must leak perfectly"
        );
        assert!(report.kbps > 0.1);
    }

    #[test]
    fn leaks_secret_with_5us_browser_timer() {
        let mut m = Machine::baseline();
        let atk = SpectreBack::new(m.layout());
        atk.plant_secret(&mut m, SECRET);
        let mut timer = CoarseTimer::browser_5us();
        let report = atk.leak_bytes(&mut m, SECRET.len(), &mut timer);
        let correct_bits: u32 = report
            .recovered
            .iter()
            .zip(SECRET)
            .map(|(a, b)| 8 - (a ^ b).count_ones())
            .sum();
        let accuracy = correct_bits as f64 / (SECRET.len() * 8) as f64;
        assert!(
            accuracy > 0.88,
            "coarse-timer accuracy must beat the paper's 88%: {accuracy:.2} ({:?})",
            report.recovered
        );
    }

    /// The headline property: the race (A/B insertion order) settles before
    /// the mispredicted bounds check resolves — the leak is backwards in
    /// time with respect to the squash.
    #[test]
    fn leak_lands_before_the_squash() {
        let mut m = Machine::baseline();
        let atk = SpectreBack::new(m.layout());
        atk.plant_secret(&mut m, &[0xA5]);
        let prog = atk.program(&m);
        atk.train(&mut m, &prog);

        let mag = atk.magnifier();
        let (a, b) = (mag.line_a(&m), mag.line_b(&m));
        let x = atk.layout.secret_base.0 - atk.layout.array_base.0;
        m.cpu_mut().mem_mut().write(atk.x_addr().0, x);
        m.cpu_mut().mem_mut().write(atk.k_addr().0, 0);
        m.warm(Addr(atk.layout.array_base.0 + x));
        mag.prepare(&mut m);
        for addr in [
            atk.layout.sync,
            atk.off_addr(0),
            atk.off_addr(1),
            atk.size_addr(),
        ] {
            m.flush(addr);
        }
        let r = m.run(&prog);
        assert!(r.mispredicts >= 1, "the bounds check must mispredict");

        let find = |addr: Addr| {
            r.loads
                .iter()
                .find(|l| l.addr == addr.0)
                .map(|l| l.issue_cycle)
                .unwrap()
        };
        // The secret-dependent access sits *after* the race in program
        // order, yet out-of-order execution runs it long before the racing
        // terminal accesses — the "backwards in time" transmission.
        let transient = r
            .loads
            .iter()
            .find(|l| !l.committed && (l.addr == atk.off_addr(0).0 || l.addr == atk.off_addr(1).0))
            .expect("the secret-dependent access must have issued transiently");
        assert!(
            transient.issue_cycle < find(a) && transient.issue_cycle < find(b),
            "the transient leak must precede the race it feeds"
        );
        // Rollback happened (the access never committed), yet the verdict
        // already sits in the A/B insertion order — squashing cannot undo it.
        assert!(!transient.committed);
    }

    /// Bit value controls which transmit line gets the transient warm,
    /// which controls the insertion order.
    #[test]
    fn bit_value_flips_insertion_order() {
        for (byte, expect_a_first) in [(0x00u8, true), (0x01u8, false)] {
            let mut m = Machine::baseline();
            let atk = SpectreBack::new(m.layout());
            atk.plant_secret(&mut m, &[byte]);
            let prog = atk.program(&m);
            atk.train(&mut m, &prog);

            let mag = atk.magnifier();
            let (a, b) = (mag.line_a(&m), mag.line_b(&m));
            let x = atk.layout.secret_base.0 - atk.layout.array_base.0;
            m.cpu_mut().mem_mut().write(atk.x_addr().0, x);
            m.cpu_mut().mem_mut().write(atk.k_addr().0, 0);
            m.warm(Addr(atk.layout.array_base.0 + x));
            mag.prepare(&mut m);
            for addr in [
                atk.layout.sync,
                atk.off_addr(0),
                atk.off_addr(1),
                atk.size_addr(),
            ] {
                m.flush(addr);
            }
            let r = m.run(&prog);
            let issue = |addr: Addr| {
                r.loads
                    .iter()
                    .find(|l| l.addr == addr.0)
                    .map(|l| l.issue_cycle)
                    .unwrap()
            };
            assert_eq!(
                issue(a) < issue(b),
                expect_a_first,
                "bit {byte:#x}: wrong insertion order"
            );
        }
    }
}
