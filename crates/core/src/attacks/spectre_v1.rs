//! Classic Spectre v1 with a PLRU-magnifier readout — the leaky.page
//! construction the paper's §6.1 magnifier was repurposed from, implemented
//! as the *baseline* SpectreBack is compared against.
//!
//! Unlike SpectreBack (§7.3), the leak here happens in the conventional
//! direction: the transient, bounds-check-bypassing load warms a
//! secret-selected probe line *after* the bounds check in program order,
//! and the presence/absence of that line is magnified and read through the
//! coarse timer. Rollback-based defences that clean up transient cache
//! state *would* stop this variant — which is exactly why the paper builds
//! the backwards-in-time version.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::magnify::{PlruInput, PlruMagnifier};
use racer_isa::{Asm, Cond, MemOperand, Program};
use racer_mem::Addr;
use racer_time::Timer;
use serde::{Deserialize, Serialize};

pub use crate::attacks::spectre_back::LeakReport;

/// Driver for the classic Spectre v1 attack.
#[derive(Clone, Debug)]
pub struct SpectreV1 {
    layout: Layout,
    /// In-bounds length of the attacker-visible array.
    pub array_len: u64,
    /// Branch-training iterations per bit.
    pub train_iters: usize,
    /// P/A-magnifier rounds per readout.
    pub magnifier_rounds: usize,
}

/// Gadget inputs on distinct lines of the x-flag region.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
struct Cells {
    x: u64,
    k: u64,
    size: u64,
}

impl SpectreV1 {
    /// A driver with the default geometry.
    pub fn new(layout: Layout) -> Self {
        SpectreV1 {
            layout,
            array_len: 4096,
            train_iters: 4,
            magnifier_rounds: 1000,
        }
    }

    fn cells(&self) -> Cells {
        Cells {
            x: self.layout.x_flag.0,
            k: self.layout.x_flag.0 + 64,
            size: self.layout.x_flag.0 + 128,
        }
    }

    /// The magnifier whose protected line `A` serves as the probe.
    pub fn magnifier(&self) -> PlruMagnifier {
        PlruMagnifier::with(self.layout, 5, self.magnifier_rounds)
    }

    /// Build the gadget:
    ///
    /// ```text
    /// rx  = load [X]; rk = load [K]
    /// rsz = load [SIZE]                   ; flushed → slow resolve
    /// br rx >= rsz → skip                 ; bounds check, trained not-taken
    /// sv  = load [array + rx]             ; out-of-bounds secret read
    /// t   = (((sv >> rk) & 1) << 8)       ; 0 or 256
    /// tv  = load [A - 256 + t]            ; touches A iff the bit is 1
    /// skip: halt
    /// ```
    pub fn program(&self, m: &Machine) -> Program {
        let cells = self.cells();
        let a = self.magnifier().line_a(m);
        let mut asm = Asm::new();
        let rx = asm.reg();
        asm.load(rx, MemOperand::abs(cells.x));
        let rk = asm.reg();
        asm.load(rk, MemOperand::abs(cells.k));
        let rsz = asm.reg();
        asm.load(rsz, MemOperand::abs(cells.size));
        let skip = asm.fwd_label();
        asm.br(Cond::Ge, rx, rsz, skip);
        let sv = asm.reg();
        asm.load(
            sv,
            MemOperand::base_disp(rx, self.layout.array_base.0 as i64),
        );
        let t1 = asm.reg();
        asm.shr(t1, sv, rk);
        let t2 = asm.reg();
        asm.and(t2, t1, 1i64);
        let t3 = asm.reg();
        asm.shl(t3, t2, 8i64);
        let tv = asm.reg();
        asm.load(tv, MemOperand::base_disp(t3, a.0 as i64 - 256));
        asm.bind(skip);
        asm.halt();
        asm.assemble().expect("Spectre v1 gadget assembles")
    }

    /// Plant the victim secret and bounds value.
    pub fn plant_secret(&self, m: &mut Machine, secret: &[u8]) {
        let cells = self.cells();
        m.cpu_mut().mem_mut().write(cells.size, self.array_len);
        for (i, &byte) in secret.iter().enumerate() {
            m.cpu_mut()
                .mem_mut()
                .write(self.layout.secret_base.0 + i as u64 * 8, byte as u64);
        }
    }

    fn train(&self, m: &mut Machine, prog: &Program) {
        let cells = self.cells();
        m.cpu_mut().mem_mut().write(cells.x, 0);
        for addr in [cells.x, cells.k, cells.size] {
            m.warm(Addr(addr));
        }
        for _ in 0..self.train_iters {
            m.flush(self.layout.sync);
            m.run(prog);
        }
    }

    /// Leak `n` secret bytes through `timer`.
    pub fn leak_bytes(&self, m: &mut Machine, n: usize, timer: &mut dyn Timer) -> LeakReport {
        let prog = self.program(m);
        let mag = self.magnifier();
        let cells = self.cells();
        let start_ns = m.elapsed_ns();

        // Calibrate: magnifier readings with A present vs absent.
        mag.prepare(m);
        let absent = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
        mag.prepare(m);
        let a = mag.line_a(m);
        m.warm(a);
        let present = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
        let threshold = (absent + present) / 2.0;

        let mut recovered = Vec::with_capacity(n);
        for byte_idx in 0..n {
            let mut byte = 0u8;
            for bit in 0..8u32 {
                self.train(m, &prog);
                let x = self.layout.secret_base.0 - self.layout.array_base.0 + byte_idx as u64 * 8;
                m.cpu_mut().mem_mut().write(cells.x, x);
                m.cpu_mut().mem_mut().write(cells.k, bit as u64);
                m.warm(Addr(cells.x));
                m.warm(Addr(cells.k));
                m.warm(Addr(self.layout.array_base.0 + x));
                mag.prepare(m);
                m.flush(Addr(cells.size));
                m.flush(self.layout.sync);
                m.run(&prog);
                let observed = m.run_timed(&mag.program(m, PlruInput::PresenceAbsence), timer);
                if observed > threshold {
                    byte |= 1 << bit; // slow magnifier = A present = bit 1
                }
            }
            recovered.push(byte);
        }
        let elapsed_ns = m.elapsed_ns() - start_ns;
        let bits = n * 8;
        LeakReport {
            recovered,
            bits,
            elapsed_ns,
            kbps: racer_time::stats::leak_rate_kbps(bits as u64, elapsed_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_time::{CoarseTimer, PerfectTimer};

    const SECRET: &[u8] = b"V1!";

    #[test]
    fn leaks_with_perfect_timer() {
        let mut m = Machine::baseline();
        let atk = SpectreV1::new(m.layout());
        atk.plant_secret(&mut m, SECRET);
        let report = atk.leak_bytes(&mut m, SECRET.len(), &mut PerfectTimer);
        assert_eq!(report.recovered, SECRET);
    }

    #[test]
    fn leaks_with_browser_timer() {
        let mut m = Machine::noisy(0xF00);
        let atk = SpectreV1::new(m.layout());
        atk.plant_secret(&mut m, SECRET);
        let mut timer = CoarseTimer::browser_5us();
        let report = atk.leak_bytes(&mut m, SECRET.len(), &mut timer);
        let correct: u32 = report
            .recovered
            .iter()
            .zip(SECRET)
            .map(|(a, b)| 8 - (a ^ b).count_ones())
            .sum();
        assert!(correct as f64 / 24.0 > 0.88, "{:?}", report.recovered);
    }

    /// The §7.3 headline contrast: a CleanupSpec-style defence undoes the
    /// transient fill at squash time. That erases classic v1's probe state
    /// — but SpectreBack's racing gadget consumed the transient timing
    /// difference *before* the squash, so cleaning the state afterwards is
    /// too late ("leak secrets backwards-in-time, to before any
    /// misspeculation is discovered").
    #[test]
    fn rollback_style_defence_blocks_v1_but_not_spectre_back() {
        use crate::attacks::SpectreBack;
        use racer_cpu::Countermeasure;

        let mut m = Machine::baseline();
        m.set_countermeasure(Countermeasure::CleanupSpec);
        let atk = SpectreV1::new(m.layout());
        atk.plant_secret(&mut m, &[0xFF]); // all-ones byte
        let report = atk.leak_bytes(&mut m, 1, &mut PerfectTimer);
        assert_eq!(
            report.recovered,
            vec![0x00],
            "cleanup at squash must blind classic v1 (all bits read as 0)"
        );

        let mut m = Machine::baseline();
        m.set_countermeasure(Countermeasure::CleanupSpec);
        let atk = SpectreBack::new(m.layout());
        atk.plant_secret(&mut m, &[0xA5]);
        let report = atk.leak_bytes(&mut m, 1, &mut PerfectTimer);
        assert_eq!(
            report.recovered,
            vec![0xA5],
            "SpectreBack must leak through the same defence (§7.3)"
        );

        // And invisible-from-the-start speculation blocks both cache paths —
        // the paper's corresponding §8 caveat about strictness ordering.
        let mut m = Machine::baseline();
        m.set_countermeasure(Countermeasure::InvisibleSpec);
        let atk = SpectreBack::new(m.layout());
        atk.plant_secret(&mut m, &[0xFF]);
        let report = atk.leak_bytes(&mut m, 1, &mut PerfectTimer);
        assert_eq!(report.recovered, vec![0x00]);
    }
}
