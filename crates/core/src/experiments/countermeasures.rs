//! The §8 countermeasure matrix: which racing gadgets survive which
//! hardware defences.
//!
//! The paper's qualitative argument, made quantitative: transient P/A races
//! die under any defence that hides or delays speculative cache effects,
//! while the branch-free reorder race survives everything short of actual
//! in-order execution.

use crate::machine::Machine;
use crate::path::PathSpec;
use crate::racing::{ReorderRace, TransientPaRace};
use racer_cpu::Countermeasure;
use racer_mem::Addr;
use serde::{Deserialize, Serialize};

/// Outcome of probing one gadget under one defence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CountermeasureRow {
    /// The defence mode.
    pub countermeasure: String,
    /// Whether the transient P/A race still transmits (both directions
    /// distinguishable).
    pub transient_pa_works: bool,
    /// Whether the non-transient reorder race still transmits.
    pub reorder_works: bool,
}

/// Probe the §5.1 gadget: can it distinguish a short target from a long
/// target under the given defence?
fn transient_pa_transmits(cm: Countermeasure) -> bool {
    let mut m = Machine::baseline();
    m.set_countermeasure(cm);
    let race = TransientPaRace::new(m.layout());
    let short = PathSpec::op_chain(racer_isa::AluOp::Add, 8);
    let long = PathSpec::op_chain(racer_isa::AluOp::Add, 45);
    let reference = PathSpec::op_chain(racer_isa::AluOp::Add, 25);
    let fast_wins = race.target_beats_ref(&mut m, &short, &reference);
    let mut m2 = Machine::baseline();
    m2.set_countermeasure(cm);
    let slow_loses = !race.target_beats_ref(&mut m2, &long, &reference);
    fast_wins && slow_loses
}

/// Probe the §5.2 gadget likewise.
fn reorder_transmits(cm: Countermeasure) -> bool {
    let a = Addr(0x0700_0000);
    let b = Addr(0x0700_2000);
    let mut m = Machine::baseline();
    m.set_countermeasure(cm);
    let race = ReorderRace::new(m.layout());
    let short = PathSpec::op_chain(racer_isa::AluOp::Add, 8);
    let long = PathSpec::op_chain(racer_isa::AluOp::Add, 30);
    let fwd = race.run(&mut m, &short, &long, a, b).measurement_won;
    let rev = race.run(&mut m, &long, &short, a, b).measurement_won;
    fwd && !rev
}

/// Evaluate both gadgets under every modelled defence.
pub fn countermeasure_matrix() -> Vec<CountermeasureRow> {
    [
        Countermeasure::None,
        Countermeasure::DelayOnMiss,
        Countermeasure::InvisibleSpec,
        Countermeasure::GhostMinion,
        Countermeasure::CleanupSpec,
        Countermeasure::InOrder,
    ]
    .into_iter()
    .map(|cm| CountermeasureRow {
        countermeasure: cm.to_string(),
        transient_pa_works: transient_pa_transmits(cm),
        reorder_works: reorder_transmits(cm),
    })
    .collect()
}

/// Render the matrix as a table.
pub fn render(rows: &[CountermeasureRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("countermeasure\ttransient-P/A\treorder\n");
    for r in rows {
        let mark = |b: bool| if b { "leaks" } else { "blocked" };
        let _ = writeln!(
            s,
            "{}\t{}\t{}",
            r.countermeasure,
            mark(r.transient_pa_works),
            mark(r.reorder_works)
        );
    }
    s
}

/// JSON form of the §8 matrix: one object per (defence, gadget-outcomes)
/// row.
pub fn to_value(rows: &[CountermeasureRow]) -> racer_results::Value {
    racer_results::Value::Array(
        rows.iter()
            .map(|r| {
                racer_results::Value::object()
                    .with("countermeasure", r.countermeasure.as_str())
                    .with("transient_pa_works", r.transient_pa_works)
                    .with("reorder_works", r.reorder_works)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_the_papers_claims() {
        let rows = countermeasure_matrix();
        let find = |name: &str| rows.iter().find(|r| r.countermeasure == name).unwrap();

        let baseline = find("baseline");
        assert!(baseline.transient_pa_works && baseline.reorder_works);

        // Spectre-class defences kill the transient gadget but not the
        // reorder gadget (§8: "an attacker can easily change to use reorder
        // gadgets instead").
        for name in [
            "delay-on-miss",
            "invisible-speculation",
            "ghostminion",
            "cleanupspec",
        ] {
            let row = find(name);
            assert!(
                !row.transient_pa_works,
                "{name} must block the transient P/A race"
            );
            assert!(row.reorder_works, "{name} must NOT block the reorder race");
        }

        // Only genuine in-order execution stops the reorder race.
        let inorder = find("in-order");
        assert!(
            !inorder.reorder_works,
            "in-order execution destroys ILP races"
        );
    }

    #[test]
    fn render_mentions_every_mode() {
        let s = render(&countermeasure_matrix());
        for name in ["baseline", "delay-on-miss", "in-order"] {
            assert!(s.contains(name));
        }
    }
}
