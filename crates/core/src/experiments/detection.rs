//! §8's run-time detection discussion, made measurable: performance-counter
//! classifiers against gadget and benign workloads.
//!
//! The paper expects racing gadgets "to look so similar to normal
//! out-of-order execution that they will be difficult to catch without very
//! high false positive rates", while magnifiers' repetitive patterns are
//! more exposed: the L1-miss counter sees the PLRU gadget ("though only as
//! a very weak classifier"), and the arithmetic gadget's signature is a
//! long backend-bound chain with almost no mispredictions.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::magnify::{ArithmeticMagnifier, PlruInput, PlruMagnifier};
use crate::path::PathSpec;
use crate::racing::TransientPaRace;
use racer_cpu::RunResult;
use racer_isa::{Asm, Cond, MemOperand};
use serde::{Deserialize, Serialize};

/// Counter-derived features of one program run (what a hardware detector
/// could see).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CounterProfile {
    /// Workload label.
    pub name: String,
    /// L1 misses per kilo-instruction.
    pub l1_mpki: f64,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Mispredicts per kilo-instruction.
    pub mispredict_pki: f64,
}

impl CounterProfile {
    /// Derive the counter features a hardware detector could observe from
    /// one finished run. Crate-visible so the gadget-search fitness
    /// function scores candidates against the same classifiers this
    /// module evaluates.
    pub(crate) fn from_run(name: &str, r: &RunResult) -> Self {
        let ki = (r.committed as f64 / 1000.0).max(1e-9);
        CounterProfile {
            name: name.to_string(),
            l1_mpki: r.mem_stats.l1d.misses as f64 / ki,
            ipc: r.ipc(),
            mispredict_pki: r.mispredicts as f64 / ki,
        }
    }
}

/// The "frequent L1 misses" detector the paper suggests: flags runs whose
/// miss density exceeds `threshold_mpki`.
pub fn l1_miss_detector(profile: &CounterProfile, threshold_mpki: f64) -> bool {
    profile.l1_mpki > threshold_mpki
}

/// The backend-bound detector for the arithmetic gadget (paper: "executes
/// long backend-bounded instruction chains without misprediction"): flags
/// low-IPC, low-mispredict, low-miss runs.
pub fn backend_bound_detector(profile: &CounterProfile) -> bool {
    profile.ipc < 1.2 && profile.mispredict_pki < 1.0 && profile.l1_mpki < 5.0
}

/// Profile the workload suite: the three gadget families plus two benign
/// programs (a pointer-chasing list traversal and a compute loop).
///
/// The five profiles are independent — each prepares its own machine
/// (forked from the process-wide snapshot cache by
/// [`Machine::baseline`]) — so they fan out across host cores, in
/// declaration order.
pub fn profile_suite() -> Vec<CounterProfile> {
    let profiles: [fn() -> CounterProfile; 5] = [
        profile_plru_magnifier,
        profile_arithmetic_magnifier,
        profile_racing_gadget,
        profile_benign_list_traversal,
        profile_benign_compute_loop,
    ];
    racer_cpu::batch::par_map(&profiles, |f| f())
}

/// PLRU magnifier in its miss-heavy (transmit-1) state.
fn profile_plru_magnifier() -> CounterProfile {
    let mut m = Machine::baseline();
    let mag = PlruMagnifier::with(m.layout(), 5, 500);
    mag.prepare(&mut m);
    let a = mag.line_a(&m);
    m.warm(a);
    let prog = mag.program(&m, PlruInput::PresenceAbsence);
    let r = m.run(&prog);
    CounterProfile::from_run("plru-magnifier", &r)
}

/// Arithmetic magnifier (misaligned state).
fn profile_arithmetic_magnifier() -> CounterProfile {
    let mut m = Machine::baseline();
    let mut mag = ArithmeticMagnifier::new(Layout::default());
    mag.stages = 60;
    m.flush(m.layout().sync);
    let prog = mag.program(20);
    let r = m.run(&prog);
    CounterProfile::from_run("arithmetic-magnifier", &r)
}

/// A single racing gadget (detection phase).
fn profile_racing_gadget() -> CounterProfile {
    let mut m = Machine::baseline();
    let race = TransientPaRace::new(m.layout());
    let prog = race.program(
        &PathSpec::op_chain(racer_isa::AluOp::Add, 30),
        &PathSpec::op_chain(racer_isa::AluOp::Mul, 5),
    );
    race.train(&mut m, &prog);
    let layout = m.layout();
    m.cpu_mut().mem_mut().write(layout.x_flag.0, 1);
    m.flush(layout.sync);
    let r = m.run(&prog);
    CounterProfile::from_run("racing-gadget", &r)
}

/// Benign: linked-list traversal (high L1 miss rate, no attack).
fn profile_benign_list_traversal() -> CounterProfile {
    let mut m = Machine::baseline();
    for i in 0..256u64 {
        let here = 0x0900_0000 + i * 4096;
        let next = 0x0900_0000 + (i + 1) * 4096;
        m.cpu_mut().mem_mut().write(here, next);
    }
    let mut asm = Asm::new();
    let p = asm.reg();
    asm.mov_imm(p, 0x0900_0000);
    for _ in 0..256 {
        asm.load(p, MemOperand::base_disp(p, 0));
    }
    asm.halt();
    let r = m.run(&asm.assemble().expect("benign chase assembles"));
    CounterProfile::from_run("benign-list-traversal", &r)
}

/// Benign: a compute loop (mul/add mix with a loop branch).
fn profile_benign_compute_loop() -> CounterProfile {
    let mut m = Machine::baseline();
    let mut asm = Asm::new();
    let (i, acc, t) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(i, 400);
    let top = asm.here();
    asm.mul(t, i, 3i64);
    asm.add(acc, acc, t);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0i64, top);
    asm.halt();
    let r = m.run(&asm.assemble().expect("benign compute assembles"));
    CounterProfile::from_run("benign-compute-loop", &r)
}

/// Render the profiles and both detectors' verdicts.
pub fn render(profiles: &[CounterProfile]) -> String {
    use std::fmt::Write as _;
    let mut s =
        String::from("workload\tl1_mpki\tipc\tmispredict_pki\tmiss-detector\tbackend-detector\n");
    for p in profiles {
        let _ = writeln!(
            s,
            "{}\t{:.1}\t{:.2}\t{:.2}\t{}\t{}",
            p.name,
            p.l1_mpki,
            p.ipc,
            p.mispredict_pki,
            if l1_miss_detector(p, 50.0) {
                "FLAG"
            } else {
                "-"
            },
            if backend_bound_detector(p) {
                "FLAG"
            } else {
                "-"
            },
        );
    }
    s
}

impl CounterProfile {
    /// JSON form: raw counters plus both detectors' verdicts (the miss
    /// detector at the render threshold of 50 MPKI).
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("name", self.name.as_str())
            .with("l1_mpki", self.l1_mpki)
            .with("ipc", self.ipc)
            .with("mispredict_pki", self.mispredict_pki)
            .with("l1_miss_flagged", l1_miss_detector(self, 50.0))
            .with("backend_bound_flagged", backend_bound_detector(self))
    }
}

/// JSON form of the whole profile suite.
pub fn to_value(profiles: &[CounterProfile]) -> racer_results::Value {
    racer_results::Value::Array(profiles.iter().map(|p| p.to_value()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(ps: &'a [CounterProfile], name: &str) -> &'a CounterProfile {
        ps.iter().find(|p| p.name == name).unwrap()
    }

    #[test]
    fn miss_detector_sees_plru_magnifier_but_also_benign_traffic() {
        let ps = profile_suite();
        let plru = find(&ps, "plru-magnifier");
        let benign = find(&ps, "benign-list-traversal");
        assert!(
            l1_miss_detector(plru, 50.0),
            "the L1-miss counter must flag the PLRU magnifier: {plru:?}"
        );
        // The paper's point: it is a weak classifier — ordinary pointer
        // chasing looks just as suspicious.
        assert!(
            l1_miss_detector(benign, 50.0),
            "benign list traversal must trip the same detector: {benign:?}"
        );
    }

    #[test]
    fn arithmetic_magnifier_evades_the_cache_detector() {
        let ps = profile_suite();
        let arith = find(&ps, "arithmetic-magnifier");
        assert!(
            !l1_miss_detector(arith, 50.0),
            "no cache signature for the arithmetic gadget: {arith:?}"
        );
        assert!(
            backend_bound_detector(arith),
            "the backend-bound signature must show instead: {arith:?}"
        );
    }

    #[test]
    fn compute_loop_is_clean_for_both_detectors() {
        let ps = profile_suite();
        let loopw = find(&ps, "benign-compute-loop");
        assert!(!l1_miss_detector(loopw, 50.0));
        assert!(!backend_bound_detector(loopw), "{loopw:?}");
    }

    #[test]
    fn racing_gadget_alone_is_unremarkable() {
        // Paper: "we expect racing gadgets to look so similar to normal
        // out-of-order execution that they will be difficult to catch".
        let ps = profile_suite();
        let race = find(&ps, "racing-gadget");
        assert!(!l1_miss_detector(race, 50.0), "{race:?}");
    }
}
