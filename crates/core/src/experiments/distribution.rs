//! Figure 10: execution-time distributions of the reorder magnifier after
//! its access pattern is repeated thousands of times, for transmit-0 vs
//! transmit-1 — "there is still almost no overlap between the two
//! transmissions".

use crate::experiments::{run_lanes_batched, TrialPath};
use crate::machine::Machine;
use crate::magnify::{PlruInput, PlruMagnifier};
use racer_isa::Program;
use racer_time::stats::{best_threshold, overlap_coefficient, Summary};
use serde::{Deserialize, Serialize};

/// The two sampled distributions plus separation metrics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistributionResult {
    /// Observed milliseconds per transmit-1 trial (A inserted before B).
    pub transmit1_ms: Vec<f64>,
    /// Observed milliseconds per transmit-0 trial (B inserted before A).
    pub transmit0_ms: Vec<f64>,
    /// Histogram overlap coefficient in [0, 1].
    pub overlap: f64,
    /// Best-threshold classification accuracy in [0.5, 1].
    pub accuracy: f64,
}

/// Run `trials` reorder-magnifier transmissions per bit value on noisy
/// machines, with the magnifier pattern repeated `rounds` times (the paper
/// uses 4000).
pub fn figure10(trials: usize, rounds: usize) -> DistributionResult {
    figure10_on(trials, rounds, TrialPath::Batched).0
}

/// [`figure10`] with an explicit [`TrialPath`], additionally returning
/// the total instructions the heavy magnifier runs committed (the work
/// metric of the `scenario-e2e` perf rows). Both paths are
/// bit-identical; they run the same trial grid, the batched path through
/// one shared-program lockstep fan-out instead of one machine at a time.
pub fn figure10_on(trials: usize, rounds: usize, path: TrialPath) -> (DistributionResult, u64) {
    let mut transmit1_ms = Vec::with_capacity(trials);
    let mut transmit0_ms = Vec::with_capacity(trials);
    let mut committed = 0u64;
    match path {
        TrialPath::PerMachine => {
            for t in 0..trials {
                for a_first in [true, false] {
                    let mut m = prepared_machine(t, a_first, rounds);
                    let mag = PlruMagnifier::with(m.layout(), 5, rounds);
                    // Exactly `mag.measure(&mut m, Reorder)`, with the
                    // commit count exposed.
                    let prog = mag.program(&m, PlruInput::Reorder);
                    let r = m.run(&prog);
                    committed += r.committed;
                    push_ms(&mut transmit1_ms, &mut transmit0_ms, &m, a_first, r.cycles);
                }
            }
        }
        TrialPath::Batched => {
            // The magnifier program depends only on rounds and L1
            // geometry — identical across every noisy machine — so all
            // trials×2 lanes share one program (assembled and decoded
            // once) and fan out through the lockstep engine.
            let mut machines = Vec::with_capacity(trials * 2);
            for t in 0..trials {
                for a_first in [true, false] {
                    machines.push(prepared_machine(t, a_first, rounds));
                }
            }
            if let Some(first) = machines.first() {
                let prog = PlruMagnifier::with(first.layout(), 5, rounds)
                    .program(first, PlruInput::Reorder);
                let lanes: Vec<(Machine, &Program)> =
                    machines.into_iter().map(|m| (m, &prog)).collect();
                let results = run_lanes_batched(&lanes);
                for (i, r) in results.iter().enumerate() {
                    committed += r.committed;
                    let a_first = i % 2 == 0;
                    push_ms(
                        &mut transmit1_ms,
                        &mut transmit0_ms,
                        &lanes[i].0,
                        a_first,
                        r.cycles,
                    );
                }
            }
        }
    }
    let overlap = overlap_coefficient(&transmit1_ms, &transmit0_ms, 40);
    let (_, accuracy) = best_threshold(&transmit0_ms, &transmit1_ms);
    (
        DistributionResult {
            transmit1_ms,
            transmit0_ms,
            overlap,
            accuracy,
        },
        committed,
    )
}

/// Fresh noisy machine for a (trial, a_first) cell: DRAM jitter varies
/// run times. Figure 3.1 set state prepared, raced lines warmed in
/// transmit order; pokes only, so the clock stays at zero.
fn prepared_machine(t: usize, a_first: bool, rounds: usize) -> Machine {
    let mut m = Machine::noisy(0xF1660 + t as u64 * 7 + u64::from(a_first));
    let mag = PlruMagnifier::with(m.layout(), 5, rounds);
    mag.prepare(&mut m);
    let (a, b) = (mag.line_a(&m), mag.line_b(&m));
    if a_first {
        m.warm(a);
        m.warm(b);
    } else {
        m.warm(b);
        m.warm(a);
    }
    m
}

/// Record one cell's observation in milliseconds on the transmit-1 or
/// transmit-0 distribution.
fn push_ms(ones: &mut Vec<f64>, zeros: &mut Vec<f64>, m: &Machine, a_first: bool, cycles: u64) {
    let ms = m.cpu().config().cycles_to_ns(cycles) / 1e6;
    if a_first {
        ones.push(ms);
    } else {
        zeros.push(ms);
    }
}

impl DistributionResult {
    /// Summary statistics of both distributions.
    pub fn summaries(&self) -> (Summary, Summary) {
        (
            Summary::of(&self.transmit0_ms),
            Summary::of(&self.transmit1_ms),
        )
    }

    /// Plot-ready rendering: per-trial values then metrics.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("# transmit\tms\n");
        for v in &self.transmit0_ms {
            let _ = writeln!(s, "0\t{v:.4}");
        }
        for v in &self.transmit1_ms {
            let _ = writeln!(s, "1\t{v:.4}");
        }
        let (s0, s1) = self.summaries();
        let _ = writeln!(s, "# transmit0: {s0}");
        let _ = writeln!(s, "# transmit1: {s1}");
        let _ = writeln!(
            s,
            "# overlap={:.4} accuracy={:.4}",
            self.overlap, self.accuracy
        );
        s
    }
}

impl DistributionResult {
    /// JSON form: both sample vectors, separation metrics and summaries.
    pub fn to_value(&self) -> racer_results::Value {
        let (s0, s1) = self.summaries();
        racer_results::Value::object()
            .with("overlap", self.overlap)
            .with("accuracy", self.accuracy)
            .with("transmit0_summary", s0.to_value())
            .with("transmit1_summary", s1.to_value())
            .with("transmit0_ms", self.transmit0_ms.as_slice())
            .with("transmit1_ms", self.transmit1_ms.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmissions_are_cleanly_separable() {
        let r = figure10(8, 400);
        assert_eq!(r.transmit0_ms.len(), 8);
        assert_eq!(r.transmit1_ms.len(), 8);
        assert!(
            r.overlap < 0.1,
            "Figure 10: almost no overlap between transmissions, got {:.3}",
            r.overlap
        );
        assert!(r.accuracy > 0.95, "accuracy {:.3}", r.accuracy);
    }

    #[test]
    fn transmit1_is_the_slow_distribution() {
        let r = figure10(4, 400);
        let (s0, s1) = r.summaries();
        assert!(
            s1.mean > s0.mean,
            "A-first (transmit 1) must run slower: {} vs {}",
            s1.mean,
            s0.mean
        );
    }

    #[test]
    fn render_contains_metrics() {
        let r = figure10(2, 100);
        assert!(r.render().contains("overlap="));
    }

    #[test]
    fn batched_and_per_machine_paths_agree_exactly() {
        let (b, bc) = figure10_on(5, 300, TrialPath::Batched);
        let (p, pc) = figure10_on(5, 300, TrialPath::PerMachine);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&b.transmit0_ms), bits(&p.transmit0_ms));
        assert_eq!(bits(&b.transmit1_ms), bits(&p.transmit1_ms));
        assert_eq!(b.overlap.to_bits(), p.overlap.to_bits());
        assert_eq!(b.accuracy.to_bits(), p.accuracy.to_bits());
        // Same trial grid on both paths: identical committed work.
        assert!(bc > 0);
        assert_eq!(bc, pc);
    }
}
