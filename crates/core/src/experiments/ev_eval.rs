//! §7.4 evaluation: eviction-set generation success rate.
//!
//! The paper retains Purnal et al.'s 100% success rate after swapping their
//! SharedArrayBuffer timer for the racing-gadget timer. We repeat the
//! profiling across targets at several page offsets and report the rate.

use crate::attacks::EvictionSetAttack;
use crate::machine::Machine;
use racer_mem::{candidate_pool, Addr};
use serde::{Deserialize, Serialize};

/// Result of the repeated-profiling evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvEval {
    /// Profiling attempts.
    pub trials: usize,
    /// Attempts that produced a correct minimal eviction set.
    pub successes: usize,
    /// Ways per LLC set (the target minimal-set size).
    pub ways: usize,
}

impl EvEval {
    /// Success rate in [0, 1].
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

/// Run `trials` profiling attempts, each for a target at a different page
/// offset, validating results against ground truth.
pub fn evaluate(trials: usize, pool_pages: usize) -> EvEval {
    let mut successes = 0;
    let mut ways = 0;
    for t in 0..trials {
        let mut m = Machine::small_llc();
        ways = m.cpu().hierarchy().l3().config().ways;
        let base = m.layout().ev_pool_base;
        // Stay clear of LLC set 0, where the gadget infrastructure lives.
        let offset = 0x800 + (t as u64 % 16) * 128;
        let target = Addr(base.0 + offset);
        let pool = candidate_pool(Addr(base.0 + 4096), pool_pages, offset);
        let atk = EvictionSetAttack::new(m.layout());
        if let Some(set) = atk.build_minimal_set(&mut m, target, &pool, ways) {
            let l3 = m.cpu().hierarchy().l3();
            let tset = l3.set_index(target.line());
            let all_congruent = set.iter().all(|a| l3.set_index(a.line()) == tset);
            if all_congruent && set.len() == ways {
                successes += 1;
            }
        }
    }
    EvEval {
        trials,
        successes,
        ways,
    }
}

/// Render like the paper's §7.4 claim.
pub fn render(eval: &EvEval) -> String {
    format!(
        "eviction-set profiling: {}/{} succeeded ({:.0}%), minimal sets of {} ways\n",
        eval.successes,
        eval.trials,
        eval.rate() * 100.0,
        eval.ways
    )
}

impl EvEval {
    /// JSON form: counts plus the derived success rate.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("trials", self.trials)
            .with("successes", self.successes)
            .with("ways", self.ways)
            .with("success_rate", self.rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_is_total() {
        let eval = evaluate(3, 48);
        assert_eq!(
            eval.rate(),
            1.0,
            "paper reports a 100% success rate: {eval:?}"
        );
    }

    #[test]
    fn renders_rate() {
        let eval = EvEval {
            trials: 4,
            successes: 4,
            ways: 8,
        };
        assert!(render(&eval).contains("100%"));
    }
}
