//! Racing-gadget granularity (paper §7.2, Figures 8 and 9).
//!
//! For target paths of `n` chained operations, find the minimal reference
//! length that still out-lasts the target. The resulting staircase's slope
//! is the latency ratio between target and reference ops, its step width is
//! the gadget's granularity, and its plateau is the measurement-window
//! limit.

use crate::attacks::IlpTimer;
use crate::layout::Layout;
use crate::machine::Machine;
use crate::path::PathSpec;
use racer_isa::AluOp;
use serde::{Deserialize, Serialize};

/// One measured point of Figures 8/9.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct GranularityPoint {
    /// Target-path operation count (x-axis).
    pub target_ops: usize,
    /// Minimal reference ops out-lasting the target (y-axis), or `None`
    /// past the window limit.
    pub ref_ops: Option<usize>,
}

/// One measured series (one line of Figure 8 or 9).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GranularitySeries {
    /// Target operation kind (`add`, `mul`, `leal`, `div`).
    pub target_op: String,
    /// Reference operation kind.
    pub ref_op: String,
    /// Measured points.
    pub points: Vec<GranularityPoint>,
}

impl GranularitySeries {
    /// Estimated slope (reference ops per target op) from the first and
    /// last in-window points.
    pub fn slope(&self) -> Option<f64> {
        let valid: Vec<&GranularityPoint> =
            self.points.iter().filter(|p| p.ref_ops.is_some()).collect();
        let (first, last) = (valid.first()?, valid.last()?);
        if last.target_ops == first.target_ops {
            return None;
        }
        Some(
            (last.ref_ops.unwrap() as f64 - first.ref_ops.unwrap() as f64)
                / (last.target_ops as f64 - first.target_ops as f64),
        )
    }

    /// Granularity: the longest run of consecutive points with identical
    /// `ref_ops` ("the maximum consecutive points whose Y value stays
    /// unchanged", §7.2).
    pub fn granularity(&self) -> usize {
        let mut best = 1usize;
        let mut run = 1usize;
        for w in self.points.windows(2) {
            if w[0].ref_ops.is_some() && w[0].ref_ops == w[1].ref_ops {
                run += 1;
                best = best.max(run);
            } else {
                run = 1;
            }
        }
        best
    }

    /// Largest in-window target length (the measurement-reach limit).
    pub fn max_measurable_target(&self) -> Option<usize> {
        self.points
            .iter()
            .filter(|p| p.ref_ops.is_some())
            .map(|p| p.target_ops)
            .max()
    }

    /// Tab-separated rendering (x, y per line; `-` past the window).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("# target={} ref={}\n", self.target_op, self.ref_op);
        for p in &self.points {
            match p.ref_ops {
                Some(r) => {
                    let _ = writeln!(s, "{}\t{}", p.target_ops, r);
                }
                None => {
                    let _ = writeln!(s, "{}\t-", p.target_ops);
                }
            }
        }
        s
    }
}

fn op_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        _ => "other",
    }
}

/// Measure one series: targets of `op` (or `lea` when `lea` is true) with
/// lengths `targets`, against references chained from `ref_op`.
///
/// Every point is an independent measurement on a fresh [`Machine`], so the
/// sweep fans out across host cores via [`racer_cpu::batch::par_map`] —
/// results are bit-identical to the sequential loop, just wall-clock
/// faster. Each point's machine forks the process-wide snapshot cache
/// ([`Machine::baseline`] builds the baseline configuration once per
/// process); the binary search inside `measure_ref_ops` stays serial per
/// point because each probe length depends on the previous probe's
/// outcome.
pub fn measure_series(
    ref_op: AluOp,
    target_op: Option<AluOp>, // None = lea
    targets: &[usize],
    max_ref: usize,
) -> GranularitySeries {
    let mut timer = IlpTimer::new(Layout::default()).with_ref_op(ref_op);
    timer.max_ref_ops = max_ref;
    let points = racer_cpu::batch::par_map(targets, |&n| {
        let mut m = Machine::baseline();
        let target = match target_op {
            Some(op) => PathSpec::op_chain(op, n),
            None => PathSpec::lea_chain(n),
        };
        GranularityPoint {
            target_ops: n,
            ref_ops: timer.measure_ref_ops(&mut m, &target),
        }
    });
    GranularitySeries {
        target_op: target_op.map_or("leal", op_name).to_string(),
        ref_op: op_name(ref_op).to_string(),
        points,
    }
}

/// Figure 8: ADD-referenced measurements of `add`, `mul` and `leal`
/// targets.
pub fn figure8(max_target: usize, step: usize, max_ref: usize) -> Vec<GranularitySeries> {
    let targets: Vec<usize> = (1..=max_target).step_by(step).collect();
    vec![
        measure_series(AluOp::Add, Some(AluOp::Add), &targets, max_ref),
        measure_series(AluOp::Add, Some(AluOp::Mul), &targets, max_ref),
        measure_series(AluOp::Add, None, &targets, max_ref),
    ]
}

/// Figure 9: MUL-referenced measurements of `add` and `div` targets.
pub fn figure9(max_target: usize, step: usize, max_ref: usize) -> Vec<GranularitySeries> {
    let add_targets: Vec<usize> = (2..=max_target).step_by(step).collect();
    let div_targets: Vec<usize> = (1..=max_target / 4).step_by(step.max(1)).collect();
    vec![
        measure_series(AluOp::Mul, Some(AluOp::Add), &add_targets, max_ref),
        measure_series(AluOp::Mul, Some(AluOp::Div), &div_targets, max_ref),
    ]
}

/// The §7.2 summary table: per (ref, target) pair, slope, granularity and
/// measurement reach.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GranularityTable {
    /// One row per measured series.
    pub rows: Vec<GranularityTableRow>,
}

/// One row of [`GranularityTable`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GranularityTableRow {
    /// Reference op.
    pub ref_op: String,
    /// Target op.
    pub target_op: String,
    /// Staircase slope (ref ops per target op).
    pub slope: Option<f64>,
    /// Indistinguishable-run length in target ops.
    pub granularity: usize,
    /// Largest measurable target length.
    pub reach: Option<usize>,
}

/// Build the §7.2 summary from Figure 8/9-style sweeps.
pub fn granularity_table(series: &[GranularitySeries]) -> GranularityTable {
    GranularityTable {
        rows: series
            .iter()
            .map(|s| GranularityTableRow {
                ref_op: s.ref_op.clone(),
                target_op: s.target_op.clone(),
                slope: s.slope(),
                granularity: s.granularity(),
                reach: s.max_measurable_target(),
            })
            .collect(),
    }
}

impl GranularityTable {
    /// Human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("ref\ttarget\tslope\tgranularity\treach\n");
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{}\t{}\t{}\t{}\t{}",
                r.ref_op,
                r.target_op,
                r.slope.map_or("-".into(), |v| format!("{v:.2}")),
                r.granularity,
                r.reach.map_or("-".into(), |v| v.to_string()),
            );
        }
        s
    }
}

impl GranularityPoint {
    /// JSON form: `{"target_ops": N, "ref_ops": N|null}`.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("target_ops", self.target_ops)
            .with("ref_ops", self.ref_ops)
    }
}

impl GranularitySeries {
    /// JSON form: series identity, derived §7.2 metrics, then the points.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("target_op", self.target_op.as_str())
            .with("ref_op", self.ref_op.as_str())
            .with("slope", self.slope())
            .with("granularity", self.granularity())
            .with("reach", self.max_measurable_target())
            .with(
                "points",
                racer_results::Value::Array(self.points.iter().map(|p| p.to_value()).collect()),
            )
    }
}

impl GranularityTableRow {
    /// JSON form of one summary row.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("ref_op", self.ref_op.as_str())
            .with("target_op", self.target_op.as_str())
            .with("slope", self.slope)
            .with("granularity", self.granularity)
            .with("reach", self.reach)
    }
}

impl GranularityTable {
    /// JSON form: `{"rows": [...]}`.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object().with(
            "rows",
            racer_results::Value::Array(self.rows.iter().map(|r| r.to_value()).collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_series_has_unit_slope_and_fine_granularity() {
        let s = measure_series(AluOp::Add, Some(AluOp::Add), &[4, 8, 12, 16, 20, 24], 70);
        let slope = s.slope().expect("in window");
        assert!(
            (0.8..=1.3).contains(&slope),
            "ADD-vs-ADD slope should be ~1, got {slope:.2}"
        );
        assert!(
            s.granularity() <= 3,
            "granularity 1–3 ops (paper): {}",
            s.granularity()
        );
    }

    #[test]
    fn mul_series_slope_is_latency_ratio() {
        let s = measure_series(AluOp::Add, Some(AluOp::Mul), &[2, 4, 6, 8, 10], 70);
        let slope = s.slope().expect("in window");
        assert!(
            (2.5..=3.5).contains(&slope),
            "MUL targets cost 3 cycles each: slope {slope:.2}"
        );
    }

    #[test]
    fn div_measured_by_mul_reference() {
        let s = measure_series(AluOp::Mul, Some(AluOp::Div), &[1, 2, 3, 4], 70);
        let slope = s.slope().expect("in window");
        // DIV ≈ 14 cycles, MUL = 3: ratio ≈ 4.7 ("around 4 times", §7.2).
        assert!(
            (4.0..=5.5).contains(&slope),
            "DIV/MUL slope should be ~4.7, got {slope:.2}"
        );
    }

    #[test]
    fn window_limit_caps_the_reach() {
        // With a 40-op reference cap, long targets become unmeasurable.
        let s = measure_series(AluOp::Add, Some(AluOp::Add), &[10, 30, 60, 90], 40);
        assert!(s.points[0].ref_ops.is_some());
        assert!(
            s.points[3].ref_ops.is_none(),
            "90 adds cannot fit a 40-add window"
        );
        assert!(s.max_measurable_target().unwrap() < 90);
    }

    #[test]
    fn table_summarizes_series() {
        let series = vec![measure_series(
            AluOp::Add,
            Some(AluOp::Add),
            &[4, 8, 12],
            70,
        )];
        let table = granularity_table(&series);
        assert_eq!(table.rows.len(), 1);
        assert!(table.render().contains("add"));
    }

    #[test]
    fn series_render_is_plot_ready() {
        let s = measure_series(AluOp::Add, Some(AluOp::Add), &[4, 8], 70);
        let r = s.render();
        assert!(r.starts_with("# target=add ref=add"));
        assert_eq!(r.lines().count(), 3);
    }
}
