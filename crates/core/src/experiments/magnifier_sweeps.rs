//! Figures 11 and 12: magnified timing difference as a function of repeat
//! count, for the arbitrary-replacement magnifier (§6.3, with cache-set
//! reuse via prefetching) and the arithmetic-operation-only magnifier
//! (§6.4, saturating at the timer-interrupt interval).

use crate::layout::Layout;
use crate::machine::Machine;
use crate::magnify::{ArbitraryReplacementMagnifier, ArithmeticMagnifier};
use racer_cpu::CpuConfig;
use racer_mem::HierarchyConfig;
use serde::{Deserialize, Serialize};

/// One (repeat count, timing difference) point.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Repeat count (x-axis).
    pub repeats: usize,
    /// Magnified timing difference in microseconds (y-axis).
    pub diff_us: f64,
}

/// A sweep series with rendering helpers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Series label.
    pub label: String,
    /// Measured points.
    pub points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// Tab-separated rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("# {}\n# repeats\tdiff_us\n", self.label);
        for p in &self.points {
            let _ = writeln!(s, "{}\t{:.3}", p.repeats, p.diff_us);
        }
        s
    }

    /// Largest measured difference.
    pub fn max_diff_us(&self) -> f64 {
        self.points.iter().map(|p| p.diff_us).fold(0.0, f64::max)
    }

    /// Whether the series grows essentially monotonically (allowing
    /// `tolerance_us` of backsliding).
    pub fn is_monotone_within(&self, tolerance_us: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].diff_us >= w[0].diff_us - tolerance_us)
    }
}

/// Figure 11: arbitrary-replacement magnifier difference vs repeats, with
/// prefetching (unbounded) and without (capped by the set count).
///
/// Three series:
///
/// * `fifo-with-prefetch` — the chain reaction in its cleanest form: linear,
///   unbounded growth (the paper's Figure 11 shape);
/// * `random-with-prefetch` — the paper's demonstration policy. In this
///   *deterministic* simulator, random-replacement churn drives both the
///   aligned and misaligned runs to similar equilibria, so growth saturates
///   after tens of repeats (on real hardware, ambient noise keeps
///   re-seeding the misalignment);
/// * `random-no-prefetch` — the §6.3.1 cap: bounded by the set count.
pub fn figure11(repeat_points: &[usize], delay: usize) -> Vec<SweepSeries> {
    use racer_cpu::CpuConfig;
    use racer_mem::{CacheConfig, ReplacementKind};
    let machine = |kind: ReplacementKind, seed: u64| {
        let mut hier = HierarchyConfig::coffee_lake();
        hier.l1d = CacheConfig {
            sets: 64,
            ways: 8,
            replacement: kind,
            seed,
            ..CacheConfig::l1d_coffee_lake()
        };
        Machine::with(CpuConfig::coffee_lake().with_load_recording(), hier)
    };
    // Each point runs on a fresh machine, so the sweep parallelizes across
    // host cores with bit-identical results (see `racer_cpu::batch`).
    // Deliberately *not* snapshot-cached: every point's hierarchy has a
    // distinct replacement seed (`0x5EED + repeats`), so no two points
    // could ever share a cache entry.
    let run = |kind: ReplacementKind, prefetch: usize, label: &str| {
        let points = racer_cpu::batch::par_map(repeat_points, |&repeats| {
            let mut mag = ArbitraryReplacementMagnifier::new(Layout::default());
            mag.repeats = repeats;
            mag.prefetch_dist = prefetch;
            let mut m = machine(kind, 0x5EED + repeats as u64);
            let amp = mag.amplification(&mut m, delay).max(0);
            SweepPoint {
                repeats,
                diff_us: amp as f64 * 0.5 / 1000.0,
            }
        });
        SweepSeries {
            label: label.to_string(),
            points,
        }
    };
    vec![
        run(ReplacementKind::Fifo, 22, "fifo-with-prefetch"),
        run(ReplacementKind::Random, 22, "random-with-prefetch"),
        run(ReplacementKind::Random, 0, "random-no-prefetch"),
    ]
}

/// Figure 12: arithmetic-only magnifier difference vs repeats, with the
/// timer-interrupt drain bounding the accumulation.
///
/// `interrupt_cycles` models the OS tick (the paper's machine: 4 ms; pass a
/// scaled value so saturation lands inside the swept range).
pub fn figure12(
    repeat_points: &[usize],
    delay: usize,
    interrupt_cycles: Option<u64>,
) -> SweepSeries {
    // Independent per-stage machines: fan out across host cores. Every
    // point shares one (config, hierarchy) pair, so the machines fork
    // the process-wide snapshot cache — built once, bit-identical to
    // from-scratch construction.
    let points = racer_cpu::batch::par_map(repeat_points, |&stages| {
        let mut cfg = CpuConfig::coffee_lake();
        cfg.interrupt_interval = interrupt_cycles;
        let mut m = Machine::with_cached(cfg, HierarchyConfig::small_plru());
        let mut mag = ArithmeticMagnifier::new(Layout::default());
        mag.stages = stages;
        let amp = mag.amplification(&mut m, delay).max(0);
        SweepPoint {
            repeats: stages,
            diff_us: amp as f64 * 0.5 / 1000.0,
        }
    });
    SweepSeries {
        label: format!(
            "arithmetic-magnifier interrupts={}",
            interrupt_cycles.map_or("off".into(), |v| v.to_string())
        ),
        points,
    }
}

impl SweepPoint {
    /// JSON form: `{"repeats": N, "diff_us": F}`.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("repeats", self.repeats)
            .with("diff_us", self.diff_us)
    }
}

impl SweepSeries {
    /// JSON form: label, peak separation and the sweep points.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("label", self.label.as_str())
            .with("max_diff_us", self.max_diff_us())
            .with(
                "points",
                racer_results::Value::Array(self.points.iter().map(|p| p.to_value()).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_prefetch_series_outgrows_capped_series() {
        let series = figure11(&[2, 6, 12], 30);
        let find = |label: &str| series.iter().find(|s| s.label == label).unwrap();
        let fifo = find("fifo-with-prefetch");
        let random = find("random-with-prefetch");
        let capped = find("random-no-prefetch");
        assert!(
            random.max_diff_us() > capped.max_diff_us(),
            "prefetching must lift the cap: {:.2} vs {:.2}",
            random.max_diff_us(),
            capped.max_diff_us()
        );
        assert!(
            fifo.points.last().unwrap().diff_us > fifo.points.first().unwrap().diff_us * 2.0,
            "FIFO difference must grow steeply with repeats: {fifo:?}"
        );
    }

    #[test]
    fn figure11_fifo_growth_is_linear() {
        let series = figure11(&[10, 40], 30);
        let fifo = series
            .iter()
            .find(|s| s.label == "fifo-with-prefetch")
            .unwrap();
        let ratio = fifo.points[1].diff_us / fifo.points[0].diff_us.max(1e-9);
        assert!(
            (3.0..=5.0).contains(&ratio),
            "4× repeats should give ~4× difference (paper's linear Figure 11): {ratio:.2}"
        );
    }

    #[test]
    fn figure12_growth_saturates_under_interrupts() {
        let free = figure12(&[40, 160], 20, None);
        let bounded = figure12(&[40, 160], 20, Some(6_000));
        let free_growth = free.points[1].diff_us - free.points[0].diff_us;
        let bounded_growth = bounded.points[1].diff_us - bounded.points[0].diff_us;
        assert!(
            free_growth > bounded_growth,
            "interrupts must slow the growth: free {free_growth:.2} vs bounded {bounded_growth:.2}"
        );
        assert!(
            free.points[1].diff_us > 1.0,
            "free accumulation should exceed 1 µs"
        );
    }

    #[test]
    fn render_is_plot_ready() {
        let s = figure12(&[20], 20, None);
        assert!(s.render().contains("repeats\tdiff_us"));
    }
}
