//! Experiment drivers regenerating every figure and table of the paper's
//! evaluation (§7), plus the countermeasure study (§8).
//!
//! | Paper artefact | Driver |
//! |---|---|
//! | Figure 7 (repetition time stacks) | [`repetition_figure`] |
//! | Figures 8–9 (racing-gadget granularity) | [`granularity`] |
//! | §7.2 granularity summary | [`granularity::granularity_table`] |
//! | Figure 10 (reorder-magnifier distributions) | [`distribution`] |
//! | Figure 11 (arbitrary-replacement sweep) | [`magnifier_sweeps::figure11`] |
//! | Figure 12 (arithmetic-magnifier sweep) | [`magnifier_sweeps::figure12`] |
//! | §7.3 SpectreBack rate/accuracy | [`spectre_eval`] |
//! | §7.4 eviction-set success rate | [`ev_eval`] |
//! | §6.3.3 SEQ/PAR miss probability | [`par_seq`] |
//! | §8 countermeasure matrix | [`countermeasures`] |
//!
//! Every driver takes explicit scale parameters so tests can run shrunken
//! versions while the `racer-bench` binaries run paper-scale sweeps.

use crate::machine::Machine;
use racer_cpu::batch::{max_threads, par_map};
use racer_cpu::RunResult;
use racer_isa::Program;

/// Which execution strategy carries an experiment's heavy trial runs.
///
/// Both paths are bit-identical in every simulated observable (pinned by
/// the engine differential suites and per-experiment equality tests);
/// they differ only in wall-clock cost. [`TrialPath::Batched`] is the
/// default everywhere; [`TrialPath::PerMachine`] survives as the
/// reference arm of the `scenario-e2e` perf rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrialPath {
    /// Fork every prepared trial machine into lockstep batches — ordered
    /// chunks across host cores, lanes sharing decode tables within each
    /// chunk ([`Machine::sweep`] over [`run_lanes_batched`]).
    Batched,
    /// One machine per trial cell, run to completion immediately — the
    /// pre-batch pipeline shape.
    PerMachine,
}

/// Most lanes one lockstep batch takes: experiment lanes run magnifier
/// programs with multi-set cache footprints, and past a handful of lanes
/// the batch's aggregate working set falls out of the host cache on every
/// lane switch. Measured on the distribution workload, 4–8 lanes per
/// batch beats both one big batch and plain sequential runs; above the
/// cap we simply make more chunks (which also feeds more chunks to
/// [`par_map`]).
const LANES_PER_BATCH: usize = 8;

/// Run prepared heterogeneous `(machine, program)` lanes batch-first:
/// lanes are split into ordered chunks sized for the host core count
/// (capped at [`LANES_PER_BATCH`] to keep each batch's footprint within
/// the host cache), each chunk becomes one lockstep [`Machine::sweep`]
/// batch, and the chunks fan out through [`par_map`] — the core-level ×
/// lane-level parallelism composition every batched experiment shares.
/// Results come back in lane order; chunking never changes them (lanes
/// are independent machines).
pub(crate) fn run_lanes_batched(lanes: &[(Machine, &Program)]) -> Vec<RunResult> {
    if lanes.is_empty() {
        return Vec::new();
    }
    let chunk = lanes
        .len()
        .div_ceil(max_threads())
        .clamp(1, LANES_PER_BATCH);
    let chunks: Vec<&[(Machine, &Program)]> = lanes.chunks(chunk).collect();
    par_map(&chunks, |c| Machine::sweep(c.iter().map(|(m, p)| (m, *p))))
        .into_iter()
        .flatten()
        .collect()
}

pub mod countermeasures;
pub mod detection;
pub mod distribution;
pub mod ev_eval;
pub mod granularity;
pub mod magnifier_sweeps;
pub mod noise_sensitivity;
pub mod par_seq;
pub mod repetition_figure;
pub mod spectre_eval;
pub mod timer_mitigations;
pub mod window_ablation;
