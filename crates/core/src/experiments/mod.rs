//! Experiment drivers regenerating every figure and table of the paper's
//! evaluation (§7), plus the countermeasure study (§8).
//!
//! | Paper artefact | Driver |
//! |---|---|
//! | Figure 7 (repetition time stacks) | [`repetition_figure`] |
//! | Figures 8–9 (racing-gadget granularity) | [`granularity`] |
//! | §7.2 granularity summary | [`granularity::granularity_table`] |
//! | Figure 10 (reorder-magnifier distributions) | [`distribution`] |
//! | Figure 11 (arbitrary-replacement sweep) | [`magnifier_sweeps::figure11`] |
//! | Figure 12 (arithmetic-magnifier sweep) | [`magnifier_sweeps::figure12`] |
//! | §7.3 SpectreBack rate/accuracy | [`spectre_eval`] |
//! | §7.4 eviction-set success rate | [`ev_eval`] |
//! | §6.3.3 SEQ/PAR miss probability | [`par_seq`] |
//! | §8 countermeasure matrix | [`countermeasures`] |
//!
//! Every driver takes explicit scale parameters so tests can run shrunken
//! versions while the `racer-bench` binaries run paper-scale sweeps.

pub mod countermeasures;
pub mod detection;
pub mod distribution;
pub mod ev_eval;
pub mod granularity;
pub mod magnifier_sweeps;
pub mod noise_sensitivity;
pub mod par_seq;
pub mod repetition_figure;
pub mod spectre_eval;
pub mod timer_mitigations;
pub mod window_ablation;
