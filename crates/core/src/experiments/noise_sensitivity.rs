//! Noise-sensitivity sweep: SpectreBack accuracy as DRAM jitter grows.
//!
//! The paper's evaluation runs on a live machine with browser, OS and DRAM
//! noise and still reports >88% accuracy. This sweep turns the simulator's
//! one explicit noise knob (uniform DRAM jitter) up well past realistic
//! levels and watches the channel degrade — quantifying the margin behind
//! the paper's accuracy figure.

use crate::attacks::SpectreBack;
use crate::machine::Machine;
use racer_cpu::CpuConfig;
use racer_mem::HierarchyConfig;
use racer_time::CoarseTimer;
use serde::{Deserialize, Serialize};

/// Accuracy at one jitter level.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct NoisePoint {
    /// Uniform DRAM jitter bound in cycles.
    pub jitter_cycles: u64,
    /// Bit accuracy in [0, 1].
    pub accuracy: f64,
}

/// Leak `secret` at each jitter level; report accuracy.
///
/// The jitter levels are independent full attacks on independent
/// machines, so they fan out across host cores in input order; each
/// level's machine forks the process-wide snapshot cache (one distinct
/// hierarchy config per level, so repeated sweeps rebuild nothing).
pub fn sweep(secret: &[u8], jitter_levels: &[u64]) -> Vec<NoisePoint> {
    racer_cpu::batch::par_map(jitter_levels, |&jitter| {
        let mut hier = HierarchyConfig::small_plru();
        hier.memory_jitter = jitter;
        hier.seed = 0xA11CE ^ jitter;
        let mut m = Machine::with_cached(CpuConfig::coffee_lake().with_load_recording(), hier);
        let atk = SpectreBack::new(m.layout());
        atk.plant_secret(&mut m, secret);
        let mut timer = CoarseTimer::browser_5us();
        let report = atk.leak_bytes(&mut m, secret.len(), &mut timer);
        let correct: u32 = report
            .recovered
            .iter()
            .zip(secret)
            .map(|(a, b)| 8 - (a ^ b).count_ones())
            .sum();
        NoisePoint {
            jitter_cycles: jitter,
            accuracy: correct as f64 / (secret.len() * 8) as f64,
        }
    })
}

/// Render the sweep.
pub fn render(points: &[NoisePoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("dram_jitter_cycles\taccuracy\n");
    for p in points {
        let _ = writeln!(s, "{}\t{:.3}", p.jitter_cycles, p.accuracy);
    }
    s
}

/// JSON form of the jitter sweep.
pub fn to_value(points: &[NoisePoint]) -> racer_results::Value {
    racer_results::Value::Array(
        points
            .iter()
            .map(|p| {
                racer_results::Value::object()
                    .with("jitter_cycles", p.jitter_cycles)
                    .with("accuracy", p.accuracy)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_holds_at_realistic_noise() {
        let pts = sweep(b"OK", &[0, 30, 60]);
        for p in &pts {
            assert!(
                p.accuracy > 0.88,
                "jitter {} cycles: accuracy {:.2} under the paper's bar",
                p.jitter_cycles,
                p.accuracy
            );
        }
    }

    #[test]
    fn extreme_noise_degrades_the_channel_gracefully() {
        let pts = sweep(b"OK", &[0, 400]);
        let clean = pts[0].accuracy;
        let noisy = pts[1].accuracy;
        assert!(
            clean >= noisy,
            "noise must not improve accuracy: {clean} vs {noisy}"
        );
        assert!(
            noisy >= 0.5,
            "even extreme noise leaves a coin flip, not worse"
        );
    }
}
