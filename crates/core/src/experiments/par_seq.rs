//! §6.3.3: how many addresses should SEQ_i and PAR_i contain?
//!
//! The paper reports that with random replacement, `SEQ = 6` (three-quarters
//! of the 8-way associativity) and `PAR = 5` give at least one SEQ miss with
//! ~96% probability, with larger values approaching certainty. This driver
//! measures that probability directly on the replacement-policy model.

use racer_mem::{CacheSet, LineAddr, ReplacementKind};
use serde::{Deserialize, Serialize};

/// Measured eviction probability for one (seq, par) size pair.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct ParSeqPoint {
    /// SEQ size.
    pub seq_len: usize,
    /// PAR size.
    pub par_len: usize,
    /// Probability that filling PAR evicts ≥1 SEQ member.
    pub evict_probability: f64,
}

/// Estimate, over `trials` randomized sets, the probability that filling
/// `par_len` fresh lines into an 8-way random-replacement set holding
/// `seq_len` resident SEQ members evicts at least one of them.
pub fn evict_probability(seq_len: usize, par_len: usize, ways: usize, trials: usize) -> f64 {
    let mut hits = 0usize;
    for t in 0..trials {
        let mut set = CacheSet::new(ReplacementKind::Random.build(ways, t as u64 * 11 + 3));
        // Fill the set completely: SEQ members plus filler lines (the state
        // after an attack round: SEQ resident, other ways holding strays).
        for k in 0..seq_len {
            set.fill(LineAddr(1000 + k as u64));
        }
        for k in seq_len..ways {
            set.fill(LineAddr(2000 + k as u64));
        }
        // Bring in PAR.
        let mut evicted_seq = false;
        for k in 0..par_len {
            if let Some(victim) = set.fill(LineAddr(3000 + k as u64)).evicted {
                if (1000..1000 + seq_len as u64).contains(&victim.0) {
                    evicted_seq = true;
                }
            }
        }
        if evicted_seq {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// Sweep the (seq, par) grid of §6.3.3.
pub fn par_seq_table(ways: usize, trials: usize) -> Vec<ParSeqPoint> {
    let mut out = Vec::new();
    for seq_len in [4usize, 5, 6, 7] {
        for par_len in [3usize, 4, 5, 6, 7] {
            out.push(ParSeqPoint {
                seq_len,
                par_len,
                evict_probability: evict_probability(seq_len, par_len, ways, trials),
            });
        }
    }
    out
}

/// Render the sweep as a table.
pub fn render(points: &[ParSeqPoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("seq\tpar\tP(≥1 SEQ evicted)\n");
    for p in points {
        let _ = writeln!(
            s,
            "{}\t{}\t{:.3}",
            p.seq_len, p.par_len, p.evict_probability
        );
    }
    s
}

/// JSON form of the (SEQ, PAR) grid.
pub fn to_value(points: &[ParSeqPoint]) -> racer_results::Value {
    racer_results::Value::Array(
        points
            .iter()
            .map(|p| {
                racer_results::Value::object()
                    .with("seq_len", p.seq_len)
                    .with("par_len", p.par_len)
                    .with("evict_probability", p.evict_probability)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_is_near_96_percent() {
        let p = evict_probability(6, 5, 8, 4000);
        assert!(
            (0.90..=1.0).contains(&p),
            "SEQ=6, PAR=5 should evict with ~96% probability, got {p:.3}"
        );
    }

    #[test]
    fn probability_increases_with_par_size() {
        let p3 = evict_probability(6, 3, 8, 4000);
        let p7 = evict_probability(6, 7, 8, 4000);
        assert!(
            p7 > p3,
            "larger PAR must increase the probability: {p3:.3} vs {p7:.3}"
        );
        assert!(p7 > 0.98, "PAR=7 should be near certainty, got {p7:.3}");
    }

    #[test]
    fn probability_increases_with_seq_size() {
        let s4 = evict_probability(4, 5, 8, 4000);
        let s7 = evict_probability(7, 5, 8, 4000);
        assert!(s7 > s4, "larger SEQ must increase the probability");
    }

    #[test]
    fn table_covers_the_grid() {
        let t = par_seq_table(8, 200);
        assert_eq!(t.len(), 20);
        assert!(render(&t).contains("seq\tpar"));
    }
}
