//! Figure 7: stage-time stacks of the repetition gadget, bare (7a) and with
//! the load stage wrapped in a racing gadget (7b).

use crate::attacks::repetition::{run_repetition, RepetitionConfig, StageBreakdown};
use crate::machine::Machine;
use serde::{Deserialize, Serialize};

/// One bar of Figure 7: stage cycles for one address relationship.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RepetitionBar {
    /// `true` for the same-address (secret = 1) case.
    pub same_addr: bool,
    /// Per-stage cycle totals.
    pub stages: StageBreakdown,
}

/// A full sub-figure: both bars plus derived percentages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RepetitionFigure {
    /// Whether the load stage was raced (Figure 7b) or bare (7a).
    pub racing: bool,
    /// The same-address and different-address bars.
    pub bars: [RepetitionBar; 2],
}

/// Run one sub-figure of Figure 7 with `iterations` repetitions.
pub fn figure7(racing: bool, iterations: usize) -> RepetitionFigure {
    let run = |same_addr: bool| {
        let mut m = Machine::baseline();
        let cfg = RepetitionConfig {
            iterations,
            same_addr,
            use_racing: racing,
            baseline_ops: 95,
        };
        RepetitionBar {
            same_addr,
            stages: run_repetition(&mut m, &cfg),
        }
    };
    RepetitionFigure {
        racing,
        bars: [run(true), run(false)],
    }
}

impl RepetitionFigure {
    /// Relative total difference |same − different| / max.
    pub fn total_separation(&self) -> f64 {
        let a = self.bars[0].stages.total() as f64;
        let b = self.bars[1].stages.total() as f64;
        (a - b).abs() / a.max(b)
    }

    /// Render the stacked-bar data with per-stage percentages, normalized
    /// to the same-address total as in the paper's caption.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let norm = self.bars[0].stages.total() as f64;
        let mut s = format!(
            "# Figure 7{} ({})\n# case\tload\treload\tevict\ttotal\tload%\treload%\tevict%\n",
            if self.racing { "b" } else { "a" },
            if self.racing {
                "racing-gadget load stage"
            } else {
                "bare repetition"
            },
        );
        for bar in &self.bars {
            let st = &bar.stages;
            let _ = writeln!(
                s,
                "{}\t{}\t{}\t{}\t{}\t{:.1}%\t{:.1}%\t{:.1}%",
                if bar.same_addr { "same" } else { "different" },
                st.load,
                st.reload,
                st.evict,
                st.total(),
                st.load as f64 / norm * 100.0,
                st.reload as f64 / norm * 100.0,
                st.evict as f64 / norm * 100.0,
            );
        }
        let _ = writeln!(
            s,
            "# total separation: {:.2}%",
            self.total_separation() * 100.0
        );
        s
    }
}

impl RepetitionBar {
    /// JSON form: address relationship plus the stage stack.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("same_addr", self.same_addr)
            .with("stages", self.stages.to_value())
    }
}

impl RepetitionFigure {
    /// JSON form: sub-figure identity, separation metric and both bars.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("racing", self.racing)
            .with("total_separation", self.total_separation())
            .with(
                "bars",
                racer_results::Value::Array(self.bars.iter().map(|b| b.to_value()).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_gadget_totals_cancel_but_raced_totals_separate() {
        let bare = figure7(false, 25);
        let raced = figure7(true, 25);
        assert!(
            bare.total_separation() < 0.05,
            "Figure 7a: totals must cancel, got {:.3}",
            bare.total_separation()
        );
        assert!(
            raced.total_separation() > 0.05,
            "Figure 7b: totals must separate, got {:.3}",
            raced.total_separation()
        );
    }

    #[test]
    fn render_shows_both_cases() {
        let f = figure7(false, 5);
        let r = f.render();
        assert!(r.contains("same") && r.contains("different"));
    }
}
