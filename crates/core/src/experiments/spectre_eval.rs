//! §7.3 evaluation: SpectreBack leak rate and accuracy.
//!
//! The paper reports 4.3 kbit/s at >88% accuracy in Chrome 88. We report
//! the same two numbers for the simulated attack, through a quantized
//! browser timer on a machine with DRAM jitter.

use crate::attacks::SpectreBack;
use crate::machine::Machine;
use racer_time::CoarseTimer;
use serde::{Deserialize, Serialize};

/// Measured SpectreBack performance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpectreEval {
    /// The secret that was planted.
    pub secret: Vec<u8>,
    /// The bytes recovered through the coarse timer.
    pub recovered: Vec<u8>,
    /// Bit-level accuracy in [0, 1].
    pub accuracy: f64,
    /// Leak rate in kilobits per second of simulated time.
    pub kbps: f64,
}

/// Leak `secret` on a jittery machine through a `timer_resolution_ns`
/// browser timer.
pub fn evaluate(secret: &[u8], timer_resolution_ns: f64, noise_seed: u64) -> SpectreEval {
    let mut m = Machine::noisy(noise_seed);
    let atk = SpectreBack::new(m.layout());
    atk.plant_secret(&mut m, secret);
    let mut timer = CoarseTimer::new(timer_resolution_ns);
    let report = atk.leak_bytes(&mut m, secret.len(), &mut timer);
    let correct_bits: u32 = report
        .recovered
        .iter()
        .zip(secret)
        .map(|(a, b)| 8 - (a ^ b).count_ones())
        .sum();
    SpectreEval {
        secret: secret.to_vec(),
        recovered: report.recovered,
        accuracy: correct_bits as f64 / (secret.len() * 8) as f64,
        kbps: report.kbps,
    }
}

/// Render the evaluation like the paper's §7.3 summary.
pub fn render(eval: &SpectreEval) -> String {
    format!(
        "secret   : {:?}\nrecovered: {:?}\naccuracy : {:.1}%\nleak rate: {:.2} kbit/s\n",
        String::from_utf8_lossy(&eval.secret),
        String::from_utf8_lossy(&eval.recovered),
        eval.accuracy * 100.0,
        eval.kbps
    )
}

impl SpectreEval {
    /// JSON form: secrets as (lossy) text plus rate and accuracy.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("secret", String::from_utf8_lossy(&self.secret).into_owned())
            .with(
                "recovered",
                String::from_utf8_lossy(&self.recovered).into_owned(),
            )
            .with("accuracy", self.accuracy)
            .with("kbps", self.kbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_the_papers_accuracy_bar() {
        let eval = evaluate(b"ASPLOS", 5_000.0, 42);
        assert!(
            eval.accuracy > 0.88,
            "accuracy must beat the paper's 88%: {:.3} ({:?})",
            eval.accuracy,
            eval.recovered
        );
        assert!(
            eval.kbps > 1.0,
            "leak rate should be kbit/s-scale: {:.2}",
            eval.kbps
        );
    }

    #[test]
    fn renders_summary() {
        let eval = evaluate(b"OK", 5_000.0, 7);
        let s = render(&eval);
        assert!(s.contains("accuracy") && s.contains("kbit/s"));
    }
}
