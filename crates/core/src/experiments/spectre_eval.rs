//! §7.3 evaluation: SpectreBack leak rate and accuracy.
//!
//! The paper reports 4.3 kbit/s at >88% accuracy in Chrome 88. We report
//! the same two numbers for the simulated attack, through a quantized
//! browser timer on a machine with DRAM jitter.

use crate::attacks::SpectreBack;
use crate::experiments::TrialPath;
use crate::machine::Machine;
use racer_time::{CoarseTimer, Timer};
use serde::{Deserialize, Serialize};

/// Measured SpectreBack performance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpectreEval {
    /// The secret that was planted.
    pub secret: Vec<u8>,
    /// The bytes recovered through the coarse timer.
    pub recovered: Vec<u8>,
    /// Bit-level accuracy in [0, 1].
    pub accuracy: f64,
    /// Leak rate in kilobits per second of simulated time.
    pub kbps: f64,
}

/// Leak `secret` on a jittery machine through a `timer_resolution_ns`
/// browser timer.
pub fn evaluate(secret: &[u8], timer_resolution_ns: f64, noise_seed: u64) -> SpectreEval {
    evaluate_counted(secret, timer_resolution_ns, noise_seed).0
}

/// [`evaluate`] plus the instructions the attack committed — the work
/// metric of the `scenario-e2e` perf rows.
pub fn evaluate_counted(
    secret: &[u8],
    timer_resolution_ns: f64,
    noise_seed: u64,
) -> (SpectreEval, u64) {
    let mut m = Machine::noisy(noise_seed);
    let atk = SpectreBack::new(m.layout());
    atk.plant_secret(&mut m, secret);
    let mut timer = CoarseTimer::new(timer_resolution_ns);
    let report = atk.leak_bytes(&mut m, secret.len(), &mut timer);
    (
        score(secret, report.recovered, report.kbps),
        m.committed_total(),
    )
}

/// Grade `recovered` against `secret` bit-by-bit.
fn score(secret: &[u8], recovered: Vec<u8>, kbps: f64) -> SpectreEval {
    let correct_bits: u32 = recovered
        .iter()
        .zip(secret)
        .map(|(a, b)| 8 - (a ^ b).count_ones())
        .sum();
    SpectreEval {
        secret: secret.to_vec(),
        recovered,
        accuracy: correct_bits as f64 / (secret.len() * 8) as f64,
        kbps,
    }
}

/// Captures every `(start_ns, end_ns)` measurement window of one attack run
/// while reporting perfect durations. The batched resolution sweep records
/// the window sequence once, then re-observes it through each candidate
/// timer.
struct WindowRecorder {
    windows: Vec<(f64, f64)>,
}

impl Timer for WindowRecorder {
    fn now(&mut self, t_ns: f64) -> f64 {
        t_ns
    }

    fn resolution_ns(&self) -> f64 {
        0.0
    }

    fn measure(&mut self, start_ns: f64, end_ns: f64) -> f64 {
        self.windows.push((start_ns, end_ns));
        end_ns - start_ns
    }
}

/// Re-run the attack's bit decisions from recorded measurement windows
/// through `timer`: windows 0–1 are the calibration pair (threshold =
/// their mean, mirroring [`SpectreBack::calibrate`]), the rest are one
/// transmission per (byte, bit) in LSB-first order, mirroring
/// [`SpectreBack::leak_bytes`].
fn replay(secret: &[u8], windows: &[(f64, f64)], timer: &mut dyn Timer, kbps: f64) -> SpectreEval {
    let n = secret.len();
    assert_eq!(
        windows.len(),
        2 + n * 8,
        "one window per calibration reading and per transmitted bit"
    );
    let threshold = (timer.measure(windows[0].0, windows[0].1)
        + timer.measure(windows[1].0, windows[1].1))
        / 2.0;
    let mut recovered = Vec::with_capacity(n);
    for byte_idx in 0..n {
        let mut byte = 0u8;
        for bit in 0..8 {
            let (start, end) = windows[2 + byte_idx * 8 + bit];
            if timer.measure(start, end) < threshold {
                byte |= 1 << bit;
            }
        }
        recovered.push(byte);
    }
    score(secret, recovered, kbps)
}

/// Sweep SpectreBack across browser-timer resolutions, returning one eval
/// per resolution plus the total instructions committed.
///
/// The machine side of [`SpectreBack::leak_bytes`] never consults the
/// timer — readings only feed the post-hoc threshold comparisons that
/// decide each bit — so [`TrialPath::Batched`] runs the attack **once**
/// against a [`WindowRecorder`] and replays the recorded windows through
/// each resolution's (jitter-free, hence stateless) [`CoarseTimer`]. That
/// reproduces every per-resolution run bit-for-bit at `1/R` of the
/// simulation work; [`TrialPath::PerMachine`] re-runs the attack per
/// resolution like the pre-batch pipeline did.
pub fn resolution_sweep_on(
    secret: &[u8],
    resolutions_ns: &[f64],
    noise_seed: u64,
    path: TrialPath,
) -> (Vec<SpectreEval>, u64) {
    match path {
        TrialPath::PerMachine => {
            let mut committed = 0u64;
            let evals = resolutions_ns
                .iter()
                .map(|&res| {
                    let (eval, c) = evaluate_counted(secret, res, noise_seed);
                    committed += c;
                    eval
                })
                .collect();
            (evals, committed)
        }
        TrialPath::Batched => {
            let mut m = Machine::noisy(noise_seed);
            let atk = SpectreBack::new(m.layout());
            atk.plant_secret(&mut m, secret);
            let mut rec = WindowRecorder {
                windows: Vec::new(),
            };
            let report = atk.leak_bytes(&mut m, secret.len(), &mut rec);
            let evals = resolutions_ns
                .iter()
                .map(|&res| {
                    let mut timer = CoarseTimer::new(res);
                    replay(secret, &rec.windows, &mut timer, report.kbps)
                })
                .collect();
            (evals, m.committed_total())
        }
    }
}

/// Render the evaluation like the paper's §7.3 summary.
pub fn render(eval: &SpectreEval) -> String {
    format!(
        "secret   : {:?}\nrecovered: {:?}\naccuracy : {:.1}%\nleak rate: {:.2} kbit/s\n",
        String::from_utf8_lossy(&eval.secret),
        String::from_utf8_lossy(&eval.recovered),
        eval.accuracy * 100.0,
        eval.kbps
    )
}

impl SpectreEval {
    /// JSON form: secrets as (lossy) text plus rate and accuracy.
    pub fn to_value(&self) -> racer_results::Value {
        racer_results::Value::object()
            .with("secret", String::from_utf8_lossy(&self.secret).into_owned())
            .with(
                "recovered",
                String::from_utf8_lossy(&self.recovered).into_owned(),
            )
            .with("accuracy", self.accuracy)
            .with("kbps", self.kbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_the_papers_accuracy_bar() {
        let eval = evaluate(b"ASPLOS", 5_000.0, 42);
        assert!(
            eval.accuracy > 0.88,
            "accuracy must beat the paper's 88%: {:.3} ({:?})",
            eval.accuracy,
            eval.recovered
        );
        assert!(
            eval.kbps > 1.0,
            "leak rate should be kbit/s-scale: {:.2}",
            eval.kbps
        );
    }

    #[test]
    fn renders_summary() {
        let eval = evaluate(b"OK", 5_000.0, 7);
        let s = render(&eval);
        assert!(s.contains("accuracy") && s.contains("kbit/s"));
    }

    const RESOLUTIONS: [f64; 3] = [1_000.0, 5_000.0, 25_000.0];

    #[test]
    fn resolution_sweep_paths_agree_exactly() {
        let (batched, _) = resolution_sweep_on(b"OK", &RESOLUTIONS, 42, TrialPath::Batched);
        let (per_machine, _) = resolution_sweep_on(b"OK", &RESOLUTIONS, 42, TrialPath::PerMachine);
        assert_eq!(batched.len(), per_machine.len());
        for (b, p) in batched.iter().zip(&per_machine) {
            assert_eq!(b.recovered, p.recovered, "recovered bytes must match");
            assert_eq!(b.accuracy.to_bits(), p.accuracy.to_bits());
            assert_eq!(b.kbps.to_bits(), p.kbps.to_bits());
        }
    }

    #[test]
    fn batched_sweep_commits_one_attack_of_work() {
        let (_, bc) = resolution_sweep_on(b"OK", &RESOLUTIONS, 42, TrialPath::Batched);
        let (_, pc) = resolution_sweep_on(b"OK", &RESOLUTIONS, 42, TrialPath::PerMachine);
        assert!(bc > 0);
        assert_eq!(
            pc,
            bc * RESOLUTIONS.len() as u64,
            "per-machine must re-run the attack once per resolution"
        );
    }

    #[test]
    fn sweep_matches_single_evaluations() {
        let (sweep, _) = resolution_sweep_on(b"OK", &RESOLUTIONS, 9, TrialPath::Batched);
        for (eval, &res) in sweep.iter().zip(&RESOLUTIONS) {
            let single = evaluate(b"OK", res, 9);
            assert_eq!(eval.recovered, single.recovered);
            assert_eq!(eval.accuracy.to_bits(), single.accuracy.to_bits());
            assert_eq!(eval.kbps.to_bits(), single.kbps.to_bits());
        }
    }
}
