//! Timer-mitigation sweep: how much magnification defeats each historical
//! browser timer mitigation (paper §2.2 and §8's "some of our magnifiers
//! ... could be defeated via further coarsening, whereas others (the PLRU
//! gadgets) are unlikely to be limited without removing any source of
//! coarse-grained time completely").
//!
//! For each timer model and each magnifier round count, transmit a bit
//! through the PLRU reorder magnifier many times and report the
//! classification accuracy. Because PLRU magnification is unbounded, there
//! is a round count that defeats *every* finite resolution.

use crate::machine::Machine;
use crate::magnify::{PlruInput, PlruMagnifier};
use racer_time::{stats, CoarseTimer, FuzzyTimer, Timer};
use serde::{Deserialize, Serialize};

/// One cell of the mitigation sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MitigationPoint {
    /// Timer model name.
    pub timer: String,
    /// Magnifier rounds per transmission.
    pub rounds: usize,
    /// Bit-classification accuracy in [0.5, 1].
    pub accuracy: f64,
}

fn build_timer(name: &str, seed: u64) -> Box<dyn Timer> {
    match name {
        "5us" => Box::new(CoarseTimer::new(5_000.0)),
        "100us" => Box::new(CoarseTimer::new(100_000.0)),
        "5us+jitter" => Box::new(CoarseTimer::with_jitter(5_000.0, 5_000.0, seed)),
        "fuzzy-5us" => Box::new(FuzzyTimer::new(5_000.0, seed)),
        "1ms" => Box::new(CoarseTimer::new(1_000_000.0)),
        other => panic!("unknown timer model {other}"),
    }
}

/// Transmit `trials` known bits per (timer, rounds) cell; score accuracy.
pub fn sweep(timers: &[&str], round_counts: &[usize], trials: usize) -> Vec<MitigationPoint> {
    let mut out = Vec::new();
    for &tname in timers {
        for &rounds in round_counts {
            let mut timer = build_timer(tname, 0xBEEF);
            let mut zeros = Vec::new();
            let mut ones = Vec::new();
            for t in 0..trials {
                for bit in [false, true] {
                    let mut m = Machine::noisy(t as u64 * 31 + u64::from(bit));
                    let mag = PlruMagnifier::with(m.layout(), 5, rounds);
                    mag.prepare(&mut m);
                    let (a, b) = (mag.line_a(&m), mag.line_b(&m));
                    if bit {
                        m.warm(a);
                        m.warm(b);
                    } else {
                        m.warm(b);
                        m.warm(a);
                    }
                    let obs = m.run_timed(&mag.program(&m, PlruInput::Reorder), timer.as_mut());
                    if bit {
                        ones.push(obs);
                    } else {
                        zeros.push(obs);
                    }
                }
            }
            let (_, accuracy) = stats::best_threshold(&zeros, &ones);
            out.push(MitigationPoint {
                timer: tname.to_string(),
                rounds,
                accuracy,
            });
        }
    }
    out
}

/// Render the sweep as a table (rows = timers, columns = round counts).
pub fn render(points: &[MitigationPoint], round_counts: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("timer");
    for r in round_counts {
        let _ = write!(s, "\t{r} rounds");
    }
    s.push('\n');
    let mut timers: Vec<&str> = points.iter().map(|p| p.timer.as_str()).collect();
    timers.dedup();
    for t in timers {
        let _ = write!(s, "{t}");
        for r in round_counts {
            let p = points
                .iter()
                .find(|p| p.timer == t && p.rounds == *r)
                .expect("cell present");
            let _ = write!(s, "\t{:.2}", p.accuracy);
        }
        s.push('\n');
    }
    s
}

/// JSON form of the timer-model × round-count sweep.
pub fn to_value(points: &[MitigationPoint]) -> racer_results::Value {
    racer_results::Value::Array(
        points
            .iter()
            .map(|p| {
                racer_results::Value::object()
                    .with("timer", p.timer.as_str())
                    .with("rounds", p.rounds)
                    .with("accuracy", p.accuracy)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enough_rounds_defeat_every_finite_resolution() {
        // 100 µs resolution: 1500 rounds (~18 µs diff) fail, 20000 rounds
        // (~240 µs) succeed — coarsening only raises the bar, never closes.
        let pts = sweep(&["100us"], &[1_500, 20_000], 4);
        let low = pts.iter().find(|p| p.rounds == 1_500).unwrap();
        let high = pts.iter().find(|p| p.rounds == 20_000).unwrap();
        assert!(
            high.accuracy > low.accuracy || high.accuracy == 1.0,
            "more magnification must help: {low:?} vs {high:?}"
        );
        assert!(
            high.accuracy > 0.9,
            "20k rounds must defeat 100 µs: {:.2}",
            high.accuracy
        );
    }

    #[test]
    fn five_microsecond_variants_all_fall_to_moderate_rounds() {
        let pts = sweep(&["5us", "5us+jitter", "fuzzy-5us"], &[4_000], 4);
        for p in &pts {
            assert!(
                p.accuracy > 0.85,
                "{} should fall to 4000 rounds: accuracy {:.2}",
                p.timer,
                p.accuracy
            );
        }
    }

    #[test]
    fn render_has_all_cells() {
        let pts = sweep(&["5us"], &[500, 1000], 2);
        let s = render(&pts, &[500, 1000]);
        assert!(s.contains("5us") && s.contains("500 rounds"));
    }
}
