//! Timer-mitigation sweep: how much magnification defeats each historical
//! browser timer mitigation (paper §2.2 and §8's "some of our magnifiers
//! ... could be defeated via further coarsening, whereas others (the PLRU
//! gadgets) are unlikely to be limited without removing any source of
//! coarse-grained time completely").
//!
//! For each timer model and each magnifier round count, transmit a bit
//! through the PLRU reorder magnifier many times and report the
//! classification accuracy. Because PLRU magnification is unbounded, there
//! is a round count that defeats *every* finite resolution.

use crate::experiments::{run_lanes_batched, TrialPath};
use crate::machine::Machine;
use crate::magnify::{PlruInput, PlruMagnifier};
use racer_isa::Program;
use racer_time::{stats, CoarseTimer, FuzzyTimer, Timer};
use serde::{Deserialize, Serialize};

/// One cell of the mitigation sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MitigationPoint {
    /// Timer model name.
    pub timer: String,
    /// Magnifier rounds per transmission.
    pub rounds: usize,
    /// Bit-classification accuracy in [0.5, 1] (0.5 — chance — when this
    /// shard scored no trials for the cell).
    pub accuracy: f64,
    /// Transmissions actually scored for this cell: the full `trials`
    /// count on an unsharded run, this shard's share otherwise. The
    /// weight `racer-lab merge` folds shard accuracies by.
    pub trials: usize,
}

fn build_timer(name: &str, seed: u64) -> Box<dyn Timer> {
    match name {
        "5us" => Box::new(CoarseTimer::new(5_000.0)),
        "100us" => Box::new(CoarseTimer::new(100_000.0)),
        "5us+jitter" => Box::new(CoarseTimer::with_jitter(5_000.0, 5_000.0, seed)),
        "fuzzy-5us" => Box::new(FuzzyTimer::new(5_000.0, seed)),
        "1ms" => Box::new(CoarseTimer::new(1_000_000.0)),
        other => panic!("unknown timer model {other}"),
    }
}

/// Transmit `trials` known bits per (timer, rounds) cell; score accuracy.
pub fn sweep(timers: &[&str], round_counts: &[usize], trials: usize) -> Vec<MitigationPoint> {
    sweep_sharded(timers, round_counts, trials, 1, 1)
}

/// [`sweep`], restricted to the `shard_k`-th of `shard_n` deterministic
/// slices of the **trial axis**: trial `t` runs when
/// `t % shard_n == shard_k - 1`. Each trial derives both its machine
/// *and its timer* (whose jitter stream is stateful) from its own index,
/// so a shard computes exactly the transmissions the full run would have
/// made for those trials, and CI legs can split one paper-scale sweep
/// and fold the reports back together with `racer-lab merge` (accuracies
/// weight by each point's `trials`).
///
/// # Panics
///
/// Panics unless `1 <= shard_k <= shard_n`.
pub fn sweep_sharded(
    timers: &[&str],
    round_counts: &[usize],
    trials: usize,
    shard_k: usize,
    shard_n: usize,
) -> Vec<MitigationPoint> {
    sweep_sharded_on(
        timers,
        round_counts,
        trials,
        shard_k,
        shard_n,
        TrialPath::Batched,
    )
    .0
}

/// [`sweep_sharded`] with an explicit [`TrialPath`], additionally
/// returning the total instructions the chosen path committed in heavy
/// magnifier runs — the work metric the `scenario-e2e` perf rows
/// normalise wall-clock by. Both paths return bit-identical points; the
/// batched path commits `1/timers.len()` of the per-machine path's
/// instructions (see the cell-grid note inside).
pub fn sweep_sharded_on(
    timers: &[&str],
    round_counts: &[usize],
    trials: usize,
    shard_k: usize,
    shard_n: usize,
    path: TrialPath,
) -> (Vec<MitigationPoint>, u64) {
    assert!(
        shard_k >= 1 && shard_k <= shard_n,
        "shard must satisfy 1 <= K <= N, got {shard_k}/{shard_n}"
    );
    match path {
        TrialPath::PerMachine => sweep_per_machine(timers, round_counts, trials, shard_k, shard_n),
        TrialPath::Batched => sweep_batched(timers, round_counts, trials, shard_k, shard_n),
    }
}

/// The pre-batch pipeline: one fresh machine and one heavy magnifier run
/// per (timer, rounds, trial, bit) cell.
fn sweep_per_machine(
    timers: &[&str],
    round_counts: &[usize],
    trials: usize,
    shard_k: usize,
    shard_n: usize,
) -> (Vec<MitigationPoint>, u64) {
    let mut committed = 0u64;
    let mut out = Vec::new();
    for &tname in timers {
        for &rounds in round_counts {
            let mut zeros = Vec::new();
            let mut ones = Vec::new();
            let mut scored = 0usize;
            for t in (0..trials).filter(|t| t % shard_n == shard_k - 1) {
                scored += 1;
                // One timer per trial, seeded by the trial index: a
                // stateful timer's jitter stream must not depend on which
                // other trials ran in this process, or shards would not
                // be trial-decomposable.
                let mut timer = build_timer(tname, 0xBEEF ^ (t as u64).wrapping_mul(0x9E37));
                for bit in [false, true] {
                    let mut m = prepared_machine(t, bit, rounds);
                    let mag = PlruMagnifier::with(m.layout(), 5, rounds);
                    let prog = mag.program(&m, PlruInput::Reorder);
                    let start = m.elapsed_ns();
                    let r = m.run(&prog);
                    committed += r.committed;
                    let obs = timer.measure(start, m.elapsed_ns());
                    if bit {
                        ones.push(obs);
                    } else {
                        zeros.push(obs);
                    }
                }
            }
            out.push(score_cell(tname, rounds, scored, &zeros, &ones));
        }
    }
    (out, committed)
}

/// The batch-first pipeline. The heavy magnifier run of a
/// (trial, bit, rounds) cell is *timer-independent*: `prepare` and the
/// bit-ordered warms poke caches without running programs, so the
/// machine's clock is zero when the magnifier runs and every observation
/// a timer scores is `timer.measure(0, cycles_to_ns(cycles))` of the
/// same cycle count. This path therefore runs the
/// rounds × trial × bit cell grid exactly once through the lockstep
/// engine — one shared program per rounds value (the magnifier program
/// depends only on rounds and L1 geometry), lanes chunked across host
/// cores — and scores the cached cycles under every timer, where the
/// per-machine plan re-runs the whole grid per timer.
fn sweep_batched(
    timers: &[&str],
    round_counts: &[usize],
    trials: usize,
    shard_k: usize,
    shard_n: usize,
) -> (Vec<MitigationPoint>, u64) {
    let scored: Vec<usize> = (0..trials).filter(|t| t % shard_n == shard_k - 1).collect();
    // Prepared machines in (rounds, trial, bit) order, then one shared
    // program per rounds value.
    let mut cells: Vec<(Machine, usize)> =
        Vec::with_capacity(round_counts.len() * scored.len() * 2);
    for (ri, &rounds) in round_counts.iter().enumerate() {
        for &t in &scored {
            for bit in [false, true] {
                cells.push((prepared_machine(t, bit, rounds), ri));
            }
        }
    }
    let results = if cells.is_empty() {
        Vec::new()
    } else {
        let progs: Vec<Program> = round_counts
            .iter()
            .map(|&rounds| {
                let mag = PlruMagnifier::with(cells[0].0.layout(), 5, rounds);
                mag.program(&cells[0].0, PlruInput::Reorder)
            })
            .collect();
        let lanes: Vec<(Machine, &Program)> =
            cells.into_iter().map(|(m, ri)| (m, &progs[ri])).collect();
        run_lanes_batched(&lanes)
    };
    let committed = results.iter().map(|r| r.committed).sum();
    let cfg = racer_cpu::CpuConfig::coffee_lake().with_load_recording();
    let mut out = Vec::new();
    for &tname in timers {
        for (ri, &rounds) in round_counts.iter().enumerate() {
            let mut zeros = Vec::new();
            let mut ones = Vec::new();
            for (ti, &t) in scored.iter().enumerate() {
                let mut timer = build_timer(tname, 0xBEEF ^ (t as u64).wrapping_mul(0x9E37));
                for bit in [false, true] {
                    let idx = (ri * scored.len() + ti) * 2 + usize::from(bit);
                    // Exactly `run_timed` on a zero-clock machine.
                    let obs = timer.measure(0.0, cfg.cycles_to_ns(results[idx].cycles));
                    if bit {
                        ones.push(obs);
                    } else {
                        zeros.push(obs);
                    }
                }
            }
            out.push(score_cell(tname, rounds, scored.len(), &zeros, &ones));
        }
    }
    (out, committed)
}

/// The fresh noisy machine of a (trial, bit, rounds) cell, with the
/// Figure 3.1 set state prepared and the raced lines warmed in bit order.
/// Pokes only — the machine's clock stays at zero.
fn prepared_machine(t: usize, bit: bool, rounds: usize) -> Machine {
    let mut m = Machine::noisy(t as u64 * 31 + u64::from(bit));
    let mag = PlruMagnifier::with(m.layout(), 5, rounds);
    mag.prepare(&mut m);
    let (a, b) = (mag.line_a(&m), mag.line_b(&m));
    if bit {
        m.warm(a);
        m.warm(b);
    } else {
        m.warm(b);
        m.warm(a);
    }
    m
}

/// Fold one (timer, rounds) cell's observations into a point. A shard
/// can own zero trials of a cell (more shards than trials): record
/// chance accuracy at weight zero so the merge ignores it.
fn score_cell(
    tname: &str,
    rounds: usize,
    scored: usize,
    zeros: &[f64],
    ones: &[f64],
) -> MitigationPoint {
    let accuracy = if scored == 0 {
        0.5
    } else {
        stats::best_threshold(zeros, ones).1
    };
    MitigationPoint {
        timer: tname.to_string(),
        rounds,
        accuracy,
        trials: scored,
    }
}

/// Render the sweep as a table (rows = timers, columns = round counts).
pub fn render(points: &[MitigationPoint], round_counts: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("timer");
    for r in round_counts {
        let _ = write!(s, "\t{r} rounds");
    }
    s.push('\n');
    let mut timers: Vec<&str> = points.iter().map(|p| p.timer.as_str()).collect();
    timers.dedup();
    for t in timers {
        let _ = write!(s, "{t}");
        for r in round_counts {
            let p = points
                .iter()
                .find(|p| p.timer == t && p.rounds == *r)
                .expect("cell present");
            let _ = write!(s, "\t{:.2}", p.accuracy);
        }
        s.push('\n');
    }
    s
}

/// JSON form of the timer-model × round-count sweep.
pub fn to_value(points: &[MitigationPoint]) -> racer_results::Value {
    racer_results::Value::Array(
        points
            .iter()
            .map(|p| {
                racer_results::Value::object()
                    .with("timer", p.timer.as_str())
                    .with("rounds", p.rounds)
                    .with("accuracy", p.accuracy)
                    .with("trials", p.trials)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enough_rounds_defeat_every_finite_resolution() {
        // 100 µs resolution: 1500 rounds (~18 µs diff) fail, 20000 rounds
        // (~240 µs) succeed — coarsening only raises the bar, never closes.
        let pts = sweep(&["100us"], &[1_500, 20_000], 4);
        let low = pts.iter().find(|p| p.rounds == 1_500).unwrap();
        let high = pts.iter().find(|p| p.rounds == 20_000).unwrap();
        assert!(
            high.accuracy > low.accuracy || high.accuracy == 1.0,
            "more magnification must help: {low:?} vs {high:?}"
        );
        assert!(
            high.accuracy > 0.9,
            "20k rounds must defeat 100 µs: {:.2}",
            high.accuracy
        );
    }

    #[test]
    fn five_microsecond_variants_all_fall_to_moderate_rounds() {
        let pts = sweep(&["5us", "5us+jitter", "fuzzy-5us"], &[4_000], 4);
        for p in &pts {
            assert!(
                p.accuracy > 0.85,
                "{} should fall to 4000 rounds: accuracy {:.2}",
                p.timer,
                p.accuracy
            );
        }
    }

    #[test]
    fn render_has_all_cells() {
        let pts = sweep(&["5us"], &[500, 1000], 2);
        let s = render(&pts, &[500, 1000]);
        assert!(s.contains("5us") && s.contains("500 rounds"));
    }

    #[test]
    fn shards_partition_the_trial_axis() {
        // Every cell exists in every shard; the scored trial counts of the
        // N shards sum to the full run's, and a shard owning no trials of
        // a cell reports chance accuracy at weight zero.
        let full = sweep(&["5us"], &[500], 3);
        assert_eq!(full[0].trials, 3);
        let shards: Vec<_> = (1..=4)
            .map(|k| sweep_sharded(&["5us"], &[500], 3, k, 4))
            .collect();
        let total: usize = shards.iter().map(|s| s[0].trials).sum();
        assert_eq!(total, 3, "4 shards of 3 trials cover each trial once");
        let empty = &shards[3][0];
        assert_eq!((empty.trials, empty.accuracy), (0, 0.5));
    }

    #[test]
    fn shard_one_of_one_is_the_full_sweep() {
        let full = sweep(&["5us"], &[1000], 2);
        let one = sweep_sharded(&["5us"], &[1000], 2, 1, 1);
        assert_eq!(full[0].accuracy, one[0].accuracy);
        assert_eq!(full[0].trials, one[0].trials);
    }

    #[test]
    fn stateful_timer_trials_are_shard_decomposable() {
        // The jitter timer's RNG stream is per-trial (seeded by trial
        // index), so a trial's transmissions are identical no matter which
        // sharding selected it: trial 0 alone, trial 0 as the 1/2 slice of
        // two, and trial 1 under two different shardings must all agree.
        for timer in ["5us+jitter", "fuzzy-5us"] {
            let full_t0 = sweep(&[timer], &[1000], 1);
            let shard_t0 = sweep_sharded(&[timer], &[1000], 2, 1, 2);
            assert_eq!(
                full_t0[0].accuracy, shard_t0[0].accuracy,
                "{timer}: trial 0 must not depend on the sharding"
            );
            let t1_of_2 = sweep_sharded(&[timer], &[1000], 2, 2, 2);
            let t1_of_3 = sweep_sharded(&[timer], &[1000], 3, 2, 3);
            assert_eq!(
                t1_of_2[0].accuracy, t1_of_3[0].accuracy,
                "{timer}: trial 1 must not depend on the trial-axis shape"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shard must satisfy")]
    fn invalid_shard_is_rejected() {
        let _ = sweep_sharded(&["5us"], &[500], 2, 3, 2);
    }

    #[test]
    fn batched_and_per_machine_paths_agree_exactly() {
        let timers = ["5us", "5us+jitter", "fuzzy-5us"];
        let rounds = [400, 1000];
        let (b, bc) = sweep_sharded_on(&timers, &rounds, 3, 1, 1, TrialPath::Batched);
        let (p, pc) = sweep_sharded_on(&timers, &rounds, 3, 1, 1, TrialPath::PerMachine);
        assert_eq!(b.len(), p.len());
        for (x, y) in b.iter().zip(&p) {
            assert_eq!(
                (x.timer.as_str(), x.rounds, x.trials),
                (y.timer.as_str(), y.rounds, y.trials)
            );
            assert_eq!(
                x.accuracy.to_bits(),
                y.accuracy.to_bits(),
                "cell ({}, {}) accuracies must be bit-identical",
                x.timer,
                x.rounds
            );
        }
        // The batched path runs the timer-independent cell grid once; the
        // per-machine plan re-runs it for every timer.
        assert!(bc > 0);
        assert_eq!(pc, bc * timers.len() as u64);
    }

    #[test]
    fn batched_shards_still_partition_the_trial_axis() {
        // Sharding applies before the grid is built: a shard's batched
        // grid covers exactly its own trials.
        let full = sweep(&["5us+jitter"], &[800], 4);
        let folded: Vec<_> = (1..=2)
            .map(|k| sweep_sharded(&["5us+jitter"], &[800], 4, k, 2))
            .collect();
        let total: usize = folded.iter().map(|s| s[0].trials).sum();
        assert_eq!(total, full[0].trials);
    }
}
