//! Window-size ablation: the §7.2 claim that the instruction window bounds
//! the racing gadget's measurable range ("the ROB capacity limits the
//! length of the ref path to 54, which in turn limits the largest execution
//! time that we can time").
//!
//! Sweeping the scheduler capacity shows the measurement reach scaling with
//! it — the gadget's reach is a *hardware window* property, not a gadget
//! property.

use crate::attacks::IlpTimer;
use crate::layout::Layout;
use crate::machine::Machine;
use crate::path::PathSpec;
use racer_cpu::CpuConfig;
use racer_isa::AluOp;
use racer_mem::HierarchyConfig;
use serde::{Deserialize, Serialize};

/// Measured reach for one scheduler size.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct WindowPoint {
    /// Scheduler (reservation-station) capacity.
    pub rs_size: usize,
    /// Largest ADD-chain target still measurable (ops).
    pub reach: usize,
}

/// For each scheduler size, find the largest ADD-chain target the ADD-ref
/// racing gadget can still time.
pub fn window_sweep(rs_sizes: &[usize], max_probe: usize) -> Vec<WindowPoint> {
    rs_sizes
        .iter()
        .map(|&rs_size| {
            let mut cpu_cfg = CpuConfig::coffee_lake().with_load_recording();
            cpu_cfg.rs_size = rs_size;
            let timer = IlpTimer::new(Layout::default());
            // A target is measurable iff some in-window reference outlasts
            // it; find the largest measurable length by scanning.
            let mut reach = 0;
            for target_len in (4..=max_probe).step_by(4) {
                let mut m = Machine::with(cpu_cfg, HierarchyConfig::small_plru());
                let target = PathSpec::op_chain(AluOp::Add, target_len);
                if timer.measure_ref_ops(&mut m, &target).is_some() {
                    reach = target_len;
                } else {
                    break;
                }
            }
            WindowPoint { rs_size, reach }
        })
        .collect()
}

/// Render the sweep.
pub fn render(points: &[WindowPoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("rs_size\treach (add ops)\n");
    for p in points {
        let _ = writeln!(s, "{}\t{}", p.rs_size, p.reach);
    }
    s
}

/// JSON form of the window sweep.
pub fn to_value(points: &[WindowPoint]) -> racer_results::Value {
    racer_results::Value::Array(
        points
            .iter()
            .map(|p| {
                racer_results::Value::object()
                    .with("rs_size", p.rs_size)
                    .with("reach", p.reach)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_scales_with_the_window() {
        let pts = window_sweep(&[32, 60, 120], 120);
        assert!(
            pts[0].reach < pts[1].reach && pts[1].reach < pts[2].reach,
            "a larger scheduler must extend the measurable range: {pts:?}"
        );
    }

    #[test]
    fn reach_is_a_sizable_fraction_of_the_window() {
        let pts = window_sweep(&[60], 120);
        let p = pts[0];
        // The reference, target and gadget overhead share the window; the
        // reach lands between a third and the whole of it.
        assert!(
            p.reach >= p.rs_size / 3 && p.reach <= p.rs_size,
            "reach {} vs window {}",
            p.reach,
            p.rs_size
        );
    }
}
