//! Scoring a candidate gadget: resolution, monotonicity, stealth.
//!
//! One candidate costs `targets.len()` traced runs, fanned through a
//! single [`Snapshot::run_many`] lockstep batch forked from a warmed
//! snapshot. Because the run is traced, the timer reading at each target
//! falls out of *one* run — the number of clock ops whose completion
//! cycle is ≤ the measured tail's — with no binary search and no repeat
//! trials (the simulator is deterministic).
//!
//! The three terms mirror what the repo already measures elsewhere:
//!
//! * **resolution** — least-squares slope of measured-chain duration
//!   against timer reading (cycles per clock tick), the
//!   `resolution_cycles_per_tick` of `smt_contention_eval`. Finer is
//!   better; the term is `1/(1+slope)`, 0 when the readings carry no
//!   usable slope.
//! * **monotonicity** — fraction of adjacent target pairs whose reading
//!   fails to increase: a timer whose reading does not grow with the
//!   measured length cannot rank events.
//! * **stealth** — the `detection_eval` hardware-counter classifiers run
//!   on the longest-target trace; each detector that flags the candidate
//!   costs 0.4 (so a gadget flagged by both keeps a 0.2 floor — visibly
//!   worse than any unflagged gadget, while preserving score ordering
//!   among flagged ones).

use super::template::GadgetTemplate;
use crate::experiments::detection::{backend_bound_detector, l1_miss_detector, CounterProfile};
use racer_cpu::engine::{Snapshot, SnapshotCache};
use racer_cpu::{workloads, CpuConfig, RunResult};
use racer_mem::HierarchyConfig;

/// L1-miss detector threshold (misses per kilo-instruction), the same
/// operating point `detection_eval` reports.
const L1_THRESHOLD_MPKI: f64 = 50.0;

/// How a candidate is measured: the target ladder, the clock budget, the
/// per-run cycle ceiling and the warmup depth of the shared snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FitnessConfig {
    /// Measured-length ladder (units of `measured_scale` ops).
    pub targets: Vec<usize>,
    /// Total clock ops per lowered program.
    pub clock_len: usize,
    /// Per-run cycle ceiling; a candidate that hits it is invalid.
    pub cycle_budget: u64,
    /// Warmup runs baked into the shared evaluation snapshot.
    pub warmup_runs: usize,
}

impl Default for FitnessConfig {
    fn default() -> Self {
        FitnessConfig {
            targets: vec![0, 1, 2, 3, 4],
            clock_len: 96,
            cycle_budget: 50_000,
            warmup_runs: 8,
        }
    }
}

/// The single-thread traced configuration every candidate runs under:
/// the baseline coffee-lake core with `RecordLevel::Trace` (the fitness
/// function reads completion cycles) and the cycle budget as a hard run
/// ceiling so a pathological candidate cannot stall a whole batch.
pub fn eval_cpu_config(cycle_budget: u64) -> CpuConfig {
    let mut cfg = CpuConfig::coffee_lake().with_trace();
    cfg.max_run_cycles = cycle_budget;
    cfg
}

impl FitnessConfig {
    /// The shared warmed evaluation snapshot, from the process-wide
    /// [`SnapshotCache`]: every candidate in a search (and every search
    /// in a process) forks the same machine, so per-candidate cost is
    /// the candidate's own runs and nothing else.
    pub fn snapshot(&self) -> Snapshot {
        let warm = workloads::alu_chain(32);
        SnapshotCache::global().warmed(
            eval_cpu_config(self.cycle_budget),
            HierarchyConfig::small_plru(),
            Some((&warm, self.warmup_runs)),
        )
    }
}

/// One (target, reading, duration) measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FitnessPoint {
    /// Measured-length target.
    pub target: usize,
    /// Timer reading: clock ops completed before the measured tail.
    pub reading: u64,
    /// Completion cycle of the measured tail (the true duration).
    pub duration: u64,
}

/// A scored candidate. All floats are exact deterministic functions of
/// the simulated runs — they serialize and round-trip bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct Fitness {
    /// Whether every run halted within the cycle budget.
    pub valid: bool,
    /// Cycles per clock tick (least-squares; 0.0 when the readings have
    /// no usable positive slope — a flat or inverted timer).
    pub resolution_cycles_per_tick: f64,
    /// Fraction of adjacent target pairs with non-increasing readings.
    pub monotonicity_error_rate: f64,
    /// Flagged by the L1-miss-density detector?
    pub l1_flagged: bool,
    /// Flagged by the backend-bound detector?
    pub backend_flagged: bool,
    /// Stealth term: 1.0 minus 0.4 per firing detector.
    pub stealth: f64,
    /// Total score: resolution term + monotonicity term + stealth.
    pub score: f64,
    /// The per-target measurements behind the terms.
    pub points: Vec<FitnessPoint>,
}

impl Fitness {
    /// The score of a candidate whose runs never finished cleanly.
    pub fn invalid() -> Fitness {
        Fitness {
            valid: false,
            resolution_cycles_per_tick: 0.0,
            monotonicity_error_rate: 1.0,
            l1_flagged: false,
            backend_flagged: false,
            stealth: 0.0,
            score: 0.0,
            points: Vec::new(),
        }
    }

    /// Resolution contribution to the score: `1/(1+cycles_per_tick)`,
    /// 0 when there is no usable slope. Monotone in fineness — a
    /// 1-cycle timer scores 0.5, a 13-cycle timer ~0.07.
    pub fn resolution_term(&self) -> f64 {
        if self.resolution_cycles_per_tick > 0.0 {
            1.0 / (1.0 + self.resolution_cycles_per_tick)
        } else {
            0.0
        }
    }

    /// Monotonicity contribution: 1 minus the error rate.
    pub fn monotonicity_term(&self) -> f64 {
        1.0 - self.monotonicity_error_rate
    }
}

/// Stealth score of a counter profile against the `detection_eval`
/// classifiers: starts at 1.0 and strictly decreases by 0.4 for each
/// detector that flags the run.
pub fn stealth_term(profile: &CounterProfile) -> f64 {
    let mut s = 1.0;
    if l1_miss_detector(profile, L1_THRESHOLD_MPKI) {
        s -= 0.4;
    }
    if backend_bound_detector(profile) {
        s -= 0.4;
    }
    s
}

/// Least-squares slope of `y` on `x`; `None` when fewer than two points
/// or all `x` coincide.
fn ls_slope(points: &[(f64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-9 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Completion cycle of the single committed dynamic instruction at `pc`
/// (candidate programs are straight-line, so the mapping is unique).
fn completion_by_pc(r: &RunResult, prog_len: usize) -> Vec<Option<u64>> {
    let mut by_pc = vec![None; prog_len];
    for rec in &r.trace {
        if rec.committed.is_some() && rec.pc < prog_len {
            by_pc[rec.pc] = rec.completed;
        }
    }
    by_pc
}

/// Score `tpl` under `cfg`, fanning its lowered target ladder through
/// one lockstep batch forked from `snap` (which must have been built by
/// [`FitnessConfig::snapshot`] for the same config).
pub fn evaluate(tpl: &GadgetTemplate, cfg: &FitnessConfig, snap: &Snapshot) -> Fitness {
    let lowered: Vec<_> = cfg
        .targets
        .iter()
        .map(|&t| tpl.lower(t, cfg.clock_len))
        .collect();
    let progs: Vec<_> = lowered.iter().map(|l| l.prog.clone()).collect();
    let runs = snap.run_many(&progs);
    if runs
        .iter()
        .any(|r| !r.halted || r.limit_hit || r.cycles > cfg.cycle_budget)
    {
        return Fitness::invalid();
    }
    let mut points = Vec::with_capacity(lowered.len());
    for ((l, r), &target) in lowered.iter().zip(&runs).zip(&cfg.targets) {
        let by_pc = completion_by_pc(r, l.prog.len());
        let Some(measured_done) = by_pc[l.measured_tail_pc] else {
            return Fitness::invalid();
        };
        let reading = l
            .clock_pcs
            .iter()
            .filter(|&&pc| by_pc[pc].is_some_and(|c| c <= measured_done))
            .count() as u64;
        points.push(FitnessPoint {
            target,
            reading,
            duration: measured_done,
        });
    }
    let xy: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.reading as f64, p.duration as f64))
        .collect();
    let resolution = match ls_slope(&xy) {
        Some(s) if s > 0.0 => s,
        _ => 0.0,
    };
    let pairs = points.len().saturating_sub(1);
    let errors = points
        .windows(2)
        .filter(|w| w[1].reading <= w[0].reading)
        .count();
    let monotonicity_error_rate = if pairs == 0 {
        0.0
    } else {
        errors as f64 / pairs as f64
    };
    // Stealth is judged on the longest target: the program a detector
    // would actually watch the attacker run.
    let profile = CounterProfile::from_run("candidate", runs.last().expect("non-empty ladder"));
    let l1_flagged = l1_miss_detector(&profile, L1_THRESHOLD_MPKI);
    let backend_flagged = backend_bound_detector(&profile);
    let stealth = stealth_term(&profile);
    let mut fitness = Fitness {
        valid: true,
        resolution_cycles_per_tick: resolution,
        monotonicity_error_rate,
        l1_flagged,
        backend_flagged,
        stealth,
        score: 0.0,
        points,
    };
    fitness.score = fitness.resolution_term() + fitness.monotonicity_term() + fitness.stealth;
    fitness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget_search::shipped::{fenced_dud, hand_written_baseline};

    fn eval(tpl: &GadgetTemplate) -> Fitness {
        let cfg = FitnessConfig::default();
        let snap = cfg.snapshot();
        evaluate(tpl, &cfg, &snap)
    }

    #[test]
    fn paper_racer_beats_the_fenced_dud_on_every_term() {
        let racer = eval(&hand_written_baseline());
        let dud = eval(&fenced_dud());
        assert!(racer.valid && dud.valid, "both oracles run to completion");
        assert!(
            racer.resolution_term() > dud.resolution_term(),
            "racer resolution {} vs dud {}",
            racer.resolution_cycles_per_tick,
            dud.resolution_cycles_per_tick
        );
        assert!(
            racer.monotonicity_term() > dud.monotonicity_term(),
            "racer mono err {} vs dud {}",
            racer.monotonicity_error_rate,
            dud.monotonicity_error_rate
        );
        assert!(
            racer.stealth > dud.stealth,
            "racer stealth {} vs dud {} (dud flags: l1={} backend={})",
            racer.stealth,
            dud.stealth,
            dud.l1_flagged,
            dud.backend_flagged
        );
        assert!(racer.score > dud.score);
    }

    #[test]
    fn the_racer_oracle_is_a_fine_monotone_stealthy_timer() {
        let racer = eval(&hand_written_baseline());
        assert!(racer.resolution_cycles_per_tick > 0.0);
        assert!(
            racer.resolution_cycles_per_tick < 3.0,
            "paper racer resolves at cycle scale, got {}",
            racer.resolution_cycles_per_tick
        );
        assert_eq!(racer.monotonicity_error_rate, 0.0);
        assert!(!racer.l1_flagged && !racer.backend_flagged);
        assert_eq!(racer.stealth, 1.0);
    }

    #[test]
    fn stealth_term_strictly_decreases_per_firing_detector() {
        let clean = CounterProfile {
            name: "clean".into(),
            l1_mpki: 0.0,
            ipc: 2.0,
            mispredict_pki: 0.0,
        };
        let backend_bound = CounterProfile {
            name: "backend".into(),
            l1_mpki: 0.0,
            ipc: 0.4,
            mispredict_pki: 0.0,
        };
        let missy = CounterProfile {
            name: "missy".into(),
            l1_mpki: 80.0,
            ipc: 2.0,
            mispredict_pki: 0.0,
        };
        assert_eq!(stealth_term(&clean), 1.0);
        // Each firing detector strictly lowers the term. (The two
        // detectors are mutually exclusive by construction: the
        // backend-bound classifier requires a low miss rate.)
        assert!(stealth_term(&backend_bound) < stealth_term(&clean));
        assert!(stealth_term(&missy) < stealth_term(&clean));
    }

    #[test]
    fn invalid_runs_score_zero() {
        let f = Fitness::invalid();
        assert!(!f.valid);
        assert_eq!(f.score, 0.0);
        assert_eq!(f.resolution_term(), 0.0);
    }

    #[test]
    fn ls_slope_matches_a_hand_line() {
        let s = ls_slope(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(ls_slope(&[(1.0, 1.0), (1.0, 2.0)]), None);
        assert_eq!(ls_slope(&[(1.0, 1.0)]), None);
    }
}
