//! Automated racing-gadget discovery (the BETA / WhisperFuzz direction).
//!
//! The paper hand-crafts its Hacky-Racer timers: pick the functional-unit
//! mix, tune the chain depths, bolt on a magnifier. BETA (black-box
//! exploration for timing attacks) and WhisperFuzz (coverage-guided
//! timing-vulnerability fuzzing) showed the same gadget space can be
//! *searched*. This module does exactly that on top of the deterministic
//! simulator and the batched lockstep engine:
//!
//! * [`template`] — a typed grammar over racing-gadget programs.
//!   [`GadgetTemplate`] captures the FU mix (measured/clock chain ops),
//!   race-arm layout, serializing fences, padding, cover-traffic noise
//!   chains and magnifier nesting, and lowers to straight-line
//!   `racer_isa` programs through the same `Asm` idiom as
//!   `racer_cpu::workloads::timer_race`. Sampling is driven by a seeded
//!   [`SplitMix64`], so every candidate is reproducible from
//!   `(template, seed)` alone.
//! * [`fitness`] — scores a template by lowering it at a ladder of target
//!   lengths and fanning the lowered programs through one warmed
//!   [`Snapshot::run_many`](racer_cpu::engine::Snapshot::run_many)
//!   lockstep batch. One traced run per target yields the timer reading
//!   directly (clock ops completed before the measured tail), so a
//!   candidate costs a handful of runs, not a binary search. Terms:
//!   resolution (cycles per clock tick, least-squares), monotonicity of
//!   reading vs. target, and stealth against the `detection_eval`
//!   hardware-counter classifiers.
//! * [`search`] — a MAP-Elites-style mutation/coverage loop: candidates
//!   are bred from a novelty archive keyed by a behaviour descriptor
//!   (resolution bucket × FU-pressure signature), evaluated in parallel
//!   with worker-count-independent ordering
//!   ([`racer_cpu::batch::par_map_workers`]), and checkpointed once per
//!   generation so long searches survive kills and resume byte-for-byte.
//! * [`shipped`] — the hand-written paper-racer baseline plus the top
//!   gadgets discovered by the committed search run, each carrying full
//!   provenance (template, seed, generation, fitness) and pinned by
//!   exact-equality regression tests.
//!
//! The `gadget_search_eval` scenario in `racer-lab` drives the loop end
//! to end and reports the archive, per-generation logs and the
//! discovered-vs-hand-written resolution ratio.

pub mod fitness;
pub mod rng;
pub mod search;
pub mod shipped;
pub mod template;

pub use fitness::{eval_cpu_config, evaluate, stealth_term, Fitness, FitnessConfig, FitnessPoint};
pub use rng::SplitMix64;
pub use search::{run_search, Candidate, Cell, GenerationLog, SearchConfig, SearchState};
pub use shipped::{
    fenced_dud, hand_written_baseline, shipped_gadgets, ExpectedFitness, ShippedGadget,
    QUICK_FITNESS_FLOOR,
};
pub use template::{ArmLayout, ChainOp, GadgetTemplate, LoweredGadget};
