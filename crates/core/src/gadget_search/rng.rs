//! Seeded sampling for reproducible candidate generation.
//!
//! SplitMix64 (Steele et al., the JDK `SplittableRandom` finalizer): a
//! 64-bit counter state pushed through a fixed avalanche. Two properties
//! matter here and both are structural: the sequence is a pure function
//! of the seed (every candidate in a search is reproducible from
//! `(config, seed)`), and the whole generator state is one `u64`, so a
//! checkpoint record captures it losslessly and a resumed search draws
//! the exact sequence an uninterrupted run would have.

/// Deterministic 64-bit generator with single-word state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed` (any value, including 0, is fine —
    /// the increment is odd, so the state never cycles short).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Rebuild a generator from a checkpointed [`state`](Self::state).
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The raw state word; serialize this to resume the exact sequence.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` via the multiply-shift reduction (no
    /// modulo bias spike at small `n`, branch-free, deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is an empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_reproducible_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_sequence() {
        let mut a = SplitMix64::new(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range_and_covers_it() {
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws should cover 0..7");
    }

    #[test]
    fn known_vector_pins_the_algorithm() {
        // First outputs for seed 0 — pins the exact avalanche constants
        // so a refactor cannot silently change every committed search.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }
}
