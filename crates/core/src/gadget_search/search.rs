//! The mutation/coverage loop: a MAP-Elites-style novelty archive over
//! behaviour cells, bred by single-field mutation, evaluated in
//! worker-count-independent parallel batches.
//!
//! Determinism contract (pinned by
//! `crates/core/tests/gadget_search_determinism.rs`): the final state —
//! archive, per-generation logs, rng position — is a pure function of
//! `(SearchConfig, seed)`. Candidate *generation* is serial (one rng),
//! candidate *evaluation* fans out through
//! [`par_map_workers`](racer_cpu::batch::par_map_workers) whose results
//! come back in input order regardless of scheduling, and archive
//! updates replay in candidate order. Nothing observes wall-clock or
//! thread identity.
//!
//! The whole state serializes to a [`Value`] and back bit-exactly
//! (floats survive via shortest-roundtrip formatting; the rng word as a
//! hex string since `Value::Int` is `i64`), which is what makes
//! per-generation checkpoint/resume converge byte-for-byte with an
//! uninterrupted run.

use std::collections::BTreeMap;

use super::fitness::{evaluate, Fitness, FitnessConfig, FitnessPoint};
use super::rng::SplitMix64;
use super::template::{ArmLayout, ChainOp, GadgetTemplate};
use racer_cpu::batch::{max_threads, par_map_workers};
use racer_cpu::engine::Snapshot;
use racer_results::Value;

/// Behaviour-descriptor cell: `(resolution bucket, FU-pressure
/// signature)`. Two candidates in the same cell are behavioural
/// duplicates; the archive keeps the better-scoring one.
pub type Cell = (u8, u8);

/// Resolution bucket edges (cycles per tick): ≤1.25 is bucket 0 (a
/// cycle-accurate timer), each doubling coarser is the next bucket, and
/// no-usable-slope candidates land in the top bucket.
fn resolution_bucket(f: &Fitness) -> u8 {
    if f.resolution_cycles_per_tick <= 0.0 {
        return 7;
    }
    let edges = [1.25, 2.0, 4.0, 8.0, 16.0, 32.0];
    edges
        .iter()
        .position(|&e| f.resolution_cycles_per_tick <= e)
        .unwrap_or(6) as u8
}

/// The behaviour descriptor a candidate is archived under.
pub fn descriptor(tpl: &GadgetTemplate, f: &Fitness) -> Cell {
    (resolution_bucket(f), tpl.fu_signature())
}

/// Search hyper-parameters. `workers == 0` means use
/// [`max_threads`] (the `RACER_BATCH_THREADS`-aware default); any value
/// yields identical results, only wall-clock differs.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchConfig {
    /// Seed for the one sampling rng.
    pub seed: u64,
    /// Candidates evaluated per generation.
    pub population: usize,
    /// Generations to run.
    pub generations: u32,
    /// How candidates are measured.
    pub fitness: FitnessConfig,
    /// Evaluation worker threads (0 = auto).
    pub workers: usize,
}

/// An archived candidate with its provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Birth order across the whole search (breeding provenance).
    pub id: u64,
    /// Generation the candidate was evaluated in.
    pub generation: u32,
    /// The genome.
    pub template: GadgetTemplate,
    /// Its score.
    pub fitness: Fitness,
}

/// Per-generation progress record (the "generation log" artifact).
#[derive(Clone, Debug, PartialEq)]
pub struct GenerationLog {
    /// Generation index.
    pub generation: u32,
    /// Candidates evaluated.
    pub evaluated: u32,
    /// Candidates whose runs did not finish cleanly.
    pub invalid: u32,
    /// Archive cells first filled this generation.
    pub new_cells: u32,
    /// Occupied cells improved (strictly better score) this generation.
    pub improved: u32,
    /// Best score in the archive after the generation.
    pub best_score: f64,
    /// Occupied cells after the generation.
    pub archive_cells: u32,
}

/// The complete, serializable search state.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchState {
    /// The one sampling rng (breeding draws only; evaluation is
    /// deterministic and draws nothing).
    pub rng: SplitMix64,
    /// Next generation index to run.
    pub generation: u32,
    /// Next candidate id.
    pub next_id: u64,
    /// The novelty archive: best candidate per behaviour cell.
    /// `BTreeMap` so every iteration order in the loop is sorted —
    /// deterministic parent selection and serialization for free.
    pub archive: BTreeMap<Cell, Candidate>,
    /// One entry per completed generation.
    pub log: Vec<GenerationLog>,
}

impl SearchState {
    /// Fresh state for `seed`; no generations run yet.
    pub fn new(seed: u64) -> SearchState {
        SearchState {
            rng: SplitMix64::new(seed),
            generation: 0,
            next_id: 0,
            archive: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// The best archived candidate (highest score; ties break to the
    /// earliest id so the answer never depends on map order).
    pub fn best(&self) -> Option<&Candidate> {
        self.archive.values().max_by(|a, b| {
            a.fitness
                .score
                .total_cmp(&b.fitness.score)
                .then(b.id.cmp(&a.id))
        })
    }

    /// Run one generation: breed `population` candidates (3:1
    /// mutation-of-an-archived-parent vs. fresh sample once the archive
    /// is non-empty), evaluate them in parallel, fold them into the
    /// archive in candidate order, and append the generation log.
    pub fn step(&mut self, cfg: &SearchConfig, snap: &Snapshot) {
        let parent_cells: Vec<Cell> = self.archive.keys().copied().collect();
        let mut templates = Vec::with_capacity(cfg.population);
        for _ in 0..cfg.population {
            let tpl = if parent_cells.is_empty() || self.rng.below(4) == 0 {
                GadgetTemplate::sample(&mut self.rng)
            } else {
                let cell = parent_cells[self.rng.below(parent_cells.len() as u64) as usize];
                self.archive[&cell].template.mutate(&mut self.rng)
            };
            templates.push(tpl);
        }
        let workers = if cfg.workers == 0 {
            max_threads()
        } else {
            cfg.workers
        };
        let scores = par_map_workers(&templates, workers, |tpl| evaluate(tpl, &cfg.fitness, snap));
        let (mut invalid, mut new_cells, mut improved) = (0u32, 0u32, 0u32);
        for (template, fitness) in templates.into_iter().zip(scores) {
            let id = self.next_id;
            self.next_id += 1;
            if !fitness.valid {
                invalid += 1;
                continue;
            }
            let cell = descriptor(&template, &fitness);
            let candidate = Candidate {
                id,
                generation: self.generation,
                template,
                fitness,
            };
            match self.archive.get(&cell) {
                None => {
                    new_cells += 1;
                    self.archive.insert(cell, candidate);
                }
                Some(existing) if candidate.fitness.score > existing.fitness.score => {
                    improved += 1;
                    self.archive.insert(cell, candidate);
                }
                Some(_) => {}
            }
        }
        self.log.push(GenerationLog {
            generation: self.generation,
            evaluated: cfg.population as u32,
            invalid,
            new_cells,
            improved,
            best_score: self.best().map_or(0.0, |c| c.fitness.score),
            archive_cells: self.archive.len() as u32,
        });
        self.generation += 1;
    }

    /// Serialize to a [`Value`] that [`from_value`](Self::from_value)
    /// inverts bit-exactly (the checkpoint payload and the scenario's
    /// archive/log sections share this layout).
    pub fn to_value(&self) -> Value {
        Value::object()
            .with("rng", format!("{:#018x}", self.rng.state()))
            .with("generation", i64::from(self.generation))
            .with("next_id", self.next_id as i64)
            .with(
                "archive",
                Value::Array(self.archive.values().map(candidate_to_value).collect()),
            )
            .with(
                "log",
                Value::Array(self.log.iter().map(log_to_value).collect()),
            )
    }

    /// Rebuild a state serialized by [`to_value`](Self::to_value);
    /// `None` on any schema mismatch (a caller should treat that as "no
    /// usable checkpoint", not corruption — corruption is the journal
    /// layer's concern).
    pub fn from_value(v: &Value) -> Option<SearchState> {
        let rng_hex = v.get("rng")?.as_str()?;
        let rng =
            SplitMix64::from_state(u64::from_str_radix(rng_hex.strip_prefix("0x")?, 16).ok()?);
        let generation = u32::try_from(v.get("generation")?.as_i64()?).ok()?;
        let next_id = v.get("next_id")?.as_i64()? as u64;
        let mut archive = BTreeMap::new();
        for cv in v.get("archive")?.as_array()? {
            let (cell, cand) = candidate_from_value(cv)?;
            archive.insert(cell, cand);
        }
        let mut log = Vec::new();
        for lv in v.get("log")?.as_array()? {
            log.push(log_from_value(lv)?);
        }
        Some(SearchState {
            rng,
            generation,
            next_id,
            archive,
            log,
        })
    }
}

/// Run a full search from scratch: build the shared snapshot once, then
/// step through every generation.
pub fn run_search(cfg: &SearchConfig) -> SearchState {
    let snap = cfg.fitness.snapshot();
    let mut state = SearchState::new(cfg.seed);
    while state.generation < cfg.generations {
        state.step(cfg, &snap);
    }
    state
}

/// Template serialization — stable field names, part of the checkpoint
/// and provenance format.
pub fn template_to_value(t: &GadgetTemplate) -> Value {
    Value::object()
        .with("measured_op", t.measured_op.name())
        .with("measured_scale", i64::from(t.measured_scale))
        .with("clock_op", t.clock_op.name())
        .with("layout", t.layout.name())
        .with("fences", i64::from(t.fences))
        .with("pad_nops", i64::from(t.pad_nops))
        .with("noise_chains", i64::from(t.noise_chains))
        .with("rounds", i64::from(t.rounds))
}

/// Inverse of [`template_to_value`].
pub fn template_from_value(v: &Value) -> Option<GadgetTemplate> {
    Some(GadgetTemplate {
        measured_op: ChainOp::from_name(v.get("measured_op")?.as_str()?)?,
        measured_scale: v.get("measured_scale")?.as_i64()? as u32,
        clock_op: ChainOp::from_name(v.get("clock_op")?.as_str()?)?,
        layout: ArmLayout::from_name(v.get("layout")?.as_str()?)?,
        fences: v.get("fences")?.as_i64()? as u32,
        pad_nops: v.get("pad_nops")?.as_i64()? as u32,
        noise_chains: v.get("noise_chains")?.as_i64()? as u32,
        rounds: v.get("rounds")?.as_i64()? as u32,
    })
}

/// Fitness serialization (shared with the scenario payload).
pub fn fitness_to_value(f: &Fitness) -> Value {
    Value::object()
        .with("valid", f.valid)
        .with("resolution_cycles_per_tick", f.resolution_cycles_per_tick)
        .with("monotonicity_error_rate", f.monotonicity_error_rate)
        .with("l1_flagged", f.l1_flagged)
        .with("backend_flagged", f.backend_flagged)
        .with("stealth", f.stealth)
        .with("score", f.score)
        .with(
            "points",
            Value::Array(
                f.points
                    .iter()
                    .map(|p| {
                        Value::object()
                            .with("target", p.target as i64)
                            .with("reading", p.reading as i64)
                            .with("duration", p.duration as i64)
                    })
                    .collect(),
            ),
        )
}

/// Inverse of [`fitness_to_value`].
pub fn fitness_from_value(v: &Value) -> Option<Fitness> {
    let mut points = Vec::new();
    for pv in v.get("points")?.as_array()? {
        points.push(FitnessPoint {
            target: pv.get("target")?.as_i64()? as usize,
            reading: pv.get("reading")?.as_i64()? as u64,
            duration: pv.get("duration")?.as_i64()? as u64,
        });
    }
    Some(Fitness {
        valid: v.get("valid")?.as_bool()?,
        resolution_cycles_per_tick: v.get("resolution_cycles_per_tick")?.as_f64()?,
        monotonicity_error_rate: v.get("monotonicity_error_rate")?.as_f64()?,
        l1_flagged: v.get("l1_flagged")?.as_bool()?,
        backend_flagged: v.get("backend_flagged")?.as_bool()?,
        stealth: v.get("stealth")?.as_f64()?,
        score: v.get("score")?.as_f64()?,
        points,
    })
}

fn candidate_to_value(c: &Candidate) -> Value {
    let cell = descriptor(&c.template, &c.fitness);
    Value::object()
        .with(
            "cell",
            Value::Array(vec![
                Value::Int(i64::from(cell.0)),
                Value::Int(i64::from(cell.1)),
            ]),
        )
        .with("id", c.id as i64)
        .with("generation", i64::from(c.generation))
        .with("template", template_to_value(&c.template))
        .with("fitness", fitness_to_value(&c.fitness))
}

fn candidate_from_value(v: &Value) -> Option<(Cell, Candidate)> {
    let cells = v.get("cell")?.as_array()?;
    let cell = (
        u8::try_from(cells.first()?.as_i64()?).ok()?,
        u8::try_from(cells.get(1)?.as_i64()?).ok()?,
    );
    let cand = Candidate {
        id: v.get("id")?.as_i64()? as u64,
        generation: u32::try_from(v.get("generation")?.as_i64()?).ok()?,
        template: template_from_value(v.get("template")?)?,
        fitness: fitness_from_value(v.get("fitness")?)?,
    };
    Some((cell, cand))
}

fn log_to_value(l: &GenerationLog) -> Value {
    Value::object()
        .with("generation", i64::from(l.generation))
        .with("evaluated", i64::from(l.evaluated))
        .with("invalid", i64::from(l.invalid))
        .with("new_cells", i64::from(l.new_cells))
        .with("improved", i64::from(l.improved))
        .with("best_score", l.best_score)
        .with("archive_cells", i64::from(l.archive_cells))
}

fn log_from_value(v: &Value) -> Option<GenerationLog> {
    Some(GenerationLog {
        generation: u32::try_from(v.get("generation")?.as_i64()?).ok()?,
        evaluated: u32::try_from(v.get("evaluated")?.as_i64()?).ok()?,
        invalid: u32::try_from(v.get("invalid")?.as_i64()?).ok()?,
        new_cells: u32::try_from(v.get("new_cells")?.as_i64()?).ok()?,
        improved: u32::try_from(v.get("improved")?.as_i64()?).ok()?,
        best_score: v.get("best_score")?.as_f64()?,
        archive_cells: u32::try_from(v.get("archive_cells")?.as_i64()?).ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> SearchConfig {
        SearchConfig {
            seed,
            population: 8,
            generations: 2,
            fitness: FitnessConfig {
                targets: vec![0, 1, 2],
                clock_len: 48,
                cycle_budget: 50_000,
                warmup_runs: 2,
            },
            workers: 0,
        }
    }

    #[test]
    fn search_fills_the_archive_and_logs_every_generation() {
        let cfg = tiny_config(1);
        let state = run_search(&cfg);
        assert_eq!(state.generation, 2);
        assert_eq!(state.log.len(), 2);
        assert_eq!(state.next_id, 16);
        assert!(!state.archive.is_empty(), "some candidate must be valid");
        assert!(state.best().is_some());
    }

    #[test]
    fn state_roundtrips_through_value_exactly() {
        let cfg = tiny_config(2);
        let state = run_search(&cfg);
        let v = state.to_value();
        let back = SearchState::from_value(&v).expect("roundtrip parses");
        assert_eq!(back, state);
        // And through the actual JSON text layer, which is what the
        // checkpoint journal stores.
        let text = v.to_pretty();
        let reparsed = Value::parse(&text).expect("valid JSON");
        let back2 = SearchState::from_value(&reparsed).expect("reparse");
        assert_eq!(back2, state);
    }

    #[test]
    fn stepwise_equals_run_search() {
        let cfg = tiny_config(3);
        let whole = run_search(&cfg);
        let snap = cfg.fitness.snapshot();
        let mut stepped = SearchState::new(cfg.seed);
        while stepped.generation < cfg.generations {
            stepped.step(&cfg, &snap);
        }
        assert_eq!(stepped, whole);
    }

    #[test]
    fn resolution_buckets_are_ordered() {
        let mut f = Fitness::invalid();
        assert_eq!(resolution_bucket(&f), 7);
        f.resolution_cycles_per_tick = 1.0;
        assert_eq!(resolution_bucket(&f), 0);
        f.resolution_cycles_per_tick = 3.0;
        assert_eq!(resolution_bucket(&f), 2);
        f.resolution_cycles_per_tick = 100.0;
        assert_eq!(resolution_bucket(&f), 6);
    }
}
