//! The hand-written oracle gadgets and the shipped search discoveries.
//!
//! Two hand-written templates anchor the fitness scale:
//!
//! * [`hand_written_baseline`] — the paper's racer transcribed into the
//!   grammar: a serial DIV measured chain interleaved with a serial ADD
//!   clock, plus cover-traffic chains so the counter profile does not
//!   look backend-bound. This is the "best hand-written racer" the
//!   acceptance bar compares discovered gadgets against.
//! * [`fenced_dud`] — the anti-gadget: the measured chain fully fenced
//!   and the clock emitted first, so serialization destroys the race.
//!   Every fitness term must rank it strictly below the baseline
//!   (pinned in `fitness::tests`).
//!
//! [`shipped_gadgets`] are the top candidates from the committed search
//! run (`gadget_search_eval` quick preset, seed 9), each with full
//! provenance and the exact fitness the committed simulator assigns it.
//! `crates/core/tests/gadget_search_determinism.rs` re-evaluates each
//! one and asserts bit-equality — a simulator change that moves any
//! shipped number is visible in review, like a golden file.

use super::fitness::{evaluate, Fitness, FitnessConfig};
use super::template::{ArmLayout, ChainOp, GadgetTemplate};

/// The paper racer in template form (see module docs).
pub fn hand_written_baseline() -> GadgetTemplate {
    GadgetTemplate {
        measured_op: ChainOp::Div,
        measured_scale: 2,
        clock_op: ChainOp::Add,
        layout: ArmLayout::Interleaved,
        fences: 0,
        pad_nops: 0,
        noise_chains: 2,
        rounds: 1,
    }
}

/// The serialized anti-gadget (see module docs).
pub fn fenced_dud() -> GadgetTemplate {
    GadgetTemplate {
        measured_op: ChainOp::Div,
        measured_scale: 1,
        clock_op: ChainOp::Add,
        layout: ArmLayout::ClockFirst,
        fences: 2,
        pad_nops: 0,
        noise_chains: 0,
        rounds: 1,
    }
}

/// Fitness floor the quick-preset search must clear in CI
/// (`gadget-search-smoke`): the committed quick run's best score, rounded
/// down — a search or simulator regression that loses the good gadgets
/// trips the job.
pub const QUICK_FITNESS_FLOOR: f64 = 2.4;

/// A discovered gadget shipped with provenance.
#[derive(Clone, Debug)]
pub struct ShippedGadget {
    /// Stable name (report key).
    pub name: &'static str,
    /// Search seed it was discovered under.
    pub seed: u64,
    /// Generation it entered the archive.
    pub generation: u32,
    /// Birth id within the search.
    pub id: u64,
    /// The genome.
    pub template: GadgetTemplate,
    /// Exact fitness under [`FitnessConfig::default`] on the committed
    /// simulator (regression-pinned).
    pub expected: ExpectedFitness,
}

/// The pinned fitness numbers of a shipped gadget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpectedFitness {
    /// Cycles per clock tick.
    pub resolution_cycles_per_tick: f64,
    /// Adjacent-pair monotonicity error rate.
    pub monotonicity_error_rate: f64,
    /// Stealth term.
    pub stealth: f64,
    /// Total score.
    pub score: f64,
}

impl ExpectedFitness {
    /// The pinned subset of a full [`Fitness`].
    pub fn of(f: &Fitness) -> ExpectedFitness {
        ExpectedFitness {
            resolution_cycles_per_tick: f.resolution_cycles_per_tick,
            monotonicity_error_rate: f.monotonicity_error_rate,
            stealth: f.stealth,
            score: f.score,
        }
    }
}

impl ShippedGadget {
    /// Re-evaluate this gadget under the default fitness config.
    pub fn evaluate(&self) -> Fitness {
        let cfg = FitnessConfig::default();
        let snap = cfg.snapshot();
        evaluate(&self.template, &cfg, &snap)
    }
}

/// The committed discoveries: the top of the `gadget_search_eval` quick
/// preset's final archive (seed 9, 8 generations × 256 candidates),
/// chosen for FU diversity. All three are perfect cycle-resolution
/// timers (duration tracks reading 1:1) that no detector flags — the
/// search both rediscovers the paper's divide racer and finds shapes
/// the paper never wrote down (a nested all-ADD racer).
pub fn shipped_gadgets() -> Vec<ShippedGadget> {
    let perfect = ExpectedFitness {
        resolution_cycles_per_tick: 1.0,
        monotonicity_error_rate: 0.0,
        stealth: 1.0,
        score: 2.5,
    };
    vec![
        ShippedGadget {
            // The search's overall best pick (earliest id at the top
            // score): an all-ADD timer — measured chain, clock and
            // noise on the same FU — nested two rounds. No divider
            // pressure at all, which defeats any port-watching
            // heuristic tuned for the paper's divide racer.
            name: "discovered-add-nested",
            seed: 9,
            generation: 0,
            id: 164,
            template: GadgetTemplate {
                measured_op: ChainOp::Add,
                measured_scale: 1,
                clock_op: ChainOp::Add,
                layout: ArmLayout::Interleaved,
                fences: 0,
                pad_nops: 0,
                noise_chains: 2,
                rounds: 2,
            },
            expected: perfect,
        },
        ShippedGadget {
            // The paper's racer, rediscovered from scratch: serial DIV
            // measured chain against an interleaved ADD clock, one
            // cover chain keeping IPC above the backend-bound bar.
            name: "discovered-div-racer",
            seed: 9,
            generation: 3,
            id: 978,
            template: GadgetTemplate {
                measured_op: ChainOp::Div,
                measured_scale: 1,
                clock_op: ChainOp::Add,
                layout: ArmLayout::Interleaved,
                fences: 0,
                pad_nops: 0,
                noise_chains: 1,
                rounds: 1,
            },
            expected: perfect,
        },
        ShippedGadget {
            // A pipelined-multiply measured chain (3-cycle latency per
            // op) still read at cycle resolution by the ADD clock.
            name: "discovered-mul-padded",
            seed: 9,
            generation: 6,
            id: 1592,
            template: GadgetTemplate {
                measured_op: ChainOp::Mul,
                measured_scale: 2,
                clock_op: ChainOp::Add,
                layout: ArmLayout::Interleaved,
                fences: 0,
                pad_nops: 4,
                noise_chains: 2,
                rounds: 1,
            },
            expected: perfect,
        },
    ]
}
