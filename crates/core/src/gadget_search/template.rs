//! The racing-gadget template grammar and its lowering to programs.
//!
//! A [`GadgetTemplate`] is the searchable description of a Hacky-Racer
//! timer: which functional unit the *measured* chain occupies and how
//! many ops per target unit, which unit the *clock* chain ticks on, how
//! the two arms are laid out in program order, how much serialization
//! (fences) and padding surrounds the measured chain, how many
//! independent cover-traffic chains run alongside, and how many rounds
//! the race body repeats (arithmetic-magnifier nesting, §6.4: the clock
//! keeps accumulating across rounds).
//!
//! `lower(target, clock_len)` assembles the straight-line program for a
//! given measured length, mirroring `racer_cpu::workloads::timer_race`:
//! a serial measured chain races a serial clock chain, and the timer
//! reading is how many clock ops completed before the measured tail did.
//! Lowering is total — every template in the sampled space produces a
//! program that assembles, runs branch-free and memory-free, and halts —
//! which `crates/core/tests/gadget_gen.rs` pins across all three
//! execution backends.

use super::rng::SplitMix64;
use racer_isa::{Asm, Instr, Program, Reg};

/// Serial-chain operation: the FU the chain occupies and its per-op
/// latency class (ADD 1 cycle, MUL 3 cycles pipelined, DIV non-pipelined
/// double-digit — the paper's measured/clock building blocks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainOp {
    /// 1-cycle ALU add: the paper's clock chain.
    Add,
    /// 3-cycle pipelined multiply.
    Mul,
    /// Non-pipelined divide: the paper's measured chain.
    Div,
}

impl ChainOp {
    /// Every grammar value, in sampling order.
    pub const ALL: [ChainOp; 3] = [ChainOp::Add, ChainOp::Mul, ChainOp::Div];

    /// Stable lowercase name (serialization / provenance).
    pub fn name(self) -> &'static str {
        match self {
            ChainOp::Add => "add",
            ChainOp::Mul => "mul",
            ChainOp::Div => "div",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<ChainOp> {
        Self::ALL.into_iter().find(|op| op.name() == name)
    }

    fn index(self) -> u8 {
        Self::ALL
            .iter()
            .position(|&op| op == self)
            .expect("ALL is total") as u8
    }

    /// Emit one serial chain step `r = r op k` (constants chosen so DIV
    /// never divides by zero and the chain stays data-dependent).
    fn emit(self, asm: &mut Asm, r: Reg) {
        match self {
            ChainOp::Add => asm.addi(r, r, 1),
            ChainOp::Mul => asm.mul(r, r, 3i64),
            ChainOp::Div => asm.div(r, r, 3i64),
        };
    }
}

/// Program-order layout of the two race arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArmLayout {
    /// Clock ops interleaved proportionally between measured ops — the
    /// paper's shape: both chains feed the front end from cycle one.
    Interleaved,
    /// All clock ops first, then the measured chain.
    ClockFirst,
    /// The measured chain first, then all clock ops.
    MeasuredFirst,
}

impl ArmLayout {
    /// Every grammar value, in sampling order.
    pub const ALL: [ArmLayout; 3] = [
        ArmLayout::Interleaved,
        ArmLayout::ClockFirst,
        ArmLayout::MeasuredFirst,
    ];

    /// Stable name (serialization / provenance).
    pub fn name(self) -> &'static str {
        match self {
            ArmLayout::Interleaved => "interleaved",
            ArmLayout::ClockFirst => "clock-first",
            ArmLayout::MeasuredFirst => "measured-first",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<ArmLayout> {
        Self::ALL.into_iter().find(|l| l.name() == name)
    }
}

/// Number of independently sampled template fields (mutation picks one).
const FIELDS: usize = 8;

/// A point in the racing-gadget grammar. The sampled space is small
/// enough to enumerate (~9k points) but large enough that a 2k-candidate
/// search covers it only partially — coverage-guided breeding matters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GadgetTemplate {
    /// FU of the measured (timed) chain.
    pub measured_op: ChainOp,
    /// Measured ops emitted per target unit (1..=3): chain-depth knob.
    pub measured_scale: u32,
    /// FU of the clock chain (its per-op latency is the tick size).
    pub clock_op: ChainOp,
    /// Program-order layout of the arms.
    pub layout: ArmLayout,
    /// Serializing fences after each measured op (0..=2) — the
    /// countermeasure-interplay knob; fences drain the pipeline and
    /// should destroy the race.
    pub fences: u32,
    /// Leading no-op padding (0..=7): dispatch-alignment knob.
    pub pad_nops: u32,
    /// Independent 1-cycle cover-traffic chains (0..=3) raising IPC so
    /// the gadget does not look backend-bound to a counter classifier.
    pub noise_chains: u32,
    /// Race-body rounds (1..=3): §6.4-style nesting, clock accumulates.
    pub rounds: u32,
}

/// A template lowered at one target length: the program plus the pc map
/// the fitness function reads the race outcome through.
pub struct LoweredGadget {
    /// The assembled straight-line program (always halts).
    pub prog: Program,
    /// pc of the measured chain's final op (its init `mov` when
    /// `target == 0`).
    pub measured_tail_pc: usize,
    /// pcs of every clock op, in emission order; the timer reading at
    /// this target is how many of them complete before the measured
    /// tail does.
    pub clock_pcs: Vec<usize>,
}

impl GadgetTemplate {
    /// Draw a template uniformly from the grammar. Field order is fixed
    /// and part of the determinism contract: `(seed) → template` must
    /// never change silently (the search's committed provenance depends
    /// on it).
    pub fn sample(rng: &mut SplitMix64) -> GadgetTemplate {
        let mut t = GadgetTemplate {
            measured_op: ChainOp::Add,
            measured_scale: 1,
            clock_op: ChainOp::Add,
            layout: ArmLayout::Interleaved,
            fences: 0,
            pad_nops: 0,
            noise_chains: 0,
            rounds: 1,
        };
        for field in 0..FIELDS {
            t.resample_field(field, rng);
        }
        t
    }

    /// One mutation step: resample a single uniformly chosen field
    /// (which may redraw its current value — a deliberate no-op
    /// mutation, cheaper than rejection loops and still ergodic).
    pub fn mutate(&self, rng: &mut SplitMix64) -> GadgetTemplate {
        let mut t = *self;
        let field = rng.below(FIELDS as u64) as usize;
        t.resample_field(field, rng);
        t
    }

    fn resample_field(&mut self, field: usize, rng: &mut SplitMix64) {
        match field {
            0 => self.measured_op = ChainOp::ALL[rng.below(3) as usize],
            1 => self.measured_scale = 1 + rng.below(3) as u32,
            2 => self.clock_op = ChainOp::ALL[rng.below(3) as usize],
            3 => self.layout = ArmLayout::ALL[rng.below(3) as usize],
            4 => self.fences = rng.below(3) as u32,
            5 => self.pad_nops = rng.below(8) as u32,
            6 => self.noise_chains = rng.below(4) as u32,
            7 => self.rounds = 1 + rng.below(3) as u32,
            _ => unreachable!("field index bounded by FIELDS"),
        }
    }

    /// The FU-pressure half of the behaviour descriptor: which units the
    /// arms occupy, how much cover traffic runs beside them, and whether
    /// fences / nesting reshape the pipeline pressure. Two templates
    /// with the same signature stress the backend the same way.
    pub fn fu_signature(&self) -> u8 {
        self.measured_op.index()
            | (self.clock_op.index() << 2)
            | ((self.noise_chains.min(3) as u8) << 4)
            | (u8::from(self.fences > 0) << 6)
            | (u8::from(self.rounds > 1) << 7)
    }

    /// Lower at `target` measured units with `clock_len` total clock
    /// ops. The measured chain is `target × measured_scale` ops per
    /// round; clock ops are split evenly across rounds (remainder to the
    /// last) so nesting never changes the total tick budget.
    pub fn lower(&self, target: usize, clock_len: usize) -> LoweredGadget {
        let mut asm = Asm::new();
        let m = asm.reg();
        let c = asm.reg();
        let noise: Vec<Reg> = (0..self.noise_chains).map(|_| asm.reg()).collect();
        for _ in 0..self.pad_nops {
            asm.emit(Instr::Nop);
        }
        let mut measured_tail_pc = asm.position();
        asm.mov_imm(m, 1 << 20);
        asm.mov_imm(c, 0);
        for &n in &noise {
            asm.mov_imm(n, 0);
        }
        let mut clock_pcs = Vec::with_capacity(clock_len);
        let mut noise_rr = 0usize;
        let measured_per_round = target * self.measured_scale as usize;
        let rounds = self.rounds as usize;
        for round in 0..rounds {
            let clock_this_round = if round + 1 == rounds {
                clock_len - (clock_len / rounds) * (rounds - 1)
            } else {
                clock_len / rounds
            };
            let mut emit_clock = |asm: &mut Asm, clock_pcs: &mut Vec<usize>| {
                clock_pcs.push(asm.position());
                self.clock_op.emit(asm, c);
                // Cover traffic rides the clock: one independent add per
                // tick, rotating across chains, so noise scales with the
                // program rather than with the (searched) chain depths.
                if !noise.is_empty() {
                    let n = noise[noise_rr % noise.len()];
                    noise_rr += 1;
                    asm.addi(n, n, 1);
                }
            };
            let emit_measured = |asm: &mut Asm, tail: &mut usize| {
                *tail = asm.position();
                self.measured_op.emit(asm, m);
                for _ in 0..self.fences {
                    asm.fence();
                }
            };
            match self.layout {
                ArmLayout::ClockFirst => {
                    for _ in 0..clock_this_round {
                        emit_clock(&mut asm, &mut clock_pcs);
                    }
                    for _ in 0..measured_per_round {
                        emit_measured(&mut asm, &mut measured_tail_pc);
                    }
                }
                ArmLayout::MeasuredFirst => {
                    for _ in 0..measured_per_round {
                        emit_measured(&mut asm, &mut measured_tail_pc);
                    }
                    for _ in 0..clock_this_round {
                        emit_clock(&mut asm, &mut clock_pcs);
                    }
                }
                ArmLayout::Interleaved => {
                    // Proportional interleave, same arithmetic as
                    // workloads::timer_race_phased.
                    let mut emitted_clock = 0usize;
                    for d in 0..measured_per_round {
                        emit_measured(&mut asm, &mut measured_tail_pc);
                        let want = clock_this_round * (d + 1) / measured_per_round.max(1);
                        while emitted_clock < want {
                            emit_clock(&mut asm, &mut clock_pcs);
                            emitted_clock += 1;
                        }
                    }
                    while emitted_clock < clock_this_round {
                        emit_clock(&mut asm, &mut clock_pcs);
                        emitted_clock += 1;
                    }
                }
            }
        }
        asm.halt();
        let prog = asm
            .assemble()
            .expect("gadget templates lower to valid programs");
        debug_assert_eq!(clock_pcs.len(), clock_len);
        LoweredGadget {
            prog,
            measured_tail_pc,
            clock_pcs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_reproducible_and_in_bounds() {
        let mut a = SplitMix64::new(11);
        let mut b = SplitMix64::new(11);
        for _ in 0..200 {
            let ta = GadgetTemplate::sample(&mut a);
            let tb = GadgetTemplate::sample(&mut b);
            assert_eq!(ta, tb);
            assert!((1..=3).contains(&ta.measured_scale));
            assert!(ta.fences <= 2);
            assert!(ta.pad_nops <= 7);
            assert!(ta.noise_chains <= 3);
            assert!((1..=3).contains(&ta.rounds));
        }
    }

    #[test]
    fn mutation_changes_at_most_one_field() {
        let mut rng = SplitMix64::new(3);
        let parent = GadgetTemplate::sample(&mut rng);
        for _ in 0..100 {
            let child = parent.mutate(&mut rng);
            let diffs = usize::from(child.measured_op != parent.measured_op)
                + usize::from(child.measured_scale != parent.measured_scale)
                + usize::from(child.clock_op != parent.clock_op)
                + usize::from(child.layout != parent.layout)
                + usize::from(child.fences != parent.fences)
                + usize::from(child.pad_nops != parent.pad_nops)
                + usize::from(child.noise_chains != parent.noise_chains)
                + usize::from(child.rounds != parent.rounds);
            assert!(diffs <= 1, "one mutation step touches one field");
        }
    }

    #[test]
    fn lowering_counts_every_clock_op_once() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..50 {
            let t = GadgetTemplate::sample(&mut rng);
            let lowered = t.lower(4, 96);
            assert_eq!(lowered.clock_pcs.len(), 96);
            let mut sorted = lowered.clock_pcs.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 96, "clock pcs are distinct");
            assert!(lowered.measured_tail_pc < lowered.prog.len());
        }
    }

    #[test]
    fn zero_target_lowers_to_the_init_mov() {
        let t = GadgetTemplate {
            measured_op: ChainOp::Div,
            measured_scale: 2,
            clock_op: ChainOp::Add,
            layout: ArmLayout::Interleaved,
            fences: 0,
            pad_nops: 3,
            noise_chains: 1,
            rounds: 2,
        };
        let lowered = t.lower(0, 48);
        assert_eq!(
            lowered.measured_tail_pc, 3,
            "tail is the mov after the pads"
        );
        assert_eq!(lowered.clock_pcs.len(), 48);
    }

    #[test]
    fn chain_op_names_roundtrip() {
        for op in ChainOp::ALL {
            assert_eq!(ChainOp::from_name(op.name()), Some(op));
        }
        for l in ArmLayout::ALL {
            assert_eq!(ArmLayout::from_name(l.name()), Some(l));
        }
        assert_eq!(ChainOp::from_name("bogus"), None);
    }
}
