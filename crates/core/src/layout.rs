//! The attacker's memory layout: disjoint address regions for each gadget
//! ingredient.
//!
//! Everything the gadgets touch lives at a fixed, documented address so that
//! experiments are reproducible and regions provably do not collide (see
//! [`Layout::assert_disjoint`], exercised by tests).

use racer_mem::{Addr, Cache, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Fixed address regions used by gadget code.
///
/// All regions are ≥ 1 MiB apart, so no two regions ever share a cache line;
/// set collisions between regions are possible (sets are small) and handled
/// per-gadget by choosing set indices.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    /// The synchronization head (§4.1): flushed before each race so both
    /// paths start together when its DRAM fill returns.
    pub sync: Addr,
    /// The `x` input of the transient P/A gadget (§5.1): 0 during training,
    /// 1 during detection.
    pub x_flag: Addr,
    /// Transient-probe address (`access[A]` of §5.1).
    pub probe: Addr,
    /// Base of the PLRU-magnifier working region (lines A,B,C,D,E of
    /// Figures 3–4 are carved from here).
    pub plru_base: Addr,
    /// Base of the SEQ/PAR eviction-set region for the §6.3 magnifier.
    pub seqpar_base: Addr,
    /// Base of the pointer-chase region used by SpectreBack (§7.3).
    pub chase_base: Addr,
    /// The in-bounds attacker array for Spectre-style gadgets.
    pub array_base: Addr,
    /// The victim's secret (out of bounds of `array_base`).
    pub secret_base: Addr,
    /// Base of the candidate pool for eviction-set profiling (§7.4).
    pub ev_pool_base: Addr,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            sync: Addr(0x0100_0000),
            x_flag: Addr(0x0110_0000),
            probe: Addr(0x0120_0000),
            plru_base: Addr(0x0200_0000),
            seqpar_base: Addr(0x0300_0000),
            chase_base: Addr(0x0400_0000),
            array_base: Addr(0x0500_0000),
            secret_base: Addr(0x0510_0000),
            ev_pool_base: Addr(0x0600_0000),
        }
    }
}

impl Layout {
    /// The standard layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// All regions as (name, address) pairs.
    pub fn regions(&self) -> Vec<(&'static str, Addr)> {
        vec![
            ("sync", self.sync),
            ("x_flag", self.x_flag),
            ("probe", self.probe),
            ("plru_base", self.plru_base),
            ("seqpar_base", self.seqpar_base),
            ("chase_base", self.chase_base),
            ("array_base", self.array_base),
            ("secret_base", self.secret_base),
            ("ev_pool_base", self.ev_pool_base),
        ]
    }

    /// Verify no two regions are within `span` bytes of each other.
    ///
    /// # Panics
    ///
    /// Panics if two regions are closer than `span`.
    pub fn assert_disjoint(&self, span: u64) {
        let regions = self.regions();
        for (i, (na, a)) in regions.iter().enumerate() {
            for (nb, b) in regions.iter().skip(i + 1) {
                assert!(
                    a.0.abs_diff(b.0) >= span,
                    "regions {na} and {nb} overlap within {span} bytes"
                );
            }
        }
    }

    /// The `i`-th line of the PLRU working region that maps to L1 `set` of
    /// `l1`: consecutive `i` values give distinct, congruent lines.
    ///
    /// Line 0 is conventionally "A" (the racer-inserted line), lines 1..=4
    /// are B, C, D, E of Figures 3–4.
    pub fn plru_line(&self, l1: &Cache, set: usize, i: usize) -> Addr {
        congruent(self.plru_base, l1, set, i)
    }

    /// The `k`-th member of `SEQ_i` for the §6.3 magnifier: a line in L1
    /// `set` of `l1`, disjoint from all `PAR` members.
    pub fn seq_line(&self, l1: &Cache, set: usize, k: usize) -> Addr {
        congruent(self.seqpar_base, l1, set, k)
    }

    /// The `k`-th member of `PAR_i` (offset past the SEQ block so the two
    /// never overlap; paper §6.3 "without overlap between them").
    pub fn par_line(&self, l1: &Cache, set: usize, k: usize) -> Addr {
        congruent(self.seqpar_base, l1, set, 32 + k)
    }
}

/// The `i`-th distinct line congruent to `set` in `cache`, at or above `base`.
fn congruent(base: Addr, cache: &Cache, set: usize, i: usize) -> Addr {
    assert!(set < cache.num_sets(), "set index out of range");
    let stride_lines = cache.num_sets() as u64;
    let base_line = base.line().0 - (base.line().0 % stride_lines) + set as u64;
    racer_mem::LineAddr(base_line + i as u64 * stride_lines).base_addr()
}

/// Distinct line-aligned probe addresses derived from `base`, `LINE_BYTES`
/// apart — handy for gadgets needing several independent probes.
pub fn probe_addr(base: Addr, i: usize) -> Addr {
    Addr(base.0 + i as u64 * LINE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_mem::CacheConfig;

    #[test]
    fn default_layout_is_disjoint_by_a_mebibyte() {
        Layout::default().assert_disjoint(1 << 20);
    }

    #[test]
    fn plru_lines_are_congruent_and_distinct() {
        let l1 = Cache::new(CacheConfig {
            sets: 16,
            ways: 4,
            ..CacheConfig::l1d_coffee_lake()
        });
        let layout = Layout::default();
        let lines: Vec<Addr> = (0..5).map(|i| layout.plru_line(&l1, 7, i)).collect();
        for a in &lines {
            assert_eq!(l1.set_index(a.line()), 7);
        }
        let mut dedup = lines.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "lines must be distinct");
    }

    #[test]
    fn seq_and_par_never_overlap() {
        let l1 = Cache::new(CacheConfig {
            sets: 64,
            ways: 8,
            ..CacheConfig::l1d_coffee_lake()
        });
        let layout = Layout::default();
        for set in [0usize, 13, 63] {
            let seq: Vec<Addr> = (0..6).map(|k| layout.seq_line(&l1, set, k)).collect();
            let par: Vec<Addr> = (0..5).map(|k| layout.par_line(&l1, set, k)).collect();
            for s in &seq {
                assert_eq!(l1.set_index(s.line()), set);
                assert!(!par.contains(s), "SEQ and PAR must be disjoint");
            }
            for p in &par {
                assert_eq!(l1.set_index(p.line()), set);
            }
        }
    }

    #[test]
    fn probe_addrs_are_distinct_lines() {
        let a = probe_addr(Addr(0x1000), 0);
        let b = probe_addr(Addr(0x1000), 1);
        assert_ne!(a.line(), b.line());
    }
}
