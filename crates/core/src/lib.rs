//! # hacky-racers — ILP-race timing gadgets
//!
//! A faithful reproduction of *"Hacky Racers: Exploiting Instruction-Level
//! Parallelism to Generate Stealthy Fine-Grained Timers"* (Xiao & Ainsworth,
//! ASPLOS 2023), built on the `racer-cpu`/`racer-mem` simulation substrate.
//!
//! The paper's thesis: even with every browser timer coarsened to 5 µs and
//! SharedArrayBuffer removed, an attacker can *time* fine-grained events by
//! racing two independent instruction sequences (**paths**, §4) against each
//! other on an out-of-order core, converting the race outcome into cache
//! state (**racing gadgets**, §5), and amplifying that state difference into
//! a coarse-timer-visible delay (**magnifier gadgets**, §6).
//!
//! Module map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §4 path construction | [`path`] |
//! | §5.1 transient P/A racing gadget | [`racing::TransientPaRace`] |
//! | §5.2 non-transient reorder racing gadget | [`racing::ReorderRace`] |
//! | §6.1 PLRU magnifier (P/A input) | [`magnify::PlruMagnifier`] |
//! | §6.2 PLRU magnifier (reorder input) | [`magnify::PlruMagnifier`] |
//! | §6.3 arbitrary-replacement magnifier | [`magnify::ArbitraryReplacementMagnifier`] |
//! | §6.4 arithmetic-operation-only magnifier | [`magnify::ArithmeticMagnifier`] |
//! | §7.1 repetition gadgets | [`attacks::repetition`] |
//! | §7.2 racing-gadget granularity | [`experiments::granularity`] |
//! | §7.3 SpectreBack | [`attacks::spectre_back`] |
//! | §7.4 LLC eviction-set generation | [`attacks::eviction_set`] |
//! | §8 countermeasures | [`experiments::countermeasures`] |
//!
//! ## Quickstart: a fine-grained timer from coarse parts
//!
//! ```
//! use hacky_racers::prelude::*;
//!
//! // A machine with a 5 µs browser timer.
//! let mut machine = Machine::baseline();
//!
//! // Race a 12-op ADD chain (the "target expression") against a reference
//! // path of ADDs; the race outcome tells us which was longer, with
//! // single-cycle-scale granularity — no fine timer anywhere.
//! let target = PathSpec::op_chain(AluOp::Add, 12);
//! let longer_ref = PathSpec::op_chain(AluOp::Add, 40);
//! let shorter_ref = PathSpec::op_chain(AluOp::Add, 3);
//!
//! let race = TransientPaRace::new(machine.layout());
//! assert!(race.target_beats_ref(&mut machine, &target, &longer_ref));
//! assert!(!race.target_beats_ref(&mut machine, &target, &shorter_ref));
//! ```

pub mod attacks;
pub mod experiments;
pub mod gadget_search;
pub mod layout;
pub mod machine;
pub mod magnify;
pub mod path;
pub mod racing;

/// Convenient glob imports for examples and downstream code.
pub mod prelude {
    pub use crate::layout::Layout;
    pub use crate::machine::Machine;
    pub use crate::magnify::{ArbitraryReplacementMagnifier, ArithmeticMagnifier, PlruMagnifier};
    pub use crate::path::PathSpec;
    pub use crate::racing::{RaceOutcome, ReorderRace, TransientPaRace};
    pub use racer_cpu::{Countermeasure, Cpu, CpuConfig};
    pub use racer_isa::AluOp;
    pub use racer_mem::{Addr, HierarchyConfig, HitLevel};
}
