//! The attacker's machine: a simulated core plus the standard layouts and
//! timer plumbing the experiments share.

use crate::layout::Layout;
use racer_cpu::{
    Backend, Countermeasure, Cpu, CpuConfig, MachineBatch, RunResult, Snapshot, SnapshotCache,
};
use racer_isa::Program;
use racer_mem::{Addr, CacheConfig, HierarchyConfig, ReplacementKind};
use racer_time::Timer;

/// A simulated machine under attack: core + hierarchy + address layout,
/// with a running simulated-time clock for timer reads.
///
/// The constructors correspond to the hardware variants the paper's
/// experiments need:
///
/// * [`Machine::baseline`] — tree-PLRU 4-way L1 (the W=4 illustration of
///   Figures 3–4; substitution for the paper's 8-way L1 documented in
///   DESIGN.md), used by the PLRU magnifiers and most attacks;
/// * [`Machine::random_l1`] — 64-set, 8-way, random-replacement L1, the
///   §6.3 arbitrary-replacement configuration;
/// * [`Machine::small_llc`] — a scaled-down inclusive LLC for the §7.4
///   eviction-set experiment;
/// * [`Machine::noisy`] — DRAM jitter enabled, for distribution experiments
///   (Figure 10).
#[derive(Debug)]
pub struct Machine {
    cpu: Cpu,
    layout: Layout,
    /// Simulated nanoseconds accumulated over every program run, used as
    /// the wall clock that coarse timers observe.
    elapsed_ns: f64,
    /// Instructions committed by every clock-advancing run on this
    /// machine — the work metric of the `scenario-e2e` perf rows.
    committed: u64,
}

impl Machine {
    /// Build from explicit configurations.
    pub fn with(cpu_cfg: CpuConfig, hier_cfg: HierarchyConfig) -> Self {
        Machine {
            cpu: Cpu::new(cpu_cfg, hier_cfg),
            layout: Layout::default(),
            elapsed_ns: 0.0,
            committed: 0,
        }
    }

    /// Like [`Machine::with`], but forking the process-wide
    /// [`SnapshotCache`] instead of constructing the core and hierarchy
    /// from scratch: the first call per `(cpu_cfg, hier_cfg)` pair builds
    /// and caches a cold snapshot, every later call pays only a
    /// copy-on-write fork. Forks are bit-identical to a fresh
    /// construction, so this is a pure wall-clock optimisation for
    /// experiments that stamp out many machines of one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_cfg` fails validation or is not single-thread
    /// (snapshots capture single-thread machines — use [`Machine::with`]
    /// for SMT configurations).
    pub fn with_cached(cpu_cfg: CpuConfig, hier_cfg: HierarchyConfig) -> Self {
        Self::from_snapshot(&SnapshotCache::global().cold(cpu_cfg, hier_cfg))
    }

    /// Tree-PLRU 4-way L1 machine (the default attack target). Forked
    /// from the process-wide [`SnapshotCache`] — bit-identical to a
    /// from-scratch construction, built once per process.
    pub fn baseline() -> Self {
        Self::with_cached(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::small_plru(),
        )
    }

    /// Baseline machine with DRAM jitter for noisy-distribution experiments.
    ///
    /// Deliberately *not* routed through the [`SnapshotCache`]: every
    /// trial uses a distinct `seed`, so each call is a distinct cache key
    /// — caching would only churn the LRU. (Same for
    /// [`Machine::random_l1`].)
    pub fn noisy(seed: u64) -> Self {
        let mut hier = HierarchyConfig::small_plru();
        hier.memory_jitter = 30;
        hier.seed = seed;
        Self::with(CpuConfig::coffee_lake().with_load_recording(), hier)
    }

    /// 64-set 8-way random-replacement L1 (paper §6.3's configuration).
    pub fn random_l1(seed: u64) -> Self {
        let mut hier = HierarchyConfig::coffee_lake();
        hier.l1d = CacheConfig {
            sets: 64,
            ways: 8,
            replacement: ReplacementKind::Random,
            seed,
            ..CacheConfig::l1d_coffee_lake()
        };
        Self::with(CpuConfig::coffee_lake().with_load_recording(), hier)
    }

    /// Scaled-down inclusive LLC (128 sets × 8 ways) so eviction-set
    /// profiling is tractable; the algorithmic behaviour (§7.4) is
    /// unchanged.
    pub fn small_llc() -> Self {
        let mut hier = HierarchyConfig::small_plru();
        hier.l3 = CacheConfig {
            sets: 128,
            ways: 8,
            hit_latency: 40,
            replacement: ReplacementKind::TreePlru,
            seed: 0x77,
        };
        // Keep L2 tiny too so L3-resident lines are not hidden by L2 hits.
        hier.l2 = CacheConfig {
            sets: 64,
            ways: 2,
            hit_latency: 12,
            replacement: ReplacementKind::TreePlru,
            seed: 0x78,
        };
        Self::with_cached(CpuConfig::coffee_lake().with_load_recording(), hier)
    }

    /// Change the modelled countermeasure.
    pub fn set_countermeasure(&mut self, c: Countermeasure) {
        self.cpu.set_countermeasure(c);
    }

    /// The address layout gadget code uses.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The underlying core.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable access to the underlying core.
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Run a program on the event-driven backend, advancing the machine's
    /// wall clock.
    pub fn run(&mut self, prog: &Program) -> RunResult {
        self.run_with(prog, Backend::EventDriven)
    }

    /// Run a program with an explicit [`Backend`], advancing the machine's
    /// wall clock by the program's simulated duration.
    pub fn run_with(&mut self, prog: &Program, backend: Backend) -> RunResult {
        let r = self.cpu.run_one(prog, backend);
        self.elapsed_ns += self.cpu.config().cycles_to_ns(r.cycles);
        self.committed += r.committed;
        r
    }

    /// Capture the machine's persistent state (caches, memory, trained
    /// predictor) as a shareable [`Snapshot`]; [`Machine::from_snapshot`]
    /// stamps out independent machines from it, so a sweep warms one
    /// machine and forks it per point.
    pub fn snapshot(&self) -> Snapshot {
        self.cpu.snapshot()
    }

    /// Fork an independent machine from a [`Snapshot`] (the wall clock
    /// starts at zero; the layout is the standard one every constructor
    /// uses).
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        Machine {
            cpu: snap.fork(),
            layout: Layout::default(),
            elapsed_ns: 0.0,
            committed: 0,
        }
    }

    /// Run each of `progs` on an independent fork of this machine's
    /// *current* state — parallel universes, not a sequence: every lane
    /// observes the same caches/predictor, no lane sees another's
    /// effects, and the machine itself (state and wall clock) is
    /// untouched. Results come back in input order, bit-identical to
    /// cloning the machine per program and calling [`Machine::run`] on
    /// each clone. One snapshot capture + the lockstep engine's shared
    /// decode tables make this the cheap way to fan a trial grid out
    /// from one prepared state.
    ///
    /// # Panics
    ///
    /// Panics on a multi-thread (SMT) configuration.
    pub fn batch(&self, progs: &[Program]) -> Vec<RunResult> {
        self.snapshot().run_many(progs)
    }

    /// Run a heterogeneous sweep: each `(machine, program)` lane forks
    /// its machine's current state, all lanes share one lockstep driver
    /// and one decode table per distinct program. Results in input
    /// order, bit-identical to calling [`Machine::run`] per lane; the
    /// machines themselves are untouched. This is the batch-first
    /// backbone for experiments whose trial points each *prepare* a
    /// different machine (planted secrets, jitter seeds, warmed sets)
    /// but run from a shared program pool.
    ///
    /// # Panics
    ///
    /// Panics if the machines' [`CpuConfig`]s differ (one lockstep
    /// driver steps every lane) or are multi-thread.
    pub fn sweep<'a, I>(lanes: I) -> Vec<RunResult>
    where
        I: IntoIterator<Item = (&'a Machine, &'a Program)>,
    {
        let mut iter = lanes.into_iter();
        let Some((first_machine, first_prog)) = iter.next() else {
            return Vec::new();
        };
        let snap = first_machine.snapshot();
        let mut batch = MachineBatch::from_snapshot(&snap);
        batch.push(first_prog);
        for (machine, prog) in iter {
            batch.push_from(&machine.snapshot(), prog);
        }
        batch.run()
    }

    /// Run a program and return just its cycle count.
    pub fn run_cycles(&mut self, prog: &Program) -> u64 {
        self.run(prog).cycles
    }

    /// Run a program and measure it with the attacker's `timer` — the only
    /// measurement the threat model (§3) allows. Returns the *observed*
    /// duration in nanoseconds.
    pub fn run_timed(&mut self, prog: &Program, timer: &mut dyn Timer) -> f64 {
        let start = self.elapsed_ns;
        let r = self.cpu.run_one(prog, Backend::EventDriven);
        self.elapsed_ns += self.cpu.config().cycles_to_ns(r.cycles);
        self.committed += r.committed;
        timer.measure(start, self.elapsed_ns)
    }

    /// Total simulated nanoseconds elapsed on this machine.
    pub fn elapsed_ns(&self) -> f64 {
        self.elapsed_ns
    }

    /// Total instructions committed by clock-advancing runs on this
    /// machine ([`Machine::run`]/[`Machine::run_with`]/
    /// [`Machine::run_timed`]; [`Machine::batch`]/[`Machine::sweep`] fork
    /// and leave the machine untouched). The `scenario-e2e` perf rows use
    /// this as their backend-independent work metric.
    pub fn committed_total(&self) -> u64 {
        self.committed
    }

    /// Host-level cache-line flush (used for experiment setup; the gadgets
    /// themselves only flush where the paper's attacker legitimately could,
    /// e.g. by eviction).
    pub fn flush(&mut self, addr: Addr) {
        self.cpu.hierarchy_mut().flush(addr);
    }

    /// Host-level warm-up load (fills all levels, like an attacker touching
    /// their own array before the attack).
    pub fn warm(&mut self, addr: Addr) {
        self.cpu.hierarchy_mut().load(addr);
    }

    /// Remove `addr`'s line from the L1 only, leaving L2/L3 copies in place
    /// (the state an attacker reaches by conflict-evicting a line from the
    /// L1 with same-set accesses).
    pub fn evict_from_l1(&mut self, addr: Addr) {
        self.cpu.hierarchy_mut().l1d_mut().invalidate(addr.line());
    }

    /// Empty the given L1 set entirely (setup helper emulating an attacker
    /// priming pass).
    pub fn clear_l1_set(&mut self, set: usize) {
        let lines: Vec<_> = self
            .cpu
            .hierarchy()
            .l1d()
            .set(set)
            .resident_lines()
            .collect();
        for l in lines {
            self.cpu.hierarchy_mut().l1d_mut().invalidate(l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_isa::Asm;
    use racer_time::{CoarseTimer, PerfectTimer};

    #[test]
    fn machine_clock_advances_with_runs() {
        let mut m = Machine::baseline();
        let mut asm = Asm::new();
        let r = asm.reg();
        asm.mov_imm(r, 1);
        asm.halt();
        let prog = asm.assemble().unwrap();
        assert_eq!(m.elapsed_ns(), 0.0);
        m.run(&prog);
        let t1 = m.elapsed_ns();
        assert!(t1 > 0.0);
        m.run(&prog);
        assert!(m.elapsed_ns() > t1);
    }

    #[test]
    fn timed_run_with_perfect_timer_matches_cycles() {
        let mut m = Machine::baseline();
        let mut asm = Asm::new();
        let r = asm.reg();
        for _ in 0..50 {
            asm.addi(r, r, 1);
        }
        asm.halt();
        let prog = asm.assemble().unwrap();
        let cycles = m.cpu_mut().run_one(&prog, Backend::EventDriven).cycles;
        let observed = m.run_timed(&prog, &mut PerfectTimer);
        assert!((observed - cycles as f64 * 0.5).abs() < 1.0);
    }

    #[test]
    fn coarse_timer_hides_short_runs() {
        let mut m = Machine::baseline();
        let mut asm = Asm::new();
        let r = asm.reg();
        asm.mov_imm(r, 1);
        asm.halt();
        let prog = asm.assemble().unwrap();
        let mut t = CoarseTimer::browser_5us();
        let observed = m.run_timed(&prog, &mut t);
        assert_eq!(observed, 0.0, "a handful of cycles is invisible at 5 µs");
    }

    #[test]
    fn variant_constructors_build() {
        let _ = Machine::noisy(3);
        let _ = Machine::random_l1(4);
        let _ = Machine::small_llc();
    }

    /// A short load-heavy probe whose timing is state-sensitive.
    fn probe(touch: u64) -> Program {
        let mut asm = Asm::new();
        let r = asm.reg();
        for i in 0..touch {
            asm.load(r, racer_isa::MemOperand::abs(0x8000 + i * 64));
        }
        asm.halt();
        asm.assemble().unwrap()
    }

    #[test]
    fn cached_baseline_matches_from_scratch_construction() {
        let mut cached = Machine::baseline();
        let mut direct = Machine::with(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::small_plru(),
        );
        let p = probe(16);
        let a = cached.run(&p);
        let b = direct.run(&p);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn batch_matches_sequential_forks_and_preserves_the_machine() {
        let mut m = Machine::baseline();
        m.run(&probe(24)); // dirty the caches so state matters
        let clock = m.elapsed_ns();
        let progs: Vec<Program> = (1..=6).map(|i| probe(i * 4)).collect();
        let batched = m.batch(&progs);
        assert_eq!(m.elapsed_ns(), clock, "batch must not advance the clock");
        for (i, (p, got)) in progs.iter().zip(&batched).enumerate() {
            let want = Machine::from_snapshot(&m.snapshot()).run(p);
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "batch lane #{i} diverges from a per-machine fork"
            );
        }
    }

    #[test]
    fn sweep_matches_per_machine_runs_over_heterogeneous_states() {
        // Three differently-prepared machines × two programs.
        let mut machines: Vec<Machine> = (0..3).map(|_| Machine::baseline()).collect();
        machines[1].run(&probe(16));
        machines[2].run(&probe(40));
        let progs = [probe(8), probe(20)];
        let lanes: Vec<(&Machine, &Program)> = machines
            .iter()
            .flat_map(|m| progs.iter().map(move |p| (m, p)))
            .collect();
        let got = Machine::sweep(lanes.iter().copied());
        assert_eq!(got.len(), machines.len() * progs.len());
        for (i, ((m, p), got)) in lanes.iter().zip(&got).enumerate() {
            let want = Machine::from_snapshot(&m.snapshot()).run(p);
            assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "sweep lane #{i} diverges from a per-machine run"
            );
        }
        assert!(Machine::sweep(std::iter::empty()).is_empty());
    }
}
