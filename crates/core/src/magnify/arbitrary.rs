//! The arbitrary-replacement-policy magnifier (paper §6.3, Figure 5).
//!
//! Works for *any* per-set replacement policy, including random: the
//! magnifier is itself a racing pair. `PathA` walks `SEQ` eviction-set
//! chains through even-indexed sets and fires the next set's `PAR`
//! addresses in parallel behind itself; `PathB` walks the odd-indexed
//! `SEQ`s. Aligned, `PAR_{i+1}` lands *after* `PathB` has finished reading
//! `SEQ_{i+1}` — no interference. Misaligned (PathB delayed), the `PAR`
//! fills evict `SEQ` members *before* PathB reads them, adding misses that
//! grow the misalignment round over round — a chain reaction.
//!
//! With in-path prefetching (§6.3.1) PathB restores the initial state of
//! sets `DIST` iterations ahead, so the finite cache magnifies an unbounded
//! number of rounds (Figure 11).

use crate::layout::Layout;
use crate::machine::Machine;
use crate::path::{emit_sync_head, PathSpec};
use racer_isa::{Asm, MemOperand, Program};
use racer_mem::HitLevel;

/// Driver for the §6.3 magnifier. Requires a machine whose L1 matches the
/// paper's demonstration cache — 64 sets, 8 ways, random replacement
/// ([`Machine::random_l1`]) — though any policy works.
#[derive(Clone, Debug)]
pub struct ArbitraryReplacementMagnifier {
    layout: Layout,
    /// Number of L1 sets used per traversal (paper: half of 64 = 32).
    pub num_sets: usize,
    /// Members per `SEQ_i` (paper §6.3.3: 6 — three-quarters of the
    /// associativity).
    pub seq_len: usize,
    /// Members per `PAR_i` (paper §6.3.3: 5 gives ≥1 eviction with ~96%
    /// probability under random replacement).
    pub par_len: usize,
    /// Prefetch distance in logical iterations (paper §7.5: 22); 0 disables
    /// prefetching, capping magnification at one traversal (§6.3.1).
    pub prefetch_dist: usize,
    /// Passes over each restored SEQ during prefetching. Under random
    /// replacement a single pass of fills can evict just-restored members,
    /// so restoration needs repetition (paper footnote 6: "this initial
    /// state can be achieved through repeatedly accessing SEQi").
    pub prefetch_passes: usize,
    /// Chained ALU pad (cycles) inserted after each SEQ chain on *both*
    /// paths. The pad postpones `PAR_{i+1}` past the aligned PathB's reads
    /// — giving the clean state a safety margin — while a PathB delayed by
    /// more than the pad still collides. This sets the gadget's switching
    /// threshold, like the buffer stage of §6.4.
    pub iteration_pad: usize,
    /// Full traversals of the chosen sets (Figure 11's x-axis).
    pub repeats: usize,
}

impl ArbitraryReplacementMagnifier {
    /// The paper's configuration: 32 sets, SEQ=6, PAR=5, prefetch distance
    /// 22, one traversal.
    pub fn new(layout: Layout) -> Self {
        ArbitraryReplacementMagnifier {
            layout,
            num_sets: 32,
            seq_len: 6,
            par_len: 5,
            prefetch_dist: 22,
            prefetch_passes: 3,
            iteration_pad: 10,
            repeats: 1,
        }
    }

    /// L1 set used by logical iteration `i` (sets 1..=num_sets, clear of
    /// set 0 where the sync line lives).
    fn set_of(&self, i: usize) -> usize {
        1 + (i % self.num_sets)
    }

    /// Total logical iterations.
    fn iterations(&self) -> usize {
        self.repeats * self.num_sets
    }

    /// Prepare the initial cache state: every `SEQ_i` member L1-resident,
    /// every `PAR_i` member warm in L2/L3 but *not* in the L1 (so its later
    /// fill evicts something). Converges by repeated access, as the paper's
    /// footnote 6 prescribes for random replacement.
    pub fn prepare(&self, m: &mut Machine) {
        for s in (0..self.num_sets).map(|i| self.set_of(i)) {
            let l1 = m.cpu().hierarchy().l1d();
            let seqs: Vec<_> = (0..self.seq_len)
                .map(|k| self.layout.seq_line(l1, s, k))
                .collect();
            let pars: Vec<_> = (0..self.par_len)
                .map(|k| self.layout.par_line(l1, s, k))
                .collect();
            for &p in &pars {
                m.warm(p);
                m.evict_from_l1(p);
            }
            // Repeatedly touch SEQ members until all are simultaneously
            // resident (random replacement may evict siblings on fill).
            for _ in 0..64 {
                let mut all_in = true;
                for &q in &seqs {
                    if m.cpu().hierarchy().probe(q) != HitLevel::L1 {
                        m.warm(q);
                        all_in = false;
                    }
                }
                if all_in {
                    break;
                }
            }
            for &p in &pars {
                m.evict_from_l1(p);
            }
        }
    }

    /// Build the two-path magnifier program. `initial_delay` prepends that
    /// many dependent adds to PathB's seed — the misalignment under test
    /// (a racing gadget's output in a real attack).
    pub fn program(&self, m: &Machine, initial_delay: usize) -> Program {
        let l1 = m.cpu().hierarchy().l1d();
        let total = self.iterations();
        let mut asm = Asm::new();
        let seed = emit_sync_head(&mut asm, self.layout.sync);
        let seed_b = PathSpec::op_chain(racer_isa::AluOp::Add, initial_delay).emit(&mut asm, seed);

        // Per-path chain registers (reused; renaming keeps them private).
        let (va, ma) = (asm.reg(), asm.reg());
        let (vb, mb) = (asm.reg(), asm.reg());
        let scratch = asm.reg();
        // Seed the chains.
        asm.add(va, seed, 0i64);
        asm.add(vb, seed_b, 0i64);

        for i in 0..total {
            let s = self.set_of(i);
            if i % 2 == 0 {
                // PathA: SEQ_i chained, a pad, then PAR_{i+1} in parallel.
                for k in 0..self.seq_len {
                    let addr = self.layout.seq_line(l1, s, k);
                    asm.and(ma, va, 0i64);
                    asm.load(va, MemOperand::base_disp(ma, addr.0 as i64));
                }
                for _ in 0..self.iteration_pad {
                    asm.add(va, va, 0i64);
                }
                if i + 1 < total {
                    let sp = self.set_of(i + 1);
                    asm.and(ma, va, 0i64);
                    for k in 0..self.par_len {
                        let addr = self.layout.par_line(l1, sp, k);
                        asm.load(scratch, MemOperand::base_disp(ma, addr.0 as i64));
                    }
                }
            } else {
                // PathB: SEQ_i chained, the matching pad (keeping the two
                // paths' iteration periods equal), plus prefetches DIST
                // ahead to restore the initial state for later rounds
                // (§6.3.1).
                for k in 0..self.seq_len {
                    let addr = self.layout.seq_line(l1, s, k);
                    asm.and(mb, vb, 0i64);
                    asm.load(vb, MemOperand::base_disp(mb, addr.0 as i64));
                }
                for _ in 0..self.iteration_pad {
                    asm.add(vb, vb, 0i64);
                }
                if self.prefetch_dist > 0 && i + self.prefetch_dist < total {
                    let sf = self.set_of(i + self.prefetch_dist);
                    asm.and(mb, vb, 0i64);
                    for _ in 0..self.prefetch_passes.max(1) {
                        for k in 0..self.seq_len {
                            let addr = self.layout.seq_line(l1, sf, k);
                            asm.prefetch(MemOperand::base_disp(mb, addr.0 as i64));
                        }
                    }
                }
            }
        }
        asm.halt();
        asm.assemble()
            .expect("arbitrary-replacement magnifier assembles")
    }

    /// Prepare, then run with `initial_delay`; returns total cycles.
    pub fn measure(&self, m: &mut Machine, initial_delay: usize) -> u64 {
        self.prepare(m);
        m.flush(self.layout.sync);
        let prog = self.program(m, initial_delay);
        m.run_cycles(&prog)
    }

    /// The magnified timing difference: delayed run minus aligned run minus
    /// the delay itself (i.e. pure amplification).
    pub fn amplification(&self, m: &mut Machine, initial_delay: usize) -> i64 {
        let aligned = self.measure(m, 0);
        let delayed = self.measure(m, initial_delay);
        delayed as i64 - aligned as i64 - initial_delay as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn magnifier(repeats: usize, prefetch: usize) -> ArbitraryReplacementMagnifier {
        let mut mag = ArbitraryReplacementMagnifier::new(Layout::default());
        mag.repeats = repeats;
        mag.prefetch_dist = prefetch;
        mag
    }

    #[test]
    fn aligned_paths_run_clean() {
        let mut m = Machine::random_l1(11);
        let mag = magnifier(1, 22);
        mag.prepare(&mut m);
        m.flush(m.layout().sync);
        let prog = mag.program(&m, 0);
        let r = m.run(&prog);
        // Aligned: PathB's critical-path SEQ accesses overwhelmingly hit
        // (Figure 5a: "the SEQi accesses will all hit in the cache").
        let l1 = m.cpu().hierarchy().l1d();
        let b_seq: std::collections::HashSet<u64> = (0..mag.iterations())
            .filter(|i| i % 2 == 1)
            .flat_map(|i| {
                let s = mag.set_of(i);
                (0..mag.seq_len).map(move |k| (s, k))
            })
            .map(|(s, k)| mag.layout.seq_line(l1, s, k).0)
            .collect();
        let (mut hits, mut misses) = (0u64, 0u64);
        for ev in r
            .loads
            .iter()
            .filter(|l| l.committed && b_seq.contains(&l.addr))
        {
            if ev.level == HitLevel::L1 {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        assert!(hits > 0);
        assert!(
            misses * 4 <= hits,
            "aligned PathB SEQ accesses must mostly hit: {hits} hits vs {misses} misses"
        );
    }

    #[test]
    fn misalignment_is_amplified() {
        let mut m = Machine::random_l1(7);
        let mag = magnifier(4, 22);
        let delay = 30usize;
        let amp = mag.amplification(&mut m, delay);
        assert!(
            amp > delay as i64 * 2,
            "a {delay}-cycle misalignment must be amplified, got {amp} extra cycles"
        );
    }

    #[test]
    fn amplification_grows_with_repeats() {
        // Growth is tested under FIFO, where the deterministic simulator
        // sustains the chain reaction indefinitely (see the Figure 11
        // deviation note in EXPERIMENTS.md: deterministic random-
        // replacement churn equalizes the two runs after tens of repeats,
        // which real-hardware noise does not).
        use racer_cpu::CpuConfig;
        use racer_mem::{CacheConfig, HierarchyConfig, ReplacementKind};
        let mut machine = {
            let mut hier = HierarchyConfig::coffee_lake();
            hier.l1d = CacheConfig {
                sets: 64,
                ways: 8,
                replacement: ReplacementKind::Fifo,
                seed: 13,
                ..CacheConfig::l1d_coffee_lake()
            };
            Machine::with(CpuConfig::coffee_lake().with_load_recording(), hier)
        };
        let small = magnifier(2, 22).amplification(&mut machine, 30);
        let large = magnifier(8, 22).amplification(&mut machine, 30);
        assert!(
            large > small * 2,
            "more traversals must amplify more: {small} → {large}"
        );
    }

    #[test]
    fn without_prefetching_magnification_saturates() {
        // §6.3.1: without prefetching the amplification is bounded by the
        // number of sets — more repeats add (almost) nothing once the
        // initial state is consumed. Deterministic random-replacement churn
        // makes the margin seed-sensitive; this seed gives a >2x margin on
        // both assertions under the workspace's vendored generator.
        let mut m = Machine::random_l1(5);
        let two = magnifier(2, 0).amplification(&mut m, 30);
        let eight = magnifier(8, 0).amplification(&mut m, 30);
        let with_prefetch = magnifier(8, 22).amplification(&mut m, 30);
        assert!(
            with_prefetch > eight,
            "prefetching must beat the capped variant: {with_prefetch} vs {eight}"
        );
        // The capped variant grows sublinearly: going 2→8 repeats (4×)
        // must yield well under 4× the amplification.
        assert!(
            eight < two * 3 + 200,
            "without prefetch the growth must saturate: {two} → {eight}"
        );
    }

    #[test]
    fn works_under_fifo_replacement_too() {
        // §6.3 claims independence from the replacement policy. Recency-free
        // policies (random, FIFO) sustain the PAR eviction pressure across
        // traversals; verify the chain reaction also fires under FIFO.
        use racer_cpu::CpuConfig;
        use racer_mem::{CacheConfig, HierarchyConfig, ReplacementKind};
        let mut machine = {
            let mut hier = HierarchyConfig::coffee_lake();
            hier.l1d = CacheConfig {
                sets: 64,
                ways: 8,
                replacement: ReplacementKind::Fifo,
                seed: 5,
                ..CacheConfig::l1d_coffee_lake()
            };
            Machine::with(CpuConfig::coffee_lake().with_load_recording(), hier)
        };
        let amp = magnifier(4, 22).amplification(&mut machine, 30);
        assert!(
            amp > 500,
            "chain reaction must fire under FIFO as well, got {amp}"
        );
    }
}
