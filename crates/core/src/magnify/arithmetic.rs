//! The arithmetic-operation-only magnifier (paper §6.4, Figure 6).
//!
//! No cache involvement at all — immune to any cache defence. Two paths
//! alternate *racing stages* and *buffer stages*:
//!
//! * `PathA`: a chain of MULs timed to equal PathB's DIV chain, then a
//!   burst of parallel DIVs, then an ADD buffer chain;
//! * `PathB`: a chain of DIVs (the critical path being measured), then an
//!   ADD buffer chain.
//!
//! Aligned, PathA's parallel DIVs retire before PathB next needs the
//! divider. Misaligned, they collide with PathB's DIV chain on the
//! non-fully-pipelined divider (4-cycle reciprocal throughput), delaying
//! PathB further each stage — the contention chain reaction.
//!
//! Being stateless, the accumulated difference stops growing when the OS
//! timer interrupt drains the pipeline and re-aligns the paths (§7.5,
//! Figure 12) — configure [`racer_cpu::CpuConfig::interrupt_interval`] to
//! model that bound.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::path::{emit_sync_head, PathSpec};
use racer_isa::{AluOp, Asm, Program};

/// Driver for the §6.4 magnifier.
#[derive(Clone, Debug)]
pub struct ArithmeticMagnifier {
    layout: Layout,
    /// Racing+buffer stage pairs (Figure 12's x-axis "repeat num").
    pub stages: usize,
    /// Chained DIVs per PathB racing stage.
    pub divs_per_stage: usize,
    /// Chained MULs per PathA racing stage — chosen so
    /// `muls × lat(MUL) ≈ divs × lat(DIV)` (stage parity).
    pub muls_per_stage: usize,
    /// Parallel DIVs PathA fires after its MUL chain (the contention).
    pub par_divs: usize,
    /// ADD-chain length of the buffer stage (both paths; long enough for
    /// the parallel DIVs to drain when aligned).
    pub buffer_adds: usize,
}

impl ArithmeticMagnifier {
    /// A stage geometry tuned to the default latencies (DIV 14, MUL 3) and
    /// validated to give *sustained* per-stage displacement (~45 cycles per
    /// stage) in the misaligned state while the aligned state stays clean:
    ///
    /// * racing stages of exactly equal length: 6 chained DIVs = 84 cycles
    ///   = 28 chained MULs;
    /// * a 12-deep parallel-DIV burst occupying the divider for the 48
    ///   cycles after PathA's racing stage — *older in program order* than
    ///   PathB's next divides, so oldest-first issue arbitration makes a
    ///   late PathB wait out the whole burst (Figure 6b), while an aligned
    ///   PathB's divides all precede it;
    /// * 60-add buffers, long enough that the burst drains before the next
    ///   aligned racing stage (paper: "large enough so that the next racing
    ///   stage will start … after all parallel DIVs have finished").
    ///
    /// The two states are stable fixed points: once misaligned by ≥ ~16
    /// cycles, every subsequent stage's divides land in the burst window
    /// again and the displacement accrues linearly, forever (until a
    /// pipeline drain re-aligns the paths, §7.5).
    pub fn new(layout: Layout) -> Self {
        ArithmeticMagnifier {
            layout,
            stages: 50,
            divs_per_stage: 6,
            muls_per_stage: 28,
            par_divs: 12,
            buffer_adds: 60,
        }
    }

    /// Build the program with `initial_delay` extra adds ahead of PathB.
    pub fn program(&self, initial_delay: usize) -> Program {
        let mut asm = Asm::new();
        let seed = emit_sync_head(&mut asm, self.layout.sync);
        let seed_b = PathSpec::op_chain(AluOp::Add, initial_delay).emit(&mut asm, seed);
        self.emit_stages(&mut asm, seed, seed_b);
        asm.halt();
        asm.assemble().expect("arithmetic magnifier assembles")
    }

    /// Emit the magnifier's stage pairs with explicit path seeds: PathA
    /// hangs off `seed_a`, PathB (the measured critical path) off `seed_b`.
    ///
    /// Exposing the seeds lets a *racing gadget's terminators* drive the
    /// misalignment directly — a completely cache-free timer when composed
    /// (see [`crate::attacks::CacheFreeTimer`]).
    pub fn emit_stages(&self, asm: &mut Asm, seed_a: racer_isa::Reg, seed_b: racer_isa::Reg) {
        let a = asm.reg(); // PathA chain register (value 0 throughout)
        let b = asm.reg(); // PathB chain register
        let pd = asm.reg(); // parallel-DIV scratch destination
        asm.add(a, seed_a, 0i64);
        asm.add(b, seed_b, 0i64);

        for _stage in 0..self.stages {
            // PathA racing stage: MUL chain.
            for _ in 0..self.muls_per_stage {
                asm.mul(a, a, 1i64);
            }
            // PathA: parallel DIVs — independent of each other, hanging off
            // the MUL chain. Emitted *before* PathB's divides so they are
            // older in program order and win oldest-first issue arbitration
            // whenever the two paths' divider demands collide.
            for _ in 0..self.par_divs {
                asm.div(pd, a, 1i64);
            }
            // PathB racing stage: DIV chain (the measured critical path).
            for _ in 0..self.divs_per_stage {
                asm.div(b, b, 1i64);
            }
            // Buffer stages (both paths).
            for _ in 0..self.buffer_adds {
                asm.add(a, a, 0i64);
                asm.add(b, b, 0i64);
            }
        }
    }

    /// Run with the given initial delay; returns total cycles. The sync
    /// head is flushed so both paths start on its DRAM return.
    pub fn measure(&self, m: &mut Machine, initial_delay: usize) -> u64 {
        m.flush(self.layout.sync);
        let prog = self.program(initial_delay);
        m.run_cycles(&prog)
    }

    /// Amplified difference: delayed minus aligned minus the delay itself.
    pub fn amplification(&self, m: &mut Machine, initial_delay: usize) -> i64 {
        let aligned = self.measure(m, 0);
        let delayed = self.measure(m, initial_delay);
        delayed as i64 - aligned as i64 - initial_delay as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_cpu::CpuConfig;
    use racer_mem::HierarchyConfig;

    fn magnifier(stages: usize) -> ArithmeticMagnifier {
        let mut mag = ArithmeticMagnifier::new(Layout::default());
        mag.stages = stages;
        mag
    }

    #[test]
    fn misalignment_grows_through_divider_contention() {
        let mut m = Machine::baseline();
        let amp = magnifier(60).amplification(&mut m, 20);
        assert!(
            amp > 30,
            "divider contention must amplify a 20-cycle offset, got {amp}"
        );
    }

    #[test]
    fn amplification_grows_with_stage_count() {
        let mut m = Machine::baseline();
        let short = magnifier(30).amplification(&mut m, 20);
        let long = magnifier(120).amplification(&mut m, 20);
        assert!(
            long > short + 50,
            "more stages must amplify more: {short} → {long}"
        );
    }

    #[test]
    fn no_cache_accesses_involved() {
        let mut m = Machine::baseline();
        let mag = magnifier(20);
        m.flush(m.layout().sync);
        let prog = mag.program(5);
        let r = m.run(&prog);
        // Only the sync head and x-free setup touch memory: one load.
        assert!(
            r.mem_stats.l1d.accesses() <= 2,
            "the arithmetic magnifier must not use the cache: {:?}",
            r.mem_stats.l1d
        );
    }

    #[test]
    fn pipeline_drains_stop_accumulation() {
        // §7.5: with timer interrupts, the stateless magnifier stops
        // accumulating once the run spans an interrupt (Figure 12 plateau).
        let drained = {
            let mut cfg = CpuConfig::coffee_lake();
            cfg.interrupt_interval = Some(4_000);
            let mut m = Machine::with(cfg, HierarchyConfig::small_plru());
            magnifier(400).amplification(&mut m, 20)
        };
        let free = {
            let mut m = Machine::baseline();
            magnifier(400).amplification(&mut m, 20)
        };
        assert!(
            drained < free,
            "interrupt drains must cap the amplification: drained={drained} free={free}"
        );
    }
}
