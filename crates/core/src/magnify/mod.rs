//! Magnifier gadgets (paper §6): amplify a one-bit micro-architectural
//! state difference into a timing difference visible through an arbitrarily
//! coarse timer.
//!
//! Three families, in increasing generality:
//!
//! * [`PlruMagnifier`] — exploits tree-PLRU replacement (§6.1/§6.2,
//!   Figures 3–4). Accepts either a presence/absence input (was line A
//!   inserted at all?) or a reorder input (was A inserted before B?).
//!   Magnification is unbounded: every 6-access round adds three L1 misses
//!   in the "1" state and none in the "0" state, forever.
//! * [`ArbitraryReplacementMagnifier`] — works for *any* per-set
//!   replacement policy including random (§6.3, Figure 5): two racing
//!   paths traverse per-set eviction sets; a misalignment between them
//!   cascades into misses round after round, optionally sustained forever
//!   by in-path prefetching (§6.3.1).
//! * [`ArithmeticMagnifier`] — no cache use whatsoever (§6.4, Figure 6):
//!   contention on a non-fully-pipelined divider turns a start-time offset
//!   into a growing delay, bounded only by the OS timer-interrupt interval
//!   (§7.5, Figure 12).

mod arbitrary;
mod arithmetic;
pub mod pattern;
mod plru;

pub use arbitrary::ArbitraryReplacementMagnifier;
pub use arithmetic::ArithmeticMagnifier;
pub use pattern::{derive_pattern, GeneralPlruMagnifier, PlruPattern};
pub use plru::{PlruInput, PlruMagnifier};
