//! Search-based generalization of the PLRU magnifier pattern to arbitrary
//! power-of-two associativity.
//!
//! The paper illustrates its §6.1/§6.2 gadgets on a 4-way set (Figures 3–4)
//! and evaluates on real 8-way hardware, citing leaky.page's construction.
//! The structure generalizes: keep one *protected* line `A` resident while
//! an access pattern over `W` other lines misses every round — possible
//! exactly because tree-PLRU redirects the eviction candidate away from
//! whatever was touched last.
//!
//! Rather than hard-coding per-associativity patterns, [`derive_pattern`]
//! *discovers* a working cyclic pattern by greedy simulation over the
//! tree-PLRU state machine with cycle detection — the same offline search
//! an attacker would run against a modelled replacement policy.

use crate::layout::Layout;
use crate::machine::Machine;
use racer_isa::{Asm, MemOperand, Program};
use racer_mem::{Addr, CacheSet, LineAddr, ReplacementKind};
use serde::{Deserialize, Serialize};

/// Sentinel line id for the protected line `A` during the search.
const A: u64 = u64::MAX;

/// A derived cyclic PLRU magnifier pattern for some associativity.
#[derive(Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct PlruPattern {
    /// Associativity the pattern was derived for.
    pub ways: usize,
    /// One-time lead-in from the prepared initial state to the cycle entry.
    pub prelude: Vec<usize>,
    /// The cyclic access pattern, as indices `0..ways` into the pattern
    /// lines (`A` itself never appears: the gadget must not touch it).
    pub pattern: Vec<usize>,
    /// Misses per traversal of `pattern` while `A` is resident.
    pub misses_per_round: usize,
}

/// Derive a magnifier pattern for a `ways`-way tree-PLRU set.
///
/// Returns `None` if the greedy search fails (it succeeds for every
/// power-of-two associativity ≥ 2 in practice; see tests for 2–16 ways).
///
/// Procedure: fill the set with pattern lines `0..ways`, insert `A`
/// (evicting the candidate), then repeatedly
///
/// 1. if the eviction candidate is `A`, touch a resident pattern line that
///    deflects the candidate away from `A` (a *protector* access — the role
///    line `C` plays in Figure 3);
/// 2. otherwise access the one non-resident pattern line, scoring a miss
///    that evicts the candidate (≠ `A`).
///
/// Each step records the full `(contents, tree)` state; when a state
/// recurs, the steps between the two occurrences form a self-sustaining
/// cycle.
pub fn derive_pattern(ways: usize) -> Option<PlruPattern> {
    assert!(
        ways.is_power_of_two() && ways >= 2,
        "tree-PLRU needs power-of-two ways ≥ 2"
    );
    let mut accesses: Vec<usize> = Vec::new();
    let mut history: Vec<(Vec<u64>, usize)> = Vec::new(); // (state, access count)
    let max_steps = 8 * ways * ways;

    for _ in 0..max_steps {
        let set = replay(ways, &accesses);
        let state = state_of(&set, ways);
        if let Some(&(_, prefix_len)) = history.iter().find(|(s, _)| *s == state) {
            // Cycle candidate: the accesses between the two occurrences,
            // entered via the prelude that led up to the first occurrence.
            let prelude: Vec<usize> = accesses[..prefix_len].to_vec();
            let cycle: Vec<usize> = accesses[prefix_len..].to_vec();
            if cycle.is_empty() {
                return None;
            }
            if let Some(misses) = verify_cycle(ways, &prelude, &cycle) {
                return Some(PlruPattern {
                    ways,
                    prelude,
                    pattern: cycle,
                    misses_per_round: misses,
                });
            }
            return None;
        }
        history.push((state, accesses.len()));

        let evc = set.eviction_candidate().expect("set is full");
        if evc == LineAddr(A) {
            // Protector step: find a resident pattern line whose touch
            // deflects the EVC off A (checked by exact replay).
            let protector = (0..ways).find(|&l| {
                if set.way_of(LineAddr(l as u64)).is_none() {
                    return false;
                }
                let mut probe_accesses = accesses.clone();
                probe_accesses.push(l);
                let probe = replay(ways, &probe_accesses);
                probe.way_of(LineAddr(A)).is_some()
                    && probe.eviction_candidate() != Some(LineAddr(A))
            })?;
            accesses.push(protector);
        } else {
            // Miss step: access the (unique) non-resident pattern line.
            let absent = (0..ways).find(|&l| set.way_of(LineAddr(l as u64)).is_none())?;
            accesses.push(absent);
        }
        // Abort if A was lost (should be unreachable given the two rules).
        let check = replay(ways, &accesses);
        check.way_of(LineAddr(A))?;
    }
    None
}

/// Rebuild the search state exactly: fill the pattern lines, insert `A`,
/// then apply `accesses` (touch if resident, fill otherwise).
fn replay(ways: usize, accesses: &[usize]) -> CacheSet {
    let mut set = CacheSet::new(ReplacementKind::TreePlru.build(ways, 0));
    for line in 0..ways as u64 {
        set.fill(LineAddr(line));
    }
    set.fill(LineAddr(A));
    for &l in accesses {
        let line = LineAddr(l as u64);
        if set.way_of(line).is_some() {
            set.touch(line);
        } else {
            set.fill(line);
        }
    }
    set
}

/// Replay the prelude and then the cycle repeatedly from the prepared
/// initial state; confirm A is never evicted and each traversal scores at
/// least one miss. Returns the per-round miss count.
fn verify_cycle(ways: usize, prelude: &[usize], cycle: &[usize]) -> Option<usize> {
    let mut set = replay(ways, prelude);
    set.way_of(LineAddr(A))?;
    // Warm-up traversals to reach the steady state, then measure.
    let mut misses_last = 0;
    for round in 0..8 {
        let mut misses = 0;
        for &l in cycle {
            let line = LineAddr(l as u64);
            if set.way_of(line).is_some() {
                set.touch(line);
            } else {
                let out = set.fill(line);
                if out.evicted == Some(LineAddr(A)) {
                    return None;
                }
                misses += 1;
            }
        }
        if round >= 4 && misses == 0 {
            return None; // pattern quiesced: no magnification
        }
        misses_last = misses;
    }
    Some(misses_last)
}

fn state_of(set: &CacheSet, ways: usize) -> Vec<u64> {
    // Contents by way plus the EVC identify the PLRU state for our purposes
    // (two states with equal contents and equal victim walks behave
    // identically under the pattern's deterministic continuation).
    let mut v: Vec<u64> = set.resident_lines().map(|l| l.0).collect();
    v.push(set.eviction_candidate().map_or(u64::MAX - 1, |l| l.0));
    debug_assert_eq!(v.len(), ways + 1);
    v
}

/// A PLRU magnifier for arbitrary power-of-two associativity, built from a
/// derived pattern. Works on, e.g., the 8-way Coffee-Lake L1 that the
/// paper's real-hardware attack targets.
#[derive(Clone, Debug)]
pub struct GeneralPlruMagnifier {
    layout: Layout,
    /// L1 set index used.
    pub set: usize,
    /// Pattern repetitions per measurement.
    pub rounds: usize,
    pattern: PlruPattern,
}

impl GeneralPlruMagnifier {
    /// Derive a pattern for `ways` and build a magnifier on L1 `set`.
    ///
    /// # Panics
    ///
    /// Panics if no pattern can be derived for `ways`.
    pub fn new(layout: Layout, ways: usize, set: usize, rounds: usize) -> Self {
        let pattern = derive_pattern(ways).expect("pattern derivable for power-of-two ways");
        GeneralPlruMagnifier {
            layout,
            set,
            rounds,
            pattern,
        }
    }

    /// The derived pattern.
    pub fn pattern(&self) -> &PlruPattern {
        &self.pattern
    }

    /// Pattern line `i` (0-based); the protected line `A` is
    /// [`GeneralPlruMagnifier::line_a`].
    pub fn line(&self, m: &Machine, i: usize) -> Addr {
        self.layout
            .plru_line(m.cpu().hierarchy().l1d(), self.set, i + 1)
    }

    /// The protected line `A`.
    pub fn line_a(&self, m: &Machine) -> Addr {
        self.layout
            .plru_line(m.cpu().hierarchy().l1d(), self.set, 0)
    }

    /// Prepare the initial state: pattern lines resident (filling the whole
    /// set in index order), `A` warm below the L1.
    pub fn prepare(&self, m: &mut Machine) {
        let a = self.line_a(m);
        m.clear_l1_set(self.set);
        m.warm(a);
        m.evict_from_l1(a);
        for i in 0..self.pattern.ways {
            let addr = self.line(m, i);
            m.warm(addr);
        }
    }

    /// Emit the magnifier program: the derived prelude once (lead-in from
    /// the prepared state to the cycle), then the cycle × rounds, as one
    /// masked dependent chase.
    pub fn program(&self, m: &Machine) -> Program {
        let prelude: Vec<Addr> = self
            .pattern
            .prelude
            .iter()
            .map(|&i| self.line(m, i))
            .collect();
        let addrs: Vec<Addr> = self
            .pattern
            .pattern
            .iter()
            .map(|&i| self.line(m, i))
            .collect();
        let mut asm = Asm::new();
        let val = asm.reg();
        let mask = asm.reg();
        for addr in &prelude {
            asm.and(mask, val, 0i64);
            asm.load(val, MemOperand::base_disp(mask, addr.0 as i64));
        }
        for _ in 0..self.rounds {
            for addr in &addrs {
                asm.and(mask, val, 0i64);
                asm.load(val, MemOperand::base_disp(mask, addr.0 as i64));
            }
        }
        asm.halt();
        asm.assemble().expect("general PLRU magnifier assembles")
    }

    /// Run the magnifier, returning cycles.
    pub fn measure(&self, m: &mut Machine) -> u64 {
        let prog = self.program(m);
        m.run_cycles(&prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_cpu::CpuConfig;
    use racer_mem::HierarchyConfig;

    #[test]
    fn derives_patterns_for_all_power_of_two_ways() {
        for ways in [4usize, 8, 16] {
            let p = derive_pattern(ways).unwrap_or_else(|| panic!("no pattern for {ways} ways"));
            assert!(
                p.misses_per_round >= 1,
                "{ways}-way pattern must keep missing"
            );
            assert!(
                p.pattern.iter().all(|&i| i < ways),
                "{ways}-way pattern uses only pattern lines"
            );
        }
    }

    #[test]
    fn four_way_pattern_matches_the_papers_shape() {
        let p = derive_pattern(4).expect("derivable");
        // The paper's pattern (B,C,E,C,D,C) has period 6 with 3 misses;
        // the derived one must have the same miss density (1 every other
        // access) even if the line labels permute.
        assert_eq!(
            p.misses_per_round * 2,
            p.pattern.len(),
            "misses every other access"
        );
    }

    /// The derived 8-way pattern works end-to-end on the Coffee-Lake-shaped
    /// 8-way L1 — the configuration the paper's real attack ran against.
    #[test]
    fn eight_way_magnifier_works_on_coffee_lake_l1() {
        let mut m = Machine::with(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::coffee_lake(), // 64-set, 8-way tree-PLRU L1
        );
        let mag = GeneralPlruMagnifier::new(m.layout(), 8, 5, 300);

        mag.prepare(&mut m);
        let absent = mag.measure(&mut m);
        mag.prepare(&mut m);
        let a = mag.line_a(&m);
        m.warm(a);
        let present = mag.measure(&mut m);

        let per_round = (present.saturating_sub(absent)) as f64 / 300.0;
        assert!(
            per_round >= 6.0,
            "8-way magnifier must amplify ≥1 miss/round: {per_round:.1} cycles/round"
        );
    }

    #[test]
    fn protected_line_survives_the_whole_run() {
        let mut m = Machine::with(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::coffee_lake(),
        );
        let mag = GeneralPlruMagnifier::new(m.layout(), 8, 5, 200);
        mag.prepare(&mut m);
        let a = mag.line_a(&m);
        m.warm(a);
        mag.measure(&mut m);
        assert_eq!(
            m.cpu().hierarchy().probe(a),
            racer_mem::HitLevel::L1,
            "A must never be evicted by the derived pattern"
        );
    }

    #[test]
    fn absent_case_quiesces() {
        let mut m = Machine::with(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::coffee_lake(),
        );
        let mag = GeneralPlruMagnifier::new(m.layout(), 8, 5, 50);
        mag.prepare(&mut m);
        // Two consecutive absent measurements: the second must be pure hits
        // (same cycle count as the first, which warmed everything).
        let first = mag.measure(&mut m);
        let second = mag.measure(&mut m);
        assert!(
            second <= first,
            "absent pattern must quiesce: {first} then {second}"
        );
    }
}
