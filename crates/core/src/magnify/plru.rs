//! The tree-PLRU magnifier gadgets (paper §6.1 and §6.2, Figures 3–4).
//!
//! Both variants prepare one 4-way L1 set with lines `B, C, D, E` in the
//! exact Figure 3.1 state, then repeatedly walk an access pattern:
//!
//! * **P/A input** (§6.1): pattern `B,C,E,C,D,C`. If the racing gadget
//!   inserted `A`, the PLRU tree protects it forever and every other access
//!   misses; if not, the pattern fits the set and every access hits.
//! * **Reorder input** (§6.2): pattern `C,E,C,D,C,B`. The racing gadget
//!   touches *both* `A` and `B` — only their order differs. `A` before `B`
//!   leaves `A` protected (misses forever); `B` before `A` evicts `A` after
//!   one round (hits forever).
//!
//! The cycle difference grows linearly and indefinitely with the round
//! count, defeating any finite timer coarsening.

use crate::layout::Layout;
use crate::machine::Machine;
use racer_isa::{Asm, MemOperand, Program};
use racer_mem::Addr;
use serde::{Deserialize, Serialize};

/// Which §6 input state the magnifier amplifies.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum PlruInput {
    /// §6.1: A present vs absent (from a transient P/A racing gadget).
    PresenceAbsence,
    /// §6.2: A inserted before vs after B (from a reorder racing gadget).
    Reorder,
}

/// Driver for the PLRU magnifiers. Requires a machine whose L1 is 4-way
/// tree-PLRU (e.g. [`Machine::baseline`]).
#[derive(Clone, Debug)]
pub struct PlruMagnifier {
    layout: Layout,
    /// L1 set index the gadget lives in (default 5, clear of the
    /// sync/x-flag lines which map to set 0).
    pub set: usize,
    /// Pattern repetitions per measurement (default 1000 ⇒ ~12 µs of
    /// difference at 2 GHz, comfortably above a 5 µs timer).
    pub rounds: usize,
}

impl PlruMagnifier {
    /// A magnifier on L1 set 5 with 1000 rounds.
    pub fn new(layout: Layout) -> Self {
        PlruMagnifier {
            layout,
            set: 5,
            rounds: 1000,
        }
    }

    /// Use a specific set and round count.
    pub fn with(layout: Layout, set: usize, rounds: usize) -> Self {
        PlruMagnifier {
            layout,
            set,
            rounds,
        }
    }

    /// The five congruent lines `[A, B, C, D, E]` this gadget uses on `m`.
    pub fn lines(&self, m: &Machine) -> [Addr; 5] {
        let l1 = m.cpu().hierarchy().l1d();
        [
            self.layout.plru_line(l1, self.set, 0), // A
            self.layout.plru_line(l1, self.set, 1), // B
            self.layout.plru_line(l1, self.set, 2), // C
            self.layout.plru_line(l1, self.set, 3), // D
            self.layout.plru_line(l1, self.set, 4), // E
        ]
    }

    /// Line `A` — the protected line a racing gadget inserts.
    pub fn line_a(&self, m: &Machine) -> Addr {
        self.lines(m)[0]
    }

    /// Line `B` — the second raced line of the reorder variant.
    pub fn line_b(&self, m: &Machine) -> Addr {
        self.lines(m)[1]
    }

    /// Prepare the exact Figure 3.1 initial state: the set holds
    /// `[B, C, E, D]` (fill order chosen so the eviction candidate is `B`
    /// and, after `A` fills, the candidate becomes `E` — verified against
    /// the figure in `racer-mem`'s tree-PLRU tests). `A` is L2-warm but not
    /// L1-resident.
    pub fn prepare(&self, m: &mut Machine) {
        let [a, b, c, d, e] = self.lines(m);
        m.clear_l1_set(self.set);
        // Warm A below the L1 so its later racing-gadget fill is fast.
        m.warm(a);
        m.evict_from_l1(a);
        // Fill order B, C, E, D (ways 0..3) — the Figure 3.1 tree state.
        for addr in [b, c, e, d] {
            m.warm(addr);
        }
    }

    /// The magnifier program: `rounds` repetitions of the pattern as one
    /// dependent (masked) access chain, so out-of-order execution cannot
    /// reorder the pattern itself.
    pub fn program(&self, m: &Machine, input: PlruInput) -> Program {
        let [_, b, c, d, e] = self.lines(m);
        let pattern: [Addr; 6] = match input {
            PlruInput::PresenceAbsence => [b, c, e, c, d, c],
            PlruInput::Reorder => [c, e, c, d, c, b],
        };
        let mut asm = Asm::new();
        // Two registers suffice: renaming makes the WAW reuse free, while
        // the and→load→and chain keeps the accesses strictly ordered.
        let val = asm.reg();
        let mask = asm.reg();
        for _ in 0..self.rounds {
            for addr in pattern {
                asm.and(mask, val, 0i64);
                asm.load(val, MemOperand::base_disp(mask, addr.0 as i64));
            }
        }
        asm.halt();
        asm.assemble().expect("PLRU magnifier assembles")
    }

    /// Run the magnifier and return its cycle count — the quantity the
    /// attacker reads through a coarse timer.
    pub fn measure(&self, m: &mut Machine, input: PlruInput) -> u64 {
        let prog = self.program(m, input);
        m.run_cycles(&prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_mem::HitLevel;

    #[test]
    fn presence_of_a_costs_three_misses_per_round() {
        let mut m = Machine::baseline();
        let mag = PlruMagnifier::with(m.layout(), 5, 200);

        // Absent case.
        mag.prepare(&mut m);
        let absent = mag.measure(&mut m, PlruInput::PresenceAbsence);

        // Present case: the racing gadget's insert is emulated by one load.
        mag.prepare(&mut m);
        let a = mag.line_a(&m);
        m.warm(a);
        let present = mag.measure(&mut m, PlruInput::PresenceAbsence);

        let diff = present.saturating_sub(absent);
        // 3 misses/round × (L2 12 − L1 4) = 24 cycles/round expected.
        let per_round = diff as f64 / 200.0;
        assert!(
            (15.0..=35.0).contains(&per_round),
            "expected ~24 cycles/round of magnification, got {per_round:.1}"
        );
        // A must still be resident after the whole run (never evicted).
        assert_eq!(m.cpu().hierarchy().probe(a), HitLevel::L1);
    }

    #[test]
    fn magnification_scales_linearly_with_rounds() {
        let mut m = Machine::baseline();
        let diff_at = |m: &mut Machine, rounds: usize| {
            let mag = PlruMagnifier::with(m.layout(), 5, rounds);
            mag.prepare(m);
            let absent = mag.measure(m, PlruInput::PresenceAbsence);
            mag.prepare(m);
            let a = mag.line_a(m);
            m.warm(a);
            let present = mag.measure(m, PlruInput::PresenceAbsence);
            present.saturating_sub(absent)
        };
        let d100 = diff_at(&mut m, 100);
        let d400 = diff_at(&mut m, 400);
        let ratio = d400 as f64 / d100.max(1) as f64;
        assert!(
            (3.2..=4.8).contains(&ratio),
            "4× rounds should give ~4× difference: {d100} → {d400}"
        );
    }

    #[test]
    fn reorder_input_direction_flips_measurement() {
        let mut m = Machine::baseline();
        let mag = PlruMagnifier::with(m.layout(), 5, 200);
        let (a, b) = (mag.line_a(&m), mag.line_b(&m));

        // A before B (transmit 1): A survives, pattern misses forever.
        mag.prepare(&mut m);
        m.warm(a);
        m.warm(b);
        let a_first = mag.measure(&mut m, PlruInput::Reorder);

        // B before A (transmit 0): A is evicted, pattern settles to hits.
        mag.prepare(&mut m);
        m.warm(b);
        m.warm(a);
        let b_first = mag.measure(&mut m, PlruInput::Reorder);

        assert!(
            a_first > b_first + 2000,
            "reorder magnifier must separate the orders: a_first={a_first} b_first={b_first}"
        );
    }

    #[test]
    fn five_microsecond_timer_sees_the_difference() {
        use racer_time::{CoarseTimer, Timer};
        let mut m = Machine::baseline();
        // 1500 rounds ≈ 36000 cycles ≈ 18 µs of difference at 2 GHz.
        let mag = PlruMagnifier::with(m.layout(), 5, 1500);

        mag.prepare(&mut m);
        let absent_cycles = mag.measure(&mut m, PlruInput::PresenceAbsence);
        mag.prepare(&mut m);
        let a = mag.line_a(&m);
        m.warm(a);
        let present_cycles = mag.measure(&mut m, PlruInput::PresenceAbsence);

        let mut timer = CoarseTimer::browser_5us();
        let ns = |c: u64| c as f64 * 0.5;
        let absent_obs = timer.measure(0.0, ns(absent_cycles));
        let present_obs = timer.measure(0.0, ns(present_cycles));
        assert!(
            present_obs - absent_obs >= 10_000.0,
            "the coarse timer must see ≥2 ticks of difference: absent={absent_obs} present={present_obs}"
        );
    }

    #[test]
    fn prepare_is_idempotent_across_trials() {
        let mut m = Machine::baseline();
        let mag = PlruMagnifier::with(m.layout(), 5, 50);
        let mut absents = Vec::new();
        for _ in 0..3 {
            mag.prepare(&mut m);
            absents.push(mag.measure(&mut m, PlruInput::PresenceAbsence));
        }
        assert_eq!(absents[0], absents[1]);
        assert_eq!(absents[1], absents[2]);
    }
}
