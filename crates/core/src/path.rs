//! Path construction (paper §4).
//!
//! A **path** is an instruction sequence with no external data dependences,
//! eligible to execute in parallel with other paths on an out-of-order core.
//! Racing gadgets need three properties, all provided here:
//!
//! 1. **Synchronization** (§4.1): every path's first instruction depends on
//!    one shared cache-missing load (the *head*), so all instructions reach
//!    the backend before any path starts executing — see [`emit_sync_head`].
//! 2. **Expression embedding** (§4.2): the *target expression* is wrapped in
//!    a pre-extension (inputs derived from the head) and a post-extension
//!    (all outputs folded into a single *terminator* register with an
//!    attacker-known value) — [`PathSpec::emit`] maintains the invariant
//!    that the terminator always holds 0, so it can address an
//!    attacker-chosen probe line or feed a branch condition.
//! 3. **Known reference latency** (§5's `path_b`): [`PathSpec::ideal_latency`]
//!    predicts a path's critical-path execution time so reference paths of
//!    chosen duration can be generated.

use racer_cpu::Latencies;
use racer_isa::{AluOp, Asm, MemOperand, Reg};
use racer_mem::Addr;
use serde::{Deserialize, Serialize};

/// Emit the §4.1 synchronization head: a load of `sync` (which the attack
/// driver flushes beforehand) whose value is folded to zero. Returns the
/// zero-valued seed register every path hangs off.
pub fn emit_sync_head(asm: &mut Asm, sync: Addr) -> Reg {
    let raw = asm.reg();
    asm.load(raw, MemOperand::abs(sync.0));
    let seed = asm.reg();
    asm.and(seed, raw, 0i64); // seed = 0, data-dependent on the slow load
    seed
}

/// A recipe for one dependence chain — the paper's measurable unit.
///
/// Every specification's emitted code maintains the invariant that the
/// chain register holds **zero** at every step (ops use identity
/// immediates; loads are masked), so the terminator can directly index an
/// attacker-chosen address.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathSpec {
    /// `count` chained ALU operations of kind `op` (value-preserving:
    /// `add r,r,0` / `mul r,r,1` / `div r,r,1` / …).
    OpChain {
        /// Operation kind.
        op: AluOp,
        /// Chain length.
        count: usize,
    },
    /// `count` chained `lea` operations (1-cycle address arithmetic; one of
    /// Figure 8's target operations).
    LeaChain {
        /// Chain length.
        count: usize,
    },
    /// A dependent pointer-style chase through the given addresses; each
    /// access is masked so the chain value stays zero.
    LoadChain {
        /// Addresses visited, in order.
        addrs: Vec<u64>,
    },
    /// Dereference the pointer stored at `ptr`: one load fetches the
    /// subject address from attacker memory, a second loads through it.
    /// Lets one program measure *data-selected* subjects (the address can
    /// change between runs without changing the code — and therefore
    /// without retraining branch predictors).
    IndirectLoad {
        /// Address of the attacker-memory cell holding the subject address.
        ptr: u64,
    },
    /// Concatenation: the chains run back-to-back as one longer chain.
    Seq(Vec<PathSpec>),
}

impl PathSpec {
    /// `count` chained ops of `op`.
    pub fn op_chain(op: AluOp, count: usize) -> Self {
        PathSpec::OpChain { op, count }
    }

    /// `count` chained `lea`s.
    pub fn lea_chain(count: usize) -> Self {
        PathSpec::LeaChain { count }
    }

    /// A dependent load chain through `addrs`.
    pub fn load_chain(addrs: impl IntoIterator<Item = Addr>) -> Self {
        PathSpec::LoadChain {
            addrs: addrs.into_iter().map(|a| a.0).collect(),
        }
    }

    /// This chain followed by `next`.
    pub fn then(self, next: PathSpec) -> Self {
        match self {
            PathSpec::Seq(mut v) => {
                v.push(next);
                PathSpec::Seq(v)
            }
            first => PathSpec::Seq(vec![first, next]),
        }
    }

    /// Emit the chain seeded by `seed` (which must hold 0); returns the
    /// terminator register, which again holds 0.
    pub fn emit(&self, asm: &mut Asm, seed: Reg) -> Reg {
        match self {
            PathSpec::OpChain { op, count } => {
                if *count == 0 {
                    return seed;
                }
                let identity: i64 = match op {
                    AluOp::Mul | AluOp::Div => 1,
                    _ => 0,
                };
                // One register suffices: register renaming makes the reuse
                // free, and the chain is serial by construction anyway.
                let r = asm.reg();
                asm.alu(*op, r, seed, identity);
                for _ in 1..*count {
                    asm.alu(*op, r, r, identity);
                }
                r
            }
            PathSpec::LeaChain { count } => {
                if *count == 0 {
                    return seed;
                }
                let r = asm.reg();
                asm.lea(r, MemOperand::base_disp(seed, 0));
                for _ in 1..*count {
                    asm.lea(r, MemOperand::base_disp(r, 0));
                }
                r
            }
            PathSpec::LoadChain { addrs } => {
                if addrs.is_empty() {
                    return seed;
                }
                let val = asm.reg();
                let mask = asm.reg();
                let mut prev = seed;
                for &a in addrs {
                    asm.load(val, MemOperand::base_disp(prev, a as i64));
                    asm.and(mask, val, 0i64);
                    prev = mask;
                }
                prev
            }
            PathSpec::IndirectLoad { ptr } => {
                let p = asm.reg();
                asm.load(p, MemOperand::base_disp(seed, *ptr as i64));
                let v = asm.reg();
                asm.load(v, MemOperand::base_disp(p, 0));
                let mask = asm.reg();
                asm.and(mask, v, 0i64);
                mask
            }
            PathSpec::Seq(parts) => {
                let mut prev = seed;
                for p in parts {
                    prev = p.emit(asm, prev);
                }
                prev
            }
        }
    }

    /// Number of "operations" in the chain (the x-axis unit of Figures 8–9).
    pub fn op_count(&self) -> usize {
        match self {
            PathSpec::OpChain { count, .. } | PathSpec::LeaChain { count } => *count,
            PathSpec::LoadChain { addrs } => addrs.len(),
            PathSpec::IndirectLoad { .. } => 2,
            PathSpec::Seq(parts) => parts.iter().map(PathSpec::op_count).sum(),
        }
    }

    /// Idealized critical-path latency in cycles, assuming every load costs
    /// `load_latency` (caller picks L1/L2/DRAM as appropriate).
    ///
    /// `div` chains are value-stable at 0/1 in emitted code, which makes the
    /// operand-parity term constant: `0 ^ 1 = 1`, so each divide costs
    /// `div_min + 1`.
    pub fn ideal_latency(&self, lat: &Latencies, load_latency: u64) -> u64 {
        match self {
            PathSpec::OpChain { op, count } => {
                let per = match op {
                    AluOp::Mul => lat.mul,
                    AluOp::Div => lat.div_min + 1,
                    _ => lat.alu,
                };
                per * *count as u64
            }
            PathSpec::LeaChain { count } => lat.alu * *count as u64,
            PathSpec::LoadChain { addrs } => (load_latency + lat.alu) * addrs.len() as u64,
            PathSpec::IndirectLoad { .. } => 2 * load_latency + lat.alu,
            PathSpec::Seq(parts) => parts
                .iter()
                .map(|p| p.ideal_latency(lat, load_latency))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_cpu::{Backend, Cpu, CpuConfig};
    use racer_isa::Asm;
    use racer_mem::HierarchyConfig;

    fn cpu() -> Cpu {
        Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake())
    }

    /// Emitted chains preserve the zero-value invariant.
    #[test]
    fn terminator_value_is_zero() {
        for spec in [
            PathSpec::op_chain(AluOp::Add, 9),
            PathSpec::op_chain(AluOp::Mul, 5),
            PathSpec::op_chain(AluOp::Div, 4),
            PathSpec::lea_chain(6),
            PathSpec::load_chain([Addr(0x9000), Addr(0xA000)]),
            PathSpec::op_chain(AluOp::Add, 2).then(PathSpec::op_chain(AluOp::Mul, 2)),
        ] {
            let mut asm = Asm::new();
            let seed = emit_sync_head(&mut asm, Addr(0x100));
            let term = spec.emit(&mut asm, seed);
            // Expose the terminator by storing it.
            asm.store(term, MemOperand::abs(0x8));
            asm.halt();
            let prog = asm.assemble().unwrap();
            let mut c = cpu();
            c.mem_mut().write(0x100, 0xDEAD_BEEF); // sync value is masked away
            c.mem_mut().write(0x9000, 42);
            c.run_one(&prog, Backend::EventDriven);
            assert_eq!(c.mem().read(0x8), 0, "terminator of {spec:?} must be 0");
        }
    }

    /// Measured chain time matches `ideal_latency` (chains serialize).
    #[test]
    fn measured_latency_tracks_ideal() {
        let lat = Latencies::default();
        for (spec, slack) in [
            (PathSpec::op_chain(AluOp::Add, 30), 3u64),
            (PathSpec::op_chain(AluOp::Mul, 12), 3),
            (PathSpec::op_chain(AluOp::Div, 6), 3),
            (PathSpec::lea_chain(25), 3),
        ] {
            let measure = |spec: &PathSpec| {
                let mut asm = Asm::new();
                let seed = asm.reg();
                let _ = spec.emit(&mut asm, seed);
                asm.halt();
                let mut c = cpu();
                c.run_one(&asm.assemble().unwrap(), Backend::EventDriven)
                    .cycles
            };
            let base = {
                let mut asm = Asm::new();
                asm.halt();
                let mut c = cpu();
                c.run_one(&asm.assemble().unwrap(), Backend::EventDriven)
                    .cycles
            };
            let measured = measure(&spec) - base;
            let ideal = spec.ideal_latency(&lat, 4);
            assert!(
                measured.abs_diff(ideal) <= slack + ideal / 10,
                "{spec:?}: measured {measured} vs ideal {ideal}"
            );
        }
    }

    /// The sync head makes two paths start together: neither path's first
    /// instruction executes before the head load returns.
    #[test]
    fn sync_head_aligns_path_starts() {
        let mut c = Cpu::new(
            CpuConfig::coffee_lake().with_load_recording(),
            HierarchyConfig::coffee_lake(),
        );
        let mut asm = Asm::new();
        let seed = emit_sync_head(&mut asm, Addr(0x4_0000));
        // Two one-load paths hanging off the seed.
        let a = PathSpec::load_chain([Addr(0x5_0000)]).emit(&mut asm, seed);
        let b = PathSpec::load_chain([Addr(0x6_0000)]).emit(&mut asm, seed);
        let join = asm.reg();
        asm.add(join, a, b);
        asm.halt();
        let prog = asm.assemble().unwrap();
        let r = c.run_one(&prog, Backend::EventDriven);

        let head = r
            .loads
            .iter()
            .find(|l| l.addr == 0x4_0000)
            .expect("head load");
        let la = r
            .loads
            .iter()
            .find(|l| l.addr == 0x5_0000)
            .expect("path A load");
        let lb = r
            .loads
            .iter()
            .find(|l| l.addr == 0x6_0000)
            .expect("path B load");
        assert!(
            la.issue_cycle >= head.complete_cycle,
            "path A must wait for the head"
        );
        assert!(
            lb.issue_cycle >= head.complete_cycle,
            "path B must wait for the head"
        );
        assert!(
            la.issue_cycle.abs_diff(lb.issue_cycle) <= 1,
            "synchronized paths start within an issue slot of each other"
        );
    }

    /// Code Listing 1 reproduced with PathSpecs: two synchronized paths run
    /// concurrently (total ≈ max, not sum).
    #[test]
    fn listing1_paths_execute_simultaneously() {
        let chase = |base: u64| PathSpec::load_chain((0..4).map(|i| Addr(base + i * 0x1_0000)));
        let run = |two_paths: bool| {
            let mut asm = Asm::new();
            let seed = emit_sync_head(&mut asm, Addr(0x9_0000));
            chase(0xA0_0000).emit(&mut asm, seed);
            if two_paths {
                chase(0xB0_0000).emit(&mut asm, seed);
            }
            asm.halt();
            let mut c = cpu();
            c.run_one(&asm.assemble().unwrap(), Backend::EventDriven)
                .cycles
        };
        let one = run(false);
        let two = run(true);
        assert!(
            two < one + one / 4,
            "second path must overlap the first: one={one} two={two}"
        );
    }

    #[test]
    fn op_count_sums_through_seq() {
        let spec = PathSpec::op_chain(AluOp::Add, 3)
            .then(PathSpec::lea_chain(2))
            .then(PathSpec::load_chain([Addr(0)]));
        assert_eq!(spec.op_count(), 6);
    }

    #[test]
    fn then_flattens_sequences() {
        let s = PathSpec::op_chain(AluOp::Add, 1)
            .then(PathSpec::op_chain(AluOp::Add, 2))
            .then(PathSpec::op_chain(AluOp::Add, 3));
        match s {
            PathSpec::Seq(v) => assert_eq!(v.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
    }
}
