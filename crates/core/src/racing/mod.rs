//! Racing gadgets (paper §5): differentially time a measurement path
//! against a baseline path with known constant execution time, leaving the
//! outcome as a micro-architectural state change.
//!
//! Two flavours:
//!
//! * [`TransientPaRace`] (§5.1) — the baseline path is a *mispredicted
//!   branch condition*; the measurement path executes transiently in the
//!   branch shadow and its final probe access either does or does not issue
//!   before the squash (presence/absence output).
//! * [`ReorderRace`] (§5.2) — no speculation at all: two independent paths
//!   end in loads to two lines of one cache set, and the *insertion order*
//!   of those lines is the output. Immune to Spectre-class defences.

mod reorder;
mod transient_pa;

pub use reorder::ReorderRace;
pub use transient_pa::TransientPaRace;

use crate::machine::Machine;
use crate::path::PathSpec;
use serde::{Deserialize, Serialize};

/// Outcome of one race, as read back by the (omniscient) harness. Real
/// attacks never see this directly — they feed the state difference into a
/// magnifier gadget (§6) and observe a coarse timer.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct RaceOutcome {
    /// Whether the measurement path won (its terminal access happened /
    /// happened first).
    pub measurement_won: bool,
    /// Cycle the measurement path's terminal load issued, if it did.
    pub measurement_issue: Option<u64>,
    /// Cycle the baseline path's terminal event occurred, if recorded.
    pub baseline_issue: Option<u64>,
    /// Total cycles of the race program.
    pub cycles: u64,
}

/// Warm every address a path's load chains touch (attacker touching their
/// own arrays pre-attack, so in-path loads have predictable latency).
pub fn warm_path(m: &mut Machine, spec: &PathSpec) {
    match spec {
        PathSpec::LoadChain { addrs } => {
            for &a in addrs {
                m.warm(racer_mem::Addr(a));
            }
        }
        PathSpec::IndirectLoad { ptr } => {
            // Warm the pointer cell only; the pointee is the measured
            // subject and must not be disturbed.
            m.warm(racer_mem::Addr(*ptr));
        }
        PathSpec::Seq(parts) => {
            for p in parts {
                warm_path(m, p);
            }
        }
        PathSpec::OpChain { .. } | PathSpec::LeaChain { .. } => {}
    }
}
