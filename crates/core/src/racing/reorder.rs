//! The non-transient reorder racing gadget (paper §5.2).
//!
//! ```text
//!     path_m() ↦ access[A];
//!     path_b() ↦ access[B];
//! ```
//!
//! No branch, no misspeculation, nothing to squash: both paths execute
//! architecturally, and the only secret is *which terminal load issued
//! first* — visible in the relative cache-insertion order of lines A and B.
//! Because every instruction here is non-speculative, defences that police
//! transient execution (delay-on-miss, invisible speculation, rollback
//! cleanup) "mark them as being safe to execute in any order" (paper §8)
//! and the race transmits regardless.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::path::{emit_sync_head, PathSpec};
use crate::racing::{warm_path, RaceOutcome};
use racer_isa::{Asm, MemOperand, Program};
use racer_mem::Addr;

/// Builder/driver for §5.2 reorder races.
#[derive(Clone, Debug)]
pub struct ReorderRace {
    layout: Layout,
}

impl ReorderRace {
    /// A race driver over `layout`.
    pub fn new(layout: Layout) -> Self {
        ReorderRace { layout }
    }

    /// Build the gadget program:
    ///
    /// ```text
    /// seed = load [sync] & 0       ; flushed head, §4.1
    /// rm   = path_m.emit(seed)     ; measurement path
    /// rb   = path_b.emit(seed)     ; baseline path (independent registers)
    /// load [rm + A]                ; terminal access of path_m
    /// load [rb + B]                ; terminal access of path_b
    /// halt
    /// ```
    ///
    /// Program order of the two terminal loads is irrelevant: each issues
    /// the cycle its own path's terminator resolves.
    pub fn program(&self, path_m: &PathSpec, path_b: &PathSpec, a: Addr, b: Addr) -> Program {
        let mut asm = Asm::new();
        let seed = emit_sync_head(&mut asm, self.layout.sync);
        let rm = path_m.emit(&mut asm, seed);
        let rb = path_b.emit(&mut asm, seed);
        let va = asm.reg();
        asm.load(va, MemOperand::base_disp(rm, a.0 as i64));
        let vb = asm.reg();
        asm.load(vb, MemOperand::base_disp(rb, b.0 as i64));
        asm.halt();
        asm.assemble().expect("reorder gadget assembles")
    }

    /// Run the race once (flushing the sync head first) and report which
    /// terminal access issued first, from recorded load events.
    pub fn run(
        &self,
        m: &mut Machine,
        path_m: &PathSpec,
        path_b: &PathSpec,
        a: Addr,
        b: Addr,
    ) -> RaceOutcome {
        let prog = self.program(path_m, path_b, a, b);
        warm_path(m, path_m);
        warm_path(m, path_b);
        m.flush(self.layout.sync);
        let r = m.run(&prog);
        let a_ev = r
            .loads
            .iter()
            .find(|l| l.addr == a.0)
            .expect("A access recorded");
        let b_ev = r
            .loads
            .iter()
            .find(|l| l.addr == b.0)
            .expect("B access recorded");
        RaceOutcome {
            measurement_won: a_ev.issue_cycle <= b_ev.issue_cycle,
            measurement_issue: Some(a_ev.issue_cycle),
            baseline_issue: Some(b_ev.issue_cycle),
            cycles: r.cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_cpu::Countermeasure;
    use racer_isa::AluOp;

    const A: Addr = Addr(0x0700_0000);
    const B: Addr = Addr(0x0700_2000);

    #[test]
    fn shorter_measurement_path_issues_first() {
        let mut m = Machine::baseline();
        let race = ReorderRace::new(m.layout());
        let out = race.run(
            &mut m,
            &PathSpec::op_chain(AluOp::Add, 10),
            &PathSpec::op_chain(AluOp::Add, 30),
            A,
            B,
        );
        assert!(out.measurement_won);
        let out = race.run(
            &mut m,
            &PathSpec::op_chain(AluOp::Add, 30),
            &PathSpec::op_chain(AluOp::Add, 10),
            A,
            B,
        );
        assert!(!out.measurement_won);
    }

    #[test]
    fn issue_gap_tracks_path_length_difference() {
        let mut m = Machine::baseline();
        let race = ReorderRace::new(m.layout());
        let out = race.run(
            &mut m,
            &PathSpec::op_chain(AluOp::Add, 10),
            &PathSpec::op_chain(AluOp::Add, 34),
            A,
            B,
        );
        let gap = out.baseline_issue.unwrap() - out.measurement_issue.unwrap();
        assert!(
            (20..=28).contains(&gap),
            "24-add difference should give a ~24-cycle issue gap, got {gap}"
        );
    }

    #[test]
    fn single_op_difference_is_resolvable() {
        // §7.2: "the overall minimal granularity of racing gadgets is 1–6
        // cycles". With deterministic issue, a single extra ADD flips order.
        let mut m = Machine::baseline();
        let race = ReorderRace::new(m.layout());
        let shorter = PathSpec::op_chain(AluOp::Add, 20);
        let longer = PathSpec::op_chain(AluOp::Add, 21);
        let out = race.run(&mut m, &shorter, &longer, A, B);
        assert!(out.measurement_won);
        let out = race.run(&mut m, &longer, &shorter, A, B);
        assert!(!out.measurement_won);
    }

    /// The §8 claim: the reorder race has no speculative component, so
    /// transient-execution defences leave it fully functional.
    #[test]
    fn reorder_race_survives_spectre_defences() {
        for cm in [
            Countermeasure::DelayOnMiss,
            Countermeasure::InvisibleSpec,
            Countermeasure::GhostMinion,
        ] {
            let mut m = Machine::baseline();
            m.set_countermeasure(cm);
            let race = ReorderRace::new(m.layout());
            let out = race.run(
                &mut m,
                &PathSpec::op_chain(AluOp::Add, 8),
                &PathSpec::op_chain(AluOp::Add, 28),
                A,
                B,
            );
            assert!(
                out.measurement_won,
                "{cm}: race must still resolve correctly"
            );
            let out = race.run(
                &mut m,
                &PathSpec::op_chain(AluOp::Add, 28),
                &PathSpec::op_chain(AluOp::Add, 8),
                A,
                B,
            );
            assert!(
                !out.measurement_won,
                "{cm}: race must transmit both directions"
            );
        }
    }

    /// In-order execution is the defence that works (paper §8): the paths
    /// serialize and the "race" degenerates to program order.
    #[test]
    fn in_order_execution_destroys_the_race() {
        let mut m = Machine::baseline();
        m.set_countermeasure(Countermeasure::InOrder);
        let race = ReorderRace::new(m.layout());
        // path_m is much shorter, but in-order issue means A still goes
        // first only because of *program order*, not timing: flipping the
        // lengths must NOT flip the outcome.
        let short_first = race.run(
            &mut m,
            &PathSpec::op_chain(AluOp::Add, 5),
            &PathSpec::op_chain(AluOp::Add, 30),
            A,
            B,
        );
        let long_first = race.run(
            &mut m,
            &PathSpec::op_chain(AluOp::Add, 30),
            &PathSpec::op_chain(AluOp::Add, 5),
            A,
            B,
        );
        assert_eq!(
            short_first.measurement_won, long_first.measurement_won,
            "under in-order issue the outcome is timing-independent"
        );
    }
}
