//! The transient presence/absence racing gadget (paper §5.1).
//!
//! ```text
//!     if (path_m(x))            // branch condition = one path
//!         path_b() ↦ access[A]  // branch body = the other, ending in a probe
//! ```
//!
//! Trained with `x = 0` (condition true, body executes architecturally),
//! then flipped to `x = 1`: the predictor still runs the body — but only
//! *transiently*, until the condition path resolves and squashes it. The
//! probe access `access[A]` therefore lands in the cache **iff the body
//! path finishes before the condition path** — converting a cycle-scale
//! timing relation into persistent cache state.

use crate::layout::Layout;
use crate::machine::Machine;
use crate::path::{emit_sync_head, PathSpec};
use crate::racing::{warm_path, RaceOutcome};
use racer_isa::{Asm, Cond, MemOperand, Program};
use racer_mem::HitLevel;

/// Builder/driver for §5.1 races. See the module docs for the construction.
///
/// The *condition* path is the reference (`path_b()` in the paper's §7.2
/// granularity experiments: a chain of known-latency ops); the *body* path
/// carries the target expression and ends with the probe access.
#[derive(Clone, Debug)]
pub struct TransientPaRace {
    layout: Layout,
    /// Training iterations before each detection (default 4: enough to
    /// saturate a 2-bit counter from any state).
    pub train_iters: usize,
    /// The probe line `A` that the body's terminal access touches
    /// (defaults to [`Layout::probe`]; attacks point it at a magnifier's
    /// protected line).
    pub probe: racer_mem::Addr,
}

impl TransientPaRace {
    /// A race driver over `layout`.
    pub fn new(layout: Layout) -> Self {
        TransientPaRace {
            layout,
            train_iters: 4,
            probe: layout.probe,
        }
    }

    /// Use a custom probe line (e.g. a magnifier's line A).
    pub fn with_probe(mut self, probe: racer_mem::Addr) -> Self {
        self.probe = probe;
        self
    }

    /// Build the gadget program.
    ///
    /// Shape (everything hangs off the flushed synchronization head, §4.1):
    ///
    /// ```text
    /// rx   = load [x_flag]          ; warm: resolves immediately
    /// seed = load [sync] & 0        ; flushed: both paths wait on this
    /// rc   = cond.emit(seed)        ; condition path (reference)
    /// c    = (rc + 1) - rx          ; c = 1 - x, data-dependent on rc
    /// br c == 0 → skip              ; taken iff x == 1 (detection)
    /// rb   = body.emit(seed)        ; measurement path (target)
    /// probe_load [rb + probe]       ; the presence/absence transmitter
    /// skip: halt
    /// ```
    pub fn program(&self, cond: &PathSpec, body: &PathSpec) -> Program {
        let mut asm = Asm::new();
        let rx = asm.reg();
        asm.load(rx, MemOperand::abs(self.layout.x_flag.0));
        let seed = emit_sync_head(&mut asm, self.layout.sync);
        let rc = cond.emit(&mut asm, seed);
        let t = asm.reg();
        asm.addi(t, rc, 1);
        let c = asm.reg();
        asm.sub(c, t, rx);
        let skip = asm.fwd_label();
        asm.br(Cond::Eq, c, 0i64, skip);
        let rb = body.emit(&mut asm, seed);
        let probe_val = asm.reg();
        asm.load(probe_val, MemOperand::base_disp(rb, self.probe.0 as i64));
        asm.bind(skip);
        asm.halt();
        asm.assemble().expect("transient P/A gadget assembles")
    }

    /// Train the branch with `x = 0` (body architecturally executed).
    pub fn train(&self, m: &mut Machine, prog: &Program) {
        m.cpu_mut().mem_mut().write(self.layout.x_flag.0, 0);
        m.warm(self.layout.x_flag);
        for _ in 0..self.train_iters {
            m.flush(self.layout.sync);
            m.run(prog);
        }
    }

    /// One trained detection run (`x = 1`): returns the race outcome,
    /// including whether the probe access issued before the squash.
    pub fn detect(&self, m: &mut Machine, prog: &Program) -> RaceOutcome {
        m.cpu_mut().mem_mut().write(self.layout.x_flag.0, 1);
        m.flush(self.layout.sync);
        m.flush(self.probe);
        let r = m.run(prog);
        debug_assert!(r.mispredicts >= 1, "detection must mispredict");
        let probe_ev = r.loads.iter().find(|l| l.addr == self.probe.0);
        RaceOutcome {
            measurement_won: probe_ev.is_some(),
            measurement_issue: probe_ev.map(|l| l.issue_cycle),
            baseline_issue: None,
            cycles: r.cycles,
        }
    }

    /// Full train-then-detect: does the probe line end up cached — i.e. did
    /// the body (target) path beat the condition (reference) path?
    ///
    /// This is the omniscient readout used by granularity experiments; full
    /// attacks read the same state via a magnifier gadget and coarse timer.
    pub fn probe_present_after(&self, m: &mut Machine, cond: &PathSpec, body: &PathSpec) -> bool {
        let prog = self.program(cond, body);
        warm_path(m, cond);
        warm_path(m, body);
        self.train(m, &prog);
        self.detect(m, &prog);
        m.cpu().hierarchy().probe(self.probe) != HitLevel::Memory
    }

    /// §7.2 framing: does `target` (in the transient body) complete before
    /// `reference` (the branch condition) resolves?
    pub fn target_beats_ref(
        &self,
        m: &mut Machine,
        target: &PathSpec,
        reference: &PathSpec,
    ) -> bool {
        self.probe_present_after(m, reference, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_isa::AluOp;

    fn machine() -> Machine {
        Machine::baseline()
    }

    #[test]
    fn long_reference_lets_target_win() {
        let mut m = machine();
        let race = TransientPaRace::new(m.layout());
        let target = PathSpec::op_chain(AluOp::Add, 10);
        let reference = PathSpec::op_chain(AluOp::Add, 45);
        assert!(race.target_beats_ref(&mut m, &target, &reference));
    }

    #[test]
    fn short_reference_squashes_target() {
        let mut m = machine();
        let race = TransientPaRace::new(m.layout());
        let target = PathSpec::op_chain(AluOp::Add, 45);
        let reference = PathSpec::op_chain(AluOp::Add, 5);
        assert!(!race.target_beats_ref(&mut m, &target, &reference));
    }

    #[test]
    fn race_flip_point_tracks_target_length() {
        // The minimal reference length where the target stops winning grows
        // with the target length — the §7.2 measurement principle.
        let mut flip_points = Vec::new();
        for target_len in [5usize, 15, 25] {
            let mut m = machine();
            let race = TransientPaRace::new(m.layout());
            let target = PathSpec::op_chain(AluOp::Add, target_len);
            let mut flip = None;
            for ref_len in 1..70 {
                let reference = PathSpec::op_chain(AluOp::Add, ref_len);
                if race.target_beats_ref(&mut m, &target, &reference) {
                    flip = Some(ref_len);
                    break;
                }
            }
            flip_points.push(flip.expect("some reference length must flip"));
        }
        assert!(
            flip_points[0] < flip_points[1] && flip_points[1] < flip_points[2],
            "flip points must be monotone in target length: {flip_points:?}"
        );
    }

    #[test]
    fn mul_reference_times_div_targets() {
        // Fig 9: a MUL reference can distinguish DIV-chain lengths.
        let mut m = machine();
        let race = TransientPaRace::new(m.layout());
        let divs = PathSpec::op_chain(AluOp::Div, 4); // ≈ 4 × 14 = 56 cycles
        let short_mul = PathSpec::op_chain(AluOp::Mul, 10); // 30 cycles
        let long_mul = PathSpec::op_chain(AluOp::Mul, 25); // 75 cycles
        assert!(!race.target_beats_ref(&mut m, &divs, &short_mul));
        assert!(race.target_beats_ref(&mut m, &divs, &long_mul));
    }

    #[test]
    fn detection_actually_mispredicts_and_squashes() {
        let mut m = machine();
        let race = TransientPaRace::new(m.layout());
        let prog = race.program(
            &PathSpec::op_chain(AluOp::Add, 30),
            &PathSpec::op_chain(AluOp::Add, 5),
        );
        race.train(&mut m, &prog);
        let out = race.detect(&mut m, &prog);
        assert!(out.measurement_won, "5-add body beats a 30-add condition");
        assert!(out.measurement_issue.is_some());
    }
}
