//! Property tests for the gadget-template generator: every sampled
//! template lowers to a program that decodes, terminates within the
//! fitness cycle budget on the event-driven backend, and runs
//! bit-identically on all three execution backends (the
//! `crates/cpu/tests/differential.rs` discipline, applied to the search
//! space instead of random programs).

use hacky_racers::gadget_search::{eval_cpu_config, FitnessConfig, GadgetTemplate, SplitMix64};
use racer_cpu::{Backend, Cpu, RunResult};
use racer_mem::HierarchyConfig;

/// Sampled-space coverage per test (× targets).
const SAMPLES: usize = 60;

/// Assert every observable of two runs matches.
fn assert_equivalent(tag: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.cycles, b.cycles, "{tag}: cycles diverge");
    assert_eq!(a.committed, b.committed, "{tag}: commit counts diverge");
    assert_eq!(a.halted, b.halted, "{tag}: halt state diverges");
    assert_eq!(a.limit_hit, b.limit_hit, "{tag}: limit flag diverges");
    assert_eq!(a.regs, b.regs, "{tag}: architectural registers diverge");
    assert_eq!(a.trace.len(), b.trace.len(), "{tag}: trace lengths diverge");
    for (x, y) in a.trace.iter().zip(&b.trace) {
        assert_eq!(
            (x.seq, x.pc, x.issued, x.completed, x.committed),
            (y.seq, y.pc, y.issued, y.completed, y.committed),
            "{tag}: trace records diverge"
        );
    }
}

#[test]
fn every_sampled_template_terminates_within_budget() {
    let cfg = FitnessConfig::default();
    let mut rng = SplitMix64::new(0xdead_beef);
    let mut cpu = Cpu::new(
        eval_cpu_config(cfg.cycle_budget),
        HierarchyConfig::small_plru(),
    );
    for i in 0..SAMPLES {
        let tpl = GadgetTemplate::sample(&mut rng);
        for &target in &cfg.targets {
            let lowered = tpl.lower(target, cfg.clock_len);
            let r = cpu.run_one(&lowered.prog, Backend::EventDriven);
            assert!(
                r.halted && !r.limit_hit,
                "sample #{i} target {target} did not halt cleanly: {tpl:?}"
            );
            assert!(
                r.cycles <= cfg.cycle_budget,
                "sample #{i} target {target} blew the budget: {} cycles ({tpl:?})",
                r.cycles
            );
            assert_eq!(
                r.committed as usize,
                lowered.prog.len(),
                "straight-line gadget commits every pc exactly once"
            );
        }
    }
}

#[test]
fn lowered_gadgets_are_bit_identical_across_backends() {
    let cfg = FitnessConfig::default();
    let mut rng = SplitMix64::new(0x5eed);
    // Persistent machines: warm state accumulates identically, so the
    // comparison also covers warmed-predictor starts (what the search's
    // snapshot-forked lanes actually see).
    let mut fast = Cpu::new(
        eval_cpu_config(cfg.cycle_budget),
        HierarchyConfig::small_plru(),
    );
    let mut slow = Cpu::new(
        eval_cpu_config(cfg.cycle_budget),
        HierarchyConfig::small_plru(),
    );
    for i in 0..SAMPLES {
        let tpl = GadgetTemplate::sample(&mut rng);
        let target = cfg.targets[i % cfg.targets.len()];
        let lowered = tpl.lower(target, cfg.clock_len);
        let batched = fast.run_one(&lowered.prog, Backend::Batched);
        let event = fast.run_one(&lowered.prog, Backend::EventDriven);
        let reference = slow.run_one(&lowered.prog, Backend::Reference);
        let tag = format!("sample #{i} target {target} ({tpl:?})");
        assert_equivalent(&format!("{tag} [event vs reference]"), &event, &reference);
        assert_equivalent(&format!("{tag} [batched vs event]"), &batched, &event);
    }
}

#[test]
fn the_whole_grammar_lowers_and_assembles() {
    // Exhaustive over the non-size fields at a couple of size corners:
    // lowering must be total over the grammar, not just over what the
    // sampler happens to draw.
    use hacky_racers::gadget_search::{ArmLayout, ChainOp};
    for measured_op in ChainOp::ALL {
        for clock_op in ChainOp::ALL {
            for layout in ArmLayout::ALL {
                for (scale, fences, pads, noise, rounds) in [(1, 0, 0, 0, 1), (3, 2, 7, 3, 3)] {
                    let tpl = GadgetTemplate {
                        measured_op,
                        measured_scale: scale,
                        clock_op,
                        layout,
                        fences,
                        pad_nops: pads,
                        noise_chains: noise,
                        rounds,
                    };
                    for target in [0, 1, 6] {
                        let lowered = tpl.lower(target, 64);
                        assert_eq!(lowered.clock_pcs.len(), 64);
                        assert!(lowered.measured_tail_pc < lowered.prog.len());
                    }
                }
            }
        }
    }
}
