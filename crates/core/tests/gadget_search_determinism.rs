//! Determinism and regression pins for the gadget-search loop.
//!
//! * Same `(config, seed)` ⇒ byte-identical serialized state (logs and
//!   final population included) across 1/4/8 evaluation workers: the
//!   parallel fan-out must not leak scheduling order into results.
//! * Each shipped discovered gadget re-evaluates to *exactly* its
//!   committed fitness — resolution, monotonicity, stealth and score are
//!   compared with `==` on purpose. A simulator change that moves any of
//!   these numbers must update `shipped.rs` visibly, like a golden file.

use hacky_racers::gadget_search::{
    evaluate, hand_written_baseline, run_search, shipped_gadgets, ExpectedFitness, FitnessConfig,
    SearchConfig,
};

fn test_config(seed: u64, workers: usize) -> SearchConfig {
    SearchConfig {
        seed,
        population: 24,
        generations: 3,
        fitness: FitnessConfig {
            targets: vec![0, 1, 2, 3],
            clock_len: 64,
            cycle_budget: 50_000,
            warmup_runs: 2,
        },
        workers,
    }
}

#[test]
fn search_state_is_byte_identical_across_worker_counts() {
    let reference = run_search(&test_config(41, 1)).to_value().to_pretty();
    for workers in [4, 8] {
        let state = run_search(&test_config(41, workers)).to_value().to_pretty();
        assert_eq!(
            state, reference,
            "worker count {workers} changed the serialized search state"
        );
    }
}

#[test]
fn distinct_seeds_explore_distinct_populations() {
    let a = run_search(&test_config(1, 0)).to_value().to_pretty();
    let b = run_search(&test_config(2, 0)).to_value().to_pretty();
    assert_ne!(a, b, "different seeds must not collapse to one search");
}

#[test]
fn shipped_gadgets_pin_their_committed_fitness_exactly() {
    let gadgets = shipped_gadgets();
    assert_eq!(gadgets.len(), 3);
    for g in &gadgets {
        let f = g.evaluate();
        assert!(f.valid, "{}: shipped gadget must run cleanly", g.name);
        assert_eq!(
            ExpectedFitness::of(&f),
            g.expected,
            "{}: fitness drifted from the committed values — if the \
             simulator change is intentional, update shipped.rs",
            g.name
        );
    }
}

#[test]
fn shipped_gadgets_match_the_hand_written_racer_resolution() {
    // The acceptance bar, pinned at the unit level: every shipped
    // discovery resolves at least as finely as half the hand-written
    // racer (resolution ≤ 2× baseline).
    let cfg = FitnessConfig::default();
    let snap = cfg.snapshot();
    let baseline = evaluate(&hand_written_baseline(), &cfg, &snap);
    assert!(baseline.resolution_cycles_per_tick > 0.0);
    for g in shipped_gadgets() {
        let f = evaluate(&g.template, &cfg, &snap);
        assert!(
            f.resolution_cycles_per_tick <= 2.0 * baseline.resolution_cycles_per_tick,
            "{}: resolution {} vs baseline {}",
            g.name,
            f.resolution_cycles_per_tick,
            baseline.resolution_cycles_per_tick
        );
    }
}
