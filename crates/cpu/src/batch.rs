//! Host-parallel batch driver for independent simulations.
//!
//! Paper-scale experiments are embarrassingly parallel: a granularity sweep
//! runs one fresh [`Cpu`](crate::Cpu) per target length, a magnifier sweep
//! one per repeat count. Each simulation is single-threaded and
//! deterministic, so fanning the *configurations* out across host cores
//! scales linearly without perturbing any simulated timing.
//!
//! [`try_par_map`] is the one implementation: order-preserving,
//! work-stealing over a shared index so uneven per-item costs (short vs.
//! long targets) balance automatically, and crash-isolated — each item
//! runs under `catch_unwind`, so one panicking simulation comes back as
//! `Err(panic message)` in its slot instead of poisoning the pool and
//! aborting every sibling. `racer-lab` fans scenario trials out through
//! it so a single bad trial becomes a labelled failed cell in the report
//! rather than a lost run. It is built on `std::thread::scope` rather
//! than rayon so the workspace keeps building with no external
//! dependencies; the signature matches rayon's
//! `par_iter().map().collect()` shape closely enough that swapping the
//! implementation later is local to this file.
//!
//! [`par_map`] is the infallible convenience wrapper: same pool, same
//! ordering, but the first caught panic is re-raised on the caller's
//! thread once every sibling item has finished.
//!
//! ```
//! use racer_cpu::batch;
//!
//! let squares = batch::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item on a pool of host threads, catching panics per
/// item and returning `Result`s in input order. A panicking item yields
/// `Err(message)` (the stringified panic payload) in its slot; all other
/// items still run to completion on the same pool — the worker that
/// caught the panic keeps claiming work.
///
/// Uses up to [`max_threads`] workers (capped by the item count); with
/// one item or one available core it degrades to a plain map with no
/// thread spawn. This is the single implementation; [`par_map`] is the
/// infallible wrapper over it.
pub fn try_par_map<I, O, F>(items: &[I], f: F) -> Vec<Result<O, String>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    try_par_map_workers(items, max_threads(), f)
}

/// [`try_par_map`] with an explicit worker-thread cap instead of the
/// [`max_threads`] default. The output is identical for every `workers`
/// value — ordering comes from the input index, not the schedule — which
/// is what lets deterministic search loops fan out across a configurable
/// pool and still produce byte-identical logs (pinned by the gadget-search
/// determinism suite). `workers` is still capped by the item count, and
/// `workers <= 1` degrades to a plain in-thread map.
pub fn try_par_map_workers<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<Result<O, String>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let attempt = |item: &I| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
            .map_err(|payload| panic_message(payload.as_ref()))
    };
    let threads = workers.min(items.len());
    if threads <= 1 {
        return items.iter().map(attempt).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<O, String>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = attempt(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed index")
        })
        .collect()
}

/// Infallible [`try_par_map`]: apply `f` to every item on a pool of host
/// threads, returning plain results in input order.
///
/// # Panics
///
/// Re-raises the first (by input order) panic caught by the pool, after
/// every other item has finished.
pub fn par_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    par_map_workers(items, max_threads(), f)
}

/// Infallible [`try_par_map_workers`]: same explicit worker cap, plain
/// results in input order, first caught panic re-raised.
///
/// # Panics
///
/// Re-raises the first (by input order) panic caught by the pool, after
/// every other item has finished.
pub fn par_map_workers<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    try_par_map_workers(items, workers, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("{msg}")))
        .collect()
}

/// Best-effort panic payload rendering: `&str` and `String` payloads (the
/// ones `panic!` produces) come through verbatim; anything else gets a
/// stable placeholder so reports remain deterministic.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

/// Worker-thread cap: the `RACER_BATCH_THREADS` environment variable if set
/// and positive, else the host's available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("RACER_BATCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..257).collect();
        let out = par_map(&input, |&x| x * 3);
        assert_eq!(out, input.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still come back in order.
        let input: Vec<u64> = (0..64).collect();
        let out = par_map(&input, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let input: Vec<u64> = (0..97).collect();
        let reference: Vec<u64> = input.iter().map(|x| x * x + 1).collect();
        for workers in [1, 2, 4, 8, 64] {
            assert_eq!(par_map_workers(&input, workers, |&x| x * x + 1), reference);
        }
        assert_eq!(par_map_workers(&[] as &[u64], 4, |&x| x), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        let _ = par_map(&[1, 2, 3], |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn try_par_map_isolates_panics_per_item() {
        // Silence the default panic hook for the intentionally panicking
        // items so test output stays readable.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let input: Vec<u64> = (0..64).collect();
        let out = try_par_map(&input, |&x| {
            if x % 7 == 3 {
                panic!("boom at {x}");
            }
            x * 2
        });
        std::panic::set_hook(prev);
        assert_eq!(out.len(), input.len());
        for (i, r) in out.iter().enumerate() {
            let x = i as u64;
            if x % 7 == 3 {
                assert_eq!(r.as_ref().unwrap_err(), &format!("boom at {x}"));
            } else {
                assert_eq!(r.as_ref().unwrap(), &(x * 2));
            }
        }
    }

    #[test]
    fn panic_messages_render_str_and_string_payloads() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let msg = |f: fn()| {
            let payload = std::panic::catch_unwind(f).unwrap_err();
            panic_message(payload.as_ref())
        };
        assert_eq!(msg(|| panic!("plain")), "plain");
        let n = msg(|| panic!("formatted {}", 7));
        assert_eq!(n, "formatted 7");
        let other = msg(|| std::panic::panic_any(42u32));
        std::panic::set_hook(prev);
        assert_eq!(other, "panic with a non-string payload");
    }
}
