//! Host-parallel batch driver for independent simulations.
//!
//! Paper-scale experiments are embarrassingly parallel: a granularity sweep
//! runs one fresh [`Cpu`](crate::Cpu) per target length, a magnifier sweep
//! one per repeat count. Each simulation is single-threaded and
//! deterministic, so fanning the *configurations* out across host cores
//! scales linearly without perturbing any simulated timing.
//!
//! [`par_map`] is the whole API: order-preserving, panic-propagating, and
//! work-stealing over a shared index so uneven per-item costs (short vs.
//! long targets) balance automatically. It is built on `std::thread::scope`
//! rather than rayon so the workspace keeps building with no external
//! dependencies; the signature matches rayon's
//! `par_iter().map().collect()` shape closely enough that swapping the
//! implementation later is local to this file.
//!
//! ```
//! use racer_cpu::batch;
//!
//! let squares = batch::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item on a pool of host threads, returning results in
/// input order. Uses up to [`max_threads`] workers (capped by the item
/// count); with one item or one available core it degrades to a plain map
/// with no thread spawn.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn par_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed index")
        })
        .collect()
}

/// Worker-thread cap: the `RACER_BATCH_THREADS` environment variable if set
/// and positive, else the host's available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("RACER_BATCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..257).collect();
        let out = par_map(&input, |&x| x * 3);
        assert_eq!(out, input.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still come back in order.
        let input: Vec<u64> = (0..64).collect();
        let out = par_map(&input, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_panics() {
        let _ = par_map(&[1, 2, 3], |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
