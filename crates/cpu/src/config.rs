//! Core configuration: widths, window sizes, latencies, ports and
//! countermeasure modes.

use serde::{Deserialize, Serialize};

/// Hardware Spectre/side-channel countermeasures modelled by the core
/// (paper §8, "Potential Countermeasures").
///
/// The paper's central claim is that defences which only police *transient*
/// execution do not stop the non-transient reorder racing gadget; these modes
/// let experiments demonstrate that claim quantitatively.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum Countermeasure {
    /// No countermeasure: a conventional aggressive out-of-order core.
    #[default]
    None,
    /// In-order issue: instructions issue strictly in program order and the
    /// first non-ready instruction stalls all younger ones. Destroys the ILP
    /// races entirely (the paper: "assuring behavior equivalent to in-order
    /// execution is likely to require actual in-order execution").
    InOrder,
    /// Delay-on-miss (Sakalis et al., ISCA 2019): *speculative* loads that
    /// miss in the L1 are stalled until they become non-speculative. L1 hits
    /// proceed. Defeats transient P/A gadgets, but the branch-free reorder
    /// gadget is entirely non-speculative and races anyway (paper §8).
    DelayOnMiss,
    /// Invisible speculation (InvisiSpec-like): speculative loads do not
    /// update cache state; their fills are applied when the load becomes
    /// architecturally safe (here: at commit). Blocks transient traces.
    InvisibleSpec,
    /// GhostMinion-like strictness ordering: speculative loads fill a ghost
    /// structure and merge to the L1 at commit, but *non-speculative* loads
    /// (no unresolved older branch) behave exactly as the baseline — so the
    /// branch-free reorder gadget still transmits (paper §8, footnote 9).
    GhostMinion,
    /// CleanupSpec-style rollback: speculative loads fill normally, but a
    /// squash *undoes* their fills (flushes the touched lines). Cleans up
    /// "the effects of misspeculation once it has happened" — which is too
    /// late for SpectreBack, whose racing gadget consumed the transient
    /// timing difference before the squash (paper §7.3/§8).
    CleanupSpec,
}

impl std::fmt::Display for Countermeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Countermeasure::None => "baseline",
            Countermeasure::InOrder => "in-order",
            Countermeasure::DelayOnMiss => "delay-on-miss",
            Countermeasure::InvisibleSpec => "invisible-speculation",
            Countermeasure::GhostMinion => "ghostminion",
            Countermeasure::CleanupSpec => "cleanupspec",
        };
        f.write_str(s)
    }
}

/// Execution backend: which simulation engine runs the program(s) handed
/// to [`Cpu::run`](crate::Cpu::run).
///
/// All backends are cycle-exact against each other (pinned by the
/// differential suites); they differ only in host-side execution strategy
/// and therefore in throughput:
///
/// * [`EventDriven`](Backend::EventDriven) — the production scheduler
///   (tag-broadcast wakeup, completion time wheel). Fastest for a single
///   machine; the default.
/// * [`Reference`](Backend::Reference) — the retained scan-based seed
///   scheduler. Slow but structurally simple; kept as the differential
///   oracle.
/// * [`Batched`](Backend::Batched) — the lockstep multi-machine engine
///   ([`MachineBatch`](crate::MachineBatch)): the N programs are treated
///   as N *independent single-thread lanes* forked from the calling
///   machine's current state (caches, memory, predictor), stepped in
///   lockstep with a shared decoded µop table. Requires
///   `cfg.threads == 1`; the calling machine's own state is left
///   untouched.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// Event-driven scheduler (the production engine).
    #[default]
    EventDriven,
    /// Retained scan-based reference scheduler (the differential oracle).
    Reference,
    /// Structure-of-arrays lockstep batch engine; programs are independent
    /// lanes forked from the current machine state.
    Batched,
}

impl Backend {
    /// All backends, for differential tests that iterate every engine.
    pub const ALL: [Backend; 3] = [Backend::EventDriven, Backend::Reference, Backend::Batched];
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::EventDriven => "event-driven",
            Backend::Reference => "reference",
            Backend::Batched => "batched",
        })
    }
}

/// SMT issue-arbitration policy: which hardware thread gets first claim on
/// the shared issue bandwidth and functional-unit ports each cycle.
///
/// Paper §9 ("other shared resources"): a racing-gadget timer reads *any*
/// contended shared resource, and SMT port contention is the canonical
/// example. The arbitration policy decides how that contention is shaped.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum SmtPolicy {
    /// Rotate first claim among threads each cycle (cycle mod thread
    /// count). The classic fair baseline.
    #[default]
    RoundRobin,
    /// ICOUNT-style (Tullsen et al.): the thread with the fewest
    /// instructions in flight (smallest ROB occupancy) issues first;
    /// ties break toward the lower thread id. Starves neither thread but
    /// favours the one making progress.
    Icount,
}

impl SmtPolicy {
    /// The order in which thread contexts claim issue slots this cycle.
    /// `occupancy[tid]` is thread `tid`'s current ROB occupancy. Both the
    /// event-driven and the reference scheduler call this one function, so
    /// the arbitration decision can never drift between them.
    pub fn order(self, cycle: u64, occupancy: &[usize]) -> Vec<usize> {
        let n = occupancy.len();
        let mut order: Vec<usize> = (0..n).collect();
        match self {
            SmtPolicy::RoundRobin => {
                let start = (cycle % n.max(1) as u64) as usize;
                order.rotate_left(start);
            }
            SmtPolicy::Icount => {
                order.sort_by_key(|&tid| (occupancy[tid], tid));
            }
        }
        order
    }
}

impl std::fmt::Display for SmtPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SmtPolicy::RoundRobin => "round-robin",
            SmtPolicy::Icount => "icount",
        })
    }
}

/// Branch-predictor selection.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Classic 2-bit saturating counters indexed by PC. Trainable — the
    /// transient P/A racing gadget's train/detect phases rely on it.
    TwoBit {
        /// Number of table entries (power of two).
        entries: usize,
    },
    /// Statically predict taken.
    AlwaysTaken,
    /// Statically predict not-taken.
    AlwaysNotTaken,
}

impl Default for PredictorKind {
    fn default() -> Self {
        PredictorKind::TwoBit { entries: 1024 }
    }
}

/// Functional-unit latencies, after the paper's §7 processor details and
/// Agner Fog's tables for Coffee Lake.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub struct Latencies {
    /// Simple integer ops and `lea` (cycles).
    pub alu: u64,
    /// Pipelined multiply (cycles).
    pub mul: u64,
    /// Divide, minimum (cycles). Actual latency is `div_min` or
    /// `div_min + 1` depending on operand content, matching the paper's
    /// "13-14 cycles based on the operand content".
    pub div_min: u64,
    /// Divider reciprocal throughput (a new divide may start only this many
    /// cycles after the previous one — the §6.4 contention source).
    pub div_recip: u64,
    /// Branch resolution (cycles, after sources ready).
    pub branch: u64,
    /// Store address-generation (cycles).
    pub store: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            alu: 1,
            mul: 3,
            div_min: 13,
            div_recip: 4,
            branch: 1,
            store: 1,
        }
    }
}

/// How much per-instruction event data a run records.
///
/// Recording costs both memory (the `loads`/`trace` vectors grow with the
/// dynamic instruction count) and time (every load / every dispatch takes a
/// bookkeeping branch plus a push). Paper-scale sweeps that only consume
/// [`RunResult::cycles`](crate::RunResult::cycles) and aggregate
/// [`mem_stats`](crate::RunResult::mem_stats) should run at
/// [`RecordLevel::Counters`] (the default), which skips both vectors
/// entirely; gadget debugging and the probe-based attacks opt into the
/// richer levels.
///
/// Levels are cumulative: `Trace` implies `Loads` implies `Counters`.
#[derive(
    Copy, Clone, Debug, Default, Eq, PartialEq, Ord, PartialOrd, Hash, Serialize, Deserialize,
)]
pub enum RecordLevel {
    /// Aggregate counters only (`cycles`, `committed`, `mem_stats`, …);
    /// the `loads` and `trace` vectors stay empty and unallocated.
    #[default]
    Counters,
    /// Also record one [`LoadEvent`](crate::LoadEvent) per issued load
    /// (the probe/attack readout path).
    Loads,
    /// Also record the full per-instruction pipeline trace
    /// (fetch/dispatch/issue/complete/commit cycles; the most expensive).
    Trace,
}

impl RecordLevel {
    /// Whether per-load events are recorded at this level.
    #[inline]
    pub fn loads(self) -> bool {
        self >= RecordLevel::Loads
    }

    /// Whether the full pipeline trace is recorded at this level.
    #[inline]
    pub fn trace(self) -> bool {
        self == RecordLevel::Trace
    }
}

/// Out-of-order core configuration.
///
/// Defaults model a Coffee-Lake-class core at 2 GHz (the paper's i7-8750H):
/// 4-wide front end, 224-entry ROB, ~60-entry scheduler, 4 ALUs, 1 MUL,
/// 1 non-pipelined DIV, 2 load ports.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Front-end depth in cycles (fetch-to-dispatch delay; also the
    /// misprediction redirect penalty).
    pub front_end_depth: u64,
    /// Instructions renamed/dispatched into the ROB per cycle.
    pub dispatch_width: usize,
    /// Maximum instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Scheduler (reservation-station) capacity: maximum instructions
    /// dispatched but not yet issued. This bounds how far a racing gadget
    /// can see (§7.2's ~54-operation limit).
    pub rs_size: usize,
    /// Number of simple-ALU ports.
    pub alu_ports: usize,
    /// Number of multiply ports.
    pub mul_ports: usize,
    /// Number of divide units.
    pub div_ports: usize,
    /// Number of load ports.
    pub load_ports: usize,
    /// Number of store ports.
    pub store_ports: usize,
    /// Number of branch-resolution ports.
    pub branch_ports: usize,
    /// Miss-status-holding registers: maximum outstanding L1 miss lines.
    /// Shared across hardware threads, like a real L1's MSHR file.
    pub mshrs: usize,
    /// Hardware thread contexts (SMT). Each context has a private front
    /// end, ROB, rename state and retire port; issue bandwidth,
    /// functional-unit ports, divider units, MSHRs and the cache hierarchy
    /// are shared. `1` (the default) is the classic single-threaded core;
    /// [`Cpu::run`](crate::Cpu::run) expects one program per context.
    pub threads: usize,
    /// SMT issue-arbitration policy (ignored when `threads == 1`).
    pub smt_policy: SmtPolicy,
    /// Functional-unit latencies.
    pub latencies: Latencies,
    /// Branch predictor.
    pub predictor: PredictorKind,
    /// Countermeasure mode.
    pub countermeasure: Countermeasure,
    /// Core clock in MHz (used to convert cycles to nanoseconds; the paper's
    /// machine runs at 2 GHz, i.e. 0.5 ns per cycle).
    pub clock_mhz: u64,
    /// If set, the pipeline drains every `n` cycles, modelling the OS timer
    /// interrupt that bounds the stateless arithmetic magnifier (§7.5: "the
    /// total run-time approaches the interval of timer interrupts (4ms)").
    pub interrupt_interval: Option<u64>,
    /// Safety valve: a single program run aborts after this many cycles.
    pub max_run_cycles: u64,
    /// Event-recording level for run results (see [`RecordLevel`]).
    pub record: RecordLevel,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            fetch_width: 4,
            front_end_depth: 5,
            dispatch_width: 4,
            issue_width: 6,
            commit_width: 4,
            rob_size: 224,
            rs_size: 60,
            alu_ports: 4,
            mul_ports: 1,
            div_ports: 1,
            load_ports: 2,
            store_ports: 1,
            branch_ports: 1,
            mshrs: 10,
            threads: 1,
            smt_policy: SmtPolicy::RoundRobin,
            latencies: Latencies::default(),
            predictor: PredictorKind::default(),
            countermeasure: Countermeasure::None,
            clock_mhz: 2000,
            interrupt_interval: None,
            max_run_cycles: 50_000_000,
            record: RecordLevel::Counters,
        }
    }
}

impl CpuConfig {
    /// The default Coffee-Lake-class configuration.
    pub fn coffee_lake() -> Self {
        Self::default()
    }

    /// Nanoseconds per core cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1000.0 / self.clock_mhz as f64
    }

    /// Convert a cycle count to simulated nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.ns_per_cycle()
    }

    /// Builder-style: set the countermeasure.
    pub fn with_countermeasure(mut self, c: Countermeasure) -> Self {
        self.countermeasure = c;
        self
    }

    /// Builder-style: set the hardware thread count (SMT contexts).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style: set the SMT issue-arbitration policy.
    pub fn with_smt_policy(mut self, policy: SmtPolicy) -> Self {
        self.smt_policy = policy;
        self
    }

    /// Builder-style: record per-load events (raises the level to at least
    /// [`RecordLevel::Loads`]).
    pub fn with_load_recording(mut self) -> Self {
        self.record = self.record.max(RecordLevel::Loads);
        self
    }

    /// Builder-style: record the full pipeline trace
    /// ([`RecordLevel::Trace`], which includes load events).
    pub fn with_trace(mut self) -> Self {
        self.record = RecordLevel::Trace;
        self
    }

    /// Builder-style: set the event-recording level explicitly.
    pub fn with_record_level(mut self, level: RecordLevel) -> Self {
        self.record = level;
        self
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or capacity is zero.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0, "fetch width must be positive");
        assert!(self.dispatch_width > 0, "dispatch width must be positive");
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.commit_width > 0, "commit width must be positive");
        assert!(self.rob_size > 0, "ROB must have capacity");
        assert!(self.rs_size > 0, "scheduler must have capacity");
        assert!(self.mshrs > 0, "need at least one MSHR");
        assert!(
            self.alu_ports > 0 && self.load_ports > 0 && self.branch_ports > 0,
            "need at least one ALU, load and branch port"
        );
        assert!(self.clock_mhz > 0, "clock must be positive");
        assert!(self.threads > 0, "need at least one hardware thread");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CpuConfig::default().validate();
    }

    #[test]
    fn clock_conversion() {
        let cfg = CpuConfig::default();
        assert!(
            (cfg.ns_per_cycle() - 0.5).abs() < 1e-9,
            "2 GHz = 0.5 ns/cycle"
        );
        assert!((cfg.cycles_to_ns(4000) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn builders() {
        let cfg = CpuConfig::default()
            .with_countermeasure(Countermeasure::DelayOnMiss)
            .with_load_recording();
        assert_eq!(cfg.countermeasure, Countermeasure::DelayOnMiss);
        assert!(cfg.record.loads());
        assert!(!cfg.record.trace());
    }

    #[test]
    fn record_levels_are_cumulative() {
        assert!(!RecordLevel::Counters.loads());
        assert!(!RecordLevel::Counters.trace());
        assert!(RecordLevel::Loads.loads());
        assert!(!RecordLevel::Loads.trace());
        assert!(RecordLevel::Trace.loads());
        assert!(RecordLevel::Trace.trace());
        // with_trace never lowers the level; with_load_recording never
        // erases tracing.
        let cfg = CpuConfig::default().with_trace().with_load_recording();
        assert!(cfg.record.trace());
    }

    #[test]
    #[should_panic]
    fn zero_rob_rejected() {
        let cfg = CpuConfig {
            rob_size: 0,
            ..CpuConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn smt_defaults_and_builders() {
        let cfg = CpuConfig::default();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.smt_policy, SmtPolicy::RoundRobin);
        let cfg = cfg.with_threads(2).with_smt_policy(SmtPolicy::Icount);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.smt_policy, SmtPolicy::Icount);
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let cfg = CpuConfig {
            threads: 0,
            ..CpuConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn round_robin_order_rotates_by_cycle() {
        let p = SmtPolicy::RoundRobin;
        assert_eq!(p.order(0, &[5, 5]), vec![0, 1]);
        assert_eq!(p.order(1, &[5, 5]), vec![1, 0]);
        assert_eq!(p.order(2, &[5, 5]), vec![0, 1]);
        assert_eq!(p.order(7, &[0, 0, 0]), vec![1, 2, 0]);
        assert_eq!(p.order(123, &[9]), vec![0]);
    }

    #[test]
    fn icount_order_prefers_emptier_thread() {
        let p = SmtPolicy::Icount;
        assert_eq!(p.order(0, &[10, 3]), vec![1, 0]);
        assert_eq!(p.order(5, &[2, 9, 2]), vec![0, 2, 1], "ties break by id");
    }

    #[test]
    fn countermeasure_display() {
        assert_eq!(Countermeasure::None.to_string(), "baseline");
        assert_eq!(Countermeasure::DelayOnMiss.to_string(), "delay-on-miss");
    }
}
