//! The cycle-level out-of-order pipeline.
//!
//! A classic dynamically scheduled core: predicted fetch → rename/dispatch
//! into a reorder buffer → data-driven issue to functional-unit ports →
//! writeback with branch resolution and squash → in-order commit.
//!
//! Two properties matter for Hacky Racers and are modelled faithfully:
//!
//! 1. **ILP races are real**: independent dependence chains issue in data
//!    order, not program order, bounded by ports, the scheduler window and
//!    the ROB — so which of two *paths* (paper §4) finishes first depends
//!    only on their latencies.
//! 2. **Cache state updates at access time**: a load that issues — even one
//!    later squashed by a mispredicted branch — changes replacement state
//!    immediately ("fill at issue"). Completion order of racing loads is
//!    therefore visible in the cache, which is precisely what the racing
//!    gadgets (§5) transmit through and the countermeasure modes
//!    (`Countermeasure`) selectively suppress.
//!
//! # SMT: multiple hardware threads
//!
//! The core is a **multi-context SMT machine** (paper §9, "other shared
//! resources"): [`CpuConfig::threads`](crate::CpuConfig) contexts each own
//! a private front end (fetch PC, fetch queue), ROB ring, rename state
//! (RAT + undo log), scheduling structures and retire port — all hoisted
//! into [`ThreadCtx`] — while the *structural* resources stay shared at the
//! core level: issue bandwidth, functional-unit ports, the non-pipelined
//! divider units, the MSHR file and the cache hierarchy ([`Shared`]).
//! Each cycle an [`SmtPolicy`](crate::config::SmtPolicy) (round-robin or
//! ICOUNT) decides which context claims issue slots first. With
//! `threads == 1` every structure and decision reduces exactly to the
//! single-threaded core — the differential suite pins that path
//! cycle-exactly against the retained reference scheduler.
//!
//! Threads share the data memory as a common physical address space but
//! have **no cross-thread memory-ordering model** (no inter-thread store
//! forwarding or disambiguation); co-scheduled workloads are expected to
//! use disjoint address ranges, which is exactly the SMT port-contention
//! threat model: the attacker observes the victim through *timing* on
//! shared ports, never through shared data.
//!
//! # Scheduling implementation
//!
//! Every paper experiment funnels millions of simulated cycles through this
//! file, so the scheduler is **event-driven** rather than scan-based (the
//! original scan-based implementation survives, cycle-exactly equivalent, as
//! [`crate::reference`]):
//!
//! * **Tag-broadcast wakeup.** Each in-flight producer keeps a list of the
//!   (consumer, operand-slot) pairs that renamed against it; when it
//!   completes, only those dependents are woken. There is no per-cycle
//!   ROB-wide source refresh and no commit-time broadcast scan — a consumer
//!   that dispatches after its producer completed reads the value straight
//!   from the producer's ROB slot.
//! * **Ring-buffer ROB.** Entries live in fixed slots of a pre-sized ring;
//!   a `(sequence, slot)` pair is a validated O(1) handle, replacing the
//!   `VecDeque` + `binary_search` lookups. Squash invalidates the tail
//!   lazily: stale handles in the scheduling heaps are dropped on pop.
//! * **Ready heaps per functional-unit class.** Issue merges the per-class
//!   min-sequence heaps, skipping classes whose ports are exhausted — the
//!   same instructions the reference scheduler picks by scanning the whole
//!   ROB in program order, at O(issued · log window) instead of O(ROB).
//! * **Undo-log rename recovery.** Each entry records the RAT mapping its
//!   destination displaced; a squash walks the squashed suffix youngest-
//!   first restoring them — no per-branch RAT clone, no checkpoint
//!   `HashMap`.
//! * **O(1) order checks.** Load speculation status ("any older unresolved
//!   branch?") and conservative store disambiguation come from small
//!   in-flight queues (`spec_branches`, `store_q`) instead of prefix walks
//!   of the ROB.
//! * **Pre-decoded µop tables.** Every stage indexes the run's
//!   [`DecodedProgram`] by pc instead of pattern-matching
//!   [`Instr`](racer_isa::Instr): FU
//!   classes are dense indices, operand reads are slot lookups (no
//!   register-compare walks), destinations/source lists/branch targets are
//!   precomputed. ROB slots do not store the instruction at all. (The
//!   reference scheduler deliberately keeps executing from `Instr`, so the
//!   differential suite cross-checks the decoder too.)
//! * **Load stall pool.** A load that fails issue (MSHR capacity, store
//!   disambiguation, delay-on-miss) parks in `stalled_loads` and is
//!   re-attempted only when a wake condition fires — the earliest
//!   outstanding-miss expiry, a store issuing or committing, a line fill,
//!   or branch resolution under delay-on-miss — instead of a heap
//!   round-trip plus a full re-check every cycle. Every skipped cycle is
//!   one where the attempt provably fails exactly as before, so issue
//!   timing is unchanged (and differentially tested). With more than one
//!   hardware thread the pool drains every cycle instead: another thread's
//!   fills and MSHR traffic are cross-thread wake sources the per-thread
//!   event model cannot see, and per-cycle attempts are exactly what the
//!   reference scheduler does anyway.
//! * **No steady-state allocation.** All scheduling structures live in
//!   the per-thread [`ThreadCtx`] structs, owned by [`Cpu`] and reused
//!   across [`Cpu::run`] calls;
//!   sources use inline `[Src; 3]` storage (no instruction has more than
//!   three; the register names live in the decoded table), and the
//!   `loads`/`trace` vectors are only touched when
//!   [`CpuConfig::record`](crate::CpuConfig) asks for them. (SMT
//!   arbitration allocates two small per-cycle vectors, but only when
//!   `threads > 1`.)

use crate::config::{Backend, Countermeasure, CpuConfig};
use crate::predictor::{self, Predictor};
use crate::stats::{LoadEvent, RunResult};
use racer_isa::{
    AluOp, DataMemory, DecodedInstr, DecodedMem, DecodedOp, DecodedProgram, FuClass, Program,
    SrcRef, NUM_REGS,
};
use racer_mem::{AccessKind, Addr, Hierarchy, HitLevel};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Dynamic-instruction sequence number (per hardware thread).
type Seq = u64;

#[derive(Copy, Clone, Debug, Eq, PartialEq)]
enum EntryState {
    /// Dispatched, waiting for sources / a port.
    Waiting,
    /// Executing on a functional unit.
    Issued,
    /// Result available.
    Done,
}

#[derive(Copy, Clone, Debug)]
enum Src {
    Ready(u64),
    Tag(Seq),
}

/// Completion time-wheel size in cycles (power of two, comfortably above
/// the worst memory latency the hierarchy model produces).
const WHEEL: usize = 512;

/// Functional-unit classes as dense indices for the per-class ready heaps —
/// the same indices [`FuClass::index`] bakes into every
/// [`DecodedInstr::cls`] at decode time.
const CLS_ALU: usize = FuClass::Alu.index();
const CLS_MUL: usize = FuClass::Mul.index();
const CLS_DIV: usize = FuClass::Div.index();
const CLS_LOAD: usize = FuClass::Load.index();
const CLS_STORE: usize = FuClass::Store.index();
const CLS_BRANCH: usize = FuClass::Branch.index();
const NUM_CLASSES: usize = FuClass::COUNT;

/// One ROB ring slot. Slots are overwritten in place at dispatch; the
/// `consumers` vector keeps its capacity across reuse, so a warmed-up
/// pipeline dispatches without touching the allocator. The instruction
/// itself is *not* stored: `pc` indexes the run's pre-decoded µop table
/// ([`DecodedProgram`]), which already holds every static fact the stages
/// need.
#[derive(Clone, Debug)]
struct Slot {
    seq: Seq,
    pc: usize,
    state: EntryState,
    /// Number of sources (`srcs[..nsrcs]` are live).
    nsrcs: u8,
    /// Sources still waiting on a producer tag.
    pending: u8,
    /// Inline source storage — no instruction reads more than 3 registers.
    /// Indexed by decode-time source slot; the register names live in the
    /// decoded table, so only the value/tag state is kept here.
    srcs: [Src; 3],
    result: u64,
    completion: u64,
    predicted_taken: bool,
    /// Effective address for memory ops, resolved at issue.
    mem_addr: Option<u64>,
    /// Cache fill deferred to commit (invisible-speculation modes).
    deferred_fill: bool,
    /// Index into the run's load-event vector, if recorded.
    load_event: Option<u32>,
    /// Index into the run's trace vector, if recorded.
    trace_idx: Option<u32>,
    /// RAT mapping this entry's destination displaced at rename (the squash
    /// undo-log entry).
    prev_rat: Option<(Seq, u32)>,
    /// For branches: resolution (train + possible squash) already happened.
    resolved: bool,
    /// Cycle of the most recent issue attempt (loads only): a stall-pool
    /// drain triggered by a mid-cycle event must not attempt the same entry
    /// twice in one cycle — the reference scheduler attempts each entry at
    /// most once per cycle.
    last_attempt: u64,
    /// Dependents to wake at completion: (consumer seq, slot, source index).
    consumers: Vec<(Seq, u32, u8)>,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: 0,
            pc: 0,
            state: EntryState::Done,
            nsrcs: 0,
            pending: 0,
            srcs: [Src::Ready(0); 3],
            result: 0,
            completion: 0,
            predicted_taken: false,
            mem_addr: None,
            deferred_fill: false,
            load_event: None,
            trace_idx: None,
            prev_rat: None,
            resolved: false,
            last_attempt: u64::MAX,
            consumers: Vec::new(),
        }
    }
}

/// A fetch-queue entry. Deliberately lean — the instruction itself is
/// re-read from program memory at dispatch rather than copied through the
/// queue (the front end moves `fetch_width` of these every cycle).
#[derive(Copy, Clone, Debug)]
struct FetchedInstr {
    pc: u32,
    predicted_taken: bool,
    ready_cycle: u64,
}

/// One hardware thread context: everything private to a context — the
/// reusable scheduling structures (ROB ring, RAT, ready heaps, completion
/// wheel, stall pool, front-end queue) *and* the per-run state (fetch PC,
/// fence/drain flags, result counters, event vectors). Owned by [`Cpu`] so
/// consecutive [`Cpu::run`] calls (the shape of every sweep) run
/// allocation-free once capacities have warmed up.
#[derive(Debug, Default)]
pub(crate) struct ThreadCtx {
    /// ROB ring storage (capacity = `rob_size`).
    slots: Vec<Slot>,
    /// Ring position of the oldest entry.
    head: usize,
    /// Occupied ring length.
    len: usize,
    /// Per-class min-seq heaps of ready-to-issue entries.
    ready: [BinaryHeap<Reverse<(Seq, u32)>>; NUM_CLASSES],
    /// Bitmask of classes whose ready heap is non-empty (issue's class
    /// merge skips empty heaps without touching them).
    ready_mask: u8,
    /// Completion time wheel: in-flight entries bucketed by completion
    /// cycle modulo [`WHEEL`] — O(1) insert and O(arrivals) drain, replacing
    /// a binary heap on the two hottest per-instruction edges.
    wheel: Vec<Vec<(Seq, u32)>>,
    /// Scratch bucket swapped in while draining the current wheel slot.
    wheel_scratch: Vec<(Seq, u32)>,
    /// Completions further than [`WHEEL`] cycles out (DRAM-latency outliers;
    /// re-homed into the wheel as their arrival approaches).
    far: Vec<(u64, Seq, u32)>,
    /// Completed branches awaiting resolution, oldest first.
    resolve_q: BinaryHeap<Reverse<(Seq, u32)>>,
    /// Loads whose issue attempt failed (store disambiguation, MSHR
    /// capacity, delay-on-miss). They re-enter the ready heap only when a
    /// *wake condition* fires — the earliest outstanding-miss expiry
    /// (`stall_wake_cycle`) or an unblocking event (`stall_wake_now`) —
    /// instead of burning a heap round-trip plus a full re-check every
    /// cycle. Every skipped cycle is one where the attempt provably fails
    /// exactly as it did before, so issue timing is unchanged.
    stalled_loads: Vec<(Seq, u32)>,
    /// Earliest cycle an outstanding L1 miss completes and frees an MSHR
    /// (`u64::MAX` when no capacity-blocked load is waiting on one).
    stall_wake_cycle: u64,
    /// An unblocking event fired (store issued/committed, a line filled,
    /// a branch resolved under delay-on-miss): drain the stall pool at the
    /// next issue opportunity.
    stall_wake_now: bool,
    /// Wakeup scratch (swapped with a completing producer's consumer list).
    wake: Vec<(Seq, u32, u8)>,
    /// Front-end queue between fetch and dispatch.
    fetch_q: VecDeque<FetchedInstr>,
    /// Register alias table: architectural register → youngest in-flight
    /// producer handle.
    rat: Vec<Option<(Seq, u32)>>,
    /// Architectural register file.
    arch_regs: Vec<u64>,
    /// In-flight stores in program order: (seq, address once resolved).
    store_q: VecDeque<(Seq, Option<u64>)>,
    /// In-flight conditional branches in program order (resolved ones are
    /// popped lazily from the front).
    spec_branches: VecDeque<(Seq, u32)>,
    /// Entries in `Waiting` state (reservation-station occupancy).
    waiting_count: usize,
    /// In-order mode: window positions before this offset hold no Waiting
    /// entry (monotone cursor, reset on squash).
    inorder_skip: usize,

    // ---- per-run state (reset by `reset`) ------------------------------
    /// Next dynamic sequence number.
    next_seq: Seq,
    /// Next pc the front end fetches.
    fetch_pc: usize,
    /// Fetch has stopped (program end or fetched `halt`).
    fetch_stopped: bool,
    /// An in-flight fence blocks dispatch until it commits/squashes.
    fence_active: Option<Seq>,
    /// Pipeline draining for the timer-interrupt model.
    draining: bool,
    /// This context finished its program (committed halt, ran off the end,
    /// or hit the cycle limit) — the driver skips all its stages.
    done: bool,
    /// Cycle this context finished at (its `RunResult::cycles`).
    end_cycle: u64,
    /// The context aborted at the configured cycle limit.
    limit_hit: bool,

    // Results under construction.
    committed: u64,
    mispredicts: u64,
    squashed: u64,
    interrupts: u64,
    halted: bool,
    loads: Vec<LoadEvent>,
    trace: Vec<crate::trace::TraceRecord>,
}

impl ThreadCtx {
    pub(crate) fn reset(&mut self, rob_size: usize) {
        if self.slots.len() != rob_size {
            self.slots.clear();
            self.slots.resize_with(rob_size, Slot::empty);
        }
        self.head = 0;
        self.len = 0;
        for h in &mut self.ready {
            h.clear();
        }
        self.ready_mask = 0;
        if self.wheel.len() != WHEEL {
            self.wheel = (0..WHEEL).map(|_| Vec::new()).collect();
        }
        for b in &mut self.wheel {
            b.clear();
        }
        self.wheel_scratch.clear();
        self.far.clear();
        self.resolve_q.clear();
        self.stalled_loads.clear();
        self.stall_wake_cycle = u64::MAX;
        self.stall_wake_now = false;
        self.wake.clear();
        self.fetch_q.clear();
        if self.rat.len() != NUM_REGS {
            self.rat.resize(NUM_REGS, None);
            self.arch_regs.resize(NUM_REGS, 0);
        }
        self.rat.fill(None);
        self.arch_regs.fill(0);
        self.store_q.clear();
        self.spec_branches.clear();
        self.waiting_count = 0;
        self.inorder_skip = 0;

        self.next_seq = 0;
        self.fetch_pc = 0;
        self.fetch_stopped = false;
        self.fence_active = None;
        self.draining = false;
        self.done = false;
        self.end_cycle = 0;
        self.limit_hit = false;
        self.committed = 0;
        self.mispredicts = 0;
        self.squashed = 0;
        self.interrupts = 0;
        self.halted = false;
        self.loads = Vec::new();
        self.trace = Vec::new();
    }

    #[inline]
    fn cap(&self) -> usize {
        self.slots.len()
    }

    /// `x mod cap` for `x < 2*cap` without an integer division (the ROB
    /// capacity is not a power of two, and these run several times per
    /// simulated instruction).
    #[inline]
    fn wrap(&self, x: usize) -> usize {
        let cap = self.cap();
        if x >= cap {
            x - cap
        } else {
            x
        }
    }

    /// Ring position of `slot` relative to the window head.
    #[inline]
    fn pos(&self, slot: u32) -> usize {
        self.wrap(slot as usize + self.cap() - self.head)
    }

    /// Is this (seq, slot) handle still a live ROB entry?
    #[inline]
    fn valid(&self, seq: Seq, slot: u32) -> bool {
        self.pos(slot) < self.len && self.slots[slot as usize].seq == seq
    }

    /// Ring index of the youngest entry (window must be non-empty).
    #[inline]
    fn tail_slot(&self) -> usize {
        self.wrap(self.head + self.len - 1)
    }

    /// Ring index the next dispatch will use.
    #[inline]
    fn alloc_slot(&self) -> usize {
        self.wrap(self.head + self.len)
    }

    /// Assemble this context's finished run into a [`RunResult`], moving
    /// the recorded event vectors out. `mem_stats` is the hierarchy delta
    /// the caller attributes to the run. Shared by the SMT driver and the
    /// batch engine so the result shape can never drift between backends.
    pub(crate) fn take_result(&mut self, mem_stats: racer_mem::HierarchyStats) -> RunResult {
        RunResult {
            cycles: self.end_cycle,
            committed: self.committed,
            halted: self.halted,
            limit_hit: self.limit_hit,
            mispredicts: self.mispredicts,
            squashed_instrs: self.squashed,
            interrupts: self.interrupts,
            regs: self.arch_regs.clone(),
            mem_stats,
            loads: std::mem::take(&mut self.loads),
            trace: std::mem::take(&mut self.trace),
        }
    }
}

/// The hierarchy-stats delta since `before` — the `mem_stats` a run
/// reports. One function used by every backend, so attribution can never
/// drift between them.
pub(crate) fn mem_stats_since(
    hier: &Hierarchy,
    before: &racer_mem::HierarchyStats,
) -> racer_mem::HierarchyStats {
    let mut s = hier.stats();
    s.l1d = s.l1d.since(&before.l1d);
    s.l2 = s.l2.since(&before.l2);
    s.l3 = s.l3.since(&before.l3);
    s.memory_accesses -= before.memory_accesses;
    s.flushes -= before.flushes;
    s.prefetches -= before.prefetches;
    s
}

/// Step one single-thread lane for at most `budget` cycle-loop iterations,
/// resuming from `cycle`. Returns the updated cycle counter and whether
/// the lane finished (its `done`/`end_cycle`/`limit_hit` are then already
/// recorded in the context).
///
/// This is the batch engine's inner loop: it builds the *same*
/// [`Pipeline`] view [`SmtRun`] builds and drives the same
/// `step_single` body `run_single` loops over, so a lane stepped in
/// slices is bit-identical to a machine run to completion in one call —
/// there is exactly one copy of the cycle semantics to agree with.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_lane(
    cfg: &CpuConfig,
    hier: &mut Hierarchy,
    mem: &mut DataMemory,
    predictor: &mut dyn Predictor,
    prog: &Program,
    dec: &[DecodedInstr],
    s: &mut ThreadCtx,
    sh: &mut Shared,
    cycle: u64,
    budget: u64,
) -> (u64, bool) {
    let mut p = Pipeline {
        cfg,
        hier,
        mem,
        predictor,
        prog,
        dec,
        s,
        sh,
        cycle,
    };
    for _ in 0..budget {
        if p.step_single() {
            return (p.cycle, true);
        }
    }
    (p.cycle, false)
}

/// Structural resources shared by every hardware thread: the divider
/// units (one busy-until cycle **per unit** — multi-port divide configs no
/// longer serialize on a single scalar) and the L1 MSHR file. Issue ports
/// and bandwidth are also shared, but live as per-cycle counters in the
/// driver loop.
#[derive(Debug)]
pub(crate) struct Shared {
    /// Outstanding L1 miss lines → data-arrival cycle (MSHR model; at most
    /// `mshrs` entries, so linear scans beat hashing). Shared across
    /// threads, like a real L1's MSHR file: one thread's misses consume
    /// capacity — and open merge windows — for the other.
    inflight: Vec<(u64, u64)>,
    /// Per-divider-unit next-free cycle (non-fully-pipelined units).
    div_busy_until: Vec<u64>,
    /// Hardware thread count for this run (SMT wake-policy switch).
    nthreads: usize,
}

impl Shared {
    pub(crate) fn new(div_ports: usize, nthreads: usize) -> Self {
        Shared {
            inflight: Vec::new(),
            div_busy_until: vec![0; div_ports],
            nthreads,
        }
    }

    /// Is any divider unit free this cycle?
    #[inline]
    fn div_unit_free(&self, now: u64) -> bool {
        self.div_busy_until.iter().any(|&b| b <= now)
    }

    /// Claim a free divider unit for `recip` cycles (caller checked
    /// [`Shared::div_unit_free`]).
    #[inline]
    fn claim_div_unit(&mut self, now: u64, recip: u64) {
        let unit = self
            .div_busy_until
            .iter()
            .position(|&b| b <= now)
            .expect("div_unit_free checked before claiming");
        self.div_busy_until[unit] = now + recip;
    }
}

/// The simulated core, owning its memory hierarchy, data memory and branch
/// predictors. All of those persist across [`Cpu::run`] calls — caches
/// stay warm and the predictors stay trained, exactly like the machine a
/// JavaScript attacker repeatedly invokes functions on.
///
/// ```
/// use racer_cpu::{Backend, Cpu, CpuConfig};
/// use racer_isa::Asm;
/// use racer_mem::HierarchyConfig;
///
/// let mut cpu = Cpu::new(CpuConfig::default(), HierarchyConfig::coffee_lake());
/// let mut asm = Asm::new();
/// let r = asm.reg();
/// asm.mov_imm(r, 21);
/// asm.add(r, r, r);
/// asm.halt();
/// let prog = asm.assemble()?;
/// let result = cpu.run_one(&prog, Backend::EventDriven);
/// assert!(result.halted);
/// assert_eq!(result.regs[r.index()], 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Cpu {
    pub(crate) cfg: CpuConfig,
    pub(crate) hier: Hierarchy,
    pub(crate) mem: DataMemory,
    /// One predictor per hardware thread (real SMT designs partition or
    /// tag predictor state per context; sharing it would also be a
    /// cross-thread channel this model deliberately does not open).
    /// Index 0 is the classic single-thread predictor; all persist across
    /// `run` calls.
    pub(crate) predictors: Vec<Box<dyn Predictor>>,
    /// One scheduling context per hardware thread, grown on demand.
    pub(crate) ctxs: Vec<ThreadCtx>,
    /// Reusable µop-table buffers, one per thread: each run decodes the
    /// programs' static instructions once into them (capacity persists
    /// across calls).
    pub(crate) decoded: Vec<Vec<DecodedInstr>>,
}

impl Cpu {
    /// Build a core with a fresh (cold) memory hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CpuConfig::validate`].
    pub fn new(cfg: CpuConfig, hier_cfg: racer_mem::HierarchyConfig) -> Self {
        cfg.validate();
        Cpu {
            predictors: vec![predictor::build(cfg.predictor)],
            cfg,
            hier: Hierarchy::new(hier_cfg),
            mem: DataMemory::new(),
            ctxs: vec![ThreadCtx::default()],
            decoded: vec![Vec::new()],
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Replace the countermeasure mode (for sweeping defences over the same
    /// warmed-up machine state).
    pub fn set_countermeasure(&mut self, c: Countermeasure) {
        self.cfg.countermeasure = c;
    }

    /// Architectural data memory.
    pub fn mem(&self) -> &DataMemory {
        &self.mem
    }

    /// Mutable architectural data memory (experiment setup).
    pub fn mem_mut(&mut self) -> &mut DataMemory {
        &mut self.mem
    }

    /// The cache hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Mutable cache hierarchy (experiment setup, e.g. pre-warming sets).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hier
    }

    /// Reset every hardware thread's branch predictor (forget all
    /// training).
    pub fn reset_predictor(&mut self) {
        for p in &mut self.predictors {
            p.reset();
        }
    }

    /// Grow the per-thread structures to `n` contexts.
    fn ensure_threads(&mut self, n: usize) {
        while self.predictors.len() < n {
            self.predictors.push(predictor::build(self.cfg.predictor));
        }
        while self.ctxs.len() < n {
            self.ctxs.push(ThreadCtx::default());
        }
        while self.decoded.len() < n {
            self.decoded.push(Vec::new());
        }
    }

    /// Run `prog` to completion (committed `halt`, program end, or the
    /// configured cycle limit) on a single hardware thread with the chosen
    /// [`Backend`], returning timing and event data.
    ///
    /// Pipeline state is fresh per call; caches, data memory and predictor
    /// state persist from previous calls — except under
    /// [`Backend::Batched`], which runs the program on a one-lane fork of
    /// the current machine state and leaves this machine untouched.
    /// Always runs exactly one context regardless of
    /// [`CpuConfig::threads`](crate::CpuConfig) — use [`Cpu::run`] for
    /// co-scheduled programs.
    pub fn run_one(&mut self, prog: &Program, backend: Backend) -> RunResult {
        let results = match backend {
            Backend::EventDriven => self.run_event_driven(&[prog]),
            Backend::Reference => self.run_reference(&[prog]),
            Backend::Batched => self.run_batched(std::slice::from_ref(&prog)),
        };
        results.into_iter().next().expect("one program, one result")
    }

    /// The single execution entry point: run `progs` with the chosen
    /// [`Backend`], returning one [`RunResult`] per program
    /// (index-matched).
    ///
    /// * [`Backend::EventDriven`] / [`Backend::Reference`] **co-schedule**
    ///   the programs, one per configured hardware thread
    ///   (`progs.len()` must equal
    ///   [`CpuConfig::threads`](crate::CpuConfig)). Each thread's `cycles`
    ///   is the cycle *that thread* finished at; a thread that finishes
    ///   early leaves the machine to the survivors, so contention is
    ///   strongest while both run. `mem_stats` is the shared hierarchy's
    ///   delta for the whole co-run (the caches are shared, so per-thread
    ///   attribution does not exist in hardware either).
    /// * [`Backend::Batched`] treats the programs as **independent
    ///   single-thread lanes**: every lane is forked from this machine's
    ///   current state (caches, data memory, trained predictor) and run in
    ///   lockstep by a [`MachineBatch`](crate::MachineBatch); this
    ///   machine's own state is left untouched. Requires a
    ///   single-thread config. Each result is bit-identical to cloning
    ///   this machine and running that one program on
    ///   [`Backend::EventDriven`].
    ///
    /// # Panics
    ///
    /// Panics if the program count violates the chosen backend's contract
    /// above.
    pub fn run(&mut self, progs: &[&Program], backend: Backend) -> Vec<RunResult> {
        match backend {
            Backend::EventDriven => {
                self.assert_one_per_thread(progs.len(), backend);
                self.run_event_driven(progs)
            }
            Backend::Reference => {
                self.assert_one_per_thread(progs.len(), backend);
                self.run_reference(progs)
            }
            Backend::Batched => self.run_batched(progs),
        }
    }

    fn assert_one_per_thread(&self, n: usize, backend: Backend) {
        assert_eq!(
            n, self.cfg.threads,
            "the {backend} backend co-schedules one program per configured hardware thread"
        );
    }

    /// Capture this machine's persistent state (config, caches, data
    /// memory, trained predictor) as a shareable [`Snapshot`] that
    /// [`Snapshot::fork`] can stamp out independent machines from.
    ///
    /// # Panics
    ///
    /// Panics unless this is a single-thread config (forked lanes are
    /// single-thread machines).
    pub fn snapshot(&self) -> crate::engine::Snapshot {
        crate::engine::Snapshot::capture(self)
    }

    fn run_batched(&mut self, progs: &[&Program]) -> Vec<RunResult> {
        let mut batch = crate::engine::MachineBatch::from_snapshot(&self.snapshot());
        for prog in progs {
            batch.push(prog);
        }
        batch.run()
    }

    fn run_event_driven(&mut self, progs: &[&Program]) -> Vec<RunResult> {
        let n = progs.len();
        self.ensure_threads(n);
        for (tid, prog) in progs.iter().enumerate() {
            self.ctxs[tid].reset(self.cfg.rob_size);
            DecodedProgram::decode_into(prog, &mut self.decoded[tid]);
        }
        SmtRun {
            cfg: self.cfg,
            hier: &mut self.hier,
            mem: &mut self.mem,
            predictors: &mut self.predictors[..n],
            progs,
            decs: &self.decoded[..n],
            ctxs: &mut self.ctxs[..n],
            shared: Shared::new(self.cfg.div_ports, n),
            cycle: 0,
        }
        .run()
    }

    fn run_reference(&mut self, progs: &[&Program]) -> Vec<RunResult> {
        let n = progs.len();
        self.ensure_threads(n);
        crate::reference::RefPipeline::new(
            self.cfg,
            &mut self.hier,
            &mut self.mem,
            &mut self.predictors[..n],
            progs,
        )
        .run()
    }
}

/// The per-cycle driver: owns the shared structural resources and walks
/// every live thread context through the five pipeline stages in a fixed
/// global order (all writebacks, all commits, arbitrated issue, all
/// dispatches, all fetches). With one thread this is exactly the original
/// single-threaded cycle loop.
struct SmtRun<'a> {
    cfg: CpuConfig,
    hier: &'a mut Hierarchy,
    mem: &'a mut DataMemory,
    predictors: &'a mut [Box<dyn Predictor>],
    progs: &'a [&'a Program],
    decs: &'a [Vec<DecodedInstr>],
    ctxs: &'a mut [ThreadCtx],
    shared: Shared,
    cycle: u64,
}

impl SmtRun<'_> {
    /// Run one stage of thread `tid` through a per-thread pipeline view.
    fn stage<R>(&mut self, tid: usize, f: impl FnOnce(&mut Pipeline<'_>) -> R) -> R {
        let mut view = Pipeline {
            cfg: &self.cfg,
            hier: self.hier,
            mem: self.mem,
            predictor: self.predictors[tid].as_mut(),
            prog: self.progs[tid],
            dec: &self.decs[tid],
            s: &mut self.ctxs[tid],
            sh: &mut self.shared,
            cycle: self.cycle,
        };
        f(&mut view)
    }

    /// Mark thread `tid` finished at the current cycle.
    fn finish_thread(&mut self, tid: usize, limit_hit: bool) {
        let c = &mut self.ctxs[tid];
        c.done = true;
        c.end_cycle = self.cycle;
        c.limit_hit = limit_hit;
    }

    fn run(mut self) -> Vec<RunResult> {
        let stats_before = self.hier.stats();
        let n = self.progs.len();
        if n == 1 {
            // Single-thread fast path: one view for the whole run, the
            // cycle loop on the view itself — structurally the original
            // single-threaded scheduler, with zero per-cycle driver
            // overhead. (The multi-thread driver below is separately
            // pinned against the reference by the SMT differential
            // suite.)
            self.stage(0, |p| p.run_single());
        } else {
            self.run_multi(n);
        }
        let mem_stats = mem_stats_since(self.hier, &stats_before);
        self.ctxs
            .iter_mut()
            .map(|c| c.take_result(mem_stats))
            .collect()
    }

    fn run_multi(&mut self, n: usize) {
        loop {
            for tid in 0..n {
                if !self.ctxs[tid].done {
                    self.stage(tid, |p| p.writeback());
                }
            }
            for tid in 0..n {
                if self.ctxs[tid].done {
                    continue;
                }
                self.stage(tid, |p| p.commit());
                if self.ctxs[tid].halted {
                    self.finish_thread(tid, false);
                }
            }
            // Issue: shared bandwidth and ports; the arbitration policy
            // decides which context claims first. Both live here in the
            // driver, not per thread.
            let mut used = [0usize; NUM_CLASSES];
            let mut issued = 0usize;
            let occupancy: Vec<usize> = self.ctxs.iter().map(|c| c.len).collect();
            for tid in self.cfg.smt_policy.order(self.cycle, &occupancy) {
                if !self.ctxs[tid].done {
                    self.stage(tid, |p| p.issue(&mut used, &mut issued));
                }
            }
            for tid in 0..n {
                if !self.ctxs[tid].done {
                    self.stage(tid, |p| p.dispatch());
                }
            }
            for tid in 0..n {
                if !self.ctxs[tid].done {
                    self.stage(tid, |p| p.fetch());
                }
            }
            for tid in 0..n {
                if !self.ctxs[tid].done && self.stage(tid, |p| p.finished()) {
                    self.finish_thread(tid, false);
                }
            }
            if self.ctxs.iter().all(|c| c.done) {
                break;
            }
            self.cycle += 1;
            for tid in 0..n {
                let c = &mut self.ctxs[tid];
                if c.done {
                    continue;
                }
                if let Some(interval) = self.cfg.interrupt_interval {
                    if self.cycle.is_multiple_of(interval) && !c.draining {
                        c.draining = true;
                        c.interrupts += 1;
                    }
                }
                if c.draining && c.len == 0 {
                    c.draining = false;
                }
            }
            if self.cycle >= self.cfg.max_run_cycles {
                for tid in 0..n {
                    if !self.ctxs[tid].done {
                        self.finish_thread(tid, true);
                    }
                }
                break;
            }
        }
    }
}

/// One thread's view of the machine for one pipeline stage: its private
/// context (`s`), the shared structural resources (`sh`), and the shared
/// memory system.
struct Pipeline<'a> {
    cfg: &'a CpuConfig,
    hier: &'a mut Hierarchy,
    mem: &'a mut DataMemory,
    predictor: &'a mut dyn Predictor,
    prog: &'a Program,
    /// Pre-decoded µop table, indexed by pc (parallel to `prog`).
    dec: &'a [DecodedInstr],
    s: &'a mut ThreadCtx,
    sh: &'a mut Shared,
    cycle: u64,
}

impl<'a> Pipeline<'a> {
    /// The whole single-thread run, on one view: structurally the
    /// original pre-SMT cycle loop (stage order, halt/finish breaks,
    /// interrupt drain, cycle limit), so the classic path pays no
    /// per-cycle driver cost. Leaves the context's `done`/`end_cycle`/
    /// `limit_hit` set for the shared result assembly.
    fn run_single(&mut self) {
        while !self.step_single() {}
    }

    /// One iteration of the single-thread cycle loop: all five stages in
    /// the fixed stage order, then the end-of-cycle bookkeeping (interrupt
    /// drain, cycle limit). Returns `true` when the run finished — by
    /// committed `halt`, pipeline drain, or the cycle limit — with the
    /// context's `done`/`end_cycle`/`limit_hit` already recorded via
    /// [`Pipeline::finish`]. Factored out of [`Pipeline::run_single`] so
    /// the batch engine can drive the *same* loop body one slice at a
    /// time: lockstep stepping is cycle-exact by construction because
    /// there is exactly one copy of the cycle semantics.
    fn step_single(&mut self) -> bool {
        self.writeback();
        self.commit();
        if self.s.halted {
            self.finish(false);
            return true;
        }
        let mut used = [0usize; NUM_CLASSES];
        let mut issued = 0usize;
        self.issue(&mut used, &mut issued);
        self.dispatch();
        self.fetch();
        if self.finished() {
            self.finish(false);
            return true;
        }
        self.cycle += 1;
        if let Some(interval) = self.cfg.interrupt_interval {
            if self.cycle.is_multiple_of(interval) && !self.s.draining {
                self.s.draining = true;
                self.s.interrupts += 1;
            }
        }
        if self.s.draining && self.s.len == 0 {
            self.s.draining = false;
        }
        if self.cycle >= self.cfg.max_run_cycles {
            self.finish(true);
            return true;
        }
        false
    }

    /// Record this context as finished at the current cycle.
    fn finish(&mut self, limit_hit: bool) {
        self.s.done = true;
        self.s.end_cycle = self.cycle;
        self.s.limit_hit = limit_hit;
    }

    /// With ROB and fetch queue empty and fetch stopped (or the program
    /// exhausted), nothing can restart the machine: a stopped fetch either
    /// means the program fell off its end (a committed `halt` would have set
    /// `halted` instead), or a wrong-path `halt` was fetched — and the
    /// mispredicted branch that caused it must already have resolved and
    /// redirected fetch, since the ROB has drained.
    fn finished(&self) -> bool {
        self.s.len == 0
            && self.s.fetch_q.is_empty()
            && (self.s.fetch_stopped || self.s.fetch_pc >= self.prog.len())
            && !self.s.halted
    }

    // ---- helpers -----------------------------------------------------------

    /// Value of the `i`-th source slot (the decode-time slot mapping: no
    /// register comparison walk).
    #[inline]
    fn slot_value(slot: &Slot, i: u8) -> u64 {
        match slot.srcs[i as usize] {
            Src::Ready(v) => v,
            Src::Tag(_) => panic!("source slot {i} read before ready"),
        }
    }

    /// Value of a decode-time operand reference.
    #[inline]
    fn src_value(slot: &Slot, s: SrcRef) -> u64 {
        match s {
            SrcRef::Slot(i) => Self::slot_value(slot, i),
            SrcRef::Imm(v) => v,
        }
    }

    /// Effective address of a slot-mapped memory operand.
    #[inline]
    fn mem_operand_addr(slot: &Slot, m: &DecodedMem) -> u64 {
        let base = m.base.map_or(0, |i| Self::slot_value(slot, i));
        let index = m.index.map_or(0, |i| Self::slot_value(slot, i));
        base.wrapping_add(index.wrapping_mul(m.scale as u64))
            .wrapping_add(m.disp as u64)
    }

    /// Is the entry with sequence number `seq` speculative, i.e. does an
    /// older unresolved conditional branch exist? O(1) amortized: resolved
    /// and retired branches are popped from the front lazily, so the front
    /// is always the oldest in-flight unresolved branch.
    fn is_speculative(&mut self, seq: Seq) -> bool {
        while let Some(&(bseq, bslot)) = self.s.spec_branches.front() {
            if !self.s.valid(bseq, bslot) || self.s.slots[bslot as usize].state == EntryState::Done
            {
                self.s.spec_branches.pop_front();
                continue;
            }
            break;
        }
        matches!(self.s.spec_branches.front(), Some(&(bseq, _)) if bseq < seq)
    }

    // ---- pipeline stages ----------------------------------------------------

    /// Push an entry onto a class ready heap (and flag the class non-empty).
    #[inline]
    fn ready_push(&mut self, cls: usize, seq: Seq, slot: u32) {
        self.s.ready[cls].push(Reverse((seq, slot)));
        self.s.ready_mask |= 1 << cls;
    }

    /// Completions, dependency wakeup and branch resolution.
    fn writeback(&mut self) {
        // Re-home far-out completions (DRAM outliers) whose arrival is now
        // inside the wheel horizon.
        if !self.s.far.is_empty() {
            let mut i = 0;
            while i < self.s.far.len() {
                let (comp, seq, slot) = self.s.far[i];
                if comp - self.cycle < WHEEL as u64 {
                    self.s.far.swap_remove(i);
                    self.s.wheel[comp as usize & (WHEEL - 1)].push((seq, slot));
                } else {
                    i += 1;
                }
            }
        }
        // Drain this cycle's wheel bucket: everything whose functional-unit
        // latency has elapsed.
        let mut bucket = std::mem::take(&mut self.s.wheel_scratch);
        std::mem::swap(
            &mut bucket,
            &mut self.s.wheel[self.cycle as usize & (WHEEL - 1)],
        );
        for &(seq, slot) in &bucket {
            if !self.s.valid(seq, slot) {
                continue; // squashed while in flight
            }
            let e = &mut self.s.slots[slot as usize];
            debug_assert_eq!(
                e.state,
                EntryState::Issued,
                "completion of non-issued entry"
            );
            e.state = EntryState::Done;
            let result = e.result;
            if let Some(t) = e.trace_idx {
                self.s.trace[t as usize].completed = Some(e.completion);
            }
            // Tag broadcast: wake exactly the registered dependents.
            let is_branch = matches!(
                self.dec[self.s.slots[slot as usize].pc].op,
                DecodedOp::Branch { .. }
            );
            if is_branch && self.cfg.countermeasure == Countermeasure::DelayOnMiss {
                // A resolving branch can turn a delay-on-miss-blocked load
                // non-speculative: wake the stall pool this cycle.
                self.s.stall_wake_now = true;
            }
            if self.s.slots[slot as usize].consumers.is_empty() {
                if is_branch {
                    self.s.resolve_q.push(Reverse((seq, slot)));
                }
                continue;
            }
            let mut wake = std::mem::take(&mut self.s.wake);
            std::mem::swap(&mut wake, &mut self.s.slots[slot as usize].consumers);
            for &(cseq, cslot, si) in &wake {
                if !self.s.valid(cseq, cslot) {
                    continue; // consumer squashed
                }
                let c = &mut self.s.slots[cslot as usize];
                debug_assert!(
                    matches!(c.srcs[si as usize], Src::Tag(t) if t == seq),
                    "consumer source does not hold the producer tag"
                );
                c.srcs[si as usize] = Src::Ready(result);
                c.pending -= 1;
                let now_ready = c.pending == 0
                    && c.state == EntryState::Waiting
                    && self.cfg.countermeasure != Countermeasure::InOrder;
                if now_ready {
                    let cls = self.dec[c.pc].cls as usize;
                    self.ready_push(cls, cseq, cslot);
                }
            }
            wake.clear();
            self.s.wake = wake;
            if is_branch {
                self.s.resolve_q.push(Reverse((seq, slot)));
            }
        }
        bucket.clear();
        self.s.wheel_scratch = bucket;
        // Resolve branches oldest-first; a squash invalidates younger ones,
        // whose stale handles are dropped by the validity check.
        while let Some(Reverse((seq, slot))) = self.s.resolve_q.pop() {
            if !self.s.valid(seq, slot) {
                continue;
            }
            let e = &self.s.slots[slot as usize];
            if e.resolved {
                continue;
            }
            let taken = e.result != 0;
            let predicted = e.predicted_taken;
            let pc = e.pc;
            self.predictor.train(pc, taken);
            self.s.slots[slot as usize].resolved = true;
            if taken != predicted {
                self.mispredict(slot, seq, taken);
            }
        }
    }

    fn mispredict(&mut self, slot: u32, seq: Seq, taken: bool) {
        self.s.mispredicts += 1;
        // Squash everything younger than the branch, youngest first,
        // restoring the displaced RAT mappings as we go (undo log). Walking
        // youngest-to-oldest makes the sequence of `prev_rat` restores
        // reconstruct exactly the rename state at the branch's dispatch.
        while self.s.len > 0 {
            let t = self.s.tail_slot();
            if self.s.slots[t].seq <= seq {
                break;
            }
            let d = &self.dec[self.s.slots[t].pc];
            let v = &mut self.s.slots[t];
            if let Some(dst) = d.dst {
                self.s.rat[dst.index()] = v.prev_rat;
            }
            if v.state == EntryState::Waiting {
                self.s.waiting_count -= 1;
            }
            if let Some(li) = v.load_event {
                // Invariant: a load being squashed can never have committed.
                assert!(
                    !self.s.loads[li as usize].committed,
                    "squashed load marked committed"
                );
            }
            // CleanupSpec: undo the squashed load's cache fill. The *state*
            // is repaired — but any timing difference it caused has already
            // been consumed by older instructions (SpectreBack's point).
            if self.cfg.countermeasure == Countermeasure::CleanupSpec {
                let v = &self.s.slots[t];
                if let DecodedOp::Load(_) = d.op {
                    if v.state != EntryState::Waiting {
                        if let Some(addr) = v.mem_addr {
                            self.hier.flush(Addr(addr));
                        }
                    }
                }
            }
            self.s.squashed += 1;
            self.s.len -= 1;
        }
        while matches!(self.s.store_q.back(), Some(&(sseq, _)) if sseq > seq) {
            self.s.store_q.pop_back();
        }
        while matches!(self.s.spec_branches.back(), Some(&(bseq, _)) if bseq > seq) {
            self.s.spec_branches.pop_back();
        }
        self.s.stalled_loads.retain(|&(sseq, _)| sseq <= seq);
        if self.s.inorder_skip > self.s.len {
            self.s.inorder_skip = self.s.len;
        }
        // Redirect fetch down the correct path.
        let pc = self.s.slots[slot as usize].pc;
        let target = match self.dec[pc].op {
            DecodedOp::Branch { target, .. } => {
                if taken {
                    target as usize
                } else {
                    pc + 1
                }
            }
            _ => unreachable!("mispredict on non-branch"),
        };
        self.s.fetch_q.clear();
        self.s.fetch_pc = target;
        self.s.fetch_stopped = target >= self.prog.len();
        // A squashed fence no longer blocks dispatch.
        if let Some(fseq) = self.s.fence_active {
            if fseq > seq {
                self.s.fence_active = None;
            }
        }
    }

    /// In-order retirement. (No commit-time tag broadcast is needed: the
    /// completion-time wakeup resolved every registered consumer, and later
    /// consumers rename straight to the ready value.)
    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            if self.s.len == 0 {
                break;
            }
            let h = self.s.head;
            if self.s.slots[h].state != EntryState::Done {
                break;
            }
            self.s.head = self.s.wrap(h + 1);
            self.s.len -= 1;
            self.s.inorder_skip = self.s.inorder_skip.saturating_sub(1);
            self.s.committed += 1;
            let e = &self.s.slots[h];
            let (seq, result, mem_addr) = (e.seq, e.result, e.mem_addr);
            let d = &self.dec[e.pc];
            if let Some(t) = e.trace_idx {
                self.s.trace[t as usize].committed = Some(self.cycle);
            }
            // Architectural register update + RAT release.
            if let Some(dst) = d.dst {
                self.s.arch_regs[dst.index()] = result;
                if matches!(self.s.rat[dst.index()], Some((rseq, _)) if rseq == seq) {
                    self.s.rat[dst.index()] = None;
                }
            }
            match d.op {
                DecodedOp::Store { .. } => {
                    let addr = mem_addr.expect("store address resolved at issue");
                    self.mem.write(addr, result);
                    self.hier.access(Addr(addr), AccessKind::Store);
                    debug_assert_eq!(
                        self.s.store_q.front().map(|&(s, _)| s),
                        Some(seq),
                        "stores commit in store-queue order"
                    );
                    self.s.store_q.pop_front();
                    // The commit both fills the line and removes the store
                    // from the disambiguation window: wake aliased loads.
                    // Commit precedes issue, so everyone may observe it.
                    self.wake_stalled_on_line(Addr(addr).line().0, 0);
                }
                DecodedOp::Load(_) if self.s.slots[h].deferred_fill => {
                    // Invisible-speculation modes: apply the fill now.
                    let addr = mem_addr.expect("load address resolved at issue");
                    self.hier.access(Addr(addr), AccessKind::Load);
                    self.wake_stalled_on_line(Addr(addr).line().0, 0);
                }
                DecodedOp::Fence => {
                    self.s.fence_active = None;
                }
                DecodedOp::Halt => {
                    self.s.halted = true;
                    return;
                }
                _ => {}
            }
            if let Some(li) = self.s.slots[h].load_event {
                self.s.loads[li as usize].committed = true;
            }
        }
    }

    /// Data-driven issue to functional units: merge the per-class ready
    /// heaps in global sequence order, skipping classes with exhausted
    /// ports — selecting exactly the instructions the reference scheduler's
    /// program-order ROB scan would pick. `used` and `issued` are the
    /// per-cycle port and bandwidth budgets, shared across hardware
    /// threads: the driver passes the same counters to every context, in
    /// arbitration order.
    fn issue(&mut self, used: &mut [usize; NUM_CLASSES], issued: &mut usize) {
        if self.cfg.countermeasure == Countermeasure::InOrder {
            self.issue_in_order(used, issued);
            return;
        }
        // Prune arrived fills once per cycle (`now` is constant inside the
        // cycle, so per-attempt pruning was redundant work; with SMT the
        // retain simply re-runs as a no-op for later threads).
        let now = self.cycle;
        self.sh.inflight.retain(|&(_, done)| done > now);
        // Wake the stall pool when a blocking condition may have cleared:
        // an outstanding miss expired (deterministic cycle) or an
        // unblocking event fired since the last issue pass. With more than
        // one hardware thread the pool drains every cycle — other threads'
        // fills and MSHR traffic are wake sources the per-thread event
        // model cannot see, and per-cycle attempts are exactly the
        // reference scheduler's behavior. A periodic fallback drain bounds
        // staleness as a liveness belt-and-braces — a drained attempt that
        // still fails just goes straight back.
        if self.s.stall_wake_now
            || now >= self.s.stall_wake_cycle
            || (self.sh.nthreads > 1 && !self.s.stalled_loads.is_empty())
            || (!self.s.stalled_loads.is_empty() && now.is_multiple_of(64))
        {
            self.s.stall_wake_now = false;
            self.s.stall_wake_cycle = u64::MAX;
            self.drain_stalled(None);
        }
        while *issued < self.cfg.issue_width {
            // Pick the oldest ready entry among classes with a free port,
            // visiting only classes whose heap is non-empty.
            let mut best: Option<(Seq, u32, usize)> = None;
            let mut mask = self.s.ready_mask;
            while mask != 0 {
                let cls = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if !self.port_available(cls, used) {
                    continue;
                }
                // Drop stale (squashed) handles while peeking.
                let top = loop {
                    let candidate = match self.s.ready[cls].peek() {
                        Some(&Reverse((seq, slot))) => (seq, slot),
                        None => {
                            self.s.ready_mask &= !(1 << cls);
                            break None;
                        }
                    };
                    if self.s.valid(candidate.0, candidate.1) {
                        break Some(candidate);
                    }
                    self.s.ready[cls].pop();
                };
                if let Some((seq, slot)) = top {
                    if best.is_none_or(|(bseq, _, _)| seq < bseq) {
                        best = Some((seq, slot, cls));
                    }
                }
            }
            let Some((seq, slot, cls)) = best else { break };
            self.s.ready[cls].pop();
            if self.s.ready[cls].is_empty() {
                self.s.ready_mask &= !(1 << cls);
            }
            if self.try_issue(slot as usize, cls, used) {
                *issued += 1;
            } else {
                // Only loads can fail (disambiguation / MSHRs /
                // delay-on-miss): park in the stall pool until a wake
                // condition fires.
                debug_assert_eq!(cls, CLS_LOAD);
                self.s.stalled_loads.push((seq, slot));
            }
        }
    }

    /// Move stalled loads back into the ready heap. `after = None` drains
    /// everything (start-of-cycle wake); a mid-issue event passes its own
    /// sequence number and only entries *younger* than it drain, because
    /// the reference scheduler's program-order scan only lets younger
    /// instructions observe the event's effect within the same cycle.
    /// Entries already attempted this cycle stay pooled (one attempt per
    /// entry per cycle) and re-arm a next-cycle wake.
    fn drain_stalled(&mut self, after: Option<Seq>) {
        let cycle = self.cycle;
        let mut i = 0;
        while i < self.s.stalled_loads.len() {
            let (seq, slot) = self.s.stalled_loads[i];
            if !self.s.valid(seq, slot) {
                self.s.stalled_loads.swap_remove(i); // squashed
                continue;
            }
            if after.is_some_and(|a| seq <= a) {
                i += 1;
                continue;
            }
            if self.s.slots[slot as usize].last_attempt == cycle {
                self.s.stall_wake_now = true;
                i += 1;
                continue;
            }
            self.s.stalled_loads.swap_remove(i);
            self.ready_push(CLS_LOAD, seq, slot);
        }
    }

    /// A line was just filled (or an aliased store left the store queue):
    /// wake stalled loads on that line — younger ones this cycle (from
    /// `event_seq`), everyone at the next issue pass.
    fn wake_stalled_on_line(&mut self, line: u64, event_seq: Seq) {
        let hit = self.s.stalled_loads.iter().any(|&(_, slot)| {
            self.s.slots[slot as usize]
                .mem_addr
                .is_some_and(|a| Addr(a).line().0 == line)
        });
        if hit {
            self.s.stall_wake_now = true;
            self.drain_stalled(Some(event_seq));
        }
    }

    /// Strict in-order issue (the `Countermeasure::InOrder` mode): the
    /// oldest unissued instruction must go first; if it cannot, nothing
    /// younger may. `inorder_skip` remembers how much of the window front is
    /// already issued, so the scan is O(1) amortized.
    fn issue_in_order(&mut self, used: &mut [usize; NUM_CLASSES], issued: &mut usize) {
        // Prune arrived fills once per cycle (mirrors `issue`).
        let now = self.cycle;
        self.sh.inflight.retain(|&(_, done)| done > now);
        while *issued < self.cfg.issue_width {
            while self.s.inorder_skip < self.s.len {
                let slot = self.s.wrap(self.s.head + self.s.inorder_skip);
                if self.s.slots[slot].state == EntryState::Waiting {
                    break;
                }
                self.s.inorder_skip += 1;
            }
            if self.s.inorder_skip >= self.s.len {
                break;
            }
            let slot = self.s.wrap(self.s.head + self.s.inorder_skip);
            if self.s.slots[slot].pending > 0 {
                break; // oldest unissued not ready ⇒ stall everything
            }
            let cls = self.dec[self.s.slots[slot].pc].cls as usize;
            if !self.port_available(cls, used) || !self.try_issue(slot, cls, used) {
                break;
            }
            *issued += 1;
        }
    }

    /// Does class `cls` still have an issue port this cycle?
    fn port_available(&self, cls: usize, used: &[usize; NUM_CLASSES]) -> bool {
        match cls {
            CLS_ALU => used[CLS_ALU] < self.cfg.alu_ports,
            CLS_MUL => used[CLS_MUL] < self.cfg.mul_ports,
            CLS_DIV => used[CLS_DIV] < self.cfg.div_ports && self.sh.div_unit_free(self.cycle),
            CLS_LOAD => used[CLS_LOAD] < self.cfg.load_ports,
            CLS_STORE => used[CLS_STORE] < self.cfg.store_ports,
            CLS_BRANCH => used[CLS_BRANCH] < self.cfg.branch_ports,
            _ => true,
        }
    }

    /// Execute the issue of the entry in `slot` (port availability already
    /// checked); returns false only for loads that must retry later.
    fn try_issue(&mut self, slot: usize, cls: usize, used: &mut [usize; NUM_CLASSES]) -> bool {
        let lat = self.cfg.latencies;
        let now = self.cycle;
        match self.dec[self.s.slots[slot].pc].op {
            DecodedOp::Alu { op, a, b } => {
                let av = Self::src_value(&self.s.slots[slot], a);
                let bv = Self::src_value(&self.s.slots[slot], b);
                let latency = match op {
                    AluOp::Mul => lat.mul,
                    AluOp::Div => {
                        self.sh.claim_div_unit(now, lat.div_recip);
                        lat.div_min + ((av ^ bv) & 1)
                    }
                    _ => lat.alu,
                };
                self.finish_issue(slot, cls, used, op.eval(av, bv), now + latency);
            }
            DecodedOp::Lea(mem) => {
                let addr = Self::mem_operand_addr(&self.s.slots[slot], &mem);
                self.finish_issue(slot, cls, used, addr, now + lat.alu);
            }
            DecodedOp::Load(mem) => {
                if !self.issue_load(slot, mem, used) {
                    return false;
                }
            }
            DecodedOp::Store { src, mem } => {
                let addr = Self::mem_operand_addr(&self.s.slots[slot], &mem);
                let val = Self::src_value(&self.s.slots[slot], src);
                let e = &mut self.s.slots[slot];
                e.mem_addr = Some(addr);
                let seq = e.seq;
                // Publish the now-known address for load disambiguation.
                if let Some(entry) = self
                    .s
                    .store_q
                    .iter_mut()
                    .rev()
                    .find(|(sseq, _)| *sseq == seq)
                {
                    entry.1 = Some(addr);
                }
                self.finish_issue(slot, cls, used, val, now + lat.store);
                // The now-known address unblocks younger loads that were
                // stalled on this store's unknown address.
                self.drain_stalled(Some(seq));
            }
            DecodedOp::Prefetch { mem, nta } => {
                let addr = Self::mem_operand_addr(&self.s.slots[slot], &mem);
                let kind = if nta {
                    AccessKind::PrefetchNta
                } else {
                    AccessKind::Prefetch
                };
                self.hier.access(Addr(addr), kind);
                self.s.slots[slot].mem_addr = Some(addr);
                let seq = self.s.slots[slot].seq;
                self.finish_issue(slot, cls, used, 0, now + 1);
                // Prefetch fills at issue: stalled loads on this line may
                // now hit.
                self.wake_stalled_on_line(Addr(addr).line().0, seq);
            }
            DecodedOp::Flush(mem) => {
                let addr = Self::mem_operand_addr(&self.s.slots[slot], &mem);
                self.hier.flush(Addr(addr));
                self.s.slots[slot].mem_addr = Some(addr);
                self.finish_issue(slot, cls, used, 0, now + 1);
            }
            DecodedOp::Branch { cond, b, .. } => {
                let av = Self::slot_value(&self.s.slots[slot], 0);
                let bv = Self::src_value(&self.s.slots[slot], b);
                let result = u64::from(cond.eval(av, bv));
                self.finish_issue(slot, cls, used, result, now + lat.branch);
            }
            DecodedOp::Jump { .. } | DecodedOp::Nop | DecodedOp::Fence | DecodedOp::Halt => {
                self.finish_issue(slot, cls, used, 0, now);
            }
        }
        true
    }

    /// Common successful-issue bookkeeping: state transition, port charge,
    /// completion event, trace stamp.
    fn finish_issue(
        &mut self,
        slot: usize,
        cls: usize,
        used: &mut [usize; NUM_CLASSES],
        result: u64,
        completion: u64,
    ) {
        used[cls] += 1;
        let e = &mut self.s.slots[slot];
        debug_assert_eq!(e.state, EntryState::Waiting);
        e.result = result;
        e.state = EntryState::Issued;
        e.completion = completion;
        let seq = e.seq;
        self.s.waiting_count -= 1;
        // Writeback processes arrivals strictly after the issuing cycle, so
        // zero-latency completions land in the next cycle's bucket.
        let arrival = completion.max(self.cycle + 1);
        if arrival - self.cycle < WHEEL as u64 {
            self.s.wheel[arrival as usize & (WHEEL - 1)].push((seq, slot as u32));
        } else {
            self.s.far.push((arrival, seq, slot as u32));
        }
        if let Some(t) = self.s.slots[slot].trace_idx {
            self.s.trace[t as usize].issued = Some(self.cycle);
        }
    }

    /// Issue a load, honouring store ordering, MSHRs and countermeasures.
    /// Returns false if the load must retry later.
    fn issue_load(
        &mut self,
        slot: usize,
        mem_op: DecodedMem,
        used: &mut [usize; NUM_CLASSES],
    ) -> bool {
        // A load only reaches here with all sources ready, so its effective
        // address is final: compute it once and cache it across the (often
        // many) MSHR-full retry attempts. `mem_addr` on a still-Waiting
        // entry is ignored by every other consumer.
        let addr = match self.s.slots[slot].mem_addr {
            Some(a) => a,
            None => {
                let a = Self::mem_operand_addr(&self.s.slots[slot], &mem_op);
                self.s.slots[slot].mem_addr = Some(a);
                a
            }
        };
        self.s.slots[slot].last_attempt = self.cycle;
        let seq = self.s.slots[slot].seq;
        // Conservative memory disambiguation: an older in-flight store with
        // an unknown address, or a known address matching this word, blocks
        // the load until the store commits. The store queue holds only
        // in-flight stores, so this scan is tiny (vs. the reference
        // scheduler's walk of the whole ROB prefix). Stores are a
        // same-thread affair: threads share no memory-ordering model.
        for &(sseq, saddr) in &self.s.store_q {
            if sseq > seq {
                break;
            }
            match saddr {
                None => return false,
                Some(sa) if sa == addr => return false,
                _ => {}
            }
        }

        let speculative = self.is_speculative(seq);
        let now = self.cycle;
        let line = Addr(addr).line().0;
        // (Arrived fills were pruned from `inflight` once at the top of
        // this cycle's issue pass.)

        let cm = self.cfg.countermeasure;
        let shield = match cm {
            Countermeasure::InvisibleSpec | Countermeasure::GhostMinion => speculative,
            _ => false,
        };
        let inflight_done = self
            .sh
            .inflight
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, done)| done);
        // Single stateless L1 lookup; the hit path below reuses the way
        // instead of re-scanning the tags (and, unlike a full `probe`, an
        // L1 miss here never walks the L2/L3 tag arrays).
        let l1_way = self.hier.lookup_l1(Addr(addr));
        if cm == Countermeasure::DelayOnMiss
            && speculative
            && l1_way.is_none()
            && inflight_done.is_none()
        {
            // Speculative L1 miss: delay until non-speculative.
            return false;
        }

        let (latency, level) = if let Some(done) = inflight_done {
            // Merge into the outstanding miss (MSHR hit) — possibly one
            // another hardware thread started.
            (
                done.saturating_sub(now).max(self.cfg.latencies.alu),
                HitLevel::L2,
            )
        } else if shield {
            // Invisible speculation: timing only, no state change.
            (
                self.hier.peek_latency(Addr(addr)),
                self.hier.probe(Addr(addr)),
            )
        } else {
            // Normal path: check MSHR capacity for misses.
            if l1_way.is_none() && self.sh.inflight.len() >= self.cfg.mshrs {
                // Capacity cannot free before the earliest outstanding
                // fill arrives: arm the stall pool's deterministic wake.
                let min_done = self
                    .sh
                    .inflight
                    .iter()
                    .map(|&(_, done)| done)
                    .min()
                    .expect("MSHRs full implies outstanding entries");
                self.s.stall_wake_cycle = self.s.stall_wake_cycle.min(min_done);
                return false;
            }
            let out = match l1_way {
                Some(way) => self.hier.access_l1_hit(Addr(addr), way),
                None => self.hier.access_l1_miss(Addr(addr), AccessKind::Load),
            };
            if out.level != HitLevel::L1 {
                self.sh.inflight.push((line, now + out.latency));
                // The miss filled the line at issue and registered it as
                // outstanding: stalled loads on the same line can now
                // merge or hit.
                self.wake_stalled_on_line(line, seq);
            }
            (out.latency, out.level)
        };

        let value = self.mem.read(addr);
        let record = self.cfg.record.loads();
        let e = &mut self.s.slots[slot];
        e.mem_addr = Some(addr);
        e.deferred_fill = shield;
        if record {
            let ev = LoadEvent {
                pc: e.pc,
                seq: e.seq,
                addr,
                issue_cycle: now,
                complete_cycle: now + latency,
                level,
                speculative,
                committed: false,
            };
            e.load_event = Some(self.s.loads.len() as u32);
            self.s.loads.push(ev);
        }
        self.finish_issue(slot, CLS_LOAD, used, value, now + latency);
        true
    }

    /// Rename and dispatch from the fetch queue into the ROB.
    fn dispatch(&mut self) {
        if self.s.draining {
            return;
        }
        for _ in 0..self.cfg.dispatch_width {
            if self.s.fence_active.is_some() {
                break;
            }
            if self.s.len >= self.cfg.rob_size {
                break;
            }
            if self.s.waiting_count >= self.cfg.rs_size {
                break;
            }
            let Some(front) = self.s.fetch_q.front() else {
                break;
            };
            if front.ready_cycle > self.cycle {
                break;
            }
            let fetched = self.s.fetch_q.pop_front().expect("front exists");
            let pc = fetched.pc as usize;
            let d = &self.dec[pc];
            let seq = self.s.next_seq;
            self.s.next_seq += 1;
            let slot = self.s.alloc_slot();

            // Rename: resolve each source against the RAT. A live producer
            // that is already Done hands over its value immediately; an
            // in-flight one gets this entry appended to its consumer list.
            let nsrcs = d.nsrcs as usize;
            let src_regs = d.srcs;
            let mut srcs = [Src::Ready(0); 3];
            let mut pending = 0u8;
            for (i, &r) in src_regs[..nsrcs].iter().enumerate() {
                let src = match self.s.rat[r.index()] {
                    None => Src::Ready(self.s.arch_regs[r.index()]),
                    Some((pseq, pslot)) => {
                        if self.s.valid(pseq, pslot) {
                            let p = &mut self.s.slots[pslot as usize];
                            if p.state == EntryState::Done {
                                Src::Ready(p.result)
                            } else {
                                p.consumers.push((seq, slot as u32, i as u8));
                                pending += 1;
                                Src::Tag(pseq)
                            }
                        } else {
                            // Producer already committed.
                            Src::Ready(self.s.arch_regs[r.index()])
                        }
                    }
                };
                srcs[i] = src;
            }

            let d = &self.dec[pc];
            let prev_rat = match d.dst {
                Some(dst) => {
                    let prev = self.s.rat[dst.index()];
                    self.s.rat[dst.index()] = Some((seq, slot as u32));
                    prev
                }
                None => None,
            };
            let cls = d.cls as usize;
            match d.op {
                DecodedOp::Branch { .. } => self.s.spec_branches.push_back((seq, slot as u32)),
                DecodedOp::Fence => self.s.fence_active = Some(seq),
                DecodedOp::Store { .. } => self.s.store_q.push_back((seq, None)),
                _ => {}
            }

            let trace_idx = if self.cfg.record.trace() {
                let instr = self.prog.get(pc).expect("fetched pc in range");
                let fetched_cycle = fetched.ready_cycle.saturating_sub(self.cfg.front_end_depth);
                let mut rec = crate::trace::TraceRecord::new(seq, pc, instr, fetched_cycle);
                rec.dispatched = self.cycle;
                self.s.trace.push(rec);
                Some((self.s.trace.len() - 1) as u32)
            } else {
                None
            };

            let e = &mut self.s.slots[slot];
            e.seq = seq;
            e.pc = pc;
            e.state = EntryState::Waiting;
            e.nsrcs = nsrcs as u8;
            e.pending = pending;
            e.srcs = srcs;
            e.result = 0;
            e.completion = 0;
            e.predicted_taken = fetched.predicted_taken;
            e.mem_addr = None;
            e.deferred_fill = false;
            e.load_event = None;
            e.trace_idx = trace_idx;
            e.prev_rat = prev_rat;
            e.resolved = false;
            e.last_attempt = u64::MAX;
            e.consumers.clear();
            self.s.len += 1;
            self.s.waiting_count += 1;

            if pending == 0 && self.cfg.countermeasure != Countermeasure::InOrder {
                self.ready_push(cls, seq, slot as u32);
            }
        }
    }

    /// Predicted instruction fetch.
    fn fetch(&mut self) {
        if self.s.draining || self.s.fetch_stopped {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.s.fetch_pc >= self.prog.len() {
                self.s.fetch_stopped = true;
                break;
            }
            if self.s.fetch_q.len() >= self.cfg.rob_size {
                break;
            }
            let pc = self.s.fetch_pc;
            let mut predicted_taken = false;
            let mut next = pc + 1;
            match self.dec[pc].op {
                DecodedOp::Branch { target, .. } => {
                    predicted_taken = self.predictor.predict(pc);
                    if predicted_taken {
                        next = target as usize;
                    }
                }
                DecodedOp::Jump { target } => {
                    predicted_taken = true;
                    next = target as usize;
                }
                DecodedOp::Halt => {
                    self.s.fetch_stopped = true;
                }
                _ => {}
            }
            self.s.fetch_q.push_back(FetchedInstr {
                pc: pc as u32,
                predicted_taken,
                ready_cycle: self.cycle + self.cfg.front_end_depth,
            });
            if self.s.fetch_stopped {
                break;
            }
            self.s.fetch_pc = next;
        }
    }
}
