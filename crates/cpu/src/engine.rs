//! The batched lockstep simulation engine: many single-thread machines,
//! one driver loop.
//!
//! Sweeps are the repo's dominant workload shape: run N program *variants*
//! (target lengths, repeat counts, magnifier settings) on machines that
//! share a [`CpuConfig`] and usually a warmed-up starting state. Spawning
//! one fresh [`Cpu`] per variant pays the warmup run and the scheduling-
//! structure allocation N times; [`MachineBatch`] pays them once:
//!
//! * **Snapshots** ([`Snapshot`]): one deep capture of a machine's
//!   persistent state — caches (replacement state included), data memory,
//!   trained branch predictor — behind an [`Arc`], shared copy-on-fork
//!   across lanes and across host threads
//!   ([`batch::par_map`](crate::batch::par_map) workers can all fork from
//!   the same snapshot). A sweep warms one machine, snapshots it, and
//!   forks it per point instead of re-running warmup per point.
//! * **Shared µop tables**: each *distinct* program pushed into a batch is
//!   decoded once ([`DecodedProgram`]); every lane running that program
//!   indexes the same table. A countermeasure or repeat-count sweep that
//!   pushes the same gadget N times decodes it once.
//! * **Copy-on-write lane memory**: forking a lane clones the snapshot's
//!   [`Hierarchy`], which shares cache storage in `Arc`-backed chunks and
//!   only materialises the chunks the lane actually writes (see
//!   `racer_mem`'s COW docs). Sixty-four lanes of a warmed snapshot share
//!   one L2/L3 image instead of thrashing the host cache with 64 private
//!   megabyte-scale copies — the change that makes lockstep win at high
//!   lane counts.
//! * **Structure-of-arrays lanes, adaptive lockstep slices**: per-lane
//!   state (ROB ring, RAT, ready heaps, stall pool, cache hierarchy,
//!   store queue) lives contiguously in the batch's lane vector. Hot
//!   scheduling state — the resumable cycle counter and the live-lane
//!   index list — is packed separately, so the round-robin driver never
//!   touches finished lanes' cold state. Each round advances every live
//!   lane by a slice chosen by [`schedule_slice`] from the live-lane
//!   count and the lanes' measured private footprints (bigger slices as
//!   aggregate working sets outgrow the host cache, up to running each
//!   lane effectively serially). Lane [`ThreadCtx`] allocations are
//!   recycled across [`MachineBatch::run`] rounds, so a long-running
//!   sweep driver stops touching the allocator entirely.
//!
//! # Cycle exactness
//!
//! Lanes are *independent machines*: they share no simulated state, only
//! host-side tables and allocations. Each lane is driven by
//! [`core::step_lane`], which executes the **same** cycle-loop body
//! `Cpu::run` uses for a single thread — there is exactly one copy of the
//! cycle semantics, so a lane stepped in lockstep slices is bit-identical
//! (cycles, committed state, timer readings, cache stats) to forking a
//! whole machine and running it to completion, in any lane order. The
//! differential suites pin this against both retained schedulers.
//!
//! ```
//! use racer_cpu::{Backend, Cpu, CpuConfig, MachineBatch};
//! use racer_isa::Asm;
//! use racer_mem::HierarchyConfig;
//!
//! let mut asm = Asm::new();
//! let r = asm.reg();
//! asm.mov_imm(r, 21);
//! asm.add(r, r, r);
//! asm.halt();
//! let prog = asm.assemble()?;
//!
//! // Warm a machine, snapshot it, fork the snapshot into a batch.
//! let mut cpu = Cpu::new(CpuConfig::default(), HierarchyConfig::coffee_lake());
//! cpu.run_one(&prog, Backend::EventDriven); // warmup
//! let mut batch = MachineBatch::from_snapshot(&cpu.snapshot());
//! for _ in 0..8 {
//!     batch.push(&prog);
//! }
//! let results = batch.run();
//! assert_eq!(results.len(), 8);
//! // Every lane forked the same warmed state: identical results.
//! assert!(results.iter().all(|r| r.cycles == results[0].cycles));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::config::{Backend, CpuConfig};
use crate::core::{self, Cpu, Shared, ThreadCtx};
use crate::predictor::Predictor;
use crate::stats::RunResult;
use racer_isa::{DataMemory, DecodedInstr, DecodedProgram, Program};
use racer_mem::{Hierarchy, HierarchyConfig, HierarchyStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Smallest lockstep slice: enough cycles to amortise the per-lane switch
/// when every lane's working set fits the host cache together.
const SLICE_MIN: u64 = 64;

/// Largest lockstep slice. At this size a lane typically runs a whole
/// short program within one round — the schedule's answer when aggregate
/// lane footprints dwarf the host cache and interleaving only thrashes.
const SLICE_MAX: u64 = 32_768;

/// Host-cache budget the slice schedule aims to keep resident across a
/// round, approximating a desktop L2+LLC share. Only the *ratio* of
/// aggregate lane footprint to this matters, so precision is not required.
const HOST_CACHE_BUDGET: usize = 2 * 1024 * 1024;

/// Host bytes of a lane's scheduling structures (ROB ring, ready heaps,
/// stall pool, store queue, RAT) — the COW hierarchy's private chunks and
/// the data memory are measured, this fixed part is estimated.
const LANE_CTX_BYTES: usize = 32 * 1024;

/// Pick the cycles each live lane advances per lockstep round.
///
/// Switching the driver to another lane costs real host time: the next
/// lane's private working set (ROB ring, heaps, materialised COW chunks)
/// has to stream back into the host cache, ~5 µs for a typical ~32 KB
/// lane against ~65 ns of simulation per cycle. The slice must be large
/// enough to amortise that, and the pressure grows with both axes the
/// schedule reads:
///
/// * **lane count** — more live lanes means more aggregate working set
///   cycling through the host cache per round, so the floor scales as
///   `SLICE_MIN × live_lanes` (64 lanes ⇒ 4096-cycle slices);
/// * **measured footprint** — `private_bytes` is the lanes' aggregate
///   *measured* private state: COW cache chunks each lane has actually
///   materialised ([`Hierarchy::private_bytes_vs`] against the batch
///   snapshot) plus data memory and fixed per-lane structures. Once it
///   overflows [`HOST_CACHE_BUDGET`], every switch pays a per-lane
///   reload, so the slice also scales with per-lane bytes (~1 cycle per
///   32 private bytes ≈ 20× reload amortisation).
///
/// A single live lane always runs at [`SLICE_MAX`]: interleaving has
/// nothing left to interleave with.
///
/// Correctness never depends on the slice: lanes share no simulated
/// state, so any schedule produces bit-identical results (pinned by the
/// engine property tests).
fn schedule_slice(live_lanes: usize, private_bytes: usize) -> u64 {
    if live_lanes <= 1 {
        return SLICE_MAX;
    }
    let floor = SLICE_MIN * live_lanes as u64;
    let amortise = if private_bytes > HOST_CACHE_BUDGET {
        // Over budget, every round pays a full per-lane reload: scale the
        // slice with per-lane bytes AND lane count so big batches converge
        // on one-round (effectively serial) completion.
        (private_bytes / 32) as u64
    } else {
        0
    };
    floor
        .max(amortise)
        .next_power_of_two()
        .clamp(SLICE_MIN, SLICE_MAX)
}

/// An immutable capture of a machine's persistent state — config, cache
/// hierarchy (replacement and stats state included), data memory and
/// trained branch predictor — shared behind an [`Arc`].
///
/// Cloning a `Snapshot` is O(1); [`Snapshot::fork`] stamps out a fresh
/// independent [`Cpu`] whose first run behaves exactly as the captured
/// machine's next run would have. `Snapshot` is `Send + Sync`, so one
/// warmed snapshot can seed forks on every
/// [`batch::par_map`](crate::batch::par_map) worker at once.
#[derive(Clone, Debug)]
pub struct Snapshot {
    inner: Arc<SnapshotState>,
}

#[derive(Debug)]
struct SnapshotState {
    cfg: CpuConfig,
    hier: Hierarchy,
    mem: DataMemory,
    predictor: Box<dyn Predictor>,
}

impl Snapshot {
    /// Capture `cpu`'s persistent state. One deep copy; subsequent clones
    /// and forks share it.
    ///
    /// # Panics
    ///
    /// Panics unless `cpu` is a single-thread config (forked lanes are
    /// single-thread machines).
    pub(crate) fn capture(cpu: &Cpu) -> Self {
        assert_eq!(
            cpu.cfg.threads, 1,
            "snapshots capture single-thread machines"
        );
        Snapshot {
            inner: Arc::new(SnapshotState {
                cfg: cpu.cfg,
                hier: cpu.hier.clone(),
                mem: cpu.mem.clone(),
                predictor: cpu.predictors[0].clone_box(),
            }),
        }
    }

    /// A snapshot of a *cold* machine: fresh caches, empty memory,
    /// untrained predictor. The batch equivalent of [`Cpu::new`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or is not single-thread.
    pub fn cold(cfg: CpuConfig, hier_cfg: HierarchyConfig) -> Self {
        Self::capture(&Cpu::new(cfg, hier_cfg))
    }

    /// The captured core configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.inner.cfg
    }

    /// Stamp out an independent machine starting from the captured state.
    /// The fork owns its own copies: nothing it does is visible to the
    /// snapshot or to sibling forks.
    pub fn fork(&self) -> Cpu {
        Cpu {
            cfg: self.inner.cfg,
            hier: self.inner.hier.clone(),
            mem: self.inner.mem.clone(),
            predictors: vec![self.inner.predictor.clone_box()],
            ctxs: vec![ThreadCtx::default()],
            decoded: vec![Vec::new()],
        }
    }

    /// Run each of `progs` on an independent fork of this snapshot and
    /// return one [`RunResult`] per program, in input order — the
    /// convenience form of building a [`MachineBatch`] by hand. Lanes with
    /// equal programs share one decoded µop table; results are
    /// bit-identical to `self.fork().run_one(prog, Backend::EventDriven)`
    /// per program.
    pub fn run_many(&self, progs: &[Program]) -> Vec<RunResult> {
        let mut batch = MachineBatch::from_snapshot(self);
        for p in progs {
            batch.push(p);
        }
        batch.run()
    }
}

/// A pushed-but-not-yet-materialised lane: which program it runs and
/// which snapshot it forks from (`None` ⇒ the batch snapshot).
#[derive(Debug)]
struct QueuedLane {
    /// Index into the batch's shared `programs` / `decoded` tables.
    prog: usize,
    /// Fork source for heterogeneous-state batches
    /// ([`MachineBatch::push_from`]); `None` forks the batch snapshot.
    /// O(1) to hold — snapshots are `Arc`-backed.
    src: Option<Snapshot>,
}

/// One lane: an independent single-thread machine forked from the batch's
/// snapshot. Hot scheduling state (the resumable cycle counter, liveness)
/// is *not* here — it lives in [`MachineBatch`]'s packed `cycles` / live
/// lists so the lockstep driver never pulls a cold lane's cache lines in
/// just to decide whether to step it.
#[derive(Debug)]
struct Lane {
    /// Index into the batch's shared `programs` / `decoded` tables.
    prog: usize,
    hier: Hierarchy,
    mem: DataMemory,
    predictor: Box<dyn Predictor>,
    ctx: ThreadCtx,
    shared: Shared,
    /// Hierarchy stats at fork time (the lane's `mem_stats` baseline).
    stats_before: HierarchyStats,
}

impl Lane {
    /// Approximate host bytes this lane's private state occupies beyond
    /// the shared snapshot `base`: materialised COW cache chunks, sparse
    /// data-memory entries (hash-map entry ≈ key + value + bucket
    /// overhead) and the fixed scheduling structures.
    fn private_bytes_vs(&self, base: &Hierarchy) -> usize {
        self.hier.private_bytes_vs(base) + self.mem.len() * 48 + LANE_CTX_BYTES
    }
}

/// A structure-of-arrays batch of independent single-thread machines
/// stepped in lockstep.
///
/// Push one program per lane ([`MachineBatch::push`]; lanes running equal
/// programs share one decoded µop table), then [`MachineBatch::run`] to
/// step every lane to completion and collect one [`RunResult`] per lane
/// in push order. The batch is reusable: after `run` the lanes are
/// cleared but their scheduling-structure allocations are pooled for the
/// next round of pushes.
///
/// This is the engine behind [`Backend::Batched`](crate::Backend); see
/// the [module docs](self) for the layout and the cycle-exactness
/// argument.
#[derive(Debug)]
pub struct MachineBatch {
    snap: Snapshot,
    /// Distinct programs pushed so far, in first-push order.
    programs: Vec<Program>,
    /// Shared decoded µop table, parallel to `programs`.
    decoded: Vec<Vec<DecodedInstr>>,
    /// Program index (and optional per-lane fork source) per pushed lane.
    /// Lane state itself materialises *lazily*, on a lane's first lockstep
    /// step: forking at push time would walk every lane's fresh state
    /// twice (once to create, again — cold by then — to step), where the
    /// per-machine baseline creates and runs each machine back to back.
    /// Deferring the fork restores that locality and keeps the batch's
    /// decode-sharing and pooling wins.
    queued: Vec<QueuedLane>,
    /// Materialised lanes, in push order; grows during the first round of
    /// [`MachineBatch::run`].
    lanes: Vec<Lane>,
    /// Packed hot state, parallel to `lanes`: each lane's resumable cycle
    /// counter (`Pipeline::cycle` between slices). The lockstep driver
    /// reads/writes only this array and the live-index list per round.
    cycles: Vec<u64>,
    /// Retired lane contexts: ROB ring / heap / wheel allocations recycled
    /// by later pushes.
    spare: Vec<ThreadCtx>,
}

impl MachineBatch {
    /// A batch whose lanes fork from `snap`.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        MachineBatch {
            snap: snap.clone(),
            programs: Vec::new(),
            decoded: Vec::new(),
            queued: Vec::new(),
            lanes: Vec::new(),
            cycles: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// A batch whose lanes fork from a cold machine (the batch equivalent
    /// of running each program on a fresh [`Cpu`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or is not single-thread.
    pub fn cold(cfg: CpuConfig, hier_cfg: HierarchyConfig) -> Self {
        Self::from_snapshot(&Snapshot::cold(cfg, hier_cfg))
    }

    /// The snapshot this batch forks lanes from.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// Number of lanes queued for the next [`MachineBatch::run`].
    pub fn lanes(&self) -> usize {
        self.queued.len()
    }

    /// Whether no lanes are queued.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }

    /// Add a lane that runs `prog` from a fork of the batch snapshot.
    /// Programs equal to an already-pushed one share its decoded µop
    /// table. The fork itself is deferred to the lane's first step inside
    /// [`MachineBatch::run`].
    pub fn push(&mut self, prog: &Program) {
        let idx = self.intern(prog);
        self.queued.push(QueuedLane {
            prog: idx,
            src: None,
        });
    }

    /// Add a lane that runs `prog` from a fork of `src` instead of the
    /// batch snapshot: the heterogeneous-state form of
    /// [`MachineBatch::push`], for sweeps whose trial points each prepare
    /// a *different* machine (distinct cache layouts, jitter seeds,
    /// planted secrets) but still want shared decode tables, pooled lane
    /// allocations and one lockstep driver. Decode sharing is unchanged —
    /// equal programs share one µop table regardless of fork source.
    ///
    /// # Panics
    ///
    /// Panics if `src` was captured under a different [`CpuConfig`] than
    /// the batch snapshot: the lockstep driver steps every lane with the
    /// batch's config. (Hierarchy configs may differ freely — each lane
    /// forks its own source's caches and memory.)
    pub fn push_from(&mut self, src: &Snapshot, prog: &Program) {
        assert_eq!(
            src.config(),
            self.snap.config(),
            "push_from lane snapshot must share the batch CpuConfig"
        );
        let idx = self.intern(prog);
        self.queued.push(QueuedLane {
            prog: idx,
            src: Some(src.clone()),
        });
    }

    /// Index of `prog` in the shared decode tables, decoding on first use.
    fn intern(&mut self, prog: &Program) -> usize {
        match self.programs.iter().position(|p| p == prog) {
            Some(i) => i,
            None => {
                let mut dec = Vec::new();
                DecodedProgram::decode_into(prog, &mut dec);
                self.programs.push(prog.clone());
                self.decoded.push(dec);
                self.programs.len() - 1
            }
        }
    }

    /// Aggregate measured private footprint of the lanes in `live`
    /// (COW-materialised cache chunks + data memory + fixed structures) —
    /// the input to [`schedule_slice`]. Each lane is measured against the
    /// snapshot it actually forked, so `push_from` lanes don't count their
    /// source's whole image as private.
    fn live_private_bytes(&self, live: &[u32]) -> usize {
        live.iter()
            .map(|&i| {
                let i = i as usize;
                let base = match &self.queued[i].src {
                    Some(src) => &src.inner.hier,
                    None => &self.snap.inner.hier,
                };
                self.lanes[i].private_bytes_vs(base)
            })
            .sum()
    }

    /// Step every queued lane to completion in lockstep (round-robin over
    /// the live-lane list, slices from [`schedule_slice`]) and return one
    /// [`RunResult`] per lane, in push order. Clears the lanes; the batch
    /// can be refilled and run again, reusing the retired lanes'
    /// allocations.
    pub fn run(&mut self) -> Vec<RunResult> {
        let cfg = self.snap.inner.cfg;
        let st = &self.snap.inner;
        let n = self.queued.len();
        let mut live: Vec<u32> = (0..n as u32).collect();
        // First-round slice from the fork-time footprint (shared COW
        // chunks are free; data memory and fixed structures are not).
        let fork_bytes = st.mem.len() * 48 + LANE_CTX_BYTES;
        let mut slice = schedule_slice(n, n * fork_bytes);
        let mut round: u64 = 0;
        self.lanes.reserve(n);
        self.cycles.reserve(n);
        while !live.is_empty() {
            // Re-measure footprints (lanes materialise COW chunks as they
            // run) on power-of-two round numbers: O(log rounds) scans of
            // the Arc-sharing maps instead of one per round.
            round += 1;
            if round.is_power_of_two() && round > 1 {
                slice = schedule_slice(live.len(), self.live_private_bytes(&live));
            }
            let (lanes, cycles) = (&mut self.lanes, &mut self.cycles);
            let (programs, decoded) = (&self.programs, &self.decoded);
            let (queued, spare) = (&self.queued, &mut self.spare);
            live.retain(|&i| {
                let i = i as usize;
                if i == lanes.len() {
                    // First visit (round 1 reaches lanes in push order):
                    // fork the lane now, step it immediately while its
                    // state is hot — the create-then-run locality the
                    // per-machine baseline gets for free.
                    let mut ctx = spare.pop().unwrap_or_default();
                    ctx.reset(st.cfg.rob_size);
                    // COW fork: chunk-pointer copies of the source
                    // hierarchy — the lane materialises private chunks
                    // only where it writes. `push_from` lanes fork their
                    // own source snapshot instead of the batch's.
                    let src: &SnapshotState = match &queued[i].src {
                        Some(s) => &s.inner,
                        None => st,
                    };
                    let hier = src.hier.clone();
                    lanes.push(Lane {
                        prog: queued[i].prog,
                        stats_before: hier.stats(),
                        hier,
                        mem: src.mem.clone(),
                        predictor: src.predictor.clone_box(),
                        ctx,
                        shared: Shared::new(st.cfg.div_ports, 1),
                    });
                    cycles.push(0);
                }
                let lane = &mut lanes[i];
                let (cycle, done) = core::step_lane(
                    &cfg,
                    &mut lane.hier,
                    &mut lane.mem,
                    lane.predictor.as_mut(),
                    &programs[lane.prog],
                    &decoded[lane.prog],
                    &mut lane.ctx,
                    &mut lane.shared,
                    cycles[i],
                    slice,
                );
                cycles[i] = cycle;
                !done
            });
        }
        self.queued.clear();
        let lanes = std::mem::take(&mut self.lanes);
        self.cycles.clear();
        let mut results = Vec::with_capacity(lanes.len());
        for mut lane in lanes {
            let mem_stats = core::mem_stats_since(&lane.hier, &lane.stats_before);
            results.push(lane.ctx.take_result(mem_stats));
            self.spare.push(lane.ctx);
        }
        results
    }
}

/// Hit/miss counters for a [`SnapshotCache`], read via
/// [`SnapshotCache::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotCacheCounters {
    /// Lookups answered by an existing entry.
    pub hits: u64,
    /// Lookups that had to build (and warm) a machine.
    pub misses: u64,
}

/// One cached warm snapshot: the exact key it was built from plus its
/// fingerprint (a fast pre-filter — equality is always confirmed on the
/// full key, so fingerprint collisions cost a comparison, never
/// correctness).
#[derive(Debug)]
struct CacheEntry {
    fingerprint: u64,
    cfg: CpuConfig,
    hier_cfg: HierarchyConfig,
    warmup: Option<(Program, usize)>,
    snap: Snapshot,
    /// Logical access time for LRU eviction.
    stamp: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: Vec<CacheEntry>,
    clock: u64,
}

/// A process-wide cache of warm [`Snapshot`]s, keyed by *(core config,
/// hierarchy config, warmup program × run count)*.
///
/// Scenarios stamp out hundreds of machines that share a [`CpuConfig`]
/// and a [`HierarchyConfig`]; each construction re-allocates the cache
/// hierarchy and (for warmed sweeps) re-runs the warmup program. The
/// cache builds each distinct configuration **once per process** and
/// hands every later request an O(1) [`Snapshot`] clone whose forks are
/// bit-identical to a freshly constructed (and identically warmed)
/// machine — the byte-identity argument the batch-first experiment
/// pipeline rests on.
///
/// Keying is exact: a lookup matches only when the configs and the warmup
/// program compare equal (`Eq`), with an FNV-64 fingerprint of the key as
/// a cheap pre-filter. Distinct configurations therefore *never* share an
/// entry, no matter how similar. The cache is bounded ([`Self::new`]'s
/// `cap`) with least-recently-used eviction, and exposes hit/miss
/// counters. Misses build the machine while holding the cache lock, so
/// concurrent [`batch::par_map`](crate::batch::par_map) workers racing
/// for one key block briefly and then all hit the single built entry —
/// "warm exactly once per process" holds under parallelism too.
///
/// [`SnapshotCache::global`] is the shared instance the experiment
/// pipeline uses; independent instances can be built for tests.
#[derive(Debug)]
pub struct SnapshotCache {
    cap: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SnapshotCache {
    /// An empty cache holding at most `cap` snapshots (LRU-evicted).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "snapshot cache capacity must be non-zero");
        SnapshotCache {
            cap,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide cache instance. Sized generously (64 entries):
    /// the whole scenario suite uses about a dozen distinct
    /// configurations, so in practice nothing is ever evicted.
    pub fn global() -> &'static SnapshotCache {
        static GLOBAL: OnceLock<SnapshotCache> = OnceLock::new();
        GLOBAL.get_or_init(|| SnapshotCache::new(64))
    }

    /// A snapshot of a cold machine under `(cfg, hier_cfg)` — cached
    /// [`Snapshot::cold`]. Forks are bit-identical to
    /// `Cpu::new(cfg, hier_cfg)`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or is not single-thread.
    pub fn cold(&self, cfg: CpuConfig, hier_cfg: HierarchyConfig) -> Snapshot {
        self.warmed(cfg, hier_cfg, None)
    }

    /// A snapshot of a machine under `(cfg, hier_cfg)` warmed by running
    /// `warmup`'s program the given number of times on the event-driven
    /// backend (`None` ⇒ cold). Forks are bit-identical to constructing
    /// and warming a fresh machine the same way.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or is not single-thread.
    pub fn warmed(
        &self,
        cfg: CpuConfig,
        hier_cfg: HierarchyConfig,
        warmup: Option<(&Program, usize)>,
    ) -> Snapshot {
        let fp = fingerprint(&cfg, &hier_cfg, warmup);
        let mut inner = self.inner.lock().expect("snapshot cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(entry) = inner.entries.iter_mut().find(|e| {
            e.fingerprint == fp
                && e.cfg == cfg
                && e.hier_cfg == hier_cfg
                && e.warmup.as_ref().map(|(p, runs)| (p, *runs)) == warmup
        }) {
            entry.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.snap.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build under the lock: racing callers for the same key block
        // here and then hit, so each configuration warms exactly once.
        let mut cpu = Cpu::new(cfg, hier_cfg);
        if let Some((prog, runs)) = warmup {
            for _ in 0..runs {
                cpu.run_one(prog, Backend::EventDriven);
            }
        }
        let snap = cpu.snapshot();
        if inner.entries.len() >= self.cap {
            let lru = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("cap > 0 ⇒ non-empty at eviction");
            inner.entries.swap_remove(lru);
        }
        inner.entries.push(CacheEntry {
            fingerprint: fp,
            cfg,
            hier_cfg,
            warmup: warmup.map(|(p, runs)| (p.clone(), runs)),
            snap: snap.clone(),
            stamp,
        });
        snap
    }

    /// Hit/miss counters since construction.
    pub fn counters(&self) -> SnapshotCacheCounters {
        SnapshotCacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("snapshot cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached snapshot (counters are kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("snapshot cache poisoned")
            .entries
            .clear();
    }
}

/// FNV-1a over the `Debug` rendering of the cache key — stable within a
/// process (all the cache needs), allocation-free via `fmt::Write`.
fn fingerprint(
    cfg: &CpuConfig,
    hier_cfg: &HierarchyConfig,
    warmup: Option<(&Program, usize)>,
) -> u64 {
    use std::fmt::Write as _;
    struct Fnv(u64);
    impl std::fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for &b in s.as_bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    let _ = write!(h, "{cfg:?}|{hier_cfg:?}|{warmup:?}");
    h.0
}
