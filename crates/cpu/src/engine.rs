//! The batched lockstep simulation engine: many single-thread machines,
//! one driver loop.
//!
//! Sweeps are the repo's dominant workload shape: run N program *variants*
//! (target lengths, repeat counts, magnifier settings) on machines that
//! share a [`CpuConfig`] and usually a warmed-up starting state. Spawning
//! one fresh [`Cpu`] per variant pays the warmup run and the scheduling-
//! structure allocation N times; [`MachineBatch`] pays them once:
//!
//! * **Snapshots** ([`Snapshot`]): one deep capture of a machine's
//!   persistent state — caches (replacement state included), data memory,
//!   trained branch predictor — behind an [`Arc`], shared copy-on-fork
//!   across lanes and across host threads
//!   ([`batch::par_map`](crate::batch::par_map) workers can all fork from
//!   the same snapshot). A sweep warms one machine, snapshots it, and
//!   forks it per point instead of re-running warmup per point.
//! * **Shared µop tables**: each *distinct* program pushed into a batch is
//!   decoded once ([`DecodedProgram`]); every lane running that program
//!   indexes the same table. A countermeasure or repeat-count sweep that
//!   pushes the same gadget N times decodes it once.
//! * **Structure-of-arrays lanes**: per-lane state (ROB ring, RAT, ready
//!   heaps, stall pool, cache hierarchy, store queue) lives contiguously
//!   in the batch's lane vector, stepped in lockstep slices of
//!   [`SLICE`] cycles per round — and lane [`ThreadCtx`] allocations are
//!   recycled across [`MachineBatch::run`] rounds, so a long-running
//!   sweep driver stops touching the allocator entirely.
//!
//! # Cycle exactness
//!
//! Lanes are *independent machines*: they share no simulated state, only
//! host-side tables and allocations. Each lane is driven by
//! [`core::step_lane`], which executes the **same** cycle-loop body
//! `Cpu::run` uses for a single thread — there is exactly one copy of the
//! cycle semantics, so a lane stepped in lockstep slices is bit-identical
//! (cycles, committed state, timer readings, cache stats) to forking a
//! whole machine and running it to completion, in any lane order. The
//! differential suites pin this against both retained schedulers.
//!
//! ```
//! use racer_cpu::{Backend, Cpu, CpuConfig, MachineBatch};
//! use racer_isa::Asm;
//! use racer_mem::HierarchyConfig;
//!
//! let mut asm = Asm::new();
//! let r = asm.reg();
//! asm.mov_imm(r, 21);
//! asm.add(r, r, r);
//! asm.halt();
//! let prog = asm.assemble()?;
//!
//! // Warm a machine, snapshot it, fork the snapshot into a batch.
//! let mut cpu = Cpu::new(CpuConfig::default(), HierarchyConfig::coffee_lake());
//! cpu.run_one(&prog, Backend::EventDriven); // warmup
//! let mut batch = MachineBatch::from_snapshot(&cpu.snapshot());
//! for _ in 0..8 {
//!     batch.push(&prog);
//! }
//! let results = batch.run();
//! assert_eq!(results.len(), 8);
//! // Every lane forked the same warmed state: identical results.
//! assert!(results.iter().all(|r| r.cycles == results[0].cycles));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::config::CpuConfig;
use crate::core::{self, Cpu, Shared, ThreadCtx};
use crate::predictor::Predictor;
use crate::stats::RunResult;
use racer_isa::{DataMemory, DecodedInstr, DecodedProgram, Program};
use racer_mem::{Hierarchy, HierarchyConfig, HierarchyStats};
use std::sync::Arc;

/// Cycles each live lane advances per lockstep round. Large enough to
/// amortise the per-lane switch (cache-warm scheduling structures), small
/// enough that lanes stay interleaved rather than running serially.
/// Correctness does not depend on the value: lanes share no simulated
/// state.
const SLICE: u64 = 64;

/// An immutable capture of a machine's persistent state — config, cache
/// hierarchy (replacement and stats state included), data memory and
/// trained branch predictor — shared behind an [`Arc`].
///
/// Cloning a `Snapshot` is O(1); [`Snapshot::fork`] stamps out a fresh
/// independent [`Cpu`] whose first run behaves exactly as the captured
/// machine's next run would have. `Snapshot` is `Send + Sync`, so one
/// warmed snapshot can seed forks on every
/// [`batch::par_map`](crate::batch::par_map) worker at once.
#[derive(Clone, Debug)]
pub struct Snapshot {
    inner: Arc<SnapshotState>,
}

#[derive(Debug)]
struct SnapshotState {
    cfg: CpuConfig,
    hier: Hierarchy,
    mem: DataMemory,
    predictor: Box<dyn Predictor>,
}

impl Snapshot {
    /// Capture `cpu`'s persistent state. One deep copy; subsequent clones
    /// and forks share it.
    ///
    /// # Panics
    ///
    /// Panics unless `cpu` is a single-thread config (forked lanes are
    /// single-thread machines).
    pub(crate) fn capture(cpu: &Cpu) -> Self {
        assert_eq!(
            cpu.cfg.threads, 1,
            "snapshots capture single-thread machines"
        );
        Snapshot {
            inner: Arc::new(SnapshotState {
                cfg: cpu.cfg,
                hier: cpu.hier.clone(),
                mem: cpu.mem.clone(),
                predictor: cpu.predictors[0].clone_box(),
            }),
        }
    }

    /// A snapshot of a *cold* machine: fresh caches, empty memory,
    /// untrained predictor. The batch equivalent of [`Cpu::new`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or is not single-thread.
    pub fn cold(cfg: CpuConfig, hier_cfg: HierarchyConfig) -> Self {
        Self::capture(&Cpu::new(cfg, hier_cfg))
    }

    /// The captured core configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.inner.cfg
    }

    /// Stamp out an independent machine starting from the captured state.
    /// The fork owns its own copies: nothing it does is visible to the
    /// snapshot or to sibling forks.
    pub fn fork(&self) -> Cpu {
        Cpu {
            cfg: self.inner.cfg,
            hier: self.inner.hier.clone(),
            mem: self.inner.mem.clone(),
            predictors: vec![self.inner.predictor.clone_box()],
            ctxs: vec![ThreadCtx::default()],
            decoded: vec![Vec::new()],
        }
    }
}

/// One lane: an independent single-thread machine forked from the batch's
/// snapshot, plus its resumable cycle position.
#[derive(Debug)]
struct Lane {
    /// Index into the batch's shared `programs` / `decoded` tables.
    prog: usize,
    hier: Hierarchy,
    mem: DataMemory,
    predictor: Box<dyn Predictor>,
    ctx: ThreadCtx,
    shared: Shared,
    /// Hierarchy stats at fork time (the lane's `mem_stats` baseline).
    stats_before: HierarchyStats,
    /// Resumable cycle counter (`Pipeline::cycle` between slices).
    cycle: u64,
    done: bool,
}

/// A structure-of-arrays batch of independent single-thread machines
/// stepped in lockstep.
///
/// Push one program per lane ([`MachineBatch::push`]; lanes running equal
/// programs share one decoded µop table), then [`MachineBatch::run`] to
/// step every lane to completion and collect one [`RunResult`] per lane
/// in push order. The batch is reusable: after `run` the lanes are
/// cleared but their scheduling-structure allocations are pooled for the
/// next round of pushes.
///
/// This is the engine behind [`Backend::Batched`](crate::Backend); see
/// the [module docs](self) for the layout and the cycle-exactness
/// argument.
#[derive(Debug)]
pub struct MachineBatch {
    snap: Snapshot,
    /// Distinct programs pushed so far, in first-push order.
    programs: Vec<Program>,
    /// Shared decoded µop table, parallel to `programs`.
    decoded: Vec<Vec<DecodedInstr>>,
    lanes: Vec<Lane>,
    /// Retired lane contexts: ROB ring / heap / wheel allocations recycled
    /// by later pushes.
    spare: Vec<ThreadCtx>,
}

impl MachineBatch {
    /// A batch whose lanes fork from `snap`.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        MachineBatch {
            snap: snap.clone(),
            programs: Vec::new(),
            decoded: Vec::new(),
            lanes: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// A batch whose lanes fork from a cold machine (the batch equivalent
    /// of running each program on a fresh [`Cpu`]).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or is not single-thread.
    pub fn cold(cfg: CpuConfig, hier_cfg: HierarchyConfig) -> Self {
        Self::from_snapshot(&Snapshot::cold(cfg, hier_cfg))
    }

    /// The snapshot this batch forks lanes from.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// Number of lanes queued for the next [`MachineBatch::run`].
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Whether no lanes are queued.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Add a lane that runs `prog` from a fork of the batch snapshot.
    /// Programs equal to an already-pushed one share its decoded µop
    /// table.
    pub fn push(&mut self, prog: &Program) {
        let idx = match self.programs.iter().position(|p| p == prog) {
            Some(i) => i,
            None => {
                let mut dec = Vec::new();
                DecodedProgram::decode_into(prog, &mut dec);
                self.programs.push(prog.clone());
                self.decoded.push(dec);
                self.programs.len() - 1
            }
        };
        let st = &self.snap.inner;
        let mut ctx = self.spare.pop().unwrap_or_default();
        ctx.reset(st.cfg.rob_size);
        let hier = st.hier.clone();
        self.lanes.push(Lane {
            prog: idx,
            stats_before: hier.stats(),
            hier,
            mem: st.mem.clone(),
            predictor: st.predictor.clone_box(),
            ctx,
            shared: Shared::new(st.cfg.div_ports, 1),
            cycle: 0,
            done: false,
        });
    }

    /// Step every queued lane to completion in lockstep ([`SLICE`]-cycle
    /// slices, round-robin over live lanes) and return one [`RunResult`]
    /// per lane, in push order. Clears the lanes; the batch can be
    /// refilled and run again, reusing the retired lanes' allocations.
    pub fn run(&mut self) -> Vec<RunResult> {
        let cfg = self.snap.inner.cfg;
        loop {
            let mut live = false;
            for lane in &mut self.lanes {
                if lane.done {
                    continue;
                }
                live = true;
                let (cycle, done) = core::step_lane(
                    &cfg,
                    &mut lane.hier,
                    &mut lane.mem,
                    lane.predictor.as_mut(),
                    &self.programs[lane.prog],
                    &self.decoded[lane.prog],
                    &mut lane.ctx,
                    &mut lane.shared,
                    lane.cycle,
                    SLICE,
                );
                lane.cycle = cycle;
                lane.done = done;
            }
            if !live {
                break;
            }
        }
        let lanes = std::mem::take(&mut self.lanes);
        let mut results = Vec::with_capacity(lanes.len());
        for mut lane in lanes {
            let mem_stats = core::mem_stats_since(&lane.hier, &lane.stats_before);
            results.push(lane.ctx.take_result(mem_stats));
            self.spare.push(lane.ctx);
        }
        results
    }
}
