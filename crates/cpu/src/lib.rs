//! # racer-cpu — cycle-level out-of-order core for Hacky Racers
//!
//! This crate is the substitute for the paper's physical evaluation machines
//! (Intel i7-8750H / AMD Ryzen 5900HX): a dynamically scheduled core with a
//! reorder buffer, register renaming, a unified scheduler, per-class
//! functional-unit ports (including the non-fully-pipelined divider the §6.4
//! magnifier leans on), a trainable branch predictor, and misspeculation
//! recovery that — like real hardware — leaves speculative cache fills in
//! place.
//!
//! The architectural contract is simple: for every program, committed
//! results equal the in-order reference interpreter in
//! [`racer_isa::interp`]. Speculation and out-of-order issue may only change
//! *timing* and *microarchitectural state*. The Hacky Racers attack surface
//! lives entirely in that gap.
//!
//! ## Countermeasures
//!
//! [`Countermeasure`] models the §8 defence landscape: in-order issue,
//! delay-on-miss, invisible speculation and GhostMinion-style strictness
//! ordering, so the paper's claims about which gadgets survive which
//! defences become testable.
//!
//! ## SMT
//!
//! The core is multi-context: [`CpuConfig::threads`] hardware threads
//! each own a private front end, ROB and rename state, while issue
//! bandwidth, functional-unit ports, divider units, MSHRs and the cache
//! hierarchy are shared, arbitrated per cycle by an [`SmtPolicy`]
//! (round-robin or ICOUNT). [`Cpu::run`] co-schedules one program
//! per thread — the substrate for the paper's §9 "other shared resources"
//! observation that racing-gadget timers read *any* contended shared
//! resource, SMT port contention included. [`workloads`] provides
//! port-pressure contender kernels, and the `smt_contention_eval` lab
//! scenario measures timer resolution against them.
//!
//! ## Execution backends and throughput
//!
//! Every run goes through one entry point — [`Cpu::run`] (or the
//! single-program [`Cpu::run_one`]) — parameterised by a [`Backend`]:
//! the event-driven production scheduler ([`core`], allocation-free in
//! steady state), the retained scan-based golden model in
//! [`mod@reference`], or the lockstep multi-machine batch engine in
//! [`engine`] ([`MachineBatch`], fed by copy-on-fork [`Snapshot`]s). All
//! three are cycle-exact against each other, pinned by the differential
//! suites. [`RecordLevel`] controls how much event data a run records,
//! and [`batch::par_map`] fans independent simulations out across host
//! cores. `BENCH_pipeline.json` at the repo root records measured
//! throughput for the schedulers and the batch engine.
//!
//! ## Quickstart
//!
//! ```
//! use racer_cpu::{Backend, Cpu, CpuConfig};
//! use racer_isa::{Asm, MemOperand};
//! use racer_mem::HierarchyConfig;
//!
//! let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
//! cpu.mem_mut().write(0x1000, 7);
//!
//! let mut asm = Asm::new();
//! let r = asm.reg();
//! asm.load(r, MemOperand::abs(0x1000));
//! asm.halt();
//! let prog = asm.assemble()?;
//!
//! let cold = cpu.run_one(&prog, Backend::EventDriven);
//! let warm = cpu.run_one(&prog, Backend::EventDriven);
//! assert_eq!(cold.regs[r.index()], 7);
//! assert!(warm.cycles < cold.cycles, "second run hits the warm cache");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod config;
pub mod core;
pub mod engine;
pub mod predictor;
pub mod reference;
pub mod stats;
pub mod trace;
pub mod workloads;

pub use config::{
    Backend, Countermeasure, CpuConfig, Latencies, PredictorKind, RecordLevel, SmtPolicy,
};
pub use core::Cpu;
pub use engine::{MachineBatch, Snapshot, SnapshotCache, SnapshotCacheCounters};
pub use stats::{LoadEvent, RunResult};
pub use trace::{render_pipeline, TraceRecord};
