//! Branch predictors.
//!
//! The transient presence/absence racing gadget (paper §5.1) relies on a
//! *trainable* predictor: the attacker first executes the gadget with inputs
//! that make the branch resolve one way, then flips the input so the
//! (now-mistrained) predictor speculatively executes the wrong path. The
//! [`TwoBit`] predictor reproduces that behaviour; the static predictors
//! exist for controlled experiments.

use crate::config::PredictorKind;

/// A direction predictor for conditional branches.
///
/// Predictor state persists across [`Cpu::run`](crate::Cpu::run) calls —
/// training in one run carries into the next, exactly like real hardware
/// observed by a JavaScript attacker re-invoking a function.
pub trait Predictor: std::fmt::Debug + Send + Sync {
    /// Predict the direction of the branch at `pc`.
    fn predict(&self, pc: usize) -> bool;
    /// Record the resolved direction of the branch at `pc`.
    fn train(&mut self, pc: usize, taken: bool);
    /// Forget all history.
    fn reset(&mut self);
    /// Clone this predictor, trained state included, behind a fresh box.
    /// Snapshot forking ([`Snapshot::fork`](crate::Snapshot::fork)) uses
    /// this to give every lane an independent copy of the warmed predictor.
    fn clone_box(&self) -> Box<dyn Predictor>;
}

impl Clone for Box<dyn Predictor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Build the predictor selected by `kind`.
pub fn build(kind: PredictorKind) -> Box<dyn Predictor> {
    match kind {
        PredictorKind::TwoBit { entries } => Box::new(TwoBit::new(entries)),
        PredictorKind::AlwaysTaken => Box::new(Static { taken: true }),
        PredictorKind::AlwaysNotTaken => Box::new(Static { taken: false }),
    }
}

/// Classic 2-bit saturating-counter bimodal predictor indexed by PC.
///
/// Counters: 0,1 → predict not-taken; 2,3 → predict taken. Initialised to 1
/// (weakly not-taken).
///
/// ```
/// use racer_cpu::predictor::{Predictor, TwoBit};
/// let mut p = TwoBit::new(64);
/// p.train(5, true);
/// p.train(5, true);
/// assert!(p.predict(5));
/// p.train(5, false);
/// assert!(p.predict(5), "one contrary outcome does not flip a saturated counter");
/// p.train(5, false);
/// assert!(!p.predict(5));
/// ```
#[derive(Clone, Debug)]
pub struct TwoBit {
    table: Vec<u8>,
    mask: usize,
}

impl TwoBit {
    /// Create a table of `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor table size must be a power of two"
        );
        TwoBit {
            table: vec![1; entries],
            mask: entries - 1,
        }
    }

    fn idx(&self, pc: usize) -> usize {
        pc & self.mask
    }
}

impl Predictor for TwoBit {
    fn predict(&self, pc: usize) -> bool {
        self.table[self.idx(pc)] >= 2
    }

    fn train(&mut self, pc: usize, taken: bool) {
        let i = self.idx(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn reset(&mut self) {
        self.table.iter_mut().for_each(|c| *c = 1);
    }

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(self.clone())
    }
}

/// Statically predicts one direction, ignoring history.
#[derive(Copy, Clone, Debug)]
pub struct Static {
    taken: bool,
}

impl Predictor for Static {
    fn predict(&self, _pc: usize) -> bool {
        self.taken
    }

    fn train(&mut self, _pc: usize, _taken: bool) {}

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn Predictor> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_saturates_both_ways() {
        let mut p = TwoBit::new(16);
        for _ in 0..10 {
            p.train(3, true);
        }
        assert!(p.predict(3));
        p.train(3, false);
        assert!(p.predict(3), "3→2 still predicts taken");
        p.train(3, false);
        assert!(!p.predict(3), "2→1 flips to not-taken");
        for _ in 0..10 {
            p.train(3, false);
        }
        p.train(3, true);
        assert!(!p.predict(3), "0→1 still predicts not-taken");
    }

    #[test]
    fn pcs_alias_by_mask() {
        let mut p = TwoBit::new(8);
        p.train(1, true);
        p.train(1, true);
        assert!(p.predict(9), "pc 9 aliases pc 1 in an 8-entry table");
        assert!(!p.predict(2));
    }

    #[test]
    fn initial_prediction_is_not_taken() {
        let p = TwoBit::new(8);
        for pc in 0..8 {
            assert!(!p.predict(pc));
        }
    }

    #[test]
    fn reset_forgets_training() {
        let mut p = TwoBit::new(8);
        p.train(0, true);
        p.train(0, true);
        p.reset();
        assert!(!p.predict(0));
    }

    #[test]
    fn static_predictors() {
        let t = build(PredictorKind::AlwaysTaken);
        let nt = build(PredictorKind::AlwaysNotTaken);
        assert!(t.predict(123));
        assert!(!nt.predict(123));
    }

    #[test]
    fn factory_builds_two_bit() {
        let mut p = build(PredictorKind::TwoBit { entries: 32 });
        p.train(4, true);
        p.train(4, true);
        assert!(p.predict(4));
    }
}
