//! The original scan-based pipeline scheduler, kept as a **golden model**.
//!
//! [`crate::core`] reimplements scheduling event-driven (tag-broadcast
//! wakeup, ring-buffer ROB, no steady-state allocation) for throughput;
//! this module preserves the straightforward O(ROB)-scans-per-cycle
//! implementation it must match **cycle-exactly**. The differential test
//! suite (`crates/cpu/tests/differential.rs`, `crates/cpu/tests/smt.rs`)
//! runs randomized programs — and randomized SMT co-schedules — through
//! both and asserts identical [`RunResult`]s; the `perf_baseline` binary
//! uses this model as the speedup denominator.
//!
//! Like the event-driven core, the reference machine is multi-context:
//! per-thread state lives in [`RefThread`], structural resources (issue
//! bandwidth, FU ports, divider units, MSHRs, the cache hierarchy) are
//! shared, and the same [`SmtPolicy`](crate::config::SmtPolicy)
//! implementation orders the per-cycle issue claims — so an SMT
//! co-schedule is cross-checked end to end, arbitration included.
//!
//! Algorithmic cost (the reason it was replaced): every cycle scans the
//! whole ROB at issue, refreshes sources with per-tag binary searches,
//! re-walks the ROB for speculation/disambiguation checks per load, and
//! commits with a full-ROB tag broadcast; every dispatch allocates a source
//! vector and every branch clones the whole RAT into a `HashMap`.

use crate::config::{Countermeasure, CpuConfig};
use crate::predictor::Predictor;
use crate::stats::{LoadEvent, RunResult};
use racer_isa::{
    AluOp, DataMemory, DecodedProgram, FuClass, Instr, MemOperand, Program, Reg, NUM_REGS,
};
use racer_mem::{AccessKind, Addr, Hierarchy, HitLevel};
use std::collections::{HashMap, VecDeque};

/// Dynamic-instruction sequence number (per hardware thread).
type Seq = u64;

#[derive(Copy, Clone, Debug, Eq, PartialEq)]
enum EntryState {
    /// Dispatched, waiting for sources / a port.
    Waiting,
    /// Executing on a functional unit.
    Issued,
    /// Result available.
    Done,
}

#[derive(Copy, Clone, Debug)]
enum Src {
    Ready(u64),
    Tag(Seq),
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: Seq,
    pc: usize,
    instr: Instr,
    state: EntryState,
    srcs: Vec<(Reg, Src)>,
    result: u64,
    completion: u64,
    predicted_taken: bool,
    /// Effective address for memory ops, resolved at issue.
    mem_addr: Option<u64>,
    /// Cache fill deferred to commit (invisible-speculation modes).
    deferred_fill: bool,
    /// Index into the run's load-event vector, if recorded.
    load_event: Option<usize>,
    /// Index into the run's trace vector, if recorded.
    trace_idx: Option<usize>,
}

#[derive(Clone, Debug)]
struct FetchedInstr {
    pc: usize,
    instr: Instr,
    predicted_taken: bool,
    ready_cycle: u64,
}

/// Per-cycle shared functional-unit port budget (across all threads).
#[derive(Default)]
struct Ports {
    alu: usize,
    mul: usize,
    div: usize,
    load: usize,
    store: usize,
    branch: usize,
}

/// One hardware thread of the reference machine: ROB, rename state,
/// front end and per-run counters — the scan-based mirror of the
/// event-driven core's `ThreadCtx`.
struct RefThread {
    rob: VecDeque<RobEntry>,
    fetch_q: VecDeque<FetchedInstr>,
    arch_regs: Vec<u64>,
    rat: Vec<Option<Seq>>,
    checkpoints: HashMap<Seq, Vec<Option<Seq>>>,
    next_seq: Seq,

    fetch_pc: usize,
    fetch_stopped: bool,
    fence_active: Option<Seq>,
    draining: bool,
    done: bool,
    end_cycle: u64,
    limit_hit: bool,

    // Results under construction.
    committed: u64,
    mispredicts: u64,
    squashed: u64,
    interrupts: u64,
    halted: bool,
    loads: Vec<LoadEvent>,
    trace: Vec<crate::trace::TraceRecord>,
}

impl RefThread {
    fn new(rob_capacity: usize) -> Self {
        RefThread {
            rob: VecDeque::with_capacity(rob_capacity),
            fetch_q: VecDeque::new(),
            arch_regs: vec![0; NUM_REGS],
            rat: vec![None; NUM_REGS],
            checkpoints: HashMap::new(),
            next_seq: 0,
            fetch_pc: 0,
            fetch_stopped: false,
            fence_active: None,
            draining: false,
            done: false,
            end_cycle: 0,
            limit_hit: false,
            committed: 0,
            mispredicts: 0,
            squashed: 0,
            interrupts: 0,
            halted: false,
            loads: Vec::new(),
            trace: Vec::new(),
        }
    }
}

/// Per-run pipeline state for the reference (scan-based) scheduler.
pub(crate) struct RefPipeline<'a> {
    cfg: CpuConfig,
    hier: &'a mut Hierarchy,
    mem: &'a mut DataMemory,
    /// One predictor per hardware thread (same partitioning as the
    /// event-driven core).
    predictors: &'a mut [Box<dyn Predictor>],
    progs: &'a [&'a Program],
    /// Pre-decoded µop tables, one per thread (rename reads source lists
    /// and destinations from them; *execution* deliberately stays on
    /// [`Instr`] so the differential suite cross-checks the decoder
    /// against the original instruction forms).
    decs: Vec<DecodedProgram>,
    threads: Vec<RefThread>,

    cycle: u64,
    /// Per-divider-unit next-free cycle (non-fully-pipelined units),
    /// shared across threads.
    div_busy_until: Vec<u64>,
    /// Outstanding L1 miss lines → data-arrival cycle (MSHR model),
    /// shared across threads.
    inflight: HashMap<u64, u64>,
}

impl<'a> RefPipeline<'a> {
    pub(crate) fn new(
        cfg: CpuConfig,
        hier: &'a mut Hierarchy,
        mem: &'a mut DataMemory,
        predictors: &'a mut [Box<dyn Predictor>],
        progs: &'a [&'a Program],
    ) -> Self {
        assert_eq!(
            predictors.len(),
            progs.len(),
            "one predictor per co-scheduled program"
        );
        RefPipeline {
            cfg,
            hier,
            mem,
            predictors,
            decs: progs.iter().map(|p| DecodedProgram::decode(p)).collect(),
            threads: progs.iter().map(|_| RefThread::new(cfg.rob_size)).collect(),
            progs,
            cycle: 0,
            div_busy_until: vec![0; cfg.div_ports],
            inflight: HashMap::new(),
        }
    }

    fn finish_thread(&mut self, tid: usize, limit_hit: bool) {
        let t = &mut self.threads[tid];
        t.done = true;
        t.end_cycle = self.cycle;
        t.limit_hit = limit_hit;
    }

    pub(crate) fn run(mut self) -> Vec<RunResult> {
        let stats_before = self.hier.stats();
        let n = self.progs.len();
        loop {
            for tid in 0..n {
                if !self.threads[tid].done {
                    self.writeback(tid);
                }
            }
            for tid in 0..n {
                if self.threads[tid].done {
                    continue;
                }
                self.commit(tid);
                if self.threads[tid].halted {
                    self.finish_thread(tid, false);
                }
            }
            // Issue: shared bandwidth/ports, arbitration-ordered — the
            // exact mirror of the event-driven driver.
            let mut ports = Ports::default();
            let mut issued = 0usize;
            if n == 1 {
                if !self.threads[0].done {
                    self.issue(0, &mut ports, &mut issued);
                }
            } else {
                let occupancy: Vec<usize> = self.threads.iter().map(|t| t.rob.len()).collect();
                for tid in self.cfg.smt_policy.order(self.cycle, &occupancy) {
                    if !self.threads[tid].done {
                        self.issue(tid, &mut ports, &mut issued);
                    }
                }
            }
            for tid in 0..n {
                if !self.threads[tid].done {
                    self.dispatch(tid);
                }
            }
            for tid in 0..n {
                if !self.threads[tid].done {
                    self.fetch(tid);
                }
            }
            for tid in 0..n {
                if !self.threads[tid].done && self.finished(tid) {
                    self.finish_thread(tid, false);
                }
            }
            if self.threads.iter().all(|t| t.done) {
                break;
            }
            self.cycle += 1;
            for tid in 0..n {
                let t = &mut self.threads[tid];
                if t.done {
                    continue;
                }
                if let Some(interval) = self.cfg.interrupt_interval {
                    if self.cycle.is_multiple_of(interval) && !t.draining {
                        t.draining = true;
                        t.interrupts += 1;
                    }
                }
                if t.draining && t.rob.is_empty() {
                    t.draining = false;
                }
            }
            if self.cycle >= self.cfg.max_run_cycles {
                for tid in 0..n {
                    if !self.threads[tid].done {
                        self.finish_thread(tid, true);
                    }
                }
                break;
            }
        }
        let mut mem_stats = self.hier.stats();
        mem_stats.l1d = mem_stats.l1d.since(&stats_before.l1d);
        mem_stats.l2 = mem_stats.l2.since(&stats_before.l2);
        mem_stats.l3 = mem_stats.l3.since(&stats_before.l3);
        mem_stats.memory_accesses -= stats_before.memory_accesses;
        mem_stats.flushes -= stats_before.flushes;
        mem_stats.prefetches -= stats_before.prefetches;
        self.threads
            .iter_mut()
            .map(|t| RunResult {
                cycles: t.end_cycle,
                committed: t.committed,
                halted: t.halted,
                limit_hit: t.limit_hit,
                mispredicts: t.mispredicts,
                squashed_instrs: t.squashed,
                interrupts: t.interrupts,
                regs: std::mem::take(&mut t.arch_regs),
                mem_stats,
                loads: std::mem::take(&mut t.loads),
                trace: std::mem::take(&mut t.trace),
            })
            .collect()
    }

    /// With ROB and fetch queue empty and fetch stopped (or the program
    /// exhausted), nothing can restart the machine: a stopped fetch either
    /// means the program fell off its end (a committed `halt` would have set
    /// `halted` instead), or a wrong-path `halt` was fetched — and the
    /// mispredicted branch that caused it must already have resolved and
    /// redirected fetch, since the ROB has drained.
    fn finished(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        t.rob.is_empty()
            && t.fetch_q.is_empty()
            && (t.fetch_stopped || t.fetch_pc >= self.progs[tid].len())
            && !t.halted
    }

    // ---- helpers -----------------------------------------------------------

    fn entry_index(&self, tid: usize, seq: Seq) -> Option<usize> {
        // Sequence numbers are strictly increasing along the ROB but not
        // contiguous (squashes leave gaps), so search rather than offset.
        self.threads[tid]
            .rob
            .binary_search_by_key(&seq, |e| e.seq)
            .ok()
    }

    fn src_value(entry: &RobEntry, reg: Reg) -> u64 {
        for (r, s) in &entry.srcs {
            if *r == reg {
                match s {
                    Src::Ready(v) => return *v,
                    Src::Tag(_) => panic!("source {reg} read before ready"),
                }
            }
        }
        panic!("register {reg} is not a source of {:?}", entry.instr)
    }

    fn operand_value(entry: &RobEntry, op: racer_isa::Operand) -> u64 {
        match op {
            racer_isa::Operand::Reg(r) => Self::src_value(entry, r),
            racer_isa::Operand::Imm(v) => v as u64,
        }
    }

    fn mem_operand_addr(entry: &RobEntry, m: &MemOperand) -> u64 {
        let base = m.base.map_or(0, |r| Self::src_value(entry, r));
        let index = m.index.map_or(0, |r| Self::src_value(entry, r));
        base.wrapping_add(index.wrapping_mul(m.scale as u64))
            .wrapping_add(m.disp as u64)
    }

    /// Resolve any tags whose producers are now done.
    fn refresh_srcs(&mut self, tid: usize, idx: usize) {
        let entry = &self.threads[tid].rob[idx];
        let mut updates: Vec<(usize, u64)> = Vec::new();
        for (i, (_, s)) in entry.srcs.iter().enumerate() {
            if let Src::Tag(seq) = s {
                if let Some(pidx) = self.entry_index(tid, *seq) {
                    let p = &self.threads[tid].rob[pidx];
                    if p.state == EntryState::Done {
                        updates.push((i, p.result));
                    }
                } else {
                    // Producer committed; its broadcast should have resolved
                    // this tag already.
                    unreachable!("dangling source tag {seq}");
                }
            }
        }
        let entry = &mut self.threads[tid].rob[idx];
        for (i, v) in updates {
            entry.srcs[i].1 = Src::Ready(v);
        }
    }

    fn srcs_ready(entry: &RobEntry) -> bool {
        entry.srcs.iter().all(|(_, s)| matches!(s, Src::Ready(_)))
    }

    /// Does an unresolved older branch exist (is `idx` speculative)?
    fn is_speculative(&self, tid: usize, idx: usize) -> bool {
        self.threads[tid]
            .rob
            .iter()
            .take(idx)
            .any(|e| matches!(e.instr, Instr::Branch { .. }) && e.state != EntryState::Done)
    }

    /// Is any divider unit free this cycle?
    fn div_unit_free(&self) -> bool {
        self.div_busy_until.iter().any(|&b| b <= self.cycle)
    }

    /// Claim a free divider unit for the reciprocal interval (caller
    /// checked [`RefPipeline::div_unit_free`]).
    fn claim_div_unit(&mut self) {
        let now = self.cycle;
        let unit = self
            .div_busy_until
            .iter()
            .position(|&b| b <= now)
            .expect("div_unit_free checked before claiming");
        self.div_busy_until[unit] = now + self.cfg.latencies.div_recip;
    }

    // ---- pipeline stages ----------------------------------------------------

    /// Completions and branch resolution.
    fn writeback(&mut self, tid: usize) {
        // Collect completions first (avoid borrowing issues), oldest first so
        // the oldest mispredicted branch wins the squash.
        let mut done: Vec<usize> = Vec::new();
        for (i, e) in self.threads[tid].rob.iter().enumerate() {
            if e.state == EntryState::Issued && e.completion <= self.cycle {
                done.push(i);
            }
        }
        for &i in &done {
            let t = &mut self.threads[tid];
            t.rob[i].state = EntryState::Done;
            if let Some(ti) = t.rob[i].trace_idx {
                t.trace[ti].completed = Some(t.rob[i].completion);
            }
        }
        // Resolve branches oldest-first; a squash may invalidate later ones.
        loop {
            let mut resolved_any = false;
            for i in 0..self.threads[tid].rob.len() {
                let e = &self.threads[tid].rob[i];
                if e.state == EntryState::Done {
                    if let Instr::Branch { .. } = e.instr {
                        if self.threads[tid].checkpoints.contains_key(&e.seq) {
                            let seq = e.seq;
                            let taken = e.result != 0;
                            let predicted = e.predicted_taken;
                            let pc = e.pc;
                            self.predictors[tid].train(pc, taken);
                            let checkpoint = self.threads[tid]
                                .checkpoints
                                .remove(&seq)
                                .expect("checkpoint present for unresolved branch");
                            if taken != predicted {
                                self.mispredict(tid, i, seq, taken, checkpoint);
                                resolved_any = true;
                                break; // rob changed; rescan
                            }
                        }
                    }
                }
            }
            if !resolved_any {
                break;
            }
        }
    }

    fn mispredict(
        &mut self,
        tid: usize,
        idx: usize,
        seq: Seq,
        taken: bool,
        checkpoint: Vec<Option<Seq>>,
    ) {
        self.threads[tid].mispredicts += 1;
        // Squash everything younger than the branch.
        while self.threads[tid].rob.len() > idx + 1 {
            let t = &mut self.threads[tid];
            let victim = t.rob.pop_back().expect("rob non-empty");
            t.checkpoints.remove(&victim.seq);
            if let Some(li) = victim.load_event {
                // Leave the event recorded; `committed` stays false.
                assert!(!t.loads[li].committed, "squashed load marked committed");
            }
            // CleanupSpec: undo the squashed load's cache fill. The *state*
            // is repaired — but any timing difference it caused has already
            // been consumed by older instructions (SpectreBack's point).
            if self.cfg.countermeasure == Countermeasure::CleanupSpec {
                if let Instr::Load { .. } = victim.instr {
                    if victim.state != EntryState::Waiting {
                        if let Some(addr) = victim.mem_addr {
                            self.hier.flush(Addr(addr));
                        }
                    }
                }
            }
            self.threads[tid].squashed += 1;
        }
        let t = &mut self.threads[tid];
        t.rat = checkpoint;
        // Redirect fetch down the correct path.
        let target = match t.rob[idx].instr {
            Instr::Branch { target, .. } => {
                if taken {
                    target
                } else {
                    t.rob[idx].pc + 1
                }
            }
            _ => unreachable!("mispredict on non-branch"),
        };
        t.fetch_q.clear();
        t.fetch_pc = target;
        t.fetch_stopped = target >= self.progs[tid].len();
        // A squashed fence no longer blocks dispatch.
        if let Some(fseq) = t.fence_active {
            if fseq > seq {
                t.fence_active = None;
            }
        }
    }

    /// In-order retirement.
    fn commit(&mut self, tid: usize) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.threads[tid].rob.front() else {
                break;
            };
            if head.state != EntryState::Done {
                break;
            }
            let t = &mut self.threads[tid];
            let entry = t.rob.pop_front().expect("head exists");
            t.committed += 1;
            if let Some(ti) = entry.trace_idx {
                t.trace[ti].committed = Some(self.cycle);
            }
            // Architectural register update + RAT release.
            if let Some(dst) = self.decs[tid][entry.pc].dst {
                t.arch_regs[dst.index()] = entry.result;
                if t.rat[dst.index()] == Some(entry.seq) {
                    t.rat[dst.index()] = None;
                }
            }
            // Broadcast the result to any consumers still holding the tag.
            for e in t.rob.iter_mut() {
                for (_, s) in e.srcs.iter_mut() {
                    if let Src::Tag(tag) = s {
                        if *tag == entry.seq {
                            *s = Src::Ready(entry.result);
                        }
                    }
                }
            }
            match entry.instr {
                Instr::Store { .. } => {
                    let addr = entry.mem_addr.expect("store address resolved at issue");
                    self.mem.write(addr, entry.result);
                    self.hier.access(Addr(addr), AccessKind::Store);
                }
                Instr::Load { .. } if entry.deferred_fill => {
                    // Invisible-speculation modes: apply the fill now.
                    let addr = entry.mem_addr.expect("load address resolved at issue");
                    self.hier.access(Addr(addr), AccessKind::Load);
                }
                Instr::Fence => {
                    self.threads[tid].fence_active = None;
                }
                Instr::Halt => {
                    self.threads[tid].halted = true;
                    return;
                }
                _ => {}
            }
            if let Some(li) = entry.load_event {
                self.threads[tid].loads[li].committed = true;
            }
        }
    }

    /// Data-driven issue to functional units. `ports` and `issued` are the
    /// per-cycle structural budgets shared across all hardware threads.
    fn issue(&mut self, tid: usize, ports: &mut Ports, issued: &mut usize) {
        for idx in 0..self.threads[tid].rob.len() {
            if *issued >= self.cfg.issue_width {
                break;
            }
            if self.threads[tid].rob[idx].state != EntryState::Waiting {
                continue;
            }
            self.refresh_srcs(tid, idx);
            let ready = Self::srcs_ready(&self.threads[tid].rob[idx]);
            if self.cfg.countermeasure == Countermeasure::InOrder {
                // Strict in-order issue: the oldest unissued instruction
                // must go first; if it cannot, nothing younger may.
                if !ready || !self.try_issue(tid, idx, ports) {
                    break;
                }
                self.mark_issued(tid, idx);
                *issued += 1;
                continue;
            }
            if !ready {
                continue;
            }
            if self.try_issue(tid, idx, ports) {
                self.mark_issued(tid, idx);
                *issued += 1;
            }
        }
    }

    /// Record the issue timestamp of a just-issued entry, if tracing.
    fn mark_issued(&mut self, tid: usize, idx: usize) {
        let t = &mut self.threads[tid];
        if let Some(ti) = t.rob[idx].trace_idx {
            t.trace[ti].issued = Some(self.cycle);
        }
    }

    /// Attempt to issue the entry at `idx`; returns success.
    fn try_issue(&mut self, tid: usize, idx: usize, ports: &mut Ports) -> bool {
        let fu = self.threads[tid].rob[idx].instr.fu_class();
        let lat = self.cfg.latencies;
        match fu {
            FuClass::Alu => {
                if ports.alu >= self.cfg.alu_ports {
                    return false;
                }
                ports.alu += 1;
            }
            FuClass::Mul => {
                if ports.mul >= self.cfg.mul_ports {
                    return false;
                }
                ports.mul += 1;
            }
            FuClass::Div => {
                if ports.div >= self.cfg.div_ports || !self.div_unit_free() {
                    return false;
                }
                ports.div += 1;
            }
            FuClass::Load => {
                if ports.load >= self.cfg.load_ports {
                    return false;
                }
                // Port is charged only if the load actually issues below.
            }
            FuClass::Store => {
                if ports.store >= self.cfg.store_ports {
                    return false;
                }
                ports.store += 1;
            }
            FuClass::Branch => {
                if ports.branch >= self.cfg.branch_ports {
                    return false;
                }
                ports.branch += 1;
            }
            FuClass::None => {}
        }

        let now = self.cycle;
        match self.threads[tid].rob[idx].instr {
            Instr::Alu { op, a, b, .. } => {
                let av = Self::operand_value(&self.threads[tid].rob[idx], a);
                let bv = Self::operand_value(&self.threads[tid].rob[idx], b);
                let latency = match op {
                    AluOp::Mul => lat.mul,
                    AluOp::Div => {
                        self.claim_div_unit();
                        lat.div_min + ((av ^ bv) & 1)
                    }
                    _ => lat.alu,
                };
                let e = &mut self.threads[tid].rob[idx];
                e.result = op.eval(av, bv);
                e.state = EntryState::Issued;
                e.completion = now + latency;
            }
            Instr::Lea { mem, .. } => {
                let addr = Self::mem_operand_addr(&self.threads[tid].rob[idx], &mem);
                let e = &mut self.threads[tid].rob[idx];
                e.result = addr;
                e.state = EntryState::Issued;
                e.completion = now + lat.alu;
            }
            Instr::Load { mem, .. } => {
                if !self.issue_load(tid, idx, mem, ports) {
                    return false;
                }
            }
            Instr::Store { src, mem } => {
                let addr = Self::mem_operand_addr(&self.threads[tid].rob[idx], &mem);
                let val = Self::operand_value(&self.threads[tid].rob[idx], src);
                let e = &mut self.threads[tid].rob[idx];
                e.mem_addr = Some(addr);
                e.result = val;
                e.state = EntryState::Issued;
                e.completion = now + lat.store;
            }
            Instr::Prefetch { mem, nta } => {
                let addr = Self::mem_operand_addr(&self.threads[tid].rob[idx], &mem);
                let kind = if nta {
                    AccessKind::PrefetchNta
                } else {
                    AccessKind::Prefetch
                };
                self.hier.access(Addr(addr), kind);
                ports.load += 1;
                let e = &mut self.threads[tid].rob[idx];
                e.mem_addr = Some(addr);
                e.state = EntryState::Issued;
                e.completion = now + 1;
            }
            Instr::Flush { mem } => {
                let addr = Self::mem_operand_addr(&self.threads[tid].rob[idx], &mem);
                self.hier.flush(Addr(addr));
                ports.load += 1;
                let e = &mut self.threads[tid].rob[idx];
                e.mem_addr = Some(addr);
                e.state = EntryState::Issued;
                e.completion = now + 1;
            }
            Instr::Branch { cond, a, b, .. } => {
                let av = Self::src_value(&self.threads[tid].rob[idx], a);
                let bv = Self::operand_value(&self.threads[tid].rob[idx], b);
                let e = &mut self.threads[tid].rob[idx];
                e.result = u64::from(cond.eval(av, bv));
                e.state = EntryState::Issued;
                e.completion = now + lat.branch;
            }
            Instr::Jump { .. } | Instr::Nop | Instr::Fence | Instr::Halt => {
                let e = &mut self.threads[tid].rob[idx];
                e.state = EntryState::Issued;
                e.completion = now;
            }
        }
        true
    }

    /// Issue a load, honouring store ordering, MSHRs and countermeasures.
    /// Returns false if the load must retry later.
    fn issue_load(
        &mut self,
        tid: usize,
        idx: usize,
        mem_op: MemOperand,
        ports: &mut Ports,
    ) -> bool {
        let addr = Self::mem_operand_addr(&self.threads[tid].rob[idx], &mem_op);
        // Conservative memory disambiguation: an older in-flight store with
        // an unknown address, or a known address matching this word, blocks
        // the load until the store commits. Stores are a same-thread
        // affair: threads share no memory-ordering model.
        for older in self.threads[tid].rob.iter().take(idx) {
            if let Instr::Store { .. } = older.instr {
                match older.mem_addr {
                    None => return false,
                    Some(saddr) if saddr == addr => return false,
                    _ => {}
                }
            }
        }

        let speculative = self.is_speculative(tid, idx);
        let now = self.cycle;
        let line = Addr(addr).line().0;

        // Prune arrived fills.
        self.inflight.retain(|_, &mut done| done > now);

        let cm = self.cfg.countermeasure;
        let shield = match cm {
            Countermeasure::InvisibleSpec | Countermeasure::GhostMinion => speculative,
            _ => false,
        };
        // Single stateless L1 lookup; the hit path reuses the way instead
        // of re-scanning the tags (mirrors the event-driven scheduler).
        let l1_way = self.hier.lookup_l1(Addr(addr));
        if cm == Countermeasure::DelayOnMiss
            && speculative
            && l1_way.is_none()
            && !self.inflight.contains_key(&line)
        {
            // Speculative L1 miss: delay until non-speculative.
            return false;
        }

        let (latency, level) = if let Some(&done) = self.inflight.get(&line) {
            // Merge into the outstanding miss (MSHR hit) — possibly one
            // another hardware thread started.
            (
                done.saturating_sub(now).max(self.cfg.latencies.alu),
                HitLevel::L2,
            )
        } else if shield {
            // Invisible speculation: timing only, no state change.
            (
                self.hier.peek_latency(Addr(addr)),
                self.hier.probe(Addr(addr)),
            )
        } else {
            // Normal path: check MSHR capacity for misses.
            if l1_way.is_none() && self.inflight.len() >= self.cfg.mshrs {
                return false;
            }
            let out = match l1_way {
                Some(way) => self.hier.access_l1_hit(Addr(addr), way),
                None => self.hier.access_l1_miss(Addr(addr), AccessKind::Load),
            };
            if out.level != HitLevel::L1 {
                self.inflight.insert(line, now + out.latency);
            }
            (out.latency, out.level)
        };

        ports.load += 1;
        let value = self.mem.read(addr);
        let record = self.cfg.record.loads();
        let t = &mut self.threads[tid];
        let e = &mut t.rob[idx];
        e.mem_addr = Some(addr);
        e.result = value;
        e.state = EntryState::Issued;
        e.completion = now + latency;
        e.deferred_fill = shield;
        if record {
            let ev = LoadEvent {
                pc: e.pc,
                seq: e.seq,
                addr,
                issue_cycle: now,
                complete_cycle: now + latency,
                level,
                speculative,
                committed: false,
            };
            e.load_event = Some(t.loads.len());
            t.loads.push(ev);
        }
        true
    }

    /// Rename and dispatch from the fetch queue into the ROB.
    fn dispatch(&mut self, tid: usize) {
        if self.threads[tid].draining {
            return;
        }
        for _ in 0..self.cfg.dispatch_width {
            let t = &self.threads[tid];
            if t.fence_active.is_some() {
                break;
            }
            if t.rob.len() >= self.cfg.rob_size {
                break;
            }
            let waiting = t
                .rob
                .iter()
                .filter(|e| e.state == EntryState::Waiting)
                .count();
            if waiting >= self.cfg.rs_size {
                break;
            }
            let Some(front) = t.fetch_q.front() else {
                break;
            };
            if front.ready_cycle > self.cycle {
                break;
            }
            let t = &mut self.threads[tid];
            let fetched = t.fetch_q.pop_front().expect("front exists");
            let seq = t.next_seq;
            t.next_seq += 1;

            let d = &self.decs[tid][fetched.pc];
            let srcs: Vec<(Reg, Src)> = d.srcs[..d.nsrcs as usize]
                .iter()
                .map(|&r| {
                    let s = match t.rat[r.index()] {
                        None => Src::Ready(t.arch_regs[r.index()]),
                        Some(pseq) => match t.rob.binary_search_by_key(&pseq, |e| e.seq).ok() {
                            Some(pidx) if t.rob[pidx].state == EntryState::Done => {
                                Src::Ready(t.rob[pidx].result)
                            }
                            Some(_) => Src::Tag(pseq),
                            None => Src::Ready(t.arch_regs[r.index()]),
                        },
                    };
                    (r, s)
                })
                .collect();

            if let Instr::Branch { .. } = fetched.instr {
                let rat = t.rat.clone();
                t.checkpoints.insert(seq, rat);
            }
            if let Some(dst) = self.decs[tid][fetched.pc].dst {
                t.rat[dst.index()] = Some(seq);
            }
            if let Instr::Fence = fetched.instr {
                t.fence_active = Some(seq);
            }

            let trace_idx = if self.cfg.record.trace() {
                let fetched_cycle = fetched.ready_cycle.saturating_sub(self.cfg.front_end_depth);
                let mut rec =
                    crate::trace::TraceRecord::new(seq, fetched.pc, &fetched.instr, fetched_cycle);
                rec.dispatched = self.cycle;
                t.trace.push(rec);
                Some(t.trace.len() - 1)
            } else {
                None
            };

            t.rob.push_back(RobEntry {
                seq,
                pc: fetched.pc,
                instr: fetched.instr,
                state: EntryState::Waiting,
                srcs,
                result: 0,
                completion: 0,
                predicted_taken: fetched.predicted_taken,
                mem_addr: None,
                deferred_fill: false,
                load_event: None,
                trace_idx,
            });
        }
    }

    /// Predicted instruction fetch.
    fn fetch(&mut self, tid: usize) {
        if self.threads[tid].draining || self.threads[tid].fetch_stopped {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            let t = &mut self.threads[tid];
            if t.fetch_pc >= self.progs[tid].len() {
                t.fetch_stopped = true;
                break;
            }
            if t.fetch_q.len() >= self.cfg.rob_size {
                break;
            }
            let pc = t.fetch_pc;
            let instr = *self.progs[tid].get(pc).expect("pc in range");
            let mut predicted_taken = false;
            let mut next = pc + 1;
            match instr {
                Instr::Branch { target, .. } => {
                    predicted_taken = self.predictors[tid].predict(pc);
                    if predicted_taken {
                        next = target;
                    }
                }
                Instr::Jump { target } => {
                    predicted_taken = true;
                    next = target;
                }
                Instr::Halt => {
                    self.threads[tid].fetch_stopped = true;
                }
                _ => {}
            }
            let t = &mut self.threads[tid];
            t.fetch_q.push_back(FetchedInstr {
                pc,
                instr,
                predicted_taken,
                ready_cycle: self.cycle + self.cfg.front_end_depth,
            });
            if t.fetch_stopped {
                break;
            }
            t.fetch_pc = next;
        }
    }
}
