//! The original scan-based pipeline scheduler, kept as a **golden model**.
//!
//! [`crate::core`] reimplements scheduling event-driven (tag-broadcast
//! wakeup, ring-buffer ROB, no steady-state allocation) for throughput;
//! this module preserves the straightforward O(ROB)-scans-per-cycle
//! implementation it must match **cycle-exactly**. The differential test
//! suite (`crates/cpu/tests/differential.rs`) runs randomized programs
//! through both and asserts identical [`RunResult`]s; the
//! `perf_baseline` binary uses this model as the speedup denominator.
//!
//! Algorithmic cost (the reason it was replaced): every cycle scans the
//! whole ROB at issue, refreshes sources with per-tag binary searches,
//! re-walks the ROB for speculation/disambiguation checks per load, and
//! commits with a full-ROB tag broadcast; every dispatch allocates a source
//! vector and every branch clones the whole RAT into a `HashMap`.

use crate::config::{Countermeasure, CpuConfig};
use crate::predictor::Predictor;
use crate::stats::{LoadEvent, RunResult};
use racer_isa::{
    AluOp, DataMemory, DecodedProgram, FuClass, Instr, MemOperand, Program, Reg, NUM_REGS,
};
use racer_mem::{AccessKind, Addr, Hierarchy, HitLevel};
use std::collections::{HashMap, VecDeque};

/// Dynamic-instruction sequence number.
type Seq = u64;

#[derive(Copy, Clone, Debug, Eq, PartialEq)]
enum EntryState {
    /// Dispatched, waiting for sources / a port.
    Waiting,
    /// Executing on a functional unit.
    Issued,
    /// Result available.
    Done,
}

#[derive(Copy, Clone, Debug)]
enum Src {
    Ready(u64),
    Tag(Seq),
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: Seq,
    pc: usize,
    instr: Instr,
    state: EntryState,
    srcs: Vec<(Reg, Src)>,
    result: u64,
    completion: u64,
    predicted_taken: bool,
    /// Effective address for memory ops, resolved at issue.
    mem_addr: Option<u64>,
    /// Cache fill deferred to commit (invisible-speculation modes).
    deferred_fill: bool,
    /// Index into the run's load-event vector, if recorded.
    load_event: Option<usize>,
    /// Index into the run's trace vector, if recorded.
    trace_idx: Option<usize>,
}

#[derive(Clone, Debug)]
struct FetchedInstr {
    pc: usize,
    instr: Instr,
    predicted_taken: bool,
    ready_cycle: u64,
}

/// Per-run pipeline state for the reference (scan-based) scheduler.
pub(crate) struct RefPipeline<'a> {
    cfg: CpuConfig,
    hier: &'a mut Hierarchy,
    mem: &'a mut DataMemory,
    predictor: &'a mut dyn Predictor,
    prog: &'a Program,
    /// Pre-decoded µop table (rename reads source lists and destinations
    /// from it; *execution* deliberately stays on [`Instr`] so the
    /// differential suite cross-checks the decoder against the original
    /// instruction forms).
    dec: DecodedProgram,

    cycle: u64,
    rob: VecDeque<RobEntry>,
    fetch_q: VecDeque<FetchedInstr>,
    arch_regs: Vec<u64>,
    rat: Vec<Option<Seq>>,
    checkpoints: HashMap<Seq, Vec<Option<Seq>>>,
    next_seq: Seq,

    fetch_pc: usize,
    fetch_stopped: bool,
    fence_active: Option<Seq>,
    draining: bool,

    /// Divider next-free cycle (non-fully-pipelined unit).
    div_free_at: u64,
    /// Outstanding L1 miss lines → data-arrival cycle (MSHR model).
    inflight: HashMap<u64, u64>,

    // Results under construction.
    committed: u64,
    mispredicts: u64,
    squashed: u64,
    interrupts: u64,
    halted: bool,
    loads: Vec<LoadEvent>,
    trace: Vec<crate::trace::TraceRecord>,
}

impl<'a> RefPipeline<'a> {
    pub(crate) fn new(
        cfg: CpuConfig,
        hier: &'a mut Hierarchy,
        mem: &'a mut DataMemory,
        predictor: &'a mut dyn Predictor,
        prog: &'a Program,
    ) -> Self {
        RefPipeline {
            cfg,
            hier,
            mem,
            predictor,
            dec: DecodedProgram::decode(prog),
            prog,
            cycle: 0,
            rob: VecDeque::with_capacity(cfg.rob_size),
            fetch_q: VecDeque::new(),
            arch_regs: vec![0; NUM_REGS],
            rat: vec![None; NUM_REGS],
            checkpoints: HashMap::new(),
            next_seq: 0,
            fetch_pc: 0,
            fetch_stopped: false,
            fence_active: None,
            draining: false,
            div_free_at: 0,
            inflight: HashMap::new(),
            committed: 0,
            mispredicts: 0,
            squashed: 0,
            interrupts: 0,
            halted: false,
            loads: Vec::new(),
            trace: Vec::new(),
        }
    }

    pub(crate) fn run(mut self) -> RunResult {
        let stats_before = self.hier.stats();
        let mut limit_hit = false;
        loop {
            self.writeback();
            self.commit();
            if self.halted {
                break;
            }
            self.issue();
            self.dispatch();
            self.fetch();
            if self.finished() {
                break;
            }
            self.cycle += 1;
            if let Some(interval) = self.cfg.interrupt_interval {
                if self.cycle.is_multiple_of(interval) && !self.draining {
                    self.draining = true;
                    self.interrupts += 1;
                }
            }
            if self.draining && self.rob.is_empty() {
                self.draining = false;
            }
            if self.cycle >= self.cfg.max_run_cycles {
                limit_hit = true;
                break;
            }
        }
        let mut mem_stats = self.hier.stats();
        mem_stats.l1d = mem_stats.l1d.since(&stats_before.l1d);
        mem_stats.l2 = mem_stats.l2.since(&stats_before.l2);
        mem_stats.l3 = mem_stats.l3.since(&stats_before.l3);
        mem_stats.memory_accesses -= stats_before.memory_accesses;
        mem_stats.flushes -= stats_before.flushes;
        mem_stats.prefetches -= stats_before.prefetches;
        RunResult {
            cycles: self.cycle,
            committed: self.committed,
            halted: self.halted,
            limit_hit,
            mispredicts: self.mispredicts,
            squashed_instrs: self.squashed,
            interrupts: self.interrupts,
            regs: self.arch_regs,
            mem_stats,
            loads: self.loads,
            trace: self.trace,
        }
    }

    /// With ROB and fetch queue empty and fetch stopped (or the program
    /// exhausted), nothing can restart the machine: a stopped fetch either
    /// means the program fell off its end (a committed `halt` would have set
    /// `halted` instead), or a wrong-path `halt` was fetched — and the
    /// mispredicted branch that caused it must already have resolved and
    /// redirected fetch, since the ROB has drained.
    fn finished(&self) -> bool {
        self.rob.is_empty()
            && self.fetch_q.is_empty()
            && (self.fetch_stopped || self.fetch_pc >= self.prog.len())
            && !self.halted
    }

    // ---- helpers -----------------------------------------------------------

    fn entry_index(&self, seq: Seq) -> Option<usize> {
        // Sequence numbers are strictly increasing along the ROB but not
        // contiguous (squashes leave gaps), so search rather than offset.
        self.rob.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    fn src_value(entry: &RobEntry, reg: Reg) -> u64 {
        for (r, s) in &entry.srcs {
            if *r == reg {
                match s {
                    Src::Ready(v) => return *v,
                    Src::Tag(_) => panic!("source {reg} read before ready"),
                }
            }
        }
        panic!("register {reg} is not a source of {:?}", entry.instr)
    }

    fn operand_value(entry: &RobEntry, op: racer_isa::Operand) -> u64 {
        match op {
            racer_isa::Operand::Reg(r) => Self::src_value(entry, r),
            racer_isa::Operand::Imm(v) => v as u64,
        }
    }

    fn mem_operand_addr(entry: &RobEntry, m: &MemOperand) -> u64 {
        let base = m.base.map_or(0, |r| Self::src_value(entry, r));
        let index = m.index.map_or(0, |r| Self::src_value(entry, r));
        base.wrapping_add(index.wrapping_mul(m.scale as u64))
            .wrapping_add(m.disp as u64)
    }

    /// Resolve any tags whose producers are now done.
    fn refresh_srcs(&mut self, idx: usize) {
        let entry = &self.rob[idx];
        let mut updates: Vec<(usize, u64)> = Vec::new();
        for (i, (_, s)) in entry.srcs.iter().enumerate() {
            if let Src::Tag(seq) = s {
                if let Some(pidx) = self.entry_index(*seq) {
                    let p = &self.rob[pidx];
                    if p.state == EntryState::Done {
                        updates.push((i, p.result));
                    }
                } else {
                    // Producer committed; its broadcast should have resolved
                    // this tag already.
                    unreachable!("dangling source tag {seq}");
                }
            }
        }
        let entry = &mut self.rob[idx];
        for (i, v) in updates {
            entry.srcs[i].1 = Src::Ready(v);
        }
    }

    fn srcs_ready(entry: &RobEntry) -> bool {
        entry.srcs.iter().all(|(_, s)| matches!(s, Src::Ready(_)))
    }

    /// Does an unresolved older branch exist (is `idx` speculative)?
    fn is_speculative(&self, idx: usize) -> bool {
        self.rob
            .iter()
            .take(idx)
            .any(|e| matches!(e.instr, Instr::Branch { .. }) && e.state != EntryState::Done)
    }

    // ---- pipeline stages ----------------------------------------------------

    /// Completions and branch resolution.
    fn writeback(&mut self) {
        // Collect completions first (avoid borrowing issues), oldest first so
        // the oldest mispredicted branch wins the squash.
        let mut done: Vec<usize> = Vec::new();
        for (i, e) in self.rob.iter().enumerate() {
            if e.state == EntryState::Issued && e.completion <= self.cycle {
                done.push(i);
            }
        }
        for &i in &done {
            self.rob[i].state = EntryState::Done;
            if let Some(t) = self.rob[i].trace_idx {
                self.trace[t].completed = Some(self.rob[i].completion);
            }
        }
        // Resolve branches oldest-first; a squash may invalidate later ones.
        loop {
            let mut resolved_any = false;
            for i in 0..self.rob.len() {
                let e = &self.rob[i];
                if e.state == EntryState::Done {
                    if let Instr::Branch { .. } = e.instr {
                        if self.checkpoints.contains_key(&e.seq) {
                            let seq = e.seq;
                            let taken = e.result != 0;
                            let predicted = e.predicted_taken;
                            let pc = e.pc;
                            self.predictor.train(pc, taken);
                            let checkpoint = self
                                .checkpoints
                                .remove(&seq)
                                .expect("checkpoint present for unresolved branch");
                            if taken != predicted {
                                self.mispredict(i, seq, taken, checkpoint);
                                resolved_any = true;
                                break; // rob changed; rescan
                            }
                        }
                    }
                }
            }
            if !resolved_any {
                break;
            }
        }
    }

    fn mispredict(&mut self, idx: usize, seq: Seq, taken: bool, checkpoint: Vec<Option<Seq>>) {
        self.mispredicts += 1;
        // Squash everything younger than the branch.
        while self.rob.len() > idx + 1 {
            let victim = self.rob.pop_back().expect("rob non-empty");
            self.checkpoints.remove(&victim.seq);
            if let Some(li) = victim.load_event {
                // Leave the event recorded; `committed` stays false.
                assert!(!self.loads[li].committed, "squashed load marked committed");
            }
            // CleanupSpec: undo the squashed load's cache fill. The *state*
            // is repaired — but any timing difference it caused has already
            // been consumed by older instructions (SpectreBack's point).
            if self.cfg.countermeasure == Countermeasure::CleanupSpec {
                if let Instr::Load { .. } = victim.instr {
                    if victim.state != EntryState::Waiting {
                        if let Some(addr) = victim.mem_addr {
                            self.hier.flush(Addr(addr));
                        }
                    }
                }
            }
            self.squashed += 1;
        }
        self.rat = checkpoint;
        // Redirect fetch down the correct path.
        let target = match self.rob[idx].instr {
            Instr::Branch { target, .. } => {
                if taken {
                    target
                } else {
                    self.rob[idx].pc + 1
                }
            }
            _ => unreachable!("mispredict on non-branch"),
        };
        self.fetch_q.clear();
        self.fetch_pc = target;
        self.fetch_stopped = target >= self.prog.len();
        // A squashed fence no longer blocks dispatch.
        if let Some(fseq) = self.fence_active {
            if fseq > seq {
                self.fence_active = None;
            }
        }
    }

    /// In-order retirement.
    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != EntryState::Done {
                break;
            }
            let entry = self.rob.pop_front().expect("head exists");
            self.committed += 1;
            if let Some(t) = entry.trace_idx {
                self.trace[t].committed = Some(self.cycle);
            }
            // Architectural register update + RAT release.
            if let Some(dst) = self.dec[entry.pc].dst {
                self.arch_regs[dst.index()] = entry.result;
                if self.rat[dst.index()] == Some(entry.seq) {
                    self.rat[dst.index()] = None;
                }
            }
            // Broadcast the result to any consumers still holding the tag.
            for e in self.rob.iter_mut() {
                for (_, s) in e.srcs.iter_mut() {
                    if let Src::Tag(t) = s {
                        if *t == entry.seq {
                            *s = Src::Ready(entry.result);
                        }
                    }
                }
            }
            match entry.instr {
                Instr::Store { .. } => {
                    let addr = entry.mem_addr.expect("store address resolved at issue");
                    self.mem.write(addr, entry.result);
                    self.hier.access(Addr(addr), AccessKind::Store);
                }
                Instr::Load { .. } if entry.deferred_fill => {
                    // Invisible-speculation modes: apply the fill now.
                    let addr = entry.mem_addr.expect("load address resolved at issue");
                    self.hier.access(Addr(addr), AccessKind::Load);
                }
                Instr::Fence => {
                    self.fence_active = None;
                }
                Instr::Halt => {
                    self.halted = true;
                    return;
                }
                _ => {}
            }
            if let Some(li) = entry.load_event {
                self.loads[li].committed = true;
            }
        }
    }

    /// Data-driven issue to functional units.
    fn issue(&mut self) {
        let mut issued = 0usize;
        let mut alu_used = 0usize;
        let mut mul_used = 0usize;
        let mut div_used = 0usize;
        let mut load_used = 0usize;
        let mut store_used = 0usize;
        let mut branch_used = 0usize;

        for idx in 0..self.rob.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if self.rob[idx].state != EntryState::Waiting {
                continue;
            }
            self.refresh_srcs(idx);
            let ready = Self::srcs_ready(&self.rob[idx]);
            if self.cfg.countermeasure == Countermeasure::InOrder {
                // Strict in-order issue: the oldest unissued instruction
                // must go first; if it cannot, nothing younger may.
                if !ready
                    || !self.try_issue(
                        idx,
                        &mut alu_used,
                        &mut mul_used,
                        &mut div_used,
                        &mut load_used,
                        &mut store_used,
                        &mut branch_used,
                    )
                {
                    break;
                }
                self.mark_issued(idx);
                issued += 1;
                continue;
            }
            if !ready {
                continue;
            }
            if self.try_issue(
                idx,
                &mut alu_used,
                &mut mul_used,
                &mut div_used,
                &mut load_used,
                &mut store_used,
                &mut branch_used,
            ) {
                self.mark_issued(idx);
                issued += 1;
            }
        }
    }

    /// Record the issue timestamp of a just-issued entry, if tracing.
    fn mark_issued(&mut self, idx: usize) {
        if let Some(t) = self.rob[idx].trace_idx {
            self.trace[t].issued = Some(self.cycle);
        }
    }

    /// Attempt to issue the entry at `idx`; returns success.
    #[allow(clippy::too_many_arguments)]
    fn try_issue(
        &mut self,
        idx: usize,
        alu_used: &mut usize,
        mul_used: &mut usize,
        div_used: &mut usize,
        load_used: &mut usize,
        store_used: &mut usize,
        branch_used: &mut usize,
    ) -> bool {
        let fu = self.rob[idx].instr.fu_class();
        let lat = self.cfg.latencies;
        match fu {
            FuClass::Alu => {
                if *alu_used >= self.cfg.alu_ports {
                    return false;
                }
                *alu_used += 1;
            }
            FuClass::Mul => {
                if *mul_used >= self.cfg.mul_ports {
                    return false;
                }
                *mul_used += 1;
            }
            FuClass::Div => {
                if *div_used >= self.cfg.div_ports || self.cycle < self.div_free_at {
                    return false;
                }
                *div_used += 1;
            }
            FuClass::Load => {
                if *load_used >= self.cfg.load_ports {
                    return false;
                }
                // Port is charged only if the load actually issues below.
            }
            FuClass::Store => {
                if *store_used >= self.cfg.store_ports {
                    return false;
                }
                *store_used += 1;
            }
            FuClass::Branch => {
                if *branch_used >= self.cfg.branch_ports {
                    return false;
                }
                *branch_used += 1;
            }
            FuClass::None => {}
        }

        let now = self.cycle;
        match self.rob[idx].instr {
            Instr::Alu { op, a, b, .. } => {
                let av = Self::operand_value(&self.rob[idx], a);
                let bv = Self::operand_value(&self.rob[idx], b);
                let latency = match op {
                    AluOp::Mul => lat.mul,
                    AluOp::Div => {
                        self.div_free_at = now + lat.div_recip;
                        lat.div_min + ((av ^ bv) & 1)
                    }
                    _ => lat.alu,
                };
                let e = &mut self.rob[idx];
                e.result = op.eval(av, bv);
                e.state = EntryState::Issued;
                e.completion = now + latency;
            }
            Instr::Lea { mem, .. } => {
                let addr = Self::mem_operand_addr(&self.rob[idx], &mem);
                let e = &mut self.rob[idx];
                e.result = addr;
                e.state = EntryState::Issued;
                e.completion = now + lat.alu;
            }
            Instr::Load { mem, .. } => {
                if !self.issue_load(idx, mem, load_used) {
                    return false;
                }
            }
            Instr::Store { src, mem } => {
                let addr = Self::mem_operand_addr(&self.rob[idx], &mem);
                let val = Self::operand_value(&self.rob[idx], src);
                let e = &mut self.rob[idx];
                e.mem_addr = Some(addr);
                e.result = val;
                e.state = EntryState::Issued;
                e.completion = now + lat.store;
            }
            Instr::Prefetch { mem, nta } => {
                let addr = Self::mem_operand_addr(&self.rob[idx], &mem);
                let kind = if nta {
                    AccessKind::PrefetchNta
                } else {
                    AccessKind::Prefetch
                };
                self.hier.access(Addr(addr), kind);
                *load_used += 1;
                let e = &mut self.rob[idx];
                e.mem_addr = Some(addr);
                e.state = EntryState::Issued;
                e.completion = now + 1;
            }
            Instr::Flush { mem } => {
                let addr = Self::mem_operand_addr(&self.rob[idx], &mem);
                self.hier.flush(Addr(addr));
                *load_used += 1;
                let e = &mut self.rob[idx];
                e.mem_addr = Some(addr);
                e.state = EntryState::Issued;
                e.completion = now + 1;
            }
            Instr::Branch { cond, a, b, .. } => {
                let av = Self::src_value(&self.rob[idx], a);
                let bv = Self::operand_value(&self.rob[idx], b);
                let e = &mut self.rob[idx];
                e.result = u64::from(cond.eval(av, bv));
                e.state = EntryState::Issued;
                e.completion = now + lat.branch;
            }
            Instr::Jump { .. } | Instr::Nop | Instr::Fence | Instr::Halt => {
                let e = &mut self.rob[idx];
                e.state = EntryState::Issued;
                e.completion = now;
            }
        }
        true
    }

    /// Issue a load, honouring store ordering, MSHRs and countermeasures.
    /// Returns false if the load must retry later.
    fn issue_load(&mut self, idx: usize, mem_op: MemOperand, load_used: &mut usize) -> bool {
        let addr = Self::mem_operand_addr(&self.rob[idx], &mem_op);
        // Conservative memory disambiguation: an older in-flight store with
        // an unknown address, or a known address matching this word, blocks
        // the load until the store commits.
        for older in self.rob.iter().take(idx) {
            if let Instr::Store { .. } = older.instr {
                match older.mem_addr {
                    None => return false,
                    Some(saddr) if saddr == addr => return false,
                    _ => {}
                }
            }
        }

        let speculative = self.is_speculative(idx);
        let now = self.cycle;
        let line = Addr(addr).line().0;

        // Prune arrived fills.
        self.inflight.retain(|_, &mut done| done > now);

        let cm = self.cfg.countermeasure;
        let shield = match cm {
            Countermeasure::InvisibleSpec | Countermeasure::GhostMinion => speculative,
            _ => false,
        };
        // Single stateless L1 lookup; the hit path reuses the way instead
        // of re-scanning the tags (mirrors the event-driven scheduler).
        let l1_way = self.hier.lookup_l1(Addr(addr));
        if cm == Countermeasure::DelayOnMiss
            && speculative
            && l1_way.is_none()
            && !self.inflight.contains_key(&line)
        {
            // Speculative L1 miss: delay until non-speculative.
            return false;
        }

        let (latency, level) = if let Some(&done) = self.inflight.get(&line) {
            // Merge into the outstanding miss (MSHR hit).
            (
                done.saturating_sub(now).max(self.cfg.latencies.alu),
                HitLevel::L2,
            )
        } else if shield {
            // Invisible speculation: timing only, no state change.
            (
                self.hier.peek_latency(Addr(addr)),
                self.hier.probe(Addr(addr)),
            )
        } else {
            // Normal path: check MSHR capacity for misses.
            if l1_way.is_none() && self.inflight.len() >= self.cfg.mshrs {
                return false;
            }
            let out = match l1_way {
                Some(way) => self.hier.access_l1_hit(Addr(addr), way),
                None => self.hier.access_l1_miss(Addr(addr), AccessKind::Load),
            };
            if out.level != HitLevel::L1 {
                self.inflight.insert(line, now + out.latency);
            }
            (out.latency, out.level)
        };

        *load_used += 1;
        let value = self.mem.read(addr);
        let record = self.cfg.record.loads();
        let e = &mut self.rob[idx];
        e.mem_addr = Some(addr);
        e.result = value;
        e.state = EntryState::Issued;
        e.completion = now + latency;
        e.deferred_fill = shield;
        if record {
            let ev = LoadEvent {
                pc: e.pc,
                seq: e.seq,
                addr,
                issue_cycle: now,
                complete_cycle: now + latency,
                level,
                speculative,
                committed: false,
            };
            e.load_event = Some(self.loads.len());
            self.loads.push(ev);
        }
        true
    }

    /// Rename and dispatch from the fetch queue into the ROB.
    fn dispatch(&mut self) {
        if self.draining {
            return;
        }
        for _ in 0..self.cfg.dispatch_width {
            if self.fence_active.is_some() {
                break;
            }
            if self.rob.len() >= self.cfg.rob_size {
                break;
            }
            let waiting = self
                .rob
                .iter()
                .filter(|e| e.state == EntryState::Waiting)
                .count();
            if waiting >= self.cfg.rs_size {
                break;
            }
            let Some(front) = self.fetch_q.front() else {
                break;
            };
            if front.ready_cycle > self.cycle {
                break;
            }
            let fetched = self.fetch_q.pop_front().expect("front exists");
            let seq = self.next_seq;
            self.next_seq += 1;

            let d = &self.dec[fetched.pc];
            let srcs: Vec<(Reg, Src)> = d.srcs[..d.nsrcs as usize]
                .iter()
                .map(|&r| {
                    let s = match self.rat[r.index()] {
                        None => Src::Ready(self.arch_regs[r.index()]),
                        Some(pseq) => match self.entry_index(pseq) {
                            Some(pidx) if self.rob[pidx].state == EntryState::Done => {
                                Src::Ready(self.rob[pidx].result)
                            }
                            Some(_) => Src::Tag(pseq),
                            None => Src::Ready(self.arch_regs[r.index()]),
                        },
                    };
                    (r, s)
                })
                .collect();

            if let Instr::Branch { .. } = fetched.instr {
                self.checkpoints.insert(seq, self.rat.clone());
            }
            if let Some(dst) = self.dec[fetched.pc].dst {
                self.rat[dst.index()] = Some(seq);
            }
            if let Instr::Fence = fetched.instr {
                self.fence_active = Some(seq);
            }

            let trace_idx = if self.cfg.record.trace() {
                let fetched_cycle = fetched.ready_cycle.saturating_sub(self.cfg.front_end_depth);
                let mut rec =
                    crate::trace::TraceRecord::new(seq, fetched.pc, &fetched.instr, fetched_cycle);
                rec.dispatched = self.cycle;
                self.trace.push(rec);
                Some(self.trace.len() - 1)
            } else {
                None
            };

            self.rob.push_back(RobEntry {
                seq,
                pc: fetched.pc,
                instr: fetched.instr,
                state: EntryState::Waiting,
                srcs,
                result: 0,
                completion: 0,
                predicted_taken: fetched.predicted_taken,
                mem_addr: None,
                deferred_fill: false,
                load_event: None,
                trace_idx,
            });
        }
    }

    /// Predicted instruction fetch.
    fn fetch(&mut self) {
        if self.draining || self.fetch_stopped {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_pc >= self.prog.len() {
                self.fetch_stopped = true;
                break;
            }
            if self.fetch_q.len() >= self.cfg.rob_size {
                break;
            }
            let pc = self.fetch_pc;
            let instr = *self.prog.get(pc).expect("pc in range");
            let mut predicted_taken = false;
            let mut next = pc + 1;
            match instr {
                Instr::Branch { target, .. } => {
                    predicted_taken = self.predictor.predict(pc);
                    if predicted_taken {
                        next = target;
                    }
                }
                Instr::Jump { target } => {
                    predicted_taken = true;
                    next = target;
                }
                Instr::Halt => {
                    self.fetch_stopped = true;
                }
                _ => {}
            }
            self.fetch_q.push_back(FetchedInstr {
                pc,
                instr,
                predicted_taken,
                ready_cycle: self.cycle + self.cfg.front_end_depth,
            });
            if self.fetch_stopped {
                break;
            }
            self.fetch_pc = next;
        }
    }
}
