//! Run results and per-load event records.

use racer_mem::{HierarchyStats, HitLevel};
use serde::{Deserialize, Serialize};

/// One dynamic load observed during a run (recorded at
/// [`RecordLevel::Loads`](crate::RecordLevel::Loads) and above).
///
/// Squashed loads — issued on a mispredicted path and later discarded — are
/// the paper's transient cache transmitters: they appear here with
/// `committed == false` but may still have changed cache state.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct LoadEvent {
    /// Static instruction index.
    pub pc: usize,
    /// Dynamic sequence number.
    pub seq: u64,
    /// Effective byte address.
    pub addr: u64,
    /// Cycle the load issued to the memory system.
    pub issue_cycle: u64,
    /// Cycle its value became available.
    pub complete_cycle: u64,
    /// Hierarchy level that serviced it.
    pub level: HitLevel,
    /// Whether the load was issued while an older branch was unresolved.
    pub speculative: bool,
    /// Whether the load ultimately committed (false = squashed).
    pub committed: bool,
}

/// Outcome of executing one program on the out-of-order core.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunResult {
    /// Total cycles from first fetch to final commit/drain.
    pub cycles: u64,
    /// Committed (architecturally executed) instructions.
    pub committed: u64,
    /// Whether a `halt` committed (vs. falling off the program end).
    pub halted: bool,
    /// Whether the run aborted at the configured cycle limit.
    pub limit_hit: bool,
    /// Mispredicted branches (each causes a squash).
    pub mispredicts: u64,
    /// Instructions discarded by squashes.
    pub squashed_instrs: u64,
    /// Pipeline drains triggered by the timer-interrupt model.
    pub interrupts: u64,
    /// Final architectural register file.
    pub regs: Vec<u64>,
    /// Cache/memory counters accumulated during this run only.
    pub mem_stats: HierarchyStats,
    /// Per-load events (empty below
    /// [`RecordLevel::Loads`](crate::RecordLevel::Loads)).
    pub loads: Vec<LoadEvent>,
    /// Per-instruction pipeline trace (empty below
    /// [`RecordLevel::Trace`](crate::RecordLevel::Trace)).
    pub trace: Vec<crate::trace::TraceRecord>,
}

impl RunResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Loads that issued but never committed (transient accesses).
    pub fn transient_loads(&self) -> impl Iterator<Item = &LoadEvent> {
        self.loads.iter().filter(|l| !l.committed)
    }

    /// Convenience: whether any transient load touched `addr`.
    pub fn transient_touched(&self, addr: u64) -> bool {
        self.transient_loads().any(|l| l.addr == addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(RunResult::default().ipc(), 0.0);
    }

    #[test]
    fn transient_load_filtering() {
        let mk = |addr, committed| LoadEvent {
            pc: 0,
            seq: 0,
            addr,
            issue_cycle: 0,
            complete_cycle: 0,
            level: HitLevel::L1,
            speculative: true,
            committed,
        };
        let r = RunResult {
            loads: vec![mk(1, true), mk(2, false)],
            ..Default::default()
        };
        assert_eq!(r.transient_loads().count(), 1);
        assert!(r.transient_touched(2));
        assert!(!r.transient_touched(1));
    }
}
