//! Pipeline event tracing: a per-instruction record of when each dynamic
//! instruction moved through fetch → dispatch → issue → complete → commit.
//!
//! Tracing exists for gadget engineering: racing gadgets live or die on
//! issue-cycle relationships, and a pipeline diagram answers "why did this
//! path lose?" directly. Enable with
//! [`RecordLevel::Trace`](crate::RecordLevel::Trace) (e.g. via
//! [`CpuConfig::with_trace`](crate::CpuConfig::with_trace)); rendered
//! diagrams come from [`render_pipeline`].

use racer_isa::Instr;
use serde::{Deserialize, Serialize};

/// Lifecycle timestamps of one dynamic instruction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Static instruction index.
    pub pc: usize,
    /// Disassembly of the instruction.
    pub text: String,
    /// Cycle the instruction entered the fetch queue.
    pub fetched: u64,
    /// Cycle it was renamed into the ROB.
    pub dispatched: u64,
    /// Cycle it issued to a functional unit (`None` if squashed first).
    pub issued: Option<u64>,
    /// Cycle its result became available (`None` if squashed first).
    pub completed: Option<u64>,
    /// Cycle it committed (`None` = squashed: wrong-path work).
    pub committed: Option<u64>,
}

impl TraceRecord {
    pub(crate) fn new(seq: u64, pc: usize, instr: &Instr, fetched: u64) -> Self {
        TraceRecord {
            seq,
            pc,
            text: instr.to_string(),
            fetched,
            dispatched: 0,
            issued: None,
            completed: None,
            committed: None,
        }
    }

    /// Whether this instruction was squashed (never committed).
    pub fn squashed(&self) -> bool {
        self.committed.is_none()
    }
}

/// Render a compact text pipeline diagram (one line per instruction):
///
/// ```text
/// seq pc   F     D     I     C     R  text
///   7  3   12    13    255   259   261  load r4, [r2 + 0x1000]
///   8  4   12    13    -     -     -    add r5, r4, 0x1   (squashed)
/// ```
pub fn render_pipeline(records: &[TraceRecord]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("  seq    pc     F      D      I      C      R   instruction\n");
    let col = |v: Option<u64>| v.map_or("-".to_string(), |c| c.to_string());
    for r in records {
        let _ = writeln!(
            s,
            "{:5} {:5} {:6} {:6} {:>6} {:>6} {:>6}  {}{}",
            r.seq,
            r.pc,
            r.fetched,
            r.dispatched,
            col(r.issued),
            col(r.completed),
            col(r.committed),
            r.text,
            if r.squashed() { "   (squashed)" } else { "" },
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use racer_isa::{AluOp, Operand, Reg};

    #[test]
    fn record_tracks_squash_state() {
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: Reg::new(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        };
        let mut r = TraceRecord::new(3, 7, &i, 10);
        assert!(r.squashed());
        r.committed = Some(20);
        assert!(!r.squashed());
    }

    #[test]
    fn render_marks_squashed_rows() {
        let i = Instr::Nop;
        let mut a = TraceRecord::new(0, 0, &i, 1);
        a.dispatched = 2;
        a.issued = Some(3);
        a.completed = Some(3);
        a.committed = Some(4);
        let b = TraceRecord::new(1, 1, &i, 1);
        let s = render_pipeline(&[a, b]);
        assert!(s.lines().count() >= 3);
        assert!(s.contains("(squashed)"));
    }
}
