//! Canonical benchmark workloads and throughput measurement.
//!
//! Every layer above the core needs the same handful of "representative
//! program shapes" — the perf baseline times them, the detection study
//! profiles them, future scheduler work regresses against them. They used
//! to live as copy-paste inside one binary; this module is the stable API
//! version: named program builders plus a [`measure_throughput`] helper
//! that times either scheduler on a warmed machine.
//!
//! The shapes stress distinct scheduler paths:
//!
//! * [`alu_chain`] — serial dependency chains (pure wakeup latency);
//! * [`branchy`] — data-dependent branches at a tunable mispredict rate
//!   (squash/recovery);
//! * [`memory_stream`] — streaming loads (MSHR + hierarchy pressure);
//! * [`div_race`] — a non-pipelined divide chain contended against wide
//!   independent ALU work (the paper's §6.4 arithmetic-magnifier mix).

use crate::{Cpu, CpuConfig, RunResult};
use racer_isa::{AluOp, Asm, Cond, Instr, MemOperand, Operand, Program};
use racer_mem::HierarchyConfig;
use std::time::Instant;

/// A named program plus the repetition count used when timing it.
pub struct Workload {
    /// Short machine-readable name (stable across PRs; keys the committed
    /// perf baseline).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// The assembled program.
    pub prog: Program,
    /// Fresh executions to time per measurement.
    pub reps: usize,
}

/// Dependent ALU chains inside a counter loop — the paper's reference-path
/// shape and the purest scheduler stress (every instruction wakes one
/// dependent).
pub fn alu_chain(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, acc) = (asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    asm.mov_imm(acc, 1);
    let top = asm.here();
    for _ in 0..16 {
        asm.addi(acc, acc, 1);
    }
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Data-dependent branches: a pseudo-random bit field steers control flow.
/// `mask = 7` gives the ~12% mispredict rate of branchy integer code;
/// `mask = 1` is the adversarial alternating pattern a 2-bit counter can
/// never learn (~70% squash storm).
pub fn branchy(iters: i64, mask: i64) -> Program {
    let mut asm = Asm::new();
    let (i, v, acc) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    let top = asm.here();
    asm.mul(v, i, 0x9E37i64);
    asm.emit(Instr::Alu {
        op: AluOp::Shr,
        dst: v,
        a: Operand::Reg(v),
        b: Operand::Imm(7),
    });
    asm.emit(Instr::Alu {
        op: AluOp::And,
        dst: v,
        a: Operand::Reg(v),
        b: Operand::Imm(mask),
    });
    let skip = asm.fwd_label();
    asm.br(Cond::Ne, v, 0i64, skip);
    asm.addi(acc, acc, 3);
    asm.addi(acc, acc, 5);
    asm.bind(skip);
    asm.addi(acc, acc, 1);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Streaming loads over many lines: MSHR pressure, store ordering and the
/// cache hierarchy on every issue.
pub fn memory_stream(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, d, addr) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    let top = asm.here();
    asm.mul(addr, i, 64);
    for k in 0..8u64 {
        asm.load(d, MemOperand::base_disp(addr, 0x10000 + (k * 64) as i64));
    }
    asm.store(d, MemOperand::abs(0x9000));
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Racing-gadget shape: a divide chain contended against wide independent
/// ALU work (the §6.4 arithmetic-magnifier mix).
pub fn div_race(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, x, y) = (asm.reg(), asm.reg(), asm.reg());
    let pars = asm.regs(4);
    asm.mov_imm(i, iters);
    asm.mov_imm(x, 1 << 20);
    let top = asm.here();
    asm.div(x, x, 3i64);
    asm.addi(x, x, 1 << 20);
    for (k, &p) in pars.iter().enumerate() {
        asm.mul(y, p, (k + 3) as i64);
        asm.add(p, p, y);
    }
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// The standard five-workload suite at a given loop scale: `iters`
/// iterations (the divide chain runs `iters / 4`, it is ~10× slower per
/// iteration) and `reps` timed executions each.
pub fn standard_suite(iters: i64, reps: usize) -> Vec<Workload> {
    vec![
        Workload {
            name: "alu-chain",
            description: "dependent 16-add chains in a counter loop",
            prog: alu_chain(iters),
            reps,
        },
        Workload {
            name: "branchy",
            description: "data-dependent branches, ~12% mispredict rate",
            prog: branchy(iters, 7),
            reps,
        },
        Workload {
            name: "squash-storm",
            description: "adversarial alternating branches, ~70% mispredict rate",
            prog: branchy(iters, 1),
            reps,
        },
        Workload {
            name: "memory-stream",
            description: "8 streaming loads/iteration over 64-line footprint",
            prog: memory_stream(iters),
            reps,
        },
        Workload {
            name: "div-race",
            description: "non-pipelined divide chain racing wide mul/add ILP",
            prog: div_race(iters / 4),
            reps,
        },
    ]
}

/// One timed measurement: host throughput plus the (deterministic)
/// architectural result of the final execution.
pub struct Throughput {
    /// Committed instructions per host second.
    pub instrs_per_sec: f64,
    /// The last execution's architectural result (identical across reps —
    /// each rep runs the same program on the same warmed machine state).
    pub result: RunResult,
}

/// Time `reps` fresh executions of `prog` on a Coffee-Lake-shaped machine,
/// with the event-driven scheduler or (`reference = true`) the retained
/// scan-based seed scheduler. Caches and predictor are warmed by one
/// untimed run first so both schedulers see identical state.
///
/// # Panics
///
/// Panics if the workload does not run to completion (hits the safety
/// cycle limit) — benchmark programs must halt.
pub fn measure_throughput(prog: &Program, reps: usize, reference: bool) -> Throughput {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let run = |cpu: &mut Cpu| {
        if reference {
            cpu.execute_reference(prog)
        } else {
            cpu.execute(prog)
        }
    };
    let _ = run(&mut cpu);
    let start = Instant::now();
    let mut committed = 0u64;
    let mut last = None;
    for _ in 0..reps {
        let r = run(&mut cpu);
        assert!(r.halted && !r.limit_hit, "workload must run to completion");
        committed += r.committed;
        last = Some(r);
    }
    let secs = start.elapsed().as_secs_f64();
    Throughput {
        instrs_per_sec: committed as f64 / secs,
        result: last.expect("reps >= 1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_names_are_stable() {
        let suite = standard_suite(100, 1);
        let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "alu-chain",
                "branchy",
                "squash-storm",
                "memory-stream",
                "div-race"
            ]
        );
    }

    #[test]
    fn every_workload_halts_on_both_schedulers_with_identical_state() {
        for w in standard_suite(60, 1) {
            let fast = measure_throughput(&w.prog, w.reps, false);
            let reference = measure_throughput(&w.prog, w.reps, true);
            assert!(fast.instrs_per_sec > 0.0);
            assert_eq!(
                (fast.result.cycles, fast.result.committed, &fast.result.regs),
                (
                    reference.result.cycles,
                    reference.result.committed,
                    &reference.result.regs
                ),
                "schedulers diverged on {}",
                w.name
            );
        }
    }

    #[test]
    fn branchy_mask_controls_mispredict_rate() {
        let easy = measure_throughput(&branchy(400, 7), 1, false);
        let storm = measure_throughput(&branchy(400, 1), 1, false);
        assert!(
            storm.result.mispredicts > easy.result.mispredicts * 2,
            "mask=1 should mispredict far more: {} vs {}",
            storm.result.mispredicts,
            easy.result.mispredicts
        );
    }
}
