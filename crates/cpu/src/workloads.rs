//! Canonical benchmark workloads and throughput measurement.
//!
//! Every layer above the core needs the same handful of "representative
//! program shapes" — the perf baseline times them, the detection study
//! profiles them, future scheduler work regresses against them. They used
//! to live as copy-paste inside one binary; this module is the stable API
//! version: named program builders plus a [`measure_throughput`] helper
//! that times either scheduler on a warmed machine.
//!
//! The shapes stress distinct scheduler paths:
//!
//! * [`alu_chain`] — serial dependency chains (pure wakeup latency);
//! * [`branchy`] — data-dependent branches at a tunable mispredict rate
//!   (squash/recovery);
//! * [`memory_stream`] — streaming loads (MSHR + hierarchy pressure);
//! * [`div_race`] — a non-pipelined divide chain contended against wide
//!   independent ALU work (the paper's §6.4 arithmetic-magnifier mix).
//!
//! For the SMT core (paper §9, "other shared resources") it also provides
//! **port-pressure contender kernels** — [`alu_saturate`] (issue-port
//! pressure), [`div_hog`] (divider-unit pressure) and the existing
//! [`memory_stream`] (load-port + MSHR pressure) — plus [`timer_race`],
//! the racing-gadget timer program whose resolution the
//! `smt_contention_eval` scenario measures under each contender.

use crate::{Backend, Cpu, CpuConfig, MachineBatch, RunResult};
use racer_isa::{AluOp, Asm, Cond, Instr, MemOperand, Operand, Program};
use racer_mem::HierarchyConfig;
use std::time::Instant;

/// A named program plus the repetition count used when timing it.
pub struct Workload {
    /// Short machine-readable name (stable across PRs; keys the committed
    /// perf baseline).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// The assembled program.
    pub prog: Program,
    /// Fresh executions to time per measurement.
    pub reps: usize,
    /// Co-resident program for a second hardware thread: when set, the
    /// workload is timed as a two-thread SMT co-schedule (`prog` on thread
    /// 0, the contender on thread 1) and throughput counts both threads'
    /// committed instructions.
    pub contender: Option<Program>,
}

/// Dependent ALU chains inside a counter loop — the paper's reference-path
/// shape and the purest scheduler stress (every instruction wakes one
/// dependent).
pub fn alu_chain(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, acc) = (asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    asm.mov_imm(acc, 1);
    let top = asm.here();
    for _ in 0..16 {
        asm.addi(acc, acc, 1);
    }
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Data-dependent branches: a pseudo-random bit field steers control flow.
/// `mask = 7` gives the ~12% mispredict rate of branchy integer code;
/// `mask = 1` is the adversarial alternating pattern a 2-bit counter can
/// never learn (~70% squash storm).
pub fn branchy(iters: i64, mask: i64) -> Program {
    let mut asm = Asm::new();
    let (i, v, acc) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    let top = asm.here();
    asm.mul(v, i, 0x9E37i64);
    asm.emit(Instr::Alu {
        op: AluOp::Shr,
        dst: v,
        a: Operand::Reg(v),
        b: Operand::Imm(7),
    });
    asm.emit(Instr::Alu {
        op: AluOp::And,
        dst: v,
        a: Operand::Reg(v),
        b: Operand::Imm(mask),
    });
    let skip = asm.fwd_label();
    asm.br(Cond::Ne, v, 0i64, skip);
    asm.addi(acc, acc, 3);
    asm.addi(acc, acc, 5);
    asm.bind(skip);
    asm.addi(acc, acc, 1);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Streaming loads over many lines: MSHR pressure, store ordering and the
/// cache hierarchy on every issue.
pub fn memory_stream(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, d, addr) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(i, iters);
    let top = asm.here();
    asm.mul(addr, i, 64);
    for k in 0..8u64 {
        asm.load(d, MemOperand::base_disp(addr, 0x10000 + (k * 64) as i64));
    }
    asm.store(d, MemOperand::abs(0x9000));
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// Racing-gadget shape: a divide chain contended against wide independent
/// ALU work (the §6.4 arithmetic-magnifier mix).
pub fn div_race(iters: i64) -> Program {
    let mut asm = Asm::new();
    let (i, x, y) = (asm.reg(), asm.reg(), asm.reg());
    let pars = asm.regs(4);
    asm.mov_imm(i, iters);
    asm.mov_imm(x, 1 << 20);
    let top = asm.here();
    asm.div(x, x, 3i64);
    asm.addi(x, x, 1 << 20);
    for (k, &p) in pars.iter().enumerate() {
        asm.mul(y, p, (k + 3) as i64);
        asm.add(p, p, y);
    }
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// SMT contender: `width` independent single-add chains per unrolled step
/// (×4 unroll to drown the loop overhead). With `width >= alu_ports` the
/// kernel claims every simple-ALU issue port on the cycles it arbitrates
/// first — the pure port-pressure contender for a co-resident
/// racing-gadget timer.
pub fn alu_saturate(iters: i64, width: usize) -> Program {
    let mut asm = Asm::new();
    let i = asm.reg();
    let pars = asm.regs(width);
    asm.mov_imm(i, iters);
    let top = asm.here();
    for _ in 0..4 {
        for &p in &pars {
            asm.addi(p, p, 1);
        }
    }
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// SMT contender: three parallel dependent divide chains (the §6.4
/// arithmetic-magnifier shape, tripled). Each divide claims a divider
/// unit for the reciprocal interval, and the chains' 13/14-cycle
/// operand-dependent latencies keep the claim cadence drifting — so a
/// co-resident thread's divides see heavy but *bounded* divider
/// contention. (A back-to-back independent-divide hog claims the unit at
/// exactly the reciprocal period, which phase-locks against round-robin
/// arbitration and starves the sibling outright — total capture, not a
/// graded pressure source.)
pub fn div_hog(iters: i64) -> Program {
    let mut asm = Asm::new();
    let i = asm.reg();
    let chains = asm.regs(3);
    asm.mov_imm(i, iters);
    for (k, &c) in chains.iter().enumerate() {
        asm.mov_imm(c, (1 << 20) + k as i64);
    }
    let top = asm.here();
    for &c in &chains {
        asm.div(c, c, 3i64);
        asm.addi(c, c, 1 << 20);
    }
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    asm.assemble().expect("valid program")
}

/// A racing-gadget timer program (paper §4/§6.4 shape): a serial
/// *measured* chain of `measured_divs` dependent divides races a serial
/// *clock* chain of `clock_adds` dependent adds. Both chains are
/// independent of each other, so the out-of-order core runs them
/// concurrently and the order their tails complete in is exactly the race
/// outcome the paper's gadgets transmit through cache state. Emission
/// interleaves the chains so the front end feeds both from the first
/// cycles.
///
/// The program is branch-free and memory-free: the race depends only on
/// chain latencies and *issue-port availability* — which is what makes it
/// an SMT port-contention probe.
pub struct TimerRace {
    /// The assembled straight-line program.
    pub prog: Program,
    /// pc of the measured chain's final instruction.
    pub measured_tail_pc: usize,
    /// pc of the clock chain's final instruction.
    pub clock_tail_pc: usize,
}

/// Build a [`TimerRace`] with the given chain lengths.
pub fn timer_race(measured_divs: usize, clock_adds: usize) -> TimerRace {
    timer_race_phased(measured_divs, clock_adds, 0)
}

/// [`timer_race`] with `phase_nops` leading no-ops: in an SMT co-run they
/// shift the racer's dispatch alignment against a co-resident contender,
/// giving a deterministic phase-diversity axis for contention sweeps.
pub fn timer_race_phased(measured_divs: usize, clock_adds: usize, phase_nops: usize) -> TimerRace {
    let mut asm = Asm::new();
    let (m, c) = (asm.reg(), asm.reg());
    for _ in 0..phase_nops {
        asm.emit(Instr::Nop);
    }
    let mut measured_tail_pc = asm.position();
    asm.mov_imm(m, 1 << 20);
    let mut clock_tail_pc = asm.position();
    asm.mov_imm(c, 0);
    let mut emitted_clock = 0usize;
    let mut emit_clock_until = |asm: &mut Asm, tail: &mut usize, target: usize| {
        while emitted_clock < target {
            *tail = asm.position();
            asm.addi(c, c, 1);
            emitted_clock += 1;
        }
    };
    for d in 0..measured_divs {
        measured_tail_pc = asm.position();
        asm.div(m, m, 3i64);
        // Keep the clock chain's share of the front end proportional.
        let target = clock_adds * (d + 1) / measured_divs;
        emit_clock_until(&mut asm, &mut clock_tail_pc, target);
    }
    emit_clock_until(&mut asm, &mut clock_tail_pc, clock_adds);
    asm.halt();
    TimerRace {
        prog: asm.assemble().expect("valid program"),
        measured_tail_pc,
        clock_tail_pc,
    }
}

impl TimerRace {
    /// Completion cycles of the two chain tails from a
    /// [`RecordLevel::Trace`](crate::RecordLevel::Trace) run: `(measured,
    /// clock)`. The program is straight-line, so each pc maps to exactly
    /// one committed dynamic instruction.
    pub fn tail_completions(&self, result: &RunResult) -> (u64, u64) {
        let completion = |pc: usize| {
            result
                .trace
                .iter()
                .find(|r| r.pc == pc)
                .and_then(|r| r.completed)
                .expect("straight-line race program commits every pc")
        };
        (
            completion(self.measured_tail_pc),
            completion(self.clock_tail_pc),
        )
    }
}

/// The standard five-workload suite at a given loop scale: `iters`
/// iterations (the divide chain runs `iters / 4`, it is ~10× slower per
/// iteration) and `reps` timed executions each.
pub fn standard_suite(iters: i64, reps: usize) -> Vec<Workload> {
    vec![
        Workload {
            name: "alu-chain",
            description: "dependent 16-add chains in a counter loop",
            prog: alu_chain(iters),
            reps,
            contender: None,
        },
        Workload {
            name: "branchy",
            description: "data-dependent branches, ~12% mispredict rate",
            prog: branchy(iters, 7),
            reps,
            contender: None,
        },
        Workload {
            name: "squash-storm",
            description: "adversarial alternating branches, ~70% mispredict rate",
            prog: branchy(iters, 1),
            reps,
            contender: None,
        },
        Workload {
            name: "memory-stream",
            description: "8 streaming loads/iteration over 64-line footprint",
            prog: memory_stream(iters),
            reps,
            contender: None,
        },
        Workload {
            name: "div-race",
            description: "non-pipelined divide chain racing wide mul/add ILP",
            prog: div_race(iters / 4),
            reps,
            contender: None,
        },
        Workload {
            name: "smt-contention",
            description: "2-thread SMT co-schedule: div-race timer vs ALU-saturating contender",
            prog: div_race(iters / 4),
            reps,
            contender: Some(alu_saturate(iters / 2, 8)),
        },
    ]
}

/// One timed measurement: host throughput plus the (deterministic)
/// architectural result of the final execution.
pub struct Throughput {
    /// Committed instructions per host second.
    pub instrs_per_sec: f64,
    /// The last execution's architectural result (identical across reps —
    /// each rep runs the same program on the same warmed machine state).
    pub result: RunResult,
}

/// Time `reps` fresh executions of `prog` on a Coffee-Lake-shaped machine
/// with the chosen [`Backend`]. Caches and predictor are warmed by one
/// untimed run first so every backend sees identical state. (Under
/// [`Backend::Batched`] each call forks the machine and leaves it
/// untouched, so the "warmup" run measures engine overhead against the
/// same cold state every rep — the fork-amortised sweep shape lives in
/// [`measure_sweep`].)
///
/// # Panics
///
/// Panics if the workload does not run to completion (hits the safety
/// cycle limit) — benchmark programs must halt.
pub fn measure_throughput(prog: &Program, reps: usize, backend: Backend) -> Throughput {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let _ = cpu.run_one(prog, backend);
    let start = Instant::now();
    let mut committed = 0u64;
    let mut last = None;
    for _ in 0..reps {
        let r = cpu.run_one(prog, backend);
        assert!(r.halted && !r.limit_hit, "workload must run to completion");
        committed += r.committed;
        last = Some(r);
    }
    let secs = start.elapsed().as_secs_f64();
    Throughput {
        instrs_per_sec: committed as f64 / secs,
        result: last.expect("reps >= 1"),
    }
}

/// Time a K-point *sweep* of `prog` — the repo's dominant experiment
/// shape: every point needs a machine warmed by `warmup` untimed
/// executions, then runs the program once, timed.
///
/// The backend selects the sweep strategy:
///
/// * [`Backend::EventDriven`] / [`Backend::Reference`] model the classic
///   per-machine sweep: each of the `points` points builds a **fresh
///   machine and re-runs the warmup** before its timed execution.
/// * [`Backend::Batched`] warms **one** machine (with the event-driven
///   scheduler), snapshots it, and forks the snapshot into a
///   [`MachineBatch`] lane per point — warmup is paid once for the whole
///   sweep.
///
/// Every point's result is bit-identical across strategies (a forked lane
/// is exactly the warmed machine). `instrs_per_sec` counts only the timed
/// (post-warmup) executions over the whole sweep's wall time, warmup
/// included — which is precisely why fork-based sweeps are faster.
///
/// # Panics
///
/// Panics if the workload does not run to completion, or if `points`
/// is zero.
pub fn measure_sweep(prog: &Program, warmup: usize, points: usize, backend: Backend) -> Throughput {
    assert!(points > 0, "a sweep needs at least one point");
    let cfg = CpuConfig::coffee_lake();
    let hier = HierarchyConfig::coffee_lake();
    let check = |r: &RunResult| {
        assert!(r.halted && !r.limit_hit, "workload must run to completion");
    };
    let start = Instant::now();
    let mut committed = 0u64;
    let result = match backend {
        Backend::Batched => {
            let mut cpu = Cpu::new(cfg, hier);
            for _ in 0..warmup {
                check(&cpu.run_one(prog, Backend::EventDriven));
            }
            let mut batch = MachineBatch::from_snapshot(&cpu.snapshot());
            for _ in 0..points {
                batch.push(prog);
            }
            let mut results = batch.run();
            for r in &results {
                check(r);
                committed += r.committed;
            }
            results.swap_remove(0)
        }
        per_machine => {
            let mut last = None;
            for _ in 0..points {
                let mut cpu = Cpu::new(cfg, hier);
                for _ in 0..warmup {
                    check(&cpu.run_one(prog, per_machine));
                }
                let r = cpu.run_one(prog, per_machine);
                check(&r);
                committed += r.committed;
                last = Some(r);
            }
            last.expect("points >= 1")
        }
    };
    let secs = start.elapsed().as_secs_f64();
    Throughput {
        instrs_per_sec: committed as f64 / secs,
        result,
    }
}

/// Time `lanes` executions of `prog`, all forked from one warmed
/// snapshot: either stepped together in lockstep by a [`MachineBatch`]
/// ([`Backend::Batched`]) or run to completion one whole forked machine
/// at a time (any other backend).
///
/// Unlike [`measure_sweep`], warmup happens *outside* the timed region on
/// both sides, so the comparison isolates the engine's lane-stepping
/// throughput itself — no warmup amortisation in the ratio. This is the
/// shape behind `benches/batch.rs` and the gated `lockstep-64lane` perf
/// row: lockstep must at least match whole-machine forks at high lane
/// counts now that lanes share the snapshot hierarchy copy-on-write.
///
/// # Panics
///
/// Panics if the workload does not run to completion, or if `lanes`
/// is zero.
pub fn measure_lockstep(prog: &Program, lanes: usize, backend: Backend) -> Throughput {
    assert!(lanes > 0, "need at least one lane");
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let warm = cpu.run_one(prog, Backend::EventDriven);
    assert!(
        warm.halted && !warm.limit_hit,
        "workload must run to completion"
    );
    let snap = cpu.snapshot();
    let check = |r: &RunResult| {
        assert!(r.halted && !r.limit_hit, "workload must run to completion");
    };
    let start = Instant::now();
    let mut committed = 0u64;
    let result = match backend {
        Backend::Batched => {
            let mut batch = MachineBatch::from_snapshot(&snap);
            for _ in 0..lanes {
                batch.push(prog);
            }
            let mut results = batch.run();
            for r in &results {
                check(r);
                committed += r.committed;
            }
            results.swap_remove(0)
        }
        per_machine => {
            let mut last = None;
            for _ in 0..lanes {
                let r = snap.fork().run_one(prog, per_machine);
                check(&r);
                committed += r.committed;
                last = Some(r);
            }
            last.expect("lanes >= 1")
        }
    };
    let secs = start.elapsed().as_secs_f64();
    Throughput {
        instrs_per_sec: committed as f64 / secs,
        result,
    }
}

/// Time a [`Workload`], dispatching on its shape: plain workloads go
/// through [`measure_throughput`]; workloads with a [`Workload::contender`]
/// run as a two-thread SMT co-schedule on a round-robin-arbitrated
/// Coffee-Lake-shaped machine. For SMT workloads `instrs_per_sec` counts
/// both threads' committed instructions and `result` is thread 0's.
///
/// # Panics
///
/// Panics if any thread of the workload fails to run to completion, or if
/// an SMT workload is timed with [`Backend::Batched`] (the batch engine
/// runs independent single-thread lanes, not co-schedules).
pub fn measure_workload(w: &Workload, backend: Backend) -> Throughput {
    let Some(contender) = &w.contender else {
        return measure_throughput(&w.prog, w.reps, backend);
    };
    let cfg = CpuConfig {
        threads: 2,
        ..CpuConfig::coffee_lake()
    };
    let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let progs = [&w.prog, contender];
    let run = |cpu: &mut Cpu| cpu.run(&progs, backend);
    let _ = run(&mut cpu);
    let start = Instant::now();
    let mut committed = 0u64;
    let mut last = None;
    for _ in 0..w.reps {
        let mut results = run(&mut cpu);
        for r in &results {
            assert!(r.halted && !r.limit_hit, "workload must run to completion");
            committed += r.committed;
        }
        last = Some(results.swap_remove(0));
    }
    let secs = start.elapsed().as_secs_f64();
    Throughput {
        instrs_per_sec: committed as f64 / secs,
        result: last.expect("reps >= 1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_names_are_stable() {
        let suite = standard_suite(100, 1);
        let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "alu-chain",
                "branchy",
                "squash-storm",
                "memory-stream",
                "div-race",
                "smt-contention"
            ]
        );
    }

    #[test]
    fn every_workload_halts_on_both_schedulers_with_identical_state() {
        for w in standard_suite(60, 1) {
            let fast = measure_workload(&w, Backend::EventDriven);
            let reference = measure_workload(&w, Backend::Reference);
            assert!(fast.instrs_per_sec > 0.0);
            assert_eq!(
                (fast.result.cycles, fast.result.committed, &fast.result.regs),
                (
                    reference.result.cycles,
                    reference.result.committed,
                    &reference.result.regs
                ),
                "schedulers diverged on {}",
                w.name
            );
        }
    }

    #[test]
    fn timer_race_tails_are_readable_and_ordered() {
        // A 1-div measured chain (~13 cycles) against a 60-add clock chain:
        // the measured chain must win; flip the lengths and the clock wins.
        let mut cpu = Cpu::new(
            CpuConfig::coffee_lake().with_trace(),
            HierarchyConfig::coffee_lake(),
        );
        let short = timer_race(1, 60);
        let r = cpu.run_one(&short.prog, Backend::EventDriven);
        assert!(r.halted);
        let (m, c) = short.tail_completions(&r);
        assert!(m < c, "1 div (~13 cycles) beats 60 serial adds: {m} vs {c}");

        let long = timer_race(4, 5);
        let r = cpu.run_one(&long.prog, Backend::EventDriven);
        let (m, c) = long.tail_completions(&r);
        assert!(
            m > c,
            "4 divs (~52 cycles) lose to 5 serial adds: {m} vs {c}"
        );
    }

    #[test]
    fn timer_race_edge_lengths_assemble_and_halt() {
        let mut cpu = Cpu::new(
            CpuConfig::coffee_lake().with_trace(),
            HierarchyConfig::coffee_lake(),
        );
        for (divs, adds) in [(0, 0), (0, 8), (3, 0)] {
            let race = timer_race(divs, adds);
            let r = cpu.run_one(&race.prog, Backend::EventDriven);
            assert!(r.halted, "race ({divs}, {adds}) must halt");
            let (m, c) = race.tail_completions(&r);
            assert!(m > 0 && c > 0);
        }
    }

    #[test]
    fn contender_kernels_halt_and_stress_their_ports() {
        let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
        let alu = cpu.run_one(&alu_saturate(50, 8), Backend::EventDriven);
        assert!(alu.halted);
        // 8 chains × 4 unroll + loop overhead at 4 ALU ports: IPC should
        // pin near the 4-wide commit limit.
        assert!(alu.ipc() > 3.0, "alu_saturate IPC {:.2}", alu.ipc());
        let div = cpu.run_one(&div_hog(50), Backend::EventDriven);
        assert!(div.halted);
        // Two parallel dependent divide chains: each iteration takes about
        // one divide latency (the chains overlap), so the divider stays
        // busy roughly every reciprocal interval.
        let cycles_per_iter = div.cycles as f64 / 50.0;
        assert!(
            (10.0..20.0).contains(&cycles_per_iter),
            "div_hog should be divide-latency-bound: {cycles_per_iter:.2} cycles/iteration"
        );
    }

    #[test]
    fn branchy_mask_controls_mispredict_rate() {
        let easy = measure_throughput(&branchy(400, 7), 1, Backend::EventDriven);
        let storm = measure_throughput(&branchy(400, 1), 1, Backend::EventDriven);
        assert!(
            storm.result.mispredicts > easy.result.mispredicts * 2,
            "mask=1 should mispredict far more: {} vs {}",
            storm.result.mispredicts,
            easy.result.mispredicts
        );
    }
}
