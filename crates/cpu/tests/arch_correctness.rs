//! Differential testing: the out-of-order core must produce exactly the
//! architectural results of the in-order reference interpreter, for every
//! program. Speculation and reordering may only change timing and cache
//! state — this is the invariant that makes Hacky Racers "correct execution"
//! attacks (paper §9: "even correct execution results in information
//! leakage").

use proptest::prelude::*;
use racer_cpu::{Backend, Cpu, CpuConfig, PredictorKind};
use racer_isa::{interp, Asm, Cond, DataMemory, Instr, MemOperand, Operand, Program, Reg};
use racer_mem::HierarchyConfig;

fn fresh_cpu() -> Cpu {
    Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake())
}

/// Run `prog` on both engines from the same initial memory; compare final
/// registers, memory and dynamic instruction count.
fn differential(prog: &Program, init_mem: &DataMemory) {
    let mut ref_mem = init_mem.clone();
    let reference = interp::run(prog, &mut ref_mem, 5_000_000).expect("reference terminates");

    let mut cpu = fresh_cpu();
    *cpu.mem_mut() = init_mem.clone();
    let result = cpu.run_one(prog, Backend::EventDriven);
    assert!(!result.limit_hit, "core hit its cycle limit");

    assert_eq!(result.regs, reference.regs, "register files diverge");
    assert_eq!(cpu.mem(), &ref_mem, "memory contents diverge");
    assert_eq!(
        result.committed, reference.steps,
        "dynamic instruction counts diverge"
    );
    assert_eq!(result.halted, reference.halted);
}

#[test]
fn arithmetic_loop_matches_reference() {
    let mut asm = Asm::new();
    let (i, acc, t) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(i, 25);
    let top = asm.here();
    asm.mul(t, i, i);
    asm.add(acc, acc, t);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    differential(&asm.assemble().unwrap(), &DataMemory::new());
}

#[test]
fn memory_dataflow_matches_reference() {
    let mut asm = Asm::new();
    let (p, v, s) = (asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(p, 0x1000);
    for _ in 0..5 {
        asm.load(v, MemOperand::base_disp(p, 0)); // pointer chase
        asm.add(s, s, v);
        asm.mov(p, v);
    }
    asm.store(s, MemOperand::abs(0x5000));
    asm.load(v, MemOperand::abs(0x5000)); // read back through the store
    asm.add(s, s, v);
    asm.halt();

    let mut mem = DataMemory::new();
    // 0x1000 -> 0x2000 -> 0x3000 -> 0x2000 ... a small pointer cycle.
    mem.write(0x1000, 0x2000);
    mem.write(0x2000, 0x3000);
    mem.write(0x3000, 0x2000);
    differential(&asm.assemble().unwrap(), &mem);
}

#[test]
fn store_to_load_same_address_is_ordered() {
    // A load must observe an older store to the same address even though
    // the core has no forwarding (it stalls instead).
    let mut asm = Asm::new();
    let (a, b) = (asm.reg(), asm.reg());
    asm.mov_imm(a, 123);
    asm.store(a, MemOperand::abs(0x40));
    asm.load(b, MemOperand::abs(0x40));
    asm.add(b, b, Operand::Imm(1));
    asm.halt();
    differential(&asm.assemble().unwrap(), &DataMemory::new());
}

#[test]
fn data_dependent_branches_match_reference() {
    // Branch direction depends on loaded data — exercises mispredict/squash
    // paths while the architectural result must stay exact.
    let mut asm = Asm::new();
    let (i, v, acc, base) = (asm.reg(), asm.reg(), asm.reg(), asm.reg());
    asm.mov_imm(base, 0x100);
    asm.mov_imm(i, 16);
    let top = asm.here();
    asm.load(v, MemOperand::base_index(base, i, 8, 0));
    let skip = asm.fwd_label();
    asm.br(Cond::Eq, v, 0, skip);
    asm.add(acc, acc, v);
    asm.bind(skip);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();

    let mut mem = DataMemory::new();
    for k in 0..=16u64 {
        // Irregular pattern: some zeros, some values.
        let val = if k % 3 == 0 { 0 } else { k * 10 };
        mem.write(0x100 + k * 8, val);
    }
    differential(&asm.assemble().unwrap(), &mem);
}

#[test]
fn wrong_path_stores_never_commit() {
    // Train a branch one way, then flip it: the wrong-path store must not
    // reach memory.
    let mut asm = Asm::new();
    let (x, sentinel) = (asm.reg(), asm.reg());
    asm.load(x, MemOperand::abs(0x10));
    let skip = asm.fwd_label();
    asm.br(Cond::Eq, x, 0, skip);
    asm.mov_imm(sentinel, 0xDEAD);
    asm.store(sentinel, MemOperand::abs(0x999));
    asm.bind(skip);
    asm.halt();
    let prog = asm.assemble().unwrap();

    let mut cpu = fresh_cpu();
    // Train: x != 0 so the store executes architecturally several times.
    cpu.mem_mut().write(0x10, 1);
    for _ in 0..4 {
        cpu.run_one(&prog, Backend::EventDriven);
    }
    assert_eq!(cpu.mem().read(0x999), 0xDEAD);
    // Reset the canary, flip the condition: predictor now expects the
    // not-taken (store) path, so the store executes transiently…
    cpu.mem_mut().write(0x999, 0);
    cpu.mem_mut().write(0x10, 0);
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert!(r.mispredicts >= 1, "the flipped branch must mispredict");
    assert_eq!(
        cpu.mem().read(0x999),
        0,
        "transient store must never commit"
    );
}

#[test]
fn division_by_zero_is_saturating_everywhere() {
    let mut asm = Asm::new();
    let (a, b) = (asm.reg(), asm.reg());
    asm.mov_imm(a, 7);
    asm.div(b, a, Operand::Imm(0));
    asm.halt();
    differential(&asm.assemble().unwrap(), &DataMemory::new());
}

#[test]
fn all_predictors_preserve_architecture() {
    let mut asm = Asm::new();
    let (i, acc) = (asm.reg(), asm.reg());
    asm.mov_imm(i, 12);
    let top = asm.here();
    asm.add(acc, acc, i);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    let prog = asm.assemble().unwrap();

    let mut ref_mem = DataMemory::new();
    let reference = interp::run(&prog, &mut ref_mem, 100_000).unwrap();

    for kind in [
        PredictorKind::TwoBit { entries: 512 },
        PredictorKind::AlwaysTaken,
        PredictorKind::AlwaysNotTaken,
    ] {
        let cfg = CpuConfig {
            predictor: kind,
            ..CpuConfig::coffee_lake()
        };
        let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
        let r = cpu.run_one(&prog, Backend::EventDriven);
        assert_eq!(r.regs, reference.regs, "{kind:?} diverged");
        assert_eq!(r.committed, reference.steps);
    }
}

// ---------------------------------------------------------------------------
// Property-based differential testing over random programs.
// ---------------------------------------------------------------------------

/// Generate a random terminating program: straight-line ALU/memory ops plus
/// forward-only branches (guaranteeing termination), ending with `halt`.
fn arb_program(len: usize) -> impl Strategy<Value = Program> {
    let instr = |at: usize, len: usize| {
        let r = 0..8usize;
        (
            0..8u8,
            r.clone(),
            r.clone(),
            r,
            0..16u64,
            (at + 1)..(len + 1),
        )
            .prop_map(move |(kind, d, a, b, slot, tgt)| {
                let reg = |i: usize| Reg::new(i);
                let addr = 0x100 + slot * 8;
                match kind {
                    0 => Instr::Alu {
                        op: racer_isa::AluOp::Add,
                        dst: reg(d),
                        a: Operand::Reg(reg(a)),
                        b: Operand::Reg(reg(b)),
                    },
                    1 => Instr::Alu {
                        op: racer_isa::AluOp::Mul,
                        dst: reg(d),
                        a: Operand::Reg(reg(a)),
                        b: Operand::Imm(3),
                    },
                    2 => Instr::Alu {
                        op: racer_isa::AluOp::Sub,
                        dst: reg(d),
                        a: Operand::Reg(reg(a)),
                        b: Operand::Imm(1),
                    },
                    3 => Instr::Load {
                        dst: reg(d),
                        mem: MemOperand::abs(addr),
                    },
                    4 => Instr::Store {
                        src: Operand::Reg(reg(a)),
                        mem: MemOperand::abs(addr),
                    },
                    5 => Instr::Alu {
                        op: racer_isa::AluOp::Div,
                        dst: reg(d),
                        a: Operand::Reg(reg(a)),
                        b: Operand::Imm(7),
                    },
                    6 => Instr::Branch {
                        cond: Cond::Lt,
                        a: reg(a),
                        b: Operand::Imm(50),
                        target: tgt.min(len),
                    },
                    _ => Instr::Alu {
                        op: racer_isa::AluOp::Xor,
                        dst: reg(d),
                        a: Operand::Reg(reg(a)),
                        b: Operand::Reg(reg(b)),
                    },
                }
            })
    };
    let strategies: Vec<_> = (0..len).map(|at| instr(at, len)).collect();
    strategies.prop_map(move |mut instrs| {
        instrs.push(Instr::Halt);
        Program::from_instrs(instrs).expect("generated program is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_match_reference(
        prog in arb_program(24),
        seeds in proptest::collection::vec(0u64..100, 16),
    ) {
        let mut mem = DataMemory::new();
        for (i, s) in seeds.iter().enumerate() {
            mem.write(0x100 + i as u64 * 8, *s);
        }
        let mut ref_mem = mem.clone();
        let reference = interp::run(&prog, &mut ref_mem, 1_000_000).expect("terminates");

        let mut cpu = fresh_cpu();
        *cpu.mem_mut() = mem;
        let result = cpu.run_one(&prog, Backend::EventDriven);
        prop_assert!(!result.limit_hit);
        prop_assert_eq!(&result.regs, &reference.regs);
        prop_assert_eq!(cpu.mem(), &ref_mem);
        prop_assert_eq!(result.committed, reference.steps);
    }
}
