//! Differential validation of every execution backend against the
//! retained scan-based reference scheduler (`racer_cpu::reference`): the
//! event-driven production scheduler and the lockstep batch engine
//! (`racer_cpu::engine`) both run every program.
//!
//! The implementations must be **cycle-exact** equivalents: for any
//! program and configuration, every observable of [`RunResult`] — total
//! cycles, commit counts, squash/mispredict/interrupt counters, final
//! registers, the full per-load event stream, the pipeline trace and the
//! cache-hierarchy statistics — must be identical. Several hundred
//! randomized programs (dependent ALU chains, divides, loads/stores with
//! aliasing, prefetch/flush, fences, forward branches and jumps) are run
//! under every countermeasure mode, on machine state that deliberately
//! accumulates (warm caches, trained predictors) across programs.

use racer_cpu::{Backend, Countermeasure, Cpu, CpuConfig, RecordLevel, RunResult};
use racer_isa::{AluOp, Cond, Instr, MemOperand, Operand, Program, Reg};
use racer_mem::HierarchyConfig;

/// Deterministic SplitMix64 (the tests must not depend on external crates).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random terminating program: a mix of every instruction class the
/// scheduler handles specially, with forward branches/jumps inside the
/// body. When `loop_trips` is set, the whole body runs inside a counted
/// loop closed by a **backward** branch (register 8 holds the trip
/// counter, which the body never writes), so re-fetching trained branch
/// PCs and squash-redirects to earlier PCs get differential coverage too.
fn random_program(rng: &mut Rng, len: usize, loop_trips: Option<u64>) -> Program {
    let reg = |i: u64| Reg::new(i as usize);
    let mut instrs: Vec<Instr> = Vec::with_capacity(len + 12);
    // Seed the first eight registers with small values.
    for i in 0..8u64 {
        instrs.push(Instr::Alu {
            op: AluOp::Add,
            dst: reg(i),
            a: Operand::Imm(rng.below(100) as i64),
            b: Operand::Imm(0),
        });
    }
    if let Some(trips) = loop_trips {
        instrs.push(Instr::Alu {
            op: AluOp::Add,
            dst: reg(8),
            a: Operand::Imm(trips as i64),
            b: Operand::Imm(0),
        });
    }
    let body_start = instrs.len();
    // Forward targets are capped at `end`, the loop-decrement index, so
    // every path through the body still decrements the trip counter.
    let end = body_start + len;
    for at in body_start..end {
        let d = reg(rng.below(8));
        let a = reg(rng.below(8));
        let b = reg(rng.below(8));
        // Aliased word pool (forces store-load disambiguation) plus strided
        // lines (forces misses and MSHR pressure).
        let pool_addr = 0x100 + rng.below(16) * 8;
        let line_addr = 0x4000 + rng.below(64) * 64;
        let fwd = (at as u64 + 1 + rng.below((end - at) as u64)).min(end as u64) as usize;
        let instr = match rng.below(20) {
            0..=4 => Instr::Alu {
                op: match rng.below(5) {
                    0 => AluOp::Add,
                    1 => AluOp::Sub,
                    2 => AluOp::Xor,
                    3 => AluOp::Shl,
                    _ => AluOp::And,
                },
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Reg(b),
            },
            5 | 6 => Instr::Alu {
                op: AluOp::Mul,
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Imm(3),
            },
            7 => Instr::Alu {
                op: AluOp::Div,
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Reg(b),
            },
            8..=10 => Instr::Load {
                dst: d,
                mem: MemOperand::abs(if rng.below(2) == 0 {
                    pool_addr
                } else {
                    line_addr
                }),
            },
            11 | 12 => Instr::Store {
                src: Operand::Reg(a),
                mem: MemOperand::abs(pool_addr),
            },
            13 => Instr::Lea {
                dst: d,
                mem: MemOperand::base_disp(a, rng.below(64) as i64),
            },
            14 => Instr::Prefetch {
                mem: MemOperand::abs(line_addr),
                nta: rng.below(2) == 0,
            },
            15 => Instr::Flush {
                mem: MemOperand::abs(line_addr),
            },
            16 | 17 => Instr::Branch {
                cond: if rng.below(2) == 0 {
                    Cond::Lt
                } else {
                    Cond::Ne
                },
                a,
                b: Operand::Imm(rng.below(60) as i64),
                target: fwd,
            },
            18 => {
                if rng.below(4) == 0 {
                    Instr::Jump { target: fwd }
                } else {
                    Instr::Nop
                }
            }
            _ => Instr::Fence,
        };
        instrs.push(instr);
    }
    if loop_trips.is_some() {
        instrs.push(Instr::Alu {
            op: AluOp::Sub,
            dst: reg(8),
            a: Operand::Reg(reg(8)),
            b: Operand::Imm(1),
        });
        instrs.push(Instr::Branch {
            cond: Cond::Ne,
            a: reg(8),
            b: Operand::Imm(0),
            target: body_start,
        });
    }
    instrs.push(Instr::Halt);
    Program::from_instrs(instrs).expect("generated program is valid")
}

/// Assert every observable of the two runs matches.
fn assert_equivalent(tag: &str, fast: &RunResult, slow: &RunResult) {
    assert_eq!(fast.cycles, slow.cycles, "{tag}: cycles diverge");
    assert_eq!(
        fast.committed, slow.committed,
        "{tag}: commit counts diverge"
    );
    assert_eq!(fast.halted, slow.halted, "{tag}: halt state diverges");
    assert_eq!(fast.limit_hit, slow.limit_hit, "{tag}: limit flag diverges");
    assert_eq!(
        fast.mispredicts, slow.mispredicts,
        "{tag}: mispredicts diverge"
    );
    assert_eq!(
        fast.squashed_instrs, slow.squashed_instrs,
        "{tag}: squash counts diverge"
    );
    assert_eq!(
        fast.interrupts, slow.interrupts,
        "{tag}: interrupt counts diverge"
    );
    assert_eq!(
        fast.regs, slow.regs,
        "{tag}: architectural registers diverge"
    );
    assert_eq!(fast.loads, slow.loads, "{tag}: load-event streams diverge");
    assert_eq!(
        format!("{:?}", fast.mem_stats),
        format!("{:?}", slow.mem_stats),
        "{tag}: cache statistics diverge"
    );
    assert_eq!(
        fast.trace.len(),
        slow.trace.len(),
        "{tag}: trace lengths diverge"
    );
    for (f, s) in fast.trace.iter().zip(&slow.trace) {
        assert_eq!(
            (
                f.seq,
                f.pc,
                &f.text,
                f.fetched,
                f.dispatched,
                f.issued,
                f.completed,
                f.committed
            ),
            (
                s.seq,
                s.pc,
                &s.text,
                s.fetched,
                s.dispatched,
                s.issued,
                s.completed,
                s.committed
            ),
            "{tag}: trace records diverge"
        );
    }
}

/// Run `count` random programs through every [`Backend`] on a persistent
/// pair of machines (warm caches + trained predictors accumulate
/// identically). Every third program wraps its body in a counted
/// backward-branch loop.
///
/// The batched backend forks a one-lane [`racer_cpu::MachineBatch`] from
/// the fast machine's *current* state without mutating it; the
/// event-driven run that follows starts from that same state, so the two
/// must be bit-identical — which pins the batch engine against the
/// production scheduler on every program, countermeasure and accumulated
/// warm state the suite covers.
fn run_differential(cfg: CpuConfig, seed: u64, count: usize, len: usize) {
    let mut fast_cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let mut slow_cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let mut rng = Rng(seed);
    for i in 0..count {
        let trips = if i % 3 == 2 {
            Some(2 + rng.below(3))
        } else {
            None
        };
        let prog = random_program(&mut rng, len, trips);
        let batched = fast_cpu.run_one(&prog, Backend::Batched);
        let fast = fast_cpu.run_one(&prog, Backend::EventDriven);
        let slow = slow_cpu.run_one(&prog, Backend::Reference);
        let tag = format!("cm={} program #{i}", cfg.countermeasure);
        assert_equivalent(&format!("{tag} [event-driven vs reference]"), &fast, &slow);
        assert_equivalent(&format!("{tag} [batched vs event-driven]"), &batched, &fast);
        assert_eq!(
            fast_cpu.mem(),
            slow_cpu.mem(),
            "{tag}: data memory diverges"
        );
    }
}

#[test]
fn baseline_matches_reference_on_200_random_programs() {
    let cfg = CpuConfig::coffee_lake().with_load_recording();
    run_differential(cfg, 0xD1FF, 200, 90);
}

#[test]
fn every_countermeasure_matches_reference() {
    for (i, cm) in [
        Countermeasure::InOrder,
        Countermeasure::DelayOnMiss,
        Countermeasure::InvisibleSpec,
        Countermeasure::GhostMinion,
        Countermeasure::CleanupSpec,
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = CpuConfig::coffee_lake()
            .with_countermeasure(cm)
            .with_load_recording();
        run_differential(cfg, 0xBEEF + i as u64, 40, 70);
    }
}

#[test]
fn full_trace_matches_reference() {
    let cfg = CpuConfig::coffee_lake().with_record_level(RecordLevel::Trace);
    run_differential(cfg, 0x7ACE, 40, 60);
}

#[test]
fn narrow_window_and_interrupts_match_reference() {
    // Tight ROB/scheduler plus the timer-interrupt drain exercises every
    // structural stall the schedulers model.
    let mut cfg = CpuConfig::coffee_lake().with_load_recording();
    cfg.rob_size = 24;
    cfg.rs_size = 8;
    cfg.mshrs = 2;
    cfg.interrupt_interval = Some(150);
    run_differential(cfg, 0x1177, 60, 80);

    let mut tiny = CpuConfig::coffee_lake().with_load_recording();
    tiny.issue_width = 2;
    tiny.alu_ports = 1;
    tiny.load_ports = 1;
    tiny.dispatch_width = 2;
    tiny.commit_width = 2;
    run_differential(tiny, 0x2288, 40, 70);
}

#[test]
fn counters_only_recording_matches_reference() {
    // RecordLevel::Counters must not change timing, only skip event vectors.
    let cfg = CpuConfig::coffee_lake();
    run_differential(cfg, 0x3399, 40, 90);
}
