//! Property tests for the batched lockstep engine (`racer_cpu::engine`).
//!
//! The engine's contract is bit-identity: a lane stepped inside a
//! [`MachineBatch`] must produce exactly the [`RunResult`] that forking a
//! whole machine from the same [`Snapshot`] and running it to completion
//! would — cycles, registers, load events, traces and cache statistics —
//! in any lane order, with any mix of divergent programs, under every
//! countermeasure. These tests exercise that property on randomized
//! program populations, plus the fork semantics the sweep drivers rely
//! on: forks are isolated from the snapshot and from each other, and a
//! batch is deterministic and reusable across rounds.

use racer_cpu::workloads::{alu_chain, memory_stream};
use racer_cpu::{
    Backend, Countermeasure, Cpu, CpuConfig, MachineBatch, RunResult, Snapshot, SnapshotCache,
};
use racer_isa::{AluOp, Cond, Instr, MemOperand, Operand, Program, Reg};
use racer_mem::HierarchyConfig;

const ALL_COUNTERMEASURES: [Countermeasure; 6] = [
    Countermeasure::None,
    Countermeasure::InOrder,
    Countermeasure::DelayOnMiss,
    Countermeasure::InvisibleSpec,
    Countermeasure::GhostMinion,
    Countermeasure::CleanupSpec,
];

/// xorshift64* — deterministic, dependency-free. Seed must be non-zero.
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random terminating gadget: ALU chains with multiplies and divides,
/// aliased loads/stores, strided-line loads, prefetch/flush, fences and
/// forward branches — optionally wrapped in a counted backward-branch
/// loop (register 7 holds the trip counter, never written by the body).
fn random_gadget(rng: &mut Xs, len: usize, loop_trips: Option<u64>) -> Program {
    let reg = |i: u64| Reg::new(i as usize);
    let mut instrs: Vec<Instr> = Vec::with_capacity(len + 12);
    for i in 0..7u64 {
        instrs.push(Instr::Alu {
            op: AluOp::Add,
            dst: reg(i),
            a: Operand::Imm(1 + rng.below(50) as i64),
            b: Operand::Imm(0),
        });
    }
    if let Some(trips) = loop_trips {
        instrs.push(Instr::Alu {
            op: AluOp::Add,
            dst: reg(7),
            a: Operand::Imm(trips as i64),
            b: Operand::Imm(0),
        });
    }
    let body_start = instrs.len();
    let end = body_start + len;
    for at in body_start..end {
        let d = reg(rng.below(7));
        let a = reg(rng.below(7));
        let b = reg(rng.below(7));
        let pool = 0x200 + rng.below(8) * 8;
        let line = 0x8000 + rng.below(32) * 64;
        let fwd = (at as u64 + 1 + rng.below((end - at) as u64)).min(end as u64) as usize;
        instrs.push(match rng.below(16) {
            0..=3 => Instr::Alu {
                op: match rng.below(4) {
                    0 => AluOp::Add,
                    1 => AluOp::Sub,
                    2 => AluOp::Xor,
                    _ => AluOp::And,
                },
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Reg(b),
            },
            4 => Instr::Alu {
                op: AluOp::Mul,
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Imm(5),
            },
            5 => Instr::Alu {
                op: AluOp::Div,
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Reg(b),
            },
            6..=8 => Instr::Load {
                dst: d,
                mem: MemOperand::abs(if rng.below(2) == 0 { pool } else { line }),
            },
            9 | 10 => Instr::Store {
                src: Operand::Reg(a),
                mem: MemOperand::abs(pool),
            },
            11 => Instr::Prefetch {
                mem: MemOperand::abs(line),
                nta: rng.below(2) == 0,
            },
            12 => Instr::Flush {
                mem: MemOperand::abs(line),
            },
            13 | 14 => Instr::Branch {
                cond: if rng.below(2) == 0 {
                    Cond::Lt
                } else {
                    Cond::Ne
                },
                a,
                b: Operand::Imm(rng.below(40) as i64),
                target: fwd,
            },
            _ => Instr::Fence,
        });
    }
    if loop_trips.is_some() {
        instrs.push(Instr::Alu {
            op: AluOp::Sub,
            dst: reg(7),
            a: Operand::Reg(reg(7)),
            b: Operand::Imm(1),
        });
        instrs.push(Instr::Branch {
            cond: Cond::Ne,
            a: reg(7),
            b: Operand::Imm(0),
            target: body_start,
        });
    }
    instrs.push(Instr::Halt);
    Program::from_instrs(instrs).expect("generated gadget is valid")
}

/// A population of random gadgets: every third one loops, lengths vary so
/// lanes finish in different lockstep rounds.
fn gadget_population(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = Xs(seed);
    (0..count)
        .map(|i| {
            let len = 30 + (rng.below(41) as usize);
            let trips = (i % 3 == 2).then(|| 2 + rng.below(3));
            random_gadget(&mut rng, len, trips)
        })
        .collect()
}

/// Bit-identity over every observable: the named fields give readable
/// failures, the Debug rendering closes over everything else (load
/// events, traces, cache statistics).
fn assert_bit_identical(tag: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.cycles, b.cycles, "{tag}: cycles diverge");
    assert_eq!(a.committed, b.committed, "{tag}: commit counts diverge");
    assert_eq!(a.regs, b.regs, "{tag}: registers diverge");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "{tag}: full results diverge"
    );
}

/// A snapshot of a machine warmed on the standard kernels (trained
/// predictor, populated caches — the state a sweep would fork from).
fn warmed_snapshot(cfg: CpuConfig) -> Snapshot {
    let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    cpu.run_one(&alu_chain(200), Backend::EventDriven);
    cpu.run_one(&memory_stream(200), Backend::EventDriven);
    cpu.snapshot()
}

#[test]
fn lockstep_matches_per_machine_forks_under_every_countermeasure() {
    for cm in ALL_COUNTERMEASURES {
        let cfg = CpuConfig::coffee_lake()
            .with_countermeasure(cm)
            .with_load_recording();
        let snap = warmed_snapshot(cfg);
        let progs = gadget_population(0xC0FFEE ^ cm as u64, 12);
        let mut batch = MachineBatch::from_snapshot(&snap);
        for p in &progs {
            batch.push(p);
        }
        let batched = batch.run();
        assert_eq!(batched.len(), progs.len());
        for (i, (prog, got)) in progs.iter().zip(&batched).enumerate() {
            let want = snap.fork().run_one(prog, Backend::EventDriven);
            assert_bit_identical(&format!("cm={cm} gadget #{i}"), got, &want);
        }
    }
}

#[test]
fn lockstep_matches_per_machine_forks_with_full_traces() {
    let cfg = CpuConfig::coffee_lake().with_record_level(racer_cpu::RecordLevel::Trace);
    let snap = warmed_snapshot(cfg);
    let progs = gadget_population(0x7_1CE5, 8);
    let mut batch = MachineBatch::from_snapshot(&snap);
    for p in &progs {
        batch.push(p);
    }
    for (i, (prog, got)) in progs.iter().zip(&batch.run()).enumerate() {
        let want = snap.fork().run_one(prog, Backend::EventDriven);
        assert_bit_identical(&format!("traced gadget #{i}"), got, &want);
    }
}

#[test]
fn lane_order_never_changes_results() {
    let snap = warmed_snapshot(CpuConfig::coffee_lake().with_load_recording());
    let progs = gadget_population(0x0D0E_0D0E, 10);
    let run_in_order = |order: &[usize]| -> Vec<RunResult> {
        let mut batch = MachineBatch::from_snapshot(&snap);
        for &i in order {
            batch.push(&progs[i]);
        }
        batch.run()
    };
    let forward: Vec<usize> = (0..progs.len()).collect();
    let mut reversed = forward.clone();
    reversed.reverse();
    // Interleave from both ends: 0, 9, 1, 8, ...
    let interleaved: Vec<usize> = forward
        .iter()
        .zip(reversed.iter())
        .flat_map(|(&a, &b)| [a, b])
        .take(progs.len())
        .collect();
    let base = run_in_order(&forward);
    for (name, order) in [("reversed", &reversed), ("interleaved", &interleaved)] {
        let permuted = run_in_order(order);
        for (slot, &i) in order.iter().enumerate() {
            assert_bit_identical(
                &format!("{name} order, gadget #{i}"),
                &permuted[slot],
                &base[i],
            );
        }
    }
}

#[test]
fn forks_are_deterministic_and_isolated() {
    let snap = warmed_snapshot(CpuConfig::coffee_lake().with_load_recording());
    let prog = gadget_population(0xF0_4E5, 1).remove(0);

    // N forks of the same snapshot all see the same starting state, no
    // matter how many siblings ran (and dirtied their caches) before them.
    let mut batch = MachineBatch::from_snapshot(&snap);
    for _ in 0..8 {
        batch.push(&prog);
    }
    let lanes = batch.run();
    let solo = snap.fork().run_one(&prog, Backend::EventDriven);
    for (i, lane) in lanes.iter().enumerate() {
        assert_bit_identical(&format!("sibling lane #{i}"), lane, &solo);
    }

    // Whole-machine forks are equally isolated: running one fork (stores,
    // cache fills, predictor training) must not leak into the snapshot.
    let first = snap.fork().run_one(&prog, Backend::EventDriven);
    let second = snap.fork().run_one(&prog, Backend::EventDriven);
    assert_bit_identical("fork isolation", &first, &second);
}

#[test]
fn batch_is_reusable_across_rounds() {
    let snap = warmed_snapshot(CpuConfig::coffee_lake().with_load_recording());
    let progs = gadget_population(0xA5A5_A5A5, 6);
    let mut batch = MachineBatch::from_snapshot(&snap);
    let mut rounds = Vec::new();
    for _ in 0..3 {
        for p in &progs {
            batch.push(p);
        }
        assert_eq!(batch.lanes(), progs.len());
        rounds.push(batch.run());
        assert!(batch.is_empty(), "run() drains the lanes");
    }
    // Every round forks the same snapshot: identical results, even though
    // later rounds recycle the first round's lane allocations.
    for (r, round) in rounds.iter().enumerate().skip(1) {
        for (i, got) in round.iter().enumerate() {
            assert_bit_identical(&format!("round {r}, gadget #{i}"), got, &rounds[0][i]);
        }
    }
}

#[test]
fn run_many_matches_individual_forks_in_input_order() {
    let snap = warmed_snapshot(CpuConfig::coffee_lake().with_load_recording());
    let progs = gadget_population(0x0BA7_C4ED, 9);
    let got = snap.run_many(&progs);
    assert_eq!(got.len(), progs.len());
    for (i, (prog, got)) in progs.iter().zip(&got).enumerate() {
        let want = snap.fork().run_one(prog, Backend::EventDriven);
        assert_bit_identical(&format!("run_many gadget #{i}"), got, &want);
    }
}

#[test]
fn push_from_mixes_heterogeneous_fork_sources() {
    // Three snapshots with visibly different state: cold, warmed on the
    // ALU kernel, warmed on the streaming kernel. One batch, lanes
    // alternating sources — including the same program under different
    // sources, which must share a decode table yet diverge in timing.
    let cfg = CpuConfig::coffee_lake().with_load_recording();
    let cold = Snapshot::cold(cfg, HierarchyConfig::coffee_lake());
    let warm_alu = {
        let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
        cpu.run_one(&alu_chain(200), Backend::EventDriven);
        cpu.snapshot()
    };
    let warm_stream = {
        let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
        cpu.run_one(&memory_stream(200), Backend::EventDriven);
        cpu.snapshot()
    };
    let sources = [&cold, &warm_alu, &warm_stream];
    let progs = gadget_population(0x9E37_79B9, 4);

    let mut batch = MachineBatch::from_snapshot(&cold);
    let mut expect = Vec::new();
    for (i, prog) in progs.iter().enumerate() {
        for src in sources {
            batch.push_from(src, prog);
            expect.push((i, src.fork().run_one(prog, Backend::EventDriven)));
        }
    }
    let got = batch.run();
    assert_eq!(got.len(), expect.len());
    for (slot, ((i, want), got)) in expect.iter().zip(&got).enumerate() {
        assert_bit_identical(&format!("push_from slot {slot} (gadget #{i})"), got, want);
    }
    // The warmed sources genuinely differ from cold for the streaming
    // kernel — otherwise this test proves nothing about heterogeneity.
    let cold_run = cold
        .fork()
        .run_one(&memory_stream(200), Backend::EventDriven);
    let warm_run = warm_stream
        .fork()
        .run_one(&memory_stream(200), Backend::EventDriven);
    assert_ne!(
        cold_run.cycles, warm_run.cycles,
        "sources indistinguishable"
    );
}

#[test]
#[should_panic(expected = "push_from lane snapshot must share the batch CpuConfig")]
fn push_from_rejects_mismatched_cpu_configs() {
    let base = Snapshot::cold(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let other = Snapshot::cold(
        CpuConfig::coffee_lake().with_countermeasure(Countermeasure::InOrder),
        HierarchyConfig::coffee_lake(),
    );
    let mut batch = MachineBatch::from_snapshot(&base);
    batch.push_from(&other, &alu_chain(10));
}

#[test]
fn snapshot_cache_distinct_configs_never_share() {
    let cache = SnapshotCache::new(16);
    let cfg = CpuConfig::coffee_lake();
    let warmup = alu_chain(100);
    // Four keys differing in exactly one component each.
    type Key<'a> = (CpuConfig, HierarchyConfig, Option<(&'a Program, usize)>);
    let keys: [Key; 4] = [
        (cfg, HierarchyConfig::coffee_lake(), None),
        (
            cfg.with_countermeasure(Countermeasure::DelayOnMiss),
            HierarchyConfig::coffee_lake(),
            None,
        ),
        (cfg, HierarchyConfig::small_plru(), None),
        (cfg, HierarchyConfig::coffee_lake(), Some((&warmup, 2))),
    ];
    for (cfg, hier, warm) in &keys {
        cache.warmed(*cfg, *hier, *warm);
    }
    assert_eq!(cache.len(), keys.len(), "each distinct key owns an entry");
    let c = cache.counters();
    assert_eq!((c.hits, c.misses), (0, keys.len() as u64));
    // Same warmup program but a different run count is a different key.
    cache.warmed(cfg, HierarchyConfig::coffee_lake(), Some((&warmup, 3)));
    assert_eq!(cache.len(), keys.len() + 1);
    assert_eq!(cache.counters().hits, 0);
}

#[test]
fn snapshot_cache_hits_return_identical_forks() {
    let cache = SnapshotCache::new(16);
    let cfg = CpuConfig::coffee_lake().with_load_recording();
    let warmup = memory_stream(200);
    let probe = gadget_population(0xCAC4E, 1).remove(0);

    let first = cache.warmed(cfg, HierarchyConfig::coffee_lake(), Some((&warmup, 2)));
    let second = cache.warmed(cfg, HierarchyConfig::coffee_lake(), Some((&warmup, 2)));
    let c = cache.counters();
    assert_eq!((c.hits, c.misses), (1, 1), "second lookup hits");

    // A cached hit's fork, a first-build fork, and a hand-warmed fresh
    // machine all run the probe bit-identically.
    let mut by_hand = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    by_hand.run_one(&warmup, Backend::EventDriven);
    by_hand.run_one(&warmup, Backend::EventDriven);
    let want = by_hand.run_one(&probe, Backend::EventDriven);
    let from_first = first.fork().run_one(&probe, Backend::EventDriven);
    let from_second = second.fork().run_one(&probe, Backend::EventDriven);
    assert_bit_identical("miss-built fork vs hand-warmed", &from_first, &want);
    assert_bit_identical("hit fork vs hand-warmed", &from_second, &want);
}

#[test]
fn snapshot_cache_evicts_least_recently_used_at_capacity() {
    let cache = SnapshotCache::new(2);
    let cfg = CpuConfig::coffee_lake();
    let a = HierarchyConfig::coffee_lake();
    let b = HierarchyConfig::small_plru();
    let c = HierarchyConfig::coffee_lake_noisy(7);
    cache.cold(cfg, a); // miss
    cache.cold(cfg, b); // miss
    cache.cold(cfg, a); // hit — refreshes a, making b the LRU
    cache.cold(cfg, c); // miss — evicts b
    assert_eq!(cache.len(), 2);
    cache.cold(cfg, a); // still cached
    let before = cache.counters();
    cache.cold(cfg, b); // evicted: must rebuild
    let after = cache.counters();
    assert_eq!(after.hits, before.hits);
    assert_eq!(after.misses, before.misses + 1);
}

#[test]
fn run_one_batched_leaves_the_parent_machine_untouched() {
    let mut cpu = Cpu::new(
        CpuConfig::coffee_lake().with_load_recording(),
        HierarchyConfig::coffee_lake(),
    );
    cpu.run_one(&alu_chain(200), Backend::EventDriven); // warm the parent
    let prog = gadget_population(0x5EED_5EED, 1).remove(0);

    // Batched runs fork the parent's current state without advancing it:
    // repeated calls keep observing the same state, and the event-driven
    // run that follows starts exactly where the forks did.
    let b1 = cpu.run_one(&prog, Backend::Batched);
    let b2 = cpu.run_one(&prog, Backend::Batched);
    let direct = cpu.run_one(&prog, Backend::EventDriven);
    assert_bit_identical("repeated batched runs", &b1, &b2);
    assert_bit_identical("batched vs event-driven", &b1, &direct);
}
