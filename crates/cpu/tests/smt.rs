//! SMT multi-context validation: randomized two-thread co-schedules run
//! through both the event-driven and the reference scheduler must produce
//! identical per-thread [`RunResult`]s — the SMT analogue of the
//! single-thread differential suite — plus regression pins for the
//! per-divider-unit busy model and contention sanity checks.

use proptest::prelude::*;
use racer_cpu::workloads::{alu_saturate, div_hog, div_race, timer_race};
use racer_cpu::{Backend, Countermeasure, Cpu, CpuConfig, RunResult, SmtPolicy};
use racer_isa::{AluOp, Cond, Instr, MemOperand, Operand, Program, Reg};
use racer_mem::HierarchyConfig;

/// Deterministic SplitMix64 (the tests must not depend on external crates).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random terminating program with every instruction class the
/// schedulers handle specially. `mem_base` gives each hardware thread its
/// own word pool and line range — co-scheduled threads share no data, per
/// the SMT model (contention is observed through ports and caches only).
fn random_program(rng: &mut Rng, len: usize, mem_base: u64) -> Program {
    let reg = |i: u64| Reg::new(i as usize);
    let mut instrs: Vec<Instr> = Vec::with_capacity(len + 10);
    for i in 0..8u64 {
        instrs.push(Instr::Alu {
            op: AluOp::Add,
            dst: reg(i),
            a: Operand::Imm(rng.below(100) as i64),
            b: Operand::Imm(0),
        });
    }
    let body_start = instrs.len();
    let end = body_start + len;
    for at in body_start..end {
        let d = reg(rng.below(8));
        let a = reg(rng.below(8));
        let b = reg(rng.below(8));
        let pool_addr = mem_base + rng.below(16) * 8;
        let line_addr = mem_base + 0x4000 + rng.below(64) * 64;
        let fwd = (at as u64 + 1 + rng.below((end - at) as u64)).min(end as u64) as usize;
        let instr = match rng.below(20) {
            0..=4 => Instr::Alu {
                op: match rng.below(5) {
                    0 => AluOp::Add,
                    1 => AluOp::Sub,
                    2 => AluOp::Xor,
                    3 => AluOp::Shl,
                    _ => AluOp::And,
                },
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Reg(b),
            },
            5 | 6 => Instr::Alu {
                op: AluOp::Mul,
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Imm(3),
            },
            7 => Instr::Alu {
                op: AluOp::Div,
                dst: d,
                a: Operand::Reg(a),
                b: Operand::Reg(b),
            },
            8..=10 => Instr::Load {
                dst: d,
                mem: MemOperand::abs(if rng.below(2) == 0 {
                    pool_addr
                } else {
                    line_addr
                }),
            },
            11 | 12 => Instr::Store {
                src: Operand::Reg(a),
                mem: MemOperand::abs(pool_addr),
            },
            13 => Instr::Lea {
                dst: d,
                mem: MemOperand::base_disp(a, rng.below(64) as i64),
            },
            14 => Instr::Prefetch {
                mem: MemOperand::abs(line_addr),
                nta: rng.below(2) == 0,
            },
            15 => Instr::Flush {
                mem: MemOperand::abs(line_addr),
            },
            16 | 17 => Instr::Branch {
                cond: if rng.below(2) == 0 {
                    Cond::Lt
                } else {
                    Cond::Ne
                },
                a,
                b: Operand::Imm(rng.below(60) as i64),
                target: fwd,
            },
            18 => {
                if rng.below(4) == 0 {
                    Instr::Jump { target: fwd }
                } else {
                    Instr::Nop
                }
            }
            _ => Instr::Fence,
        };
        instrs.push(instr);
    }
    instrs.push(Instr::Halt);
    Program::from_instrs(instrs).expect("generated program is valid")
}

/// Assert every observable of two runs matches.
fn assert_equivalent(tag: &str, fast: &RunResult, slow: &RunResult) {
    assert_eq!(fast.cycles, slow.cycles, "{tag}: cycles diverge");
    assert_eq!(
        fast.committed, slow.committed,
        "{tag}: commit counts diverge"
    );
    assert_eq!(fast.halted, slow.halted, "{tag}: halt state diverges");
    assert_eq!(fast.limit_hit, slow.limit_hit, "{tag}: limit flag diverges");
    assert_eq!(
        fast.mispredicts, slow.mispredicts,
        "{tag}: mispredicts diverge"
    );
    assert_eq!(
        fast.squashed_instrs, slow.squashed_instrs,
        "{tag}: squash counts diverge"
    );
    assert_eq!(
        fast.regs, slow.regs,
        "{tag}: architectural registers diverge"
    );
    assert_eq!(fast.loads, slow.loads, "{tag}: load-event streams diverge");
    assert_eq!(
        format!("{:?}", fast.mem_stats),
        format!("{:?}", slow.mem_stats),
        "{tag}: cache statistics diverge"
    );
}

/// Run `count` random two-thread co-schedules through both schedulers on a
/// persistent pair of machines (warm caches + trained predictors
/// accumulate identically) and require per-thread identity.
fn run_smt_differential(cfg: CpuConfig, seed: u64, count: usize, len: usize) {
    assert_eq!(cfg.threads, 2);
    let mut fast_cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let mut slow_cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let mut rng = Rng(seed);
    for i in 0..count {
        // Uneven lengths: one thread regularly outlives the other, so the
        // done-thread/survivor phase gets coverage too.
        let len_b = len / 2 + rng.below(len as u64) as usize;
        let prog_a = random_program(&mut rng, len, 0x100);
        let prog_b = random_program(&mut rng, len_b, 0x2_0100);
        let fast = fast_cpu.run(&[&prog_a, &prog_b], Backend::EventDriven);
        let slow = slow_cpu.run(&[&prog_a, &prog_b], Backend::Reference);
        for tid in 0..2 {
            let tag = format!(
                "policy={:?} cm={} co-schedule #{i} thread {tid}",
                cfg.smt_policy, cfg.countermeasure
            );
            assert_equivalent(&tag, &fast[tid], &slow[tid]);
        }
        assert_eq!(
            fast_cpu.mem(),
            slow_cpu.mem(),
            "co-schedule #{i}: data memory diverges"
        );
    }
}

fn smt_cfg(policy: SmtPolicy) -> CpuConfig {
    CpuConfig::coffee_lake()
        .with_threads(2)
        .with_smt_policy(policy)
        .with_load_recording()
}

#[test]
fn round_robin_coschedules_match_reference() {
    run_smt_differential(smt_cfg(SmtPolicy::RoundRobin), 0x5317, 50, 80);
}

#[test]
fn icount_coschedules_match_reference() {
    run_smt_differential(smt_cfg(SmtPolicy::Icount), 0x1C07, 50, 80);
}

#[test]
fn every_countermeasure_matches_reference_under_smt() {
    for (i, cm) in [
        Countermeasure::InOrder,
        Countermeasure::DelayOnMiss,
        Countermeasure::InvisibleSpec,
        Countermeasure::GhostMinion,
        Countermeasure::CleanupSpec,
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = smt_cfg(SmtPolicy::RoundRobin).with_countermeasure(cm);
        run_smt_differential(cfg, 0xC0DE + i as u64, 15, 60);
    }
}

#[test]
fn narrow_smt_machine_matches_reference() {
    // Tight shared structures maximize cross-thread interference: one
    // MSHR pool, one ALU port, two-wide issue.
    let mut cfg = smt_cfg(SmtPolicy::Icount);
    cfg.rob_size = 24;
    cfg.rs_size = 8;
    cfg.mshrs = 2;
    cfg.issue_width = 2;
    cfg.alu_ports = 1;
    cfg.load_ports = 1;
    run_smt_differential(cfg, 0x7777, 30, 60);
}

#[test]
fn multi_port_divider_matches_reference() {
    // div_ports = 2 exercises the per-unit busy model in both schedulers.
    let mut cfg = smt_cfg(SmtPolicy::RoundRobin);
    cfg.div_ports = 2;
    run_smt_differential(cfg, 0xD1D1, 30, 70);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The SMT core with `threads = 1` is the single-threaded scheduler:
    /// for arbitrary programs and every countermeasure mode it matches the
    /// pre-refactor (reference) scheduler cycle-for-cycle.
    #[test]
    fn single_thread_smt_core_matches_reference(
        seed in any::<u64>(),
        len in 20usize..90,
        cm_idx in 0usize..6,
    ) {
        let cm = [
            Countermeasure::None,
            Countermeasure::InOrder,
            Countermeasure::DelayOnMiss,
            Countermeasure::InvisibleSpec,
            Countermeasure::GhostMinion,
            Countermeasure::CleanupSpec,
        ][cm_idx];
        let cfg = CpuConfig::coffee_lake()
            .with_countermeasure(cm)
            .with_load_recording();
        let prog = random_program(&mut Rng(seed), len, 0x100);
        let mut fast = Cpu::new(cfg, HierarchyConfig::coffee_lake());
        let mut slow = Cpu::new(cfg, HierarchyConfig::coffee_lake());
        let f = fast.run_one(&prog, Backend::EventDriven);
        let s = slow.run_one(&prog, Backend::Reference);
        assert_equivalent(&format!("proptest cm={cm}"), &f, &s);
        prop_assert_eq!(f.cycles, s.cycles);
    }
}

// ---- per-divider-unit busy model (div_free_at bugfix) ----------------------

/// Straight-line program with two *independent* divides.
fn two_independent_divs() -> Program {
    let a = Reg::new(0);
    let b = Reg::new(1);
    let instrs = vec![
        Instr::Alu {
            op: AluOp::Add,
            dst: a,
            a: Operand::Imm(1 << 20),
            b: Operand::Imm(0),
        },
        Instr::Alu {
            op: AluOp::Add,
            dst: b,
            a: Operand::Imm(1 << 19),
            b: Operand::Imm(0),
        },
        Instr::Alu {
            op: AluOp::Div,
            dst: a,
            a: Operand::Reg(a),
            b: Operand::Imm(3),
        },
        Instr::Alu {
            op: AluOp::Div,
            dst: b,
            a: Operand::Reg(b),
            b: Operand::Imm(5),
        },
        Instr::Halt,
    ];
    Program::from_instrs(instrs).expect("valid")
}

fn issue_cycles_of_divs(cfg: CpuConfig) -> Vec<u64> {
    let mut cpu = Cpu::new(cfg.with_trace(), HierarchyConfig::coffee_lake());
    let r = cpu.run_one(&two_independent_divs(), Backend::EventDriven);
    assert!(r.halted);
    r.trace
        .iter()
        .filter(|t| t.text.contains("div"))
        .map(|t| t.issued.expect("divs issue"))
        .collect()
}

#[test]
fn one_divider_unit_serializes_independent_divides() {
    let cfg = CpuConfig::coffee_lake();
    assert_eq!(cfg.div_ports, 1);
    let issued = issue_cycles_of_divs(cfg);
    assert_eq!(issued.len(), 2);
    let gap = issued[1] - issued[0];
    assert_eq!(
        gap, cfg.latencies.div_recip,
        "single divider: second divide waits out the reciprocal interval"
    );
}

#[test]
fn two_divider_units_overlap_independent_divides() {
    let cfg = CpuConfig {
        div_ports: 2,
        ..CpuConfig::coffee_lake()
    };
    let issued = issue_cycles_of_divs(cfg);
    assert_eq!(issued.len(), 2);
    assert_eq!(
        issued[0], issued[1],
        "two divider units: independent divides issue the same cycle"
    );
}

/// Absolute pin: the 1-port divide path is bit-for-bit today's behavior.
/// If this value moves, the per-unit refactor changed single-unit timing —
/// which it must never do.
#[test]
fn one_port_div_race_cycles_are_pinned() {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let r = cpu.run_one(&div_race(64), Backend::EventDriven);
    assert!(r.halted);
    assert_eq!(
        r.cycles, PINNED_DIV_RACE_CYCLES,
        "div_race(64) timing moved on a 1-divider config"
    );
}

/// See `one_port_div_race_cycles_are_pinned`.
const PINNED_DIV_RACE_CYCLES: u64 = 910;

#[test]
fn second_divider_unit_speeds_up_independent_divide_bursts() {
    // Bursts of four independent divides: with one divider unit the burst
    // serializes at the reciprocal interval; with two units it halves.
    let burst = {
        let mut asm = racer_isa::Asm::new();
        let i = asm.reg();
        let seed = asm.reg();
        let outs = asm.regs(4);
        asm.mov_imm(i, 64);
        asm.mov_imm(seed, 1 << 20);
        let top = asm.here();
        for &o in &outs {
            asm.div(o, seed, 3i64);
        }
        asm.subi(i, i, 1);
        asm.br(Cond::Ne, i, 0, top);
        asm.halt();
        asm.assemble().expect("valid program")
    };
    let one = {
        let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
        cpu.run_one(&burst, Backend::EventDriven).cycles
    };
    let two = {
        let cfg = CpuConfig {
            div_ports: 2,
            ..CpuConfig::coffee_lake()
        };
        let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
        cpu.run_one(&burst, Backend::EventDriven).cycles
    };
    assert!(
        two * 3 < one * 2,
        "a second divider unit must unserialize divide bursts: {one} -> {two}"
    );
}

// ---- contention sanity ------------------------------------------------------

/// Thread-0 cycles for a co-run of the racing-gadget timer against a
/// contender.
fn timer_cycles_against(contender: &Program) -> u64 {
    let cfg = CpuConfig::coffee_lake().with_threads(2);
    let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let race = timer_race(3, 40);
    let results = cpu.run(&[&race.prog, contender], Backend::EventDriven);
    assert!(results[0].halted && results[1].halted);
    results[0].cycles
}

#[test]
fn port_contention_slows_the_co_resident_timer() {
    // An empty contender (immediate halt) leaves the timer effectively
    // alone; an ALU-saturating contender must cost it cycles; a div-hog
    // contender must cost its divide chain even more.
    let idle = Program::from_instrs(vec![Instr::Halt]).expect("valid");
    let baseline = timer_cycles_against(&idle);
    let alu = timer_cycles_against(&alu_saturate(400, 8));
    let div = timer_cycles_against(&div_hog(400));
    assert!(
        alu > baseline,
        "ALU saturation must slow the racer: {baseline} -> {alu}"
    );
    assert!(
        div > baseline,
        "divider hogging must slow the divide chain: {baseline} -> {div}"
    );
}

#[test]
fn smt_policies_both_make_progress_under_saturation() {
    // Two identical ALU-saturating threads on shared ports. The policies
    // split the machine differently — round-robin near-evenly, ICOUNT with
    // a winner bias (the low-occupancy thread keeps winning arbitration) —
    // but under either, the port contention is conserved: whoever finishes
    // last must have absorbed it, and nobody may starve outright.
    let solo = {
        let mut solo_cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
        solo_cpu
            .run_one(&alu_saturate(200, 8), Backend::EventDriven)
            .cycles
    };
    for policy in [SmtPolicy::RoundRobin, SmtPolicy::Icount] {
        let cfg = CpuConfig::coffee_lake()
            .with_threads(2)
            .with_smt_policy(policy);
        let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
        let a = alu_saturate(200, 8);
        let b = alu_saturate(200, 8);
        let results = cpu.run(&[&a, &b], Backend::EventDriven);
        assert!(
            results[0].halted && results[1].halted,
            "{policy}: both halt"
        );
        let last = results.iter().map(|r| r.cycles).max().expect("two threads");
        assert!(
            last > solo * 3 / 2,
            "{policy}: the last finisher must absorb the shared-port contention ({last} vs solo {solo})"
        );
        for (tid, r) in results.iter().enumerate() {
            assert!(
                r.cycles < solo * 3,
                "{policy}: thread {tid} must not starve ({} vs solo {solo})",
                r.cycles
            );
        }
    }
}

#[test]
fn run_requires_matching_thread_count() {
    let cfg = CpuConfig::coffee_lake().with_threads(2);
    let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let p = Program::from_instrs(vec![Instr::Halt]).expect("valid");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cpu.run(&[&p], Backend::EventDriven)
    }));
    assert!(result.is_err(), "1 program on a 2-thread config must panic");
}
