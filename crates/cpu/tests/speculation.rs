//! Speculation semantics: branch training, squash, transient cache traces,
//! and the countermeasure modes of paper §8.
//!
//! These tests pin down the exact properties the racing gadgets exploit:
//! a mistrained branch transiently executes the wrong path, wrong-path loads
//! change cache state before the squash, and only some defences remove that
//! trace.

use racer_cpu::{Backend, Countermeasure, Cpu, CpuConfig};
use racer_isa::{Asm, Cond, MemOperand, Program};
use racer_mem::{Addr, HierarchyConfig, HitLevel};

fn cpu_with(cm: Countermeasure) -> Cpu {
    let cfg = CpuConfig::coffee_lake()
        .with_countermeasure(cm)
        .with_load_recording();
    Cpu::new(cfg, HierarchyConfig::coffee_lake())
}

/// A minimal Spectre-v1-style gadget:
///
/// ```text
///   x    = mem[X_ADDR]          (slow: flushed before the run)
///   if x < 1:                   (trained taken; actually not-taken when x=1)
///       y = mem[SECRET_DEP]     (transient load — the trace)
/// ```
///
/// Returns the program; `SECRET_DEP` is the probe address.
const X_ADDR: u64 = 0x1_0000;
const PROBE: u64 = 0x2_0040;

fn spectre_like() -> Program {
    spectre_like_delayed(0)
}

/// Like [`spectre_like`], but the body load sits behind a chain of
/// `body_delay` dependent adds — giving the branch a chance to resolve and
/// squash the body before the load issues (the §5.1 race, from the other
/// side).
fn spectre_like_delayed(body_delay: usize) -> Program {
    let mut asm = Asm::new();
    let (x, y) = (asm.reg(), asm.reg());
    let skip = asm.fwd_label();
    asm.load(x, MemOperand::abs(X_ADDR));
    asm.br(Cond::Ge, x, 1, skip); // taken (skip) when x >= 1
    let mut idx = asm.reg();
    asm.mov_imm(idx, 0);
    for _ in 0..body_delay {
        let n = asm.reg();
        asm.addi(n, idx, 0);
        idx = n;
    }
    // Address PROBE + idx*1 where idx == 0: reached only when x == 0.
    asm.load(y, MemOperand::base_index(idx, idx, 1, PROBE as i64));
    asm.bind(skip);
    asm.halt();
    asm.assemble().expect("valid gadget")
}

/// Train the predictor so the body (`x == 0` path) is predicted.
fn train(cpu: &mut Cpu, prog: &Program, runs: usize) {
    cpu.mem_mut().write(X_ADDR, 0);
    for _ in 0..runs {
        cpu.run_one(prog, Backend::EventDriven);
    }
}

#[test]
fn two_bit_training_eliminates_mispredicts() {
    let mut cpu = cpu_with(Countermeasure::None);
    let prog = spectre_like();
    cpu.mem_mut().write(X_ADDR, 0);
    cpu.run_one(&prog, Backend::EventDriven); // first run may mispredict
    let trained = cpu.run_one(&prog, Backend::EventDriven);
    assert_eq!(
        trained.mispredicts, 0,
        "trained branch must predict correctly"
    );
}

#[test]
fn mistrained_branch_leaves_transient_cache_trace() {
    let mut cpu = cpu_with(Countermeasure::None);
    let prog = spectre_like();
    train(&mut cpu, &prog, 4);

    // Flip the condition; evict x so the branch resolves slowly; the body
    // load issues transiently in the meantime.
    cpu.mem_mut().write(X_ADDR, 1);
    cpu.hierarchy_mut().flush(Addr(X_ADDR));
    cpu.hierarchy_mut().flush(Addr(PROBE));
    let r = cpu.run_one(&prog, Backend::EventDriven);

    assert_eq!(
        r.mispredicts, 1,
        "flipped branch must mispredict exactly once"
    );
    assert!(r.squashed_instrs >= 1);
    assert!(
        r.transient_touched(PROBE),
        "wrong-path load must have issued"
    );
    assert_eq!(
        cpu.hierarchy().probe(Addr(PROBE)),
        HitLevel::L1,
        "the transient fill must persist after the squash — the Spectre property"
    );
}

#[test]
fn resolved_fast_branch_squashes_before_the_body_load_issues() {
    // The branch condition is an L1 hit (fast resolve) while the body load
    // sits behind a 40-add dependence chain: the squash wins the race and
    // the load never issues.
    let mut cpu = cpu_with(Countermeasure::None);
    let prog = spectre_like_delayed(40);
    train(&mut cpu, &prog, 4);

    cpu.mem_mut().write(X_ADDR, 1);
    // x stays cached (no flush): branch resolves at ~L1 speed.
    cpu.hierarchy_mut().flush(Addr(PROBE));
    let r = cpu.run_one(&prog, Backend::EventDriven);

    assert_eq!(r.mispredicts, 1);
    assert!(
        !r.transient_touched(PROBE),
        "fast-resolving branch must squash the body before its load issues"
    );
    assert_eq!(cpu.hierarchy().probe(Addr(PROBE)), HitLevel::Memory);
}

#[test]
fn delay_on_miss_blocks_speculative_miss_trace() {
    let mut cpu = cpu_with(Countermeasure::DelayOnMiss);
    let prog = spectre_like();
    train(&mut cpu, &prog, 4);

    cpu.mem_mut().write(X_ADDR, 1);
    cpu.hierarchy_mut().flush(Addr(X_ADDR));
    cpu.hierarchy_mut().flush(Addr(PROBE));
    let r = cpu.run_one(&prog, Backend::EventDriven);

    assert_eq!(r.mispredicts, 1);
    assert!(
        !r.transient_touched(PROBE),
        "DoM must hold the speculative L1-missing load until resolution"
    );
    assert_eq!(
        cpu.hierarchy().probe(Addr(PROBE)),
        HitLevel::Memory,
        "no transient fill under delay-on-miss"
    );
}

#[test]
fn delay_on_miss_still_allows_speculative_l1_hits() {
    let mut cpu = cpu_with(Countermeasure::DelayOnMiss);
    let prog = spectre_like();
    train(&mut cpu, &prog, 4);

    cpu.mem_mut().write(X_ADDR, 1);
    cpu.hierarchy_mut().flush(Addr(X_ADDR));
    // PROBE is L1-resident: DoM lets the speculative hit proceed.
    cpu.hierarchy_mut().load(Addr(PROBE));
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert!(
        r.transient_touched(PROBE),
        "DoM only delays misses; speculative L1 hits proceed"
    );
}

#[test]
fn invisible_speculation_leaves_no_trace() {
    for cm in [Countermeasure::InvisibleSpec, Countermeasure::GhostMinion] {
        let mut cpu = cpu_with(cm);
        let prog = spectre_like();
        train(&mut cpu, &prog, 4);

        cpu.mem_mut().write(X_ADDR, 1);
        cpu.hierarchy_mut().flush(Addr(X_ADDR));
        cpu.hierarchy_mut().flush(Addr(PROBE));
        let r = cpu.run_one(&prog, Backend::EventDriven);

        assert_eq!(r.mispredicts, 1);
        // The load may *issue* (timing side), but its fill must never land.
        assert_eq!(
            cpu.hierarchy().probe(Addr(PROBE)),
            HitLevel::Memory,
            "{cm}: squashed speculative fill must be invisible"
        );
    }
}

#[test]
fn invisible_speculation_applies_fill_at_commit_for_correct_paths() {
    let mut cpu = cpu_with(Countermeasure::InvisibleSpec);
    // Branch correctly predicted (after training) and taken path loads PROBE.
    let mut asm = Asm::new();
    let (x, y) = (asm.reg(), asm.reg());
    let body = asm.fwd_label();
    asm.load(x, MemOperand::abs(X_ADDR));
    asm.br(Cond::Eq, x, 0, body);
    asm.bind(body);
    asm.load(y, MemOperand::abs(PROBE));
    asm.halt();
    let prog = asm.assemble().unwrap();
    cpu.mem_mut().write(X_ADDR, 0);
    cpu.run_one(&prog, Backend::EventDriven);
    cpu.run_one(&prog, Backend::EventDriven);
    assert_eq!(
        cpu.hierarchy().probe(Addr(PROBE)),
        HitLevel::L1,
        "committed loads must still fill the cache"
    );
}

#[test]
fn in_order_mode_serializes_independent_chains() {
    let build = || {
        let mut asm = Asm::new();
        // Two independent 40-add chains.
        for _ in 0..2 {
            let mut prev = asm.reg();
            asm.mov_imm(prev, 1);
            for _ in 0..40 {
                let n = asm.reg();
                asm.addi(n, prev, 1);
                prev = n;
            }
        }
        asm.halt();
        asm.assemble().unwrap()
    };
    let mut ooo = cpu_with(Countermeasure::None);
    let mut ino = cpu_with(Countermeasure::InOrder);
    let ooo_cycles = ooo.run_one(&build(), Backend::EventDriven).cycles;
    let ino_cycles = ino.run_one(&build(), Backend::EventDriven).cycles;
    assert!(
        ino_cycles >= ooo_cycles + 25,
        "in-order issue must destroy the overlap: ooo={ooo_cycles} inorder={ino_cycles}"
    );
}

#[test]
fn in_order_mode_preserves_architectural_results() {
    let mut asm = Asm::new();
    let (i, acc) = (asm.reg(), asm.reg());
    asm.mov_imm(i, 9);
    let top = asm.here();
    asm.add(acc, acc, i);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    let prog = asm.assemble().unwrap();
    let mut cpu = cpu_with(Countermeasure::InOrder);
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert_eq!(r.regs[acc.index()], (1..=9).sum::<u64>());
}

#[test]
fn fence_serializes_execution() {
    let measure = |with_fence: bool| {
        let mut cpu = cpu_with(Countermeasure::None);
        let mut asm = Asm::new();
        let mut prev = asm.reg();
        asm.mov_imm(prev, 1);
        for _ in 0..20 {
            let n = asm.reg();
            asm.addi(n, prev, 1);
            prev = n;
        }
        if with_fence {
            asm.fence();
        }
        let mut prev2 = asm.reg();
        asm.mov_imm(prev2, 2);
        for _ in 0..20 {
            let n = asm.reg();
            asm.addi(n, prev2, 1);
            prev2 = n;
        }
        asm.halt();
        cpu.run_one(&asm.assemble().unwrap(), Backend::EventDriven)
            .cycles
    };
    let without = measure(false);
    let with = measure(true);
    assert!(
        with > without + 10,
        "fence must stop the chains overlapping: with={with} without={without}"
    );
}

#[test]
fn interrupt_drain_counts_and_preserves_results() {
    let mut cfg = CpuConfig::coffee_lake();
    cfg.interrupt_interval = Some(200);
    let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let mut asm = Asm::new();
    let (i, acc) = (asm.reg(), asm.reg());
    asm.mov_imm(i, 900);
    let top = asm.here();
    asm.add(acc, acc, i);
    asm.subi(i, i, 1);
    asm.br(Cond::Ne, i, 0, top);
    asm.halt();
    let prog = asm.assemble().unwrap();
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert!(
        r.interrupts >= 2,
        "a long run must cross several interrupt boundaries"
    );
    assert_eq!(r.regs[acc.index()], (1..=900).sum::<u64>());

    let mut quiet = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let fast = quiet.run_one(&prog, Backend::EventDriven);
    assert!(r.cycles > fast.cycles, "drains must cost cycles");
}

#[test]
fn nested_misspeculation_recovers_to_the_oldest_branch() {
    // Two branches, both mistrained: recovery must rewind to the *older*
    // mispredicted branch, and results must stay architectural.
    let mut asm = Asm::new();
    let (x, y, acc) = (asm.reg(), asm.reg(), asm.reg());
    let l1 = asm.fwd_label();
    let l2 = asm.fwd_label();
    asm.load(x, MemOperand::abs(X_ADDR));
    asm.load(y, MemOperand::abs(X_ADDR + 8));
    asm.br(Cond::Ge, x, 1, l1);
    asm.addi(acc, acc, 10); // only when x == 0
    asm.bind(l1);
    asm.br(Cond::Ge, y, 1, l2);
    asm.addi(acc, acc, 100); // only when y == 0
    asm.bind(l2);
    asm.halt();
    let prog = asm.assemble().unwrap();

    let mut cpu = cpu_with(Countermeasure::None);
    // Train both branches not-taken (x = y = 0).
    cpu.mem_mut().write(X_ADDR, 0);
    cpu.mem_mut().write(X_ADDR + 8, 0);
    for _ in 0..4 {
        let r = cpu.run_one(&prog, Backend::EventDriven);
        assert_eq!(r.regs[acc.index()], 110);
    }
    // Flip both; flush both conditions so resolution is slow.
    cpu.mem_mut().write(X_ADDR, 1);
    cpu.mem_mut().write(X_ADDR + 8, 1);
    cpu.hierarchy_mut().flush(Addr(X_ADDR));
    cpu.hierarchy_mut().flush(Addr(X_ADDR + 8));
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert_eq!(r.regs[acc.index()], 0, "both additions were wrong-path");
    assert!(r.mispredicts >= 1);
}

#[test]
fn squashed_instructions_are_counted() {
    let mut cpu = cpu_with(Countermeasure::None);
    let prog = spectre_like();
    train(&mut cpu, &prog, 4);
    cpu.mem_mut().write(X_ADDR, 1);
    cpu.hierarchy_mut().flush(Addr(X_ADDR));
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert!(r.squashed_instrs >= 1, "wrong-path body must be squashed");
}
