//! Timing-model tests: the properties the racing/magnifier gadgets rely on.
//!
//! Instruction-level parallelism must be real (independent chains overlap),
//! latencies must match the configured values, the divider must be
//! non-fully-pipelined, and cache hit/miss latencies must show through.

use racer_cpu::{Backend, Cpu, CpuConfig};
use racer_isa::{Asm, MemOperand, Reg};
use racer_mem::HierarchyConfig;

fn cpu() -> Cpu {
    Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake())
}

/// Cycles to execute a program consisting of `body` instructions plus halt.
fn run_cycles(cpu: &mut Cpu, build: impl FnOnce(&mut Asm)) -> u64 {
    let mut asm = Asm::new();
    build(&mut asm);
    asm.halt();
    let prog = asm.assemble().expect("valid program");
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert!(r.halted && !r.limit_hit);
    r.cycles
}

/// Emit a chain of `n` dependent adds seeded from `seed`, returning the tail.
fn add_chain(asm: &mut Asm, seed: Reg, n: usize) -> Reg {
    let mut prev = seed;
    for _ in 0..n {
        let next = asm.reg();
        asm.addi(next, prev, 1);
        prev = next;
    }
    prev
}

#[test]
fn dependent_add_chain_costs_one_cycle_per_op() {
    let mut c = cpu();
    let base = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        add_chain(asm, s, 10);
    });
    let longer = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        add_chain(asm, s, 60);
    });
    // 50 extra chained adds ⇒ exactly 50 extra cycles (1-cycle ALU).
    assert_eq!(
        longer - base,
        50,
        "chained adds must serialize at 1 cycle each"
    );
}

#[test]
fn independent_chains_run_in_parallel() {
    let mut c = cpu();
    let one_chain = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        add_chain(asm, s, 80);
    });
    let two_chains = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        add_chain(asm, s, 80);
        let s2 = asm.reg();
        asm.mov_imm(s2, 5);
        add_chain(asm, s2, 80);
    });
    // ILP: the second 80-add chain overlaps the first almost entirely.
    let overhead = two_chains.saturating_sub(one_chain);
    assert!(
        overhead < 25,
        "two independent 80-op chains should overlap (extra {overhead} cycles)"
    );
}

#[test]
fn mul_chain_is_three_cycles_per_op() {
    let mut c = cpu();
    let short = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        asm.mov_imm(s, 3);
        let mut prev = s;
        for _ in 0..5 {
            let n = asm.reg();
            asm.mul(n, prev, prev);
            prev = n;
        }
    });
    let long = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        asm.mov_imm(s, 3);
        let mut prev = s;
        for _ in 0..25 {
            let n = asm.reg();
            asm.mul(n, prev, prev);
            prev = n;
        }
    });
    assert_eq!(long - short, 60, "20 extra chained muls at 3 cycles each");
}

#[test]
fn div_latency_is_operand_dependent_13_or_14() {
    let mut c = cpu();
    // Chains of 8 dependent divides; operand parity controls 13 vs 14.
    let lo = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        asm.mov_imm(s, 1 << 20);
        let mut prev = s;
        for _ in 0..8 {
            let n = asm.reg();
            asm.div(n, prev, prev); // a == b → a^b = 0 → even → 13 cycles
            prev = n;
        }
    });
    let hi = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        let odd = asm.reg();
        asm.mov_imm(s, 1 << 20);
        asm.mov_imm(odd, (1 << 20) + 1);
        let mut prev = s;
        for _ in 0..8 {
            let n = asm.reg();
            asm.div(n, prev, odd); // a^b odd → 14 cycles
            prev = n;
        }
    });
    assert_eq!(
        hi - lo,
        8,
        "one extra cycle for each of the 8 dependent divides"
    );
}

#[test]
fn parallel_divides_contend_for_the_single_divider() {
    let mut c = cpu();
    // 8 *independent* divides: fully pipelined hardware would take
    // ~latency + 7; a unit with 4-cycle reciprocal throughput takes
    // ~latency + 7*4.
    let cycles = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        asm.mov_imm(s, 999);
        for _ in 0..8 {
            let d = asm.reg();
            asm.div(d, s, s);
        }
    });
    let baseline = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        asm.mov_imm(s, 999);
        let d = asm.reg();
        asm.div(d, s, s);
    });
    let extra = cycles - baseline;
    assert!(
        (26..=30).contains(&extra),
        "7 extra divides at 4-cycle reciprocal throughput, got {extra}"
    );
}

#[test]
fn independent_adds_exploit_all_alu_ports() {
    let mut c = cpu();
    let few = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        for _ in 0..4 {
            let d = asm.reg();
            asm.addi(d, s, 1);
        }
    });
    let many = run_cycles(&mut c, |asm| {
        let s = asm.reg();
        for _ in 0..84 {
            let d = asm.reg();
            asm.addi(d, s, 1);
        }
    });
    // 80 extra independent adds on 4 ALU ports, bounded by the 4-wide front
    // end ⇒ ~20 extra cycles; far below the 80 a serial machine would take.
    let extra = many - few;
    assert!(
        (18..=30).contains(&extra),
        "expected ~20 extra cycles, got {extra}"
    );
}

#[test]
fn cache_miss_vs_hit_shows_in_cycles() {
    let mut c = cpu();
    let miss = run_cycles(&mut c, |asm| {
        let d = asm.reg();
        asm.load(d, MemOperand::abs(0x8000));
        // Make the run time depend on the load.
        let e = asm.reg();
        asm.addi(e, d, 1);
    });
    let hit = run_cycles(&mut c, |asm| {
        let d = asm.reg();
        asm.load(d, MemOperand::abs(0x8000));
        let e = asm.reg();
        asm.addi(e, d, 1);
    });
    assert!(
        miss >= hit + 200,
        "DRAM (~240 cycles) vs L1 (4 cycles): miss={miss} hit={hit}"
    );
}

#[test]
fn mshr_merges_same_line_misses() {
    let mut c = cpu();
    // Two loads to the same (cold) line: the second merges into the first's
    // MSHR and both complete together.
    let merged = run_cycles(&mut c, |asm| {
        let (a, b) = (asm.reg(), asm.reg());
        asm.load(a, MemOperand::abs(0x20000));
        asm.load(b, MemOperand::abs(0x20008)); // same 64-byte line
        let s = asm.reg();
        asm.add(s, a, b);
    });
    c.hierarchy_mut().clear();
    let serial = run_cycles(&mut c, |asm| {
        let (a, b) = (asm.reg(), asm.reg());
        asm.load(a, MemOperand::abs(0x30000));
        asm.load(b, MemOperand::base_disp(a, 0x40000)); // dependent, different line
        let s = asm.reg();
        asm.add(s, a, b);
    });
    assert!(
        serial > merged + 150,
        "merged misses ({merged}) must beat serial misses ({serial})"
    );
}

#[test]
fn pointer_chase_serializes_at_memory_latency() {
    let mut c = cpu();
    // 4-deep dependent chase through cold lines: ~4 × DRAM latency.
    for (i, next) in [
        (0x50000u64, 0x60000u64),
        (0x60000, 0x70000),
        (0x70000, 0x80000),
    ] {
        c.mem_mut().write(i, next);
    }
    let cycles = run_cycles(&mut c, |asm| {
        let p = asm.reg();
        asm.mov_imm(p, 0x50000);
        for _ in 0..4 {
            asm.load(p, MemOperand::base_disp(p, 0));
        }
    });
    assert!(
        cycles >= 4 * 240,
        "four dependent cold loads must serialize: {cycles} cycles"
    );
}

#[test]
fn warm_cache_speeds_up_reruns() {
    let mut c = cpu();
    let mut asm = Asm::new();
    let d = asm.reg();
    for k in 0..16u64 {
        asm.load(d, MemOperand::abs(0x9000 + k * 64));
    }
    asm.halt();
    let prog = asm.assemble().unwrap();
    let cold = c.run_one(&prog, Backend::EventDriven).cycles;
    let warm = c.run_one(&prog, Backend::EventDriven).cycles;
    assert!(
        warm < cold / 2,
        "warm rerun ({warm}) should be far cheaper than cold ({cold})"
    );
}

#[test]
fn ipc_is_sane_on_wide_independent_code() {
    let mut c = cpu();
    let mut asm = Asm::new();
    let s = asm.reg();
    // Reuse destinations from a pool: renaming makes the WAW hazards free.
    let pool = asm.regs(64);
    for k in 0..400 {
        asm.addi(pool[k % 64], s, 1);
    }
    asm.halt();
    let prog = asm.assemble().unwrap();
    let r = c.run_one(&prog, Backend::EventDriven);
    let ipc = r.ipc();
    assert!(
        ipc > 2.0,
        "4-wide machine should sustain >2 IPC on independent adds: {ipc:.2}"
    );
}

#[test]
fn run_result_memory_stats_are_deltas() {
    let mut c = cpu();
    let mut asm = Asm::new();
    let d = asm.reg();
    asm.load(d, MemOperand::abs(0xA000));
    asm.halt();
    let prog = asm.assemble().unwrap();
    let first = c.run_one(&prog, Backend::EventDriven);
    assert_eq!(first.mem_stats.l1d.misses, 1);
    let second = c.run_one(&prog, Backend::EventDriven);
    assert_eq!(
        second.mem_stats.l1d.misses, 0,
        "stats must be per-run deltas"
    );
    assert_eq!(second.mem_stats.l1d.hits, 1);
}
