//! Pipeline-trace tests: the trace must reflect the schedule the timing
//! model actually produced, including wrong-path (squashed) work.

use racer_cpu::{render_pipeline, Backend, Cpu, CpuConfig};
use racer_isa::{Asm, Cond, MemOperand};
use racer_mem::{Addr, HierarchyConfig};

fn traced_cpu() -> Cpu {
    Cpu::new(
        CpuConfig::coffee_lake().with_trace(),
        HierarchyConfig::coffee_lake(),
    )
}

#[test]
fn trace_covers_every_committed_instruction_in_order() {
    let mut cpu = traced_cpu();
    let mut asm = Asm::new();
    let (a, b) = (asm.reg(), asm.reg());
    asm.mov_imm(a, 5);
    asm.mul(b, a, a);
    asm.add(b, b, a);
    asm.halt();
    let r = cpu.run_one(&asm.assemble().unwrap(), Backend::EventDriven);
    assert_eq!(r.trace.len(), 4);
    for (i, rec) in r.trace.iter().enumerate() {
        assert_eq!(rec.seq, i as u64, "dispatch order is sequence order");
        assert!(!rec.squashed(), "straight-line code commits everything");
        let issued = rec.issued.expect("issued");
        let completed = rec.completed.expect("completed");
        let committed = rec.committed.expect("committed");
        assert!(rec.fetched <= rec.dispatched);
        assert!(rec.dispatched <= issued);
        assert!(issued < completed || matches!(rec.text.as_str(), "halt" | "nop"));
        assert!(completed <= committed, "commit follows completion");
    }
}

#[test]
fn trace_timestamps_reflect_dataflow() {
    let mut cpu = traced_cpu();
    let mut asm = Asm::new();
    let (a, b, c) = (asm.reg(), asm.reg(), asm.reg());
    asm.load(a, MemOperand::abs(0x9000)); // cold: ~240 cycles
    asm.addi(b, a, 1); // dependent: must issue after the load completes
    asm.mov_imm(c, 7); // independent: issues immediately
    asm.halt();
    let r = cpu.run_one(&asm.assemble().unwrap(), Backend::EventDriven);
    let load = &r.trace[0];
    let dep = &r.trace[1];
    let indep = &r.trace[2];
    assert!(
        dep.issued.unwrap() >= load.completed.unwrap(),
        "dependent add must wait for the load"
    );
    assert!(
        indep.issued.unwrap() < load.completed.unwrap(),
        "independent mov must not wait"
    );
}

#[test]
fn squashed_wrong_path_work_appears_in_the_trace() {
    let mut cpu = traced_cpu();
    let mut asm = Asm::new();
    let (x, y) = (asm.reg(), asm.reg());
    let skip = asm.fwd_label();
    asm.load(x, MemOperand::abs(0x100)); // slow condition source
    asm.br(Cond::Ge, x, 1, skip);
    asm.addi(y, y, 1); // transient when x >= 1 and predictor says not-taken
    asm.bind(skip);
    asm.halt();
    let prog = asm.assemble().unwrap();

    // Train not-taken, then flip.
    cpu.mem_mut().write(0x100, 0);
    for _ in 0..4 {
        cpu.run_one(&prog, Backend::EventDriven);
    }
    cpu.mem_mut().write(0x100, 1);
    cpu.hierarchy_mut().flush(Addr(0x100));
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert!(r.mispredicts >= 1);
    let squashed: Vec<_> = r.trace.iter().filter(|t| t.squashed()).collect();
    assert!(
        !squashed.is_empty(),
        "wrong-path add must appear squashed in the trace"
    );
    let rendered = render_pipeline(&r.trace);
    assert!(rendered.contains("(squashed)"));
}

#[test]
fn trace_is_empty_unless_enabled() {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let mut asm = Asm::new();
    asm.nop();
    asm.halt();
    let r = cpu.run_one(&asm.assemble().unwrap(), Backend::EventDriven);
    assert!(r.trace.is_empty());
}

#[test]
fn race_winners_are_visible_in_the_trace() {
    // The diagnostic use case: two racing chains; the trace shows the
    // shorter chain's terminal op issuing first.
    let mut cpu = traced_cpu();
    let mut asm = Asm::new();
    let seed = asm.reg();
    asm.load(seed, MemOperand::abs(0x8000)); // shared slow head
    let short = asm.reg();
    asm.add(short, seed, 0i64);
    for _ in 0..5 {
        asm.add(short, short, 1i64);
    }
    let long = asm.reg();
    asm.add(long, seed, 0i64);
    for _ in 0..25 {
        asm.add(long, long, 1i64);
    }
    asm.halt();
    let r = cpu.run_one(&asm.assemble().unwrap(), Backend::EventDriven);
    // Terminal ops: last add of each chain.
    let short_end = r.trace.iter().rfind(|t| t.pc <= 6 && t.pc >= 2).unwrap();
    let long_end = r
        .trace
        .iter()
        .rev()
        .find(|t| t.text.starts_with("add"))
        .unwrap();
    assert!(
        short_end.issued.unwrap() < long_end.issued.unwrap(),
        "the short path's terminator must issue first:\n{}",
        render_pipeline(&r.trace)
    );
}
