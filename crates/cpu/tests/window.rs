//! Structural-limit tests: scheduler, ROB, MSHRs, ports and widths must
//! bound performance exactly the way the gadget analyses assume.

use racer_cpu::{Backend, Cpu, CpuConfig};
use racer_isa::{Asm, Cond, MemOperand};
use racer_mem::HierarchyConfig;

fn cpu_with(f: impl FnOnce(&mut CpuConfig)) -> Cpu {
    let mut cfg = CpuConfig::coffee_lake();
    f(&mut cfg);
    Cpu::new(cfg, HierarchyConfig::coffee_lake())
}

/// Two chains behind a slow head: visible overlap requires both to fit in
/// the scheduler; a tiny scheduler serializes them.
#[test]
fn scheduler_size_bounds_racing_window() {
    let build = || {
        let mut asm = Asm::new();
        let seed = asm.reg();
        asm.load(seed, MemOperand::abs(0x4_0000)); // cold head
        let a = asm.reg();
        asm.add(a, seed, 0i64);
        for _ in 0..40 {
            asm.add(a, a, 1i64);
        }
        let b = asm.reg();
        asm.add(b, seed, 0i64);
        for _ in 0..40 {
            asm.add(b, b, 1i64);
        }
        asm.halt();
        asm.assemble().unwrap()
    };
    let wide = cpu_with(|c| c.rs_size = 120)
        .run_one(&build(), Backend::EventDriven)
        .cycles;
    let narrow = cpu_with(|c| c.rs_size = 16)
        .run_one(&build(), Backend::EventDriven)
        .cycles;
    assert!(
        narrow > wide + 10,
        "a 16-entry scheduler cannot hold both 40-op chains: wide={wide} narrow={narrow}"
    );
}

/// Independent cold loads are limited by MSHR count: with 2 MSHRs, 8 cold
/// loads take ~4 DRAM rounds; with 10, ~1.
#[test]
fn mshr_count_bounds_memory_parallelism() {
    let build = || {
        let mut asm = Asm::new();
        let d = asm.regs(8);
        for (k, r) in d.iter().enumerate() {
            asm.load(*r, MemOperand::abs(0x10_0000 + k as u64 * 4096));
        }
        asm.halt();
        asm.assemble().unwrap()
    };
    let many = cpu_with(|c| c.mshrs = 10)
        .run_one(&build(), Backend::EventDriven)
        .cycles;
    let few = cpu_with(|c| c.mshrs = 2)
        .run_one(&build(), Backend::EventDriven)
        .cycles;
    assert!(
        few > many + 400,
        "2 MSHRs must serialize 8 cold loads into ~4 rounds: many={many} few={few}"
    );
}

/// Load ports bound L1-hit throughput. The warm-up runs as its own program
/// so the measured storm is pure hits.
#[test]
fn load_ports_bound_hit_bandwidth() {
    let storm = |lines: u64, passes: usize| {
        let mut asm = Asm::new();
        let d = asm.regs(4);
        for p in 0..passes {
            for k in 0..lines {
                asm.load(
                    d[(p + k as usize) % 4],
                    MemOperand::abs(0x20_0000 + (k % 64) * 64),
                );
            }
        }
        asm.halt();
        asm.assemble().unwrap()
    };
    let measure = |ports: usize| {
        let mut cpu = cpu_with(|c| c.load_ports = ports);
        cpu.run_one(&storm(64, 1), Backend::EventDriven); // warm the 64 lines
        cpu.run_one(&storm(64, 4), Backend::EventDriven).cycles // 256 pure hits
    };
    let two = measure(2);
    let one = measure(1);
    assert!(
        one > two + 80,
        "halving load ports must slow a 256-hit storm: two={two} one={one}"
    );
}

/// Dispatch width bounds front-end throughput on wide independent code.
#[test]
fn dispatch_width_bounds_frontend() {
    let build = || {
        let mut asm = Asm::new();
        let s = asm.reg();
        let pool = asm.regs(16);
        for k in 0..240 {
            asm.addi(pool[k % 16], s, 1);
        }
        asm.halt();
        asm.assemble().unwrap()
    };
    let four = cpu_with(|c| c.dispatch_width = 4)
        .run_one(&build(), Backend::EventDriven)
        .cycles;
    let one = cpu_with(|c| {
        c.dispatch_width = 1;
        c.fetch_width = 1;
    })
    .run_one(&build(), Backend::EventDriven)
    .cycles;
    assert!(
        one as f64 > four as f64 * 2.5,
        "1-wide front end must be ≫ slower on independent adds: four={four} one={one}"
    );
}

/// Commit width bounds retirement of bursty completions.
#[test]
fn commit_width_bounds_retirement() {
    let build = || {
        let mut asm = Asm::new();
        let (slow, dep) = (asm.reg(), asm.reg());
        asm.load(slow, MemOperand::abs(0x30_0000)); // everything commits after this
        let pool = asm.regs(8);
        for k in 0..160 {
            asm.addi(pool[k % 8], dep, 1); // independent, complete early
        }
        asm.addi(dep, slow, 1);
        asm.halt();
        asm.assemble().unwrap()
    };
    let wide = cpu_with(|c| c.commit_width = 8)
        .run_one(&build(), Backend::EventDriven)
        .cycles;
    let narrow = cpu_with(|c| c.commit_width = 1)
        .run_one(&build(), Backend::EventDriven)
        .cycles;
    assert!(
        narrow > wide + 100,
        "1-wide commit must drain 160 completed adds slowly: wide={wide} narrow={narrow}"
    );
}

/// A fence between a branch and its shadow kills transient side effects:
/// dispatch stops at the fence, so the wrong-path load never enters the ROB.
#[test]
fn fence_blocks_transient_dispatch() {
    let mut cpu = Cpu::new(
        CpuConfig::coffee_lake().with_load_recording(),
        HierarchyConfig::coffee_lake(),
    );
    let mut asm = Asm::new();
    let (x, y) = (asm.reg(), asm.reg());
    let skip = asm.fwd_label();
    asm.load(x, MemOperand::abs(0x100));
    asm.br(Cond::Ge, x, 1, skip);
    asm.fence();
    asm.load(y, MemOperand::abs(0x5_0000)); // would-be transient probe
    asm.bind(skip);
    asm.halt();
    let prog = asm.assemble().unwrap();

    cpu.mem_mut().write(0x100, 0);
    for _ in 0..4 {
        cpu.run_one(&prog, Backend::EventDriven); // train not-taken (fence path is architectural)
    }
    cpu.mem_mut().write(0x100, 1);
    cpu.hierarchy_mut().flush(racer_mem::Addr(0x100));
    cpu.hierarchy_mut().flush(racer_mem::Addr(0x5_0000));
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert!(r.mispredicts >= 1);
    assert!(
        !r.loads.iter().any(|l| l.addr == 0x5_0000),
        "the fence must stop the wrong-path load from ever issuing"
    );
}

/// Wrong-path fetch into a loop must not wedge the core: the mispredicted
/// branch still resolves and redirects.
#[test]
fn wrong_path_loop_recovers() {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let mut asm = Asm::new();
    let (x, y) = (asm.reg(), asm.reg());
    let done = asm.fwd_label();
    asm.load(x, MemOperand::abs(0x100)); // slow condition
    asm.br(Cond::Ge, x, 1, done);
    // Wrong path: an infinite self-loop.
    let spin = asm.here();
    asm.addi(y, y, 1);
    asm.jump(spin);
    asm.bind(done);
    asm.halt();
    let prog = asm.assemble().unwrap();

    cpu.mem_mut().write(0x100, 1); // branch is taken; wrong path = the loop
                                   // Force a not-taken prediction by training on x = 0… which would
                                   // actually loop forever architecturally. Instead rely on the default
                                   // not-taken prediction of a cold 2-bit counter.
    cpu.hierarchy_mut().flush(racer_mem::Addr(0x100));
    let r = cpu.run_one(&prog, Backend::EventDriven);
    assert!(r.halted, "core must recover from wrong-path spinning");
    assert!(r.mispredicts >= 1);
    assert!(!r.limit_hit);
}

/// The cycle-limit safety valve triggers on a genuinely infinite program.
#[test]
fn run_limit_bounds_infinite_loops() {
    let mut cfg = CpuConfig::coffee_lake();
    cfg.max_run_cycles = 5_000;
    let mut cpu = Cpu::new(cfg, HierarchyConfig::coffee_lake());
    let mut asm = Asm::new();
    let spin = asm.here();
    asm.jump(spin);
    let r = cpu.run_one(&asm.assemble().unwrap(), Backend::EventDriven);
    assert!(r.limit_hit);
    assert!(!r.halted);
}

/// Branch-heavy code with a mix of taken/not-taken trains per-PC counters
/// independently.
#[test]
fn per_pc_predictor_state_is_independent() {
    let mut cpu = Cpu::new(CpuConfig::coffee_lake(), HierarchyConfig::coffee_lake());
    let mut asm = Asm::new();
    let (a, acc) = (asm.reg(), asm.reg());
    asm.mov_imm(a, 1);
    // Branch 1: always taken. Branch 2: always not-taken.
    let l1 = asm.fwd_label();
    asm.br(Cond::Eq, a, 1, l1);
    asm.addi(acc, acc, 100); // skipped
    asm.bind(l1);
    let l2 = asm.fwd_label();
    asm.br(Cond::Eq, a, 0, l2); // never taken
    asm.addi(acc, acc, 1);
    asm.bind(l2);
    asm.halt();
    let prog = asm.assemble().unwrap();
    let mut last = 0;
    for _ in 0..6 {
        last = cpu.run_one(&prog, Backend::EventDriven).mispredicts;
    }
    assert_eq!(last, 0, "both branches must end up correctly predicted");
}
