//! The assembler/builder DSL used to generate gadget code.

use crate::instr::{AluOp, Cond, Instr, MemOperand, Operand};
use crate::program::{Label, Program, ProgramError};
use crate::reg::{Reg, NUM_REGS};

/// A non-consuming builder for [`Program`]s, with labels and a fresh-register
/// allocator.
///
/// All gadget generators in the `hacky-racers` crate emit code through this
/// type. Registers come from [`Asm::reg`] so that independent dependence
/// chains never share names (the paper's §4 *paths* must have no data
/// dependencies between them).
///
/// ```
/// use racer_isa::{Asm, Cond};
///
/// let mut asm = Asm::new();
/// let counter = asm.reg();
/// asm.mov_imm(counter, 3);
/// let top = asm.here();
/// asm.subi(counter, counter, 1);
/// asm.br(Cond::Ne, counter, 0, top); // loop until counter == 0
/// asm.halt();
/// let prog = asm.assemble().expect("valid program");
/// assert_eq!(prog.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    next_reg: usize,
    /// `labels[id]` = Some(position) once bound.
    labels: Vec<Option<usize>>,
    /// Branch/jump fixups: (instruction index, label id).
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    /// A fresh, empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- registers ------------------------------------------------------

    /// Allocate a fresh architectural register.
    ///
    /// # Panics
    ///
    /// Panics if more than [`NUM_REGS`] registers are requested.
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < NUM_REGS, "out of architectural registers");
        let r = Reg::new(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocate `n` fresh registers.
    pub fn regs(&mut self, n: usize) -> Vec<Reg> {
        (0..n).map(|_| self.reg()).collect()
    }

    /// Number of registers allocated so far.
    pub fn regs_used(&self) -> usize {
        self.next_reg
    }

    // ----- labels ---------------------------------------------------------

    /// Create an unbound label for a forward reference; bind it later with
    /// [`Asm::bind`].
    pub fn fwd_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Create a label bound to the current position (for backward branches).
    pub fn here(&mut self) -> Label {
        let l = self.fwd_label();
        self.bind(l);
        l
    }

    /// Index the next emitted instruction will occupy.
    pub fn position(&self) -> usize {
        self.instrs.len()
    }

    // ----- instruction emitters --------------------------------------------

    /// Emit a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// `dst = op(a, b)`.
    pub fn alu(
        &mut self,
        op: AluOp,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.emit(Instr::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `dst = a + b`.
    pub fn add(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Add, dst, a, b)
    }

    /// `dst = a + imm`.
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Add, dst, a, Operand::Imm(imm))
    }

    /// `dst = a - b`.
    pub fn sub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, b)
    }

    /// `dst = a - imm`.
    pub fn subi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, Operand::Imm(imm))
    }

    /// `dst = a * b`.
    pub fn mul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Mul, dst, a, b)
    }

    /// `dst = a / b` (unsigned; division by zero yields `u64::MAX`).
    pub fn div(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Div, dst, a, b)
    }

    /// `dst = a & b`.
    pub fn and(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::And, dst, a, b)
    }

    /// `dst = a | b`.
    pub fn or(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Or, dst, a, b)
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Xor, dst, a, b)
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shl, dst, a, b)
    }

    /// `dst = a >> b`.
    pub fn shr(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shr, dst, a, b)
    }

    /// `dst = imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Add, dst, Operand::Imm(imm), Operand::Imm(0))
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.alu(AluOp::Add, dst, src, Operand::Imm(0))
    }

    /// `dst = effective_address(mem)`.
    pub fn lea(&mut self, dst: Reg, mem: MemOperand) -> &mut Self {
        self.emit(Instr::Lea { dst, mem })
    }

    /// `dst = memory[mem]`.
    pub fn load(&mut self, dst: Reg, mem: MemOperand) -> &mut Self {
        self.emit(Instr::Load { dst, mem })
    }

    /// `memory[mem] = src`.
    pub fn store(&mut self, src: impl Into<Operand>, mem: MemOperand) -> &mut Self {
        self.emit(Instr::Store {
            src: src.into(),
            mem,
        })
    }

    /// Software prefetch.
    pub fn prefetch(&mut self, mem: MemOperand) -> &mut Self {
        self.emit(Instr::Prefetch { mem, nta: false })
    }

    /// Non-temporal software prefetch (inserted at eviction priority).
    pub fn prefetch_nta(&mut self, mem: MemOperand) -> &mut Self {
        self.emit(Instr::Prefetch { mem, nta: true })
    }

    /// Flush `mem`'s line from the hierarchy (baseline/test use only).
    pub fn flush(&mut self, mem: MemOperand) -> &mut Self {
        self.emit(Instr::Flush { mem })
    }

    /// Conditional branch to `label` when `cond(a, b)`.
    pub fn br(&mut self, cond: Cond, a: Reg, b: impl Into<Operand>, label: Label) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, label.0));
        self.emit(Instr::Branch {
            cond,
            a,
            b: b.into(),
            target: usize::MAX,
        })
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        let at = self.instrs.len();
        self.fixups.push((at, label.0));
        self.emit(Instr::Jump { target: usize::MAX })
    }

    /// Serializing fence.
    pub fn fence(&mut self) -> &mut Self {
        self.emit(Instr::Fence)
    }

    /// Halt the simulation.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    // ----- finishing --------------------------------------------------------

    /// Resolve labels and validate, producing a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if any referenced label was
    /// never bound, or the underlying validation errors from
    /// [`Program::from_instrs`].
    pub fn assemble(&self) -> Result<Program, ProgramError> {
        let mut instrs = self.instrs.clone();
        for &(at, label) in &self.fixups {
            let pos = self.labels[label].ok_or(ProgramError::UnboundLabel { label })?;
            match &mut instrs[at] {
                Instr::Branch { target, .. } | Instr::Jump { target } => *target = pos,
                other => unreachable!("fixup pointing at non-control instruction {other}"),
            }
        }
        Program::from_instrs(instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Asm::new();
        let r = asm.reg();
        let skip = asm.fwd_label();
        asm.mov_imm(r, 1);
        asm.br(Cond::Eq, r, 1, skip);
        asm.mov_imm(r, 99); // skipped at run time
        asm.bind(skip);
        let back = asm.here();
        asm.jump(back); // self-loop
        asm.halt();
        let p = asm.assemble().unwrap();
        match p.instrs()[1] {
            Instr::Branch { target, .. } => assert_eq!(target, 3),
            ref other => panic!("expected branch, got {other}"),
        }
        match p.instrs()[3] {
            Instr::Jump { target } => assert_eq!(target, 3),
            ref other => panic!("expected jump, got {other}"),
        }
    }

    #[test]
    fn unbound_label_errors() {
        let mut asm = Asm::new();
        let r = asm.reg();
        let l = asm.fwd_label();
        asm.br(Cond::Eq, r, 0, l);
        asm.halt();
        assert_eq!(asm.assemble(), Err(ProgramError::UnboundLabel { label: 0 }));
    }

    #[test]
    fn register_allocation_is_fresh() {
        let mut asm = Asm::new();
        let a = asm.reg();
        let b = asm.reg();
        assert_ne!(a, b);
        let more = asm.regs(4);
        assert_eq!(more.len(), 4);
        assert_eq!(asm.regs_used(), 6);
    }

    #[test]
    #[should_panic]
    fn register_exhaustion_panics() {
        let mut asm = Asm::new();
        for _ in 0..=crate::NUM_REGS {
            asm.reg();
        }
    }

    #[test]
    #[should_panic]
    fn double_bind_panics() {
        let mut asm = Asm::new();
        let l = asm.fwd_label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn builder_methods_emit_expected_opcodes() {
        let mut asm = Asm::new();
        let (a, b, c) = (asm.reg(), asm.reg(), asm.reg());
        asm.add(c, a, b)
            .mul(c, c, a)
            .div(c, c, b)
            .lea(c, MemOperand::abs(8))
            .load(c, MemOperand::base_disp(a, 0))
            .store(c, MemOperand::base_disp(a, 8))
            .prefetch(MemOperand::abs(64))
            .prefetch_nta(MemOperand::abs(128))
            .flush(MemOperand::abs(64))
            .fence()
            .nop()
            .halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.len(), 12);
        assert!(matches!(p.instrs()[7], Instr::Prefetch { nta: true, .. }));
        assert!(matches!(p.instrs()[9], Instr::Fence));
    }

    #[test]
    fn position_tracks_emission() {
        let mut asm = Asm::new();
        assert_eq!(asm.position(), 0);
        asm.nop();
        assert_eq!(asm.position(), 1);
    }
}
