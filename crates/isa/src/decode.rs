//! Pre-decoded µop tables.
//!
//! [`Instr`] is the architectural, human-facing instruction form; every
//! consumer that used to pattern-match it per *dynamic* instruction
//! (dispatch, issue, commit, the interpreter) re-derived the same static
//! facts millions of times: the functional-unit class, the source-register
//! list, the destination, the branch target, the memory-operand shape.
//! [`DecodedProgram::decode`] computes those facts once per *static*
//! instruction into a dense [`DecodedInstr`] table indexed by pc.
//!
//! Two representation choices matter for the hot paths:
//!
//! * **Dense FU-class indices** ([`FuClass::index`]) instead of the enum,
//!   so schedulers index per-class arrays without a match.
//! * **Slot-mapped operands** ([`SrcRef`]): every register operand is
//!   resolved at decode time to its position in the instruction's source
//!   list (the same order [`Instr::srcs_fixed`] reports). A scheduler that
//!   captured source values in that order reads an operand by indexing,
//!   instead of walking the list comparing register names.
//!
//! Decoding is a pure re-encoding: the `decode_agrees_with_instr_accessors`
//! test pins every decoded field to the corresponding [`Instr`] accessor,
//! and the 420-program differential suite in `racer-cpu` runs the decoded
//! event-driven scheduler against the `Instr`-matching reference scheduler
//! cycle-exactly.

use crate::instr::{AluOp, Cond, FuClass, Instr, MemOperand, Operand};
use crate::program::Program;
use crate::reg::Reg;

impl FuClass {
    /// Number of distinct functional-unit classes.
    pub const COUNT: usize = 7;

    /// Dense index for per-class tables (ready queues, port counters).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            FuClass::Alu => 0,
            FuClass::Mul => 1,
            FuClass::Div => 2,
            FuClass::Load => 3,
            FuClass::Store => 4,
            FuClass::Branch => 5,
            FuClass::None => 6,
        }
    }
}

/// A source operand resolved at decode time: either the index of a register
/// in the instruction's source list, or an immediate already extended to
/// 64 bits.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub enum SrcRef {
    /// `slot(i)`: the value of the `i`-th source register (the order of
    /// [`DecodedInstr::srcs`] / [`Instr::srcs_fixed`]).
    Slot(u8),
    /// Immediate value (sign-extended at decode).
    Imm(u64),
}

/// A memory operand with its registers resolved to source slots.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub struct DecodedMem {
    /// Source slot of the base register, if any.
    pub base: Option<u8>,
    /// Source slot of the index register, if any.
    pub index: Option<u8>,
    /// Scale applied to the index register.
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
}

impl DecodedMem {
    /// Effective address given the instruction's source values (indexed by
    /// slot, in [`DecodedInstr::srcs`] order).
    #[inline]
    pub fn eval(&self, src: impl Fn(u8) -> u64) -> u64 {
        let base = self.base.map_or(0, &src);
        let index = self.index.map_or(0, &src);
        base.wrapping_add(index.wrapping_mul(self.scale as u64))
            .wrapping_add(self.disp as u64)
    }
}

/// The operation of a decoded instruction, with operands slot-mapped.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub enum DecodedOp {
    /// ALU operation (including `Mul`/`Div`, whose FU class differs).
    Alu {
        /// Operation.
        op: AluOp,
        /// First source.
        a: SrcRef,
        /// Second source.
        b: SrcRef,
    },
    /// Address computation.
    Lea(DecodedMem),
    /// Demand load.
    Load(DecodedMem),
    /// Store of `src` to `mem`.
    Store {
        /// Value to store.
        src: SrcRef,
        /// Address expression.
        mem: DecodedMem,
    },
    /// Software prefetch (`nta`: non-temporal hint).
    Prefetch {
        /// Address expression.
        mem: DecodedMem,
        /// Non-temporal hint.
        nta: bool,
    },
    /// Line flush.
    Flush(DecodedMem),
    /// Conditional branch; `a` is always source slot 0.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// Right comparison source.
        b: SrcRef,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// Serializing fence.
    Fence,
    /// Stop at commit.
    Halt,
    /// No operation.
    Nop,
}

/// One pre-decoded instruction: the operation plus every static fact the
/// pipeline stages used to recompute per dynamic instance.
#[derive(Copy, Clone, Debug)]
pub struct DecodedInstr {
    /// Slot-mapped operation.
    pub op: DecodedOp,
    /// Dense functional-unit class index ([`FuClass::index`]).
    pub cls: u8,
    /// Number of live entries in [`DecodedInstr::srcs`].
    pub nsrcs: u8,
    /// Source registers, in [`Instr::srcs_fixed`] order.
    pub srcs: [Reg; 3],
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// Whether this is a control-flow instruction.
    pub is_control: bool,
    /// Whether this instruction touches the data-cache hierarchy.
    pub is_memory: bool,
}

impl DecodedInstr {
    /// Decode one instruction.
    pub fn decode(instr: &Instr) -> Self {
        let (srcs, nsrcs) = instr.srcs_fixed();
        // Operand → slot mapping mirrors `srcs_fixed`'s push order exactly:
        // each register operand consumes the next slot.
        let mut next = 0u8;
        let slot = |o: Operand, next: &mut u8| -> SrcRef {
            match o {
                Operand::Reg(_) => {
                    let s = SrcRef::Slot(*next);
                    *next += 1;
                    s
                }
                Operand::Imm(v) => SrcRef::Imm(v as u64),
            }
        };
        let mem_slot = |m: &MemOperand, next: &mut u8| -> DecodedMem {
            let base = m.base.map(|_| {
                let s = *next;
                *next += 1;
                s
            });
            let index = m.index.map(|_| {
                let s = *next;
                *next += 1;
                s
            });
            DecodedMem {
                base,
                index,
                scale: m.scale,
                disp: m.disp,
            }
        };
        let op = match *instr {
            Instr::Alu { op, a, b, .. } => {
                let a = slot(a, &mut next);
                let b = slot(b, &mut next);
                DecodedOp::Alu { op, a, b }
            }
            Instr::Lea { ref mem, .. } => DecodedOp::Lea(mem_slot(mem, &mut next)),
            Instr::Load { ref mem, .. } => DecodedOp::Load(mem_slot(mem, &mut next)),
            Instr::Store { src, ref mem } => {
                let src = slot(src, &mut next);
                DecodedOp::Store {
                    src,
                    mem: mem_slot(mem, &mut next),
                }
            }
            Instr::Prefetch { ref mem, nta } => DecodedOp::Prefetch {
                mem: mem_slot(mem, &mut next),
                nta,
            },
            Instr::Flush { ref mem } => DecodedOp::Flush(mem_slot(mem, &mut next)),
            Instr::Branch {
                cond, b, target, ..
            } => {
                next += 1; // `a` is always a register: slot 0.
                DecodedOp::Branch {
                    cond,
                    b: slot(b, &mut next),
                    target: target as u32,
                }
            }
            Instr::Jump { target } => DecodedOp::Jump {
                target: target as u32,
            },
            Instr::Fence => DecodedOp::Fence,
            Instr::Halt => DecodedOp::Halt,
            Instr::Nop => DecodedOp::Nop,
        };
        debug_assert_eq!(next as usize, nsrcs, "slot mapping must cover all sources");
        DecodedInstr {
            op,
            cls: instr.fu_class().index() as u8,
            nsrcs: nsrcs as u8,
            srcs,
            dst: instr.dst(),
            is_control: instr.is_control(),
            is_memory: instr.is_memory(),
        }
    }
}

/// A [`Program`] decoded into a dense µop table, indexed by pc.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    instrs: Vec<DecodedInstr>,
}

impl DecodedProgram {
    /// Decode every static instruction of `prog`, once.
    pub fn decode(prog: &Program) -> Self {
        DecodedProgram {
            instrs: prog.instrs().iter().map(DecodedInstr::decode).collect(),
        }
    }

    /// Decode into `buf`, reusing its capacity (for callers that decode a
    /// fresh program per run and want an allocation-free steady state).
    pub fn decode_into(prog: &Program, buf: &mut Vec<DecodedInstr>) {
        buf.clear();
        buf.extend(prog.instrs().iter().map(DecodedInstr::decode));
    }

    /// The decoded instructions, in program order.
    pub fn instrs(&self) -> &[DecodedInstr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the table is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl std::ops::Index<usize> for DecodedProgram {
    type Output = DecodedInstr;
    #[inline]
    fn index(&self, pc: usize) -> &DecodedInstr {
        &self.instrs[pc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Cond, MemOperand, Operand};

    fn r(i: usize) -> Reg {
        Reg::new(i)
    }

    /// Every instruction form the ISA can express, for exhaustive checks.
    fn exhaustive_forms() -> Vec<Instr> {
        let mems = [
            MemOperand::abs(0x40),
            MemOperand::base_disp(r(1), -8),
            MemOperand::base_index(r(2), r(3), 8, 16),
        ];
        let mut forms = vec![
            Instr::Fence,
            Instr::Halt,
            Instr::Nop,
            Instr::Jump { target: 0 },
        ];
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Mul,
            AluOp::Div,
        ] {
            for a in [Operand::Reg(r(1)), Operand::Imm(-3)] {
                for b in [Operand::Reg(r(2)), Operand::Reg(r(1)), Operand::Imm(7)] {
                    forms.push(Instr::Alu {
                        op,
                        dst: r(4),
                        a,
                        b,
                    });
                }
            }
        }
        for mem in mems {
            forms.push(Instr::Lea { dst: r(5), mem });
            forms.push(Instr::Load { dst: r(5), mem });
            forms.push(Instr::Prefetch { mem, nta: false });
            forms.push(Instr::Prefetch { mem, nta: true });
            forms.push(Instr::Flush { mem });
            for src in [Operand::Reg(r(6)), Operand::Imm(1)] {
                forms.push(Instr::Store { src, mem });
            }
        }
        for b in [Operand::Reg(r(2)), Operand::Imm(0)] {
            forms.push(Instr::Branch {
                cond: Cond::Lt,
                a: r(1),
                b,
                target: 0,
            });
        }
        forms
    }

    #[test]
    fn decode_agrees_with_instr_accessors() {
        for instr in exhaustive_forms() {
            let d = DecodedInstr::decode(&instr);
            assert_eq!(d.dst, instr.dst(), "{instr}");
            assert_eq!(d.cls as usize, instr.fu_class().index(), "{instr}");
            assert_eq!(d.is_control, instr.is_control(), "{instr}");
            assert_eq!(d.is_memory, instr.is_memory(), "{instr}");
            let (srcs, n) = instr.srcs_fixed();
            assert_eq!(d.nsrcs as usize, n, "{instr}");
            assert_eq!(&d.srcs[..n], &srcs[..n], "{instr}");
        }
    }

    /// Slot references must name the register the original operand held,
    /// and immediates must carry the sign-extended value.
    #[test]
    fn slot_mapping_resolves_to_the_right_registers() {
        for instr in exhaustive_forms() {
            let d = DecodedInstr::decode(&instr);
            let reg_of = |s: SrcRef| match s {
                SrcRef::Slot(i) => Operand::Reg(d.srcs[i as usize]),
                SrcRef::Imm(v) => Operand::Imm(v as i64),
            };
            match (instr, d.op) {
                (Instr::Alu { a, b, .. }, DecodedOp::Alu { a: da, b: db, .. }) => {
                    assert_eq!(reg_of(da), a);
                    assert_eq!(reg_of(db), b);
                }
                (Instr::Store { src, mem }, DecodedOp::Store { src: ds, mem: dm }) => {
                    assert_eq!(reg_of(ds), src);
                    assert_eq!(dm.base.map(|i| d.srcs[i as usize]), mem.base);
                    assert_eq!(dm.index.map(|i| d.srcs[i as usize]), mem.index);
                    assert_eq!((dm.scale, dm.disp), (mem.scale, mem.disp));
                }
                (Instr::Load { mem, .. }, DecodedOp::Load(dm))
                | (Instr::Lea { mem, .. }, DecodedOp::Lea(dm))
                | (Instr::Prefetch { mem, .. }, DecodedOp::Prefetch { mem: dm, .. })
                | (Instr::Flush { mem }, DecodedOp::Flush(dm)) => {
                    assert_eq!(dm.base.map(|i| d.srcs[i as usize]), mem.base);
                    assert_eq!(dm.index.map(|i| d.srcs[i as usize]), mem.index);
                    assert_eq!((dm.scale, dm.disp), (mem.scale, mem.disp));
                }
                (
                    Instr::Branch { a, b, target, .. },
                    DecodedOp::Branch {
                        b: db, target: dt, ..
                    },
                ) => {
                    assert_eq!(d.srcs[0], a);
                    assert_eq!(reg_of(db), b);
                    assert_eq!(dt as usize, target);
                }
                (Instr::Jump { target }, DecodedOp::Jump { target: dt }) => {
                    assert_eq!(dt as usize, target);
                }
                (Instr::Fence, DecodedOp::Fence)
                | (Instr::Halt, DecodedOp::Halt)
                | (Instr::Nop, DecodedOp::Nop) => {}
                (i, o) => panic!("decode shape mismatch: {i} → {o:?}"),
            }
        }
    }

    #[test]
    fn decoded_mem_eval_matches_mem_operand_eval() {
        let mut regs = vec![0u64; crate::reg::NUM_REGS];
        regs[1] = 100;
        regs[2] = 3;
        let m = MemOperand::base_index(r(1), r(2), 8, 4);
        let instr = Instr::Load { dst: r(5), mem: m };
        let d = DecodedInstr::decode(&instr);
        let DecodedOp::Load(dm) = d.op else {
            panic!("not a load")
        };
        let by_slot = dm.eval(|s| regs[d.srcs[s as usize].index()]);
        assert_eq!(by_slot, m.eval(&regs));
    }

    #[test]
    fn decode_program_round_trip() {
        let p = Program::from_instrs(vec![
            Instr::Alu {
                op: AluOp::Add,
                dst: r(0),
                a: Operand::Imm(1),
                b: Operand::Imm(2),
            },
            Instr::Jump { target: 2 },
            Instr::Halt,
        ])
        .unwrap();
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(matches!(d[2].op, DecodedOp::Halt));
        let mut buf = Vec::new();
        DecodedProgram::decode_into(&p, &mut buf);
        assert_eq!(buf.len(), 3);
    }
}
