//! Register dataflow analysis over straight-line code.
//!
//! The paper's §4 defines a **chain** as a sequence of instructions linked by
//! data dependence ("no two instructions within each chain can execute
//! simultaneously or out-of-order") and a **path** as a set of chains with no
//! external data dependence, eligible to execute in parallel with other
//! paths. Both are properties of the read-after-write (RAW) graph computed
//! here.
//!
//! The analysis is intentionally restricted to straight-line code (no
//! control flow): gadget bodies are straight-line by construction, and their
//! surrounding training loops are handled by the gadget generators
//! themselves.

use crate::instr::Instr;
use crate::program::Program;
use crate::reg::NUM_REGS;

/// RAW producers for each instruction of `prog`, by index.
///
/// `producers[i]` lists, for each register source of instruction `i`, the
/// index of the most recent earlier instruction writing that register (if
/// any). Control-flow instructions participate through their register
/// sources; their targets are ignored.
///
/// ```
/// use racer_isa::{Asm, deps};
/// let mut asm = Asm::new();
/// let (a, b) = (asm.reg(), asm.reg());
/// asm.mov_imm(a, 1);      // 0
/// asm.addi(b, a, 2);      // 1: reads a → produced by 0
/// asm.add(a, a, b);       // 2: reads a (0) and b (1)
/// asm.halt();
/// let p = asm.assemble().unwrap();
/// let deps = deps::raw_producers(&p);
/// assert_eq!(deps[1], vec![0]);
/// assert_eq!(deps[2], vec![0, 1]);
/// ```
pub fn raw_producers(prog: &Program) -> Vec<Vec<usize>> {
    let mut last_writer: Vec<Option<usize>> = vec![None; NUM_REGS];
    let mut out = Vec::with_capacity(prog.len());
    for (i, instr) in prog.instrs().iter().enumerate() {
        let mut prods: Vec<usize> = instr
            .srcs()
            .into_iter()
            .filter_map(|r| last_writer[r.index()])
            .collect();
        prods.sort_unstable();
        prods.dedup();
        out.push(prods);
        if let Some(d) = instr.dst() {
            last_writer[d.index()] = Some(i);
        }
    }
    out
}

/// Whether instruction ranges `a` and `b` of `prog` are data-independent:
/// no instruction in either range reads a register written in the other,
/// and they write disjoint registers.
///
/// This is the §5 racing-gadget requirement (d): *"No instruction in
/// `pathb()` can have a data dependency on any instruction in
/// `pathm(Exprt,1)`, and vice versa."*
pub fn ranges_independent(
    prog: &Program,
    a: std::ops::Range<usize>,
    b: std::ops::Range<usize>,
) -> bool {
    let writes = |range: &std::ops::Range<usize>| -> Vec<bool> {
        let mut w = vec![false; NUM_REGS];
        for i in range.clone() {
            if let Some(d) = prog.instrs()[i].dst() {
                w[d.index()] = true;
            }
        }
        w
    };
    let reads = |range: &std::ops::Range<usize>| -> Vec<bool> {
        let mut r = vec![false; NUM_REGS];
        for i in range.clone() {
            for s in prog.instrs()[i].srcs() {
                r[s.index()] = true;
            }
        }
        r
    };
    let (wa, ra) = (writes(&a), reads(&a));
    let (wb, rb) = (writes(&b), reads(&b));
    for i in 0..NUM_REGS {
        // RAW / WAR across ranges, or WAW on the same register.
        if (wa[i] && (rb[i] || wb[i])) || (wb[i] && ra[i]) {
            return false;
        }
    }
    true
}

/// Critical-path length of the instruction range `range`, where each
/// instruction `i` costs `latency(instr)` and starts only after all its RAW
/// producers inside the range have finished.
///
/// This is the idealized (infinite-width) execution time of a path — the
/// quantity the paper's racing gadgets compare between `path_m` and
/// `path_b`.
pub fn critical_path_length(
    prog: &Program,
    range: std::ops::Range<usize>,
    mut latency: impl FnMut(&Instr) -> u64,
) -> u64 {
    let producers = raw_producers(prog);
    let mut finish = vec![0u64; prog.len()];
    let mut max = 0;
    for i in range.clone() {
        let ready = producers[i]
            .iter()
            .filter(|&&p| range.contains(&p))
            .map(|&p| finish[p])
            .max()
            .unwrap_or(0);
        finish[i] = ready + latency(&prog.instrs()[i]);
        max = max.max(finish[i]);
    }
    max
}

/// Decompose the instruction range into its *chains*: weakly-connected
/// components of the RAW graph restricted to the range. Returns, for each
/// chain, the sorted instruction indices belonging to it.
///
/// Instructions with no dependencies in the range (and no dependents) each
/// form a singleton chain.
pub fn chains(prog: &Program, range: std::ops::Range<usize>) -> Vec<Vec<usize>> {
    let producers = raw_producers(prog);
    // Union-find over the indices in `range`.
    let idx_of = |i: usize| i - range.start;
    let n = range.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for i in range.clone() {
        for &p in &producers[i] {
            if range.contains(&p) {
                let (a, b) = (find(&mut parent, idx_of(i)), find(&mut parent, idx_of(p)));
                parent[a] = b;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in range.clone() {
        let root = find(&mut parent, idx_of(i));
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::instr::{AluOp, MemOperand};

    /// Build the paper's Code Listing 1: two interleaved pointer-chase
    /// chains that share only the head load.
    fn listing1() -> (Program, usize) {
        let mut asm = Asm::new();
        let a = asm.reg();
        let regs = asm.regs(8); // B..I
        let base_a = asm.reg();
        let base_b = asm.reg();
        asm.mov_imm(base_a, 0x1000); // setup (not part of the paths)
        asm.mov_imm(base_b, 0x2000);
        let body = asm.position();
        asm.load(a, MemOperand::abs(0)); // var A = array[0]
                                         // path A: B, D, F, H — even indices; path B: C, E, G, I — odd.
        let mut prev_a = a;
        let mut prev_b = a;
        for i in 0..4 {
            asm.load(regs[2 * i], MemOperand::base_index(base_a, prev_a, 8, 0));
            asm.load(
                regs[2 * i + 1],
                MemOperand::base_index(base_b, prev_b, 8, 0),
            );
            prev_a = regs[2 * i];
            prev_b = regs[2 * i + 1];
        }
        asm.halt();
        (asm.assemble().unwrap(), body)
    }

    #[test]
    fn listing1_paths_are_independent() {
        let (p, body) = listing1();
        // Instructions body+1 .. body+9 alternate path A / path B.
        let path_a: Vec<usize> = (0..4).map(|i| body + 1 + 2 * i).collect();
        let path_b: Vec<usize> = (0..4).map(|i| body + 2 + 2 * i).collect();
        let prods = raw_producers(&p);
        // Each path-A load depends only on the previous path-A load (or the
        // shared head), never on path B.
        for (k, &i) in path_a.iter().enumerate() {
            for &d in &prods[i] {
                if k == 0 {
                    assert!(d <= body);
                } else {
                    assert!(d == path_a[k - 1] || d < body);
                }
                assert!(!path_b.contains(&d), "path A must not depend on path B");
            }
        }
        for (k, &i) in path_b.iter().enumerate() {
            for &d in &prods[i] {
                assert!(!path_a.contains(&d), "path B must not depend on path A");
                if k > 0 {
                    assert!(d == path_b[k - 1] || d <= body);
                }
            }
        }
    }

    #[test]
    fn interleaved_chains_found_by_union_find() {
        let (p, body) = listing1();
        // Excluding the shared head, the 8 loads form exactly 2 chains.
        let cs = chains(&p, body + 1..body + 9);
        assert_eq!(cs.len(), 2, "expected two independent chains, got {cs:?}");
        assert_eq!(cs[0].len(), 4);
        assert_eq!(cs[1].len(), 4);
    }

    #[test]
    fn ranges_independent_detects_sharing() {
        let mut asm = Asm::new();
        let (a, b, c) = (asm.reg(), asm.reg(), asm.reg());
        asm.mov_imm(a, 1); // 0
        asm.addi(b, a, 1); // 1
        asm.addi(c, a, 2); // 2  (independent of 1)
        asm.add(c, c, b); // 3  (depends on both)
        asm.halt();
        let p = asm.assemble().unwrap();
        assert!(ranges_independent(&p, 1..2, 2..3));
        assert!(
            !ranges_independent(&p, 1..2, 3..4),
            "3 reads b written by 1"
        );
        assert!(!ranges_independent(&p, 2..3, 3..4), "WAW/RAW on c");
    }

    #[test]
    fn critical_path_of_chain_is_sum_and_of_parallel_is_max() {
        let mut asm = Asm::new();
        let r = asm.regs(6);
        asm.mov_imm(r[0], 1); // 0
                              // Chain of three adds: 1,2,3.
        asm.addi(r[1], r[0], 1);
        asm.addi(r[2], r[1], 1);
        asm.addi(r[3], r[2], 1);
        // Parallel pair (both depend only on 0): 4,5.
        asm.addi(r[4], r[0], 1);
        asm.addi(r[5], r[0], 1);
        asm.halt();
        let p = asm.assemble().unwrap();
        let lat = |i: &Instr| match i {
            Instr::Alu { op: AluOp::Add, .. } => 1,
            _ => 0,
        };
        assert_eq!(critical_path_length(&p, 1..4, lat), 3);
        assert_eq!(critical_path_length(&p, 4..6, lat), 1);
    }

    #[test]
    fn producers_ignore_unwritten_sources() {
        let mut asm = Asm::new();
        let (a, b) = (asm.reg(), asm.reg());
        asm.add(b, a, a); // a never written: no producers
        asm.halt();
        let p = asm.assemble().unwrap();
        assert!(raw_producers(&p)[0].is_empty());
    }
}
