//! Instruction forms, operands and functional-unit classes.

use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// ALU operation kinds.
///
/// The latency-relevant split (paper §6.4 and §7.2, after Agner Fog's
/// tables) is: 1-cycle simple ops (`Add` … `Shr`), the 3-cycle pipelined
/// `Mul`, and the 13–14-cycle *non-fully-pipelined* `Div`.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping 64-bit add (1 cycle).
    Add,
    /// Wrapping 64-bit subtract (1 cycle).
    Sub,
    /// Bitwise and (1 cycle).
    And,
    /// Bitwise or (1 cycle).
    Or,
    /// Bitwise xor (1 cycle).
    Xor,
    /// Logical shift left by `b & 63` (1 cycle).
    Shl,
    /// Logical shift right by `b & 63` (1 cycle).
    Shr,
    /// Wrapping 64-bit multiply (3 cycles, fully pipelined).
    Mul,
    /// 64-bit unsigned divide (13–14 cycles, **not** fully pipelined:
    /// 4-cycle reciprocal throughput, the contention the §6.4 magnifier
    /// exploits). Division by zero yields `u64::MAX`, mirroring a saturating
    /// hardware divider rather than trapping.
    Div,
}

impl AluOp {
    /// Evaluate the operation on two 64-bit values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Mul => a.wrapping_mul(b),
            #[allow(clippy::manual_checked_ops)]
            AluOp::Div => {
                // Saturating divide-by-zero is deliberate hardware
                // semantics, not a checked_div candidate.
                if b == 0 {
                    u64::MAX
                } else {
                    a / b
                }
            }
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
        };
        f.write_str(s)
    }
}

/// Branch conditions (unsigned comparisons).
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (unsigned)
    Lt,
    /// `a >= b` (unsigned)
    Ge,
}

impl Cond {
    /// Evaluate the condition.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// A register or immediate source operand.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Register source.
    Reg(Reg),
    /// Immediate (sign-extended to 64 bits at evaluation).
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

/// An x86-flavoured memory operand: `base + index * scale + disp`.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub struct MemOperand {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register (typically 1 or 8).
    pub scale: u8,
    /// Constant displacement.
    pub disp: i64,
}

impl MemOperand {
    /// Absolute address `disp`.
    pub fn abs(disp: u64) -> Self {
        MemOperand {
            base: None,
            index: None,
            scale: 1,
            disp: disp as i64,
        }
    }

    /// `base + disp`.
    pub fn base_disp(base: Reg, disp: i64) -> Self {
        MemOperand {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `base + index * scale + disp`.
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i64) -> Self {
        MemOperand {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// Registers this operand reads.
    pub fn srcs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.iter().chain(self.index.iter()).copied()
    }

    /// Evaluate the effective address given a register file.
    pub fn eval(&self, regs: &[u64]) -> u64 {
        let base = self.base.map_or(0, |r| regs[r.index()]);
        let index = self.index.map_or(0, |r| regs[r.index()]);
        base.wrapping_add(index.wrapping_mul(self.scale as u64))
            .wrapping_add(self.disp as u64)
    }
}

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            first = false;
        }
        if self.disp != 0 || first {
            if first {
                write!(f, "{:#x}", self.disp)?;
            } else {
                write!(f, " + {:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// Which class of functional unit executes an instruction (the CPU model
/// maps classes to ports and latencies).
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// 1-cycle integer ALU.
    Alu,
    /// Pipelined multiplier.
    Mul,
    /// Non-fully-pipelined divider.
    Div,
    /// Load port (address generation + cache access).
    Load,
    /// Store port.
    Store,
    /// Branch unit.
    Branch,
    /// No functional unit (nop, fence, halt handled by the core).
    None,
}

/// A single instruction.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// `dst = effective_address(mem)` — x86 `lea` (1-cycle ALU op; one of
    /// the paper's Figure 8 target operations).
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        mem: MemOperand,
    },
    /// `dst = memory[mem]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        mem: MemOperand,
    },
    /// `memory[mem] = src`.
    Store {
        /// Value to store.
        src: Operand,
        /// Address expression.
        mem: MemOperand,
    },
    /// Software prefetch of `mem` (non-blocking, no architectural result).
    Prefetch {
        /// Address expression.
        mem: MemOperand,
        /// Non-temporal hint: insert at eviction-candidate priority
        /// (paper §6.3.1 footnote 7).
        nta: bool,
    },
    /// Flush `mem`'s line from the whole hierarchy (a `clflush` analogue —
    /// *not* available to the JavaScript threat model; used by baselines).
    Flush {
        /// Address expression.
        mem: MemOperand,
    },
    /// Conditional branch to instruction index `target` when
    /// `cond(a, b)` holds.
    Branch {
        /// Comparison condition.
        cond: Cond,
        /// Left comparison source.
        a: Reg,
        /// Right comparison source.
        b: Operand,
        /// Target instruction index (resolved by the assembler).
        target: usize,
    },
    /// Unconditional jump to instruction index `target`.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Serializing fence: drains the pipeline (baseline/test use only).
    Fence,
    /// Stop the simulation when committed.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// Destination register, if the instruction writes one.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. } | Instr::Lea { dst, .. } | Instr::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Source registers read by the instruction.
    pub fn srcs(&self) -> Vec<Reg> {
        let (regs, n) = self.srcs_fixed();
        regs[..n].to_vec()
    }

    /// Source registers without allocating: at most 3 for any instruction
    /// (store: value + base + index). The first `n` array entries are the
    /// sources, in the same order [`Instr::srcs`] reports them. This is the
    /// rename-stage fast path — dispatch runs once per dynamic instruction,
    /// so a `Vec` here would put an allocation on the simulator's hottest
    /// loop.
    pub fn srcs_fixed(&self) -> ([Reg; 3], usize) {
        let mut regs = [Reg::new(0); 3];
        let mut n = 0usize;
        let push = |r: Reg, regs: &mut [Reg; 3], n: &mut usize| {
            regs[*n] = r;
            *n += 1;
        };
        match self {
            Instr::Alu { a, b, .. } => {
                if let Some(r) = a.reg() {
                    push(r, &mut regs, &mut n);
                }
                if let Some(r) = b.reg() {
                    push(r, &mut regs, &mut n);
                }
            }
            Instr::Lea { mem, .. }
            | Instr::Load { mem, .. }
            | Instr::Prefetch { mem, .. }
            | Instr::Flush { mem } => {
                for r in mem.srcs() {
                    push(r, &mut regs, &mut n);
                }
            }
            Instr::Store { src, mem } => {
                if let Some(r) = src.reg() {
                    push(r, &mut regs, &mut n);
                }
                for r in mem.srcs() {
                    push(r, &mut regs, &mut n);
                }
            }
            Instr::Branch { a, b, .. } => {
                push(*a, &mut regs, &mut n);
                if let Some(r) = b.reg() {
                    push(r, &mut regs, &mut n);
                }
            }
            Instr::Jump { .. } | Instr::Fence | Instr::Halt | Instr::Nop => {}
        }
        (regs, n)
    }

    /// Functional-unit class executing this instruction.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Instr::Alu { op: AluOp::Mul, .. } => FuClass::Mul,
            Instr::Alu { op: AluOp::Div, .. } => FuClass::Div,
            Instr::Alu { .. } | Instr::Lea { .. } => FuClass::Alu,
            Instr::Load { .. } | Instr::Prefetch { .. } | Instr::Flush { .. } => FuClass::Load,
            Instr::Store { .. } => FuClass::Store,
            Instr::Branch { .. } | Instr::Jump { .. } => FuClass::Branch,
            Instr::Fence | Instr::Halt | Instr::Nop => FuClass::None,
        }
    }

    /// Whether this is a control-flow instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Halt
        )
    }

    /// Whether this instruction touches the data-cache hierarchy.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Prefetch { .. } | Instr::Flush { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instr::Lea { dst, mem } => write!(f, "lea {dst}, {mem}"),
            Instr::Load { dst, mem } => write!(f, "load {dst}, {mem}"),
            Instr::Store { src, mem } => write!(f, "store {mem}, {src}"),
            Instr::Prefetch { mem, nta } => {
                write!(f, "prefetch{} {mem}", if *nta { "nta" } else { "" })
            }
            Instr::Flush { mem } => write!(f, "flush {mem}"),
            Instr::Branch { cond, a, b, target } => write!(f, "b{cond} {a}, {b}, @{target}"),
            Instr::Jump { target } => write!(f, "jmp @{target}"),
            Instr::Fence => f.write_str("fence"),
            Instr::Halt => f.write_str("halt"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.eval(6, 7), 42);
        assert_eq!(AluOp::Div.eval(42, 6), 7);
        assert_eq!(
            AluOp::Div.eval(42, 0),
            u64::MAX,
            "division by zero saturates"
        );
        assert_eq!(AluOp::Shl.eval(1, 65), 2, "shift counts wrap at 64");
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shr.eval(8, 2), 2);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(1, 2));
        assert!(!Cond::Lt.eval(u64::MAX, 0), "comparisons are unsigned");
        assert!(Cond::Ge.eval(2, 2));
    }

    #[test]
    fn mem_operand_eval() {
        let mut regs = vec![0u64; 8];
        regs[1] = 100;
        regs[2] = 3;
        let m = MemOperand::base_index(Reg::new(1), Reg::new(2), 8, 4);
        assert_eq!(m.eval(&regs), 100 + 3 * 8 + 4);
        assert_eq!(MemOperand::abs(0x1000).eval(&regs), 0x1000);
        assert_eq!(MemOperand::base_disp(Reg::new(1), -4).eval(&regs), 96);
    }

    #[test]
    fn srcs_and_dst_extraction() {
        let r = |i| Reg::new(i);
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: r(3),
            a: r(1).into(),
            b: Operand::Imm(5),
        };
        assert_eq!(i.dst(), Some(r(3)));
        assert_eq!(i.srcs(), vec![r(1)]);

        let ld = Instr::Load {
            dst: r(4),
            mem: MemOperand::base_index(r(1), r(2), 1, 0),
        };
        assert_eq!(ld.dst(), Some(r(4)));
        assert_eq!(ld.srcs(), vec![r(1), r(2)]);

        let st = Instr::Store {
            src: r(5).into(),
            mem: MemOperand::base_disp(r(6), 0),
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), vec![r(5), r(6)]);

        let br = Instr::Branch {
            cond: Cond::Lt,
            a: r(7),
            b: Operand::Imm(2),
            target: 0,
        };
        assert_eq!(br.srcs(), vec![r(7)]);
    }

    #[test]
    fn fu_classes() {
        let r = |i| Reg::new(i);
        let mul = Instr::Alu {
            op: AluOp::Mul,
            dst: r(0),
            a: r(1).into(),
            b: r(2).into(),
        };
        assert_eq!(mul.fu_class(), FuClass::Mul);
        let div = Instr::Alu {
            op: AluOp::Div,
            dst: r(0),
            a: r(1).into(),
            b: r(2).into(),
        };
        assert_eq!(div.fu_class(), FuClass::Div);
        assert_eq!(Instr::Nop.fu_class(), FuClass::None);
        assert_eq!(
            Instr::Lea {
                dst: r(0),
                mem: MemOperand::abs(0)
            }
            .fu_class(),
            FuClass::Alu
        );
        assert_eq!(
            Instr::Prefetch {
                mem: MemOperand::abs(0),
                nta: false
            }
            .fu_class(),
            FuClass::Load
        );
    }

    #[test]
    fn display_forms() {
        let r = |i| Reg::new(i);
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: r(3),
            a: r(1).into(),
            b: Operand::Imm(5),
        };
        assert_eq!(i.to_string(), "add r3, r1, 0x5");
        let ld = Instr::Load {
            dst: r(4),
            mem: MemOperand::base_index(r(1), r(2), 8, 16),
        };
        assert_eq!(ld.to_string(), "load r4, [r1 + r2*8 + 0x10]");
        assert_eq!(Instr::Halt.to_string(), "halt");
    }
}
