//! Architectural reference interpreter (no timing, no speculation).
//!
//! Executes a [`Program`] in strict program order, producing the
//! architecturally visible results: final registers, memory mutations and the
//! committed memory-access trace. The out-of-order core in `racer-cpu` must
//! agree with this interpreter on all architectural state for every program
//! — speculation may only change *timing and cache state*, never results.
//! That invariant is enforced by differential tests.
//!
//! The dispatch loop indexes a [`DecodedProgram`] µop table (decoded once
//! up front) rather than re-matching [`Instr`](crate::Instr) per dynamic
//! step; operands are read through the decode-time slot mapping.

use crate::decode::{DecodedOp, DecodedProgram, SrcRef};
use crate::mem::DataMemory;
use crate::program::Program;
use crate::reg::NUM_REGS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A committed memory access, in program order.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub enum MemEvent {
    /// Load from the address.
    Load(u64),
    /// Store to the address.
    Store(u64),
}

/// Outcome of an interpreter run.
#[derive(Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct InterpResult {
    /// Final architectural register file.
    pub regs: Vec<u64>,
    /// Dynamic instructions executed (including the final `halt`).
    pub steps: u64,
    /// Whether the program reached a `halt` (as opposed to falling off the
    /// end, which also terminates cleanly).
    pub halted: bool,
    /// Committed loads/stores in program order.
    pub mem_trace: Vec<MemEvent>,
}

/// Interpreter failure.
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
pub enum InterpError {
    /// `max_steps` was reached before the program terminated.
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit { limit } => {
                write!(f, "program exceeded the step limit of {limit}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Run `prog` against `mem` for at most `max_steps` dynamic instructions.
///
/// Registers start at zero. Loads of unwritten memory read zero.
///
/// # Errors
///
/// Returns [`InterpError::StepLimit`] if the program does not terminate
/// within `max_steps`.
///
/// ```
/// use racer_isa::{Asm, Cond, DataMemory, interp};
/// let mut asm = Asm::new();
/// let (i, sum) = (asm.reg(), asm.reg());
/// asm.mov_imm(i, 5);
/// let top = asm.here();
/// asm.add(sum, sum, i);
/// asm.subi(i, i, 1);
/// asm.br(Cond::Ne, i, 0, top);
/// asm.halt();
/// let prog = asm.assemble()?;
/// let mut mem = DataMemory::new();
/// let r = interp::run(&prog, &mut mem, 1_000)?;
/// assert_eq!(r.regs[sum.index()], 5 + 4 + 3 + 2 + 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(
    prog: &Program,
    mem: &mut DataMemory,
    max_steps: u64,
) -> Result<InterpResult, InterpError> {
    let decoded = DecodedProgram::decode(prog);
    let mut regs = vec![0u64; NUM_REGS];
    let mut trace = Vec::new();
    let mut pc = 0usize;
    let mut steps = 0u64;
    let mut halted = false;

    while pc < decoded.len() {
        if steps >= max_steps {
            return Err(InterpError::StepLimit { limit: max_steps });
        }
        steps += 1;
        let d = &decoded[pc];
        let src = |slot: u8| regs[d.srcs[slot as usize].index()];
        let val = |s: SrcRef| match s {
            SrcRef::Slot(i) => src(i),
            SrcRef::Imm(v) => v,
        };
        let mut next = pc + 1;
        match d.op {
            DecodedOp::Alu { op, a, b } => {
                let r = op.eval(val(a), val(b));
                regs[d.dst.expect("ALU writes a destination").index()] = r;
            }
            DecodedOp::Lea(m) => {
                regs[d.dst.expect("lea writes a destination").index()] = m.eval(src);
            }
            DecodedOp::Load(m) => {
                let addr = m.eval(src);
                regs[d.dst.expect("load writes a destination").index()] = mem.read(addr);
                trace.push(MemEvent::Load(addr));
            }
            DecodedOp::Store { src: s, mem: m } => {
                let addr = m.eval(src);
                mem.write(addr, val(s));
                trace.push(MemEvent::Store(addr));
            }
            DecodedOp::Prefetch { .. }
            | DecodedOp::Flush(_)
            | DecodedOp::Fence
            | DecodedOp::Nop => {}
            DecodedOp::Branch { cond, b, target } => {
                if cond.eval(src(0), val(b)) {
                    next = target as usize;
                }
            }
            DecodedOp::Jump { target } => {
                next = target as usize;
            }
            DecodedOp::Halt => {
                halted = true;
                break;
            }
        }
        pc = next;
    }

    Ok(InterpResult {
        regs,
        steps,
        halted,
        mem_trace: trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::instr::{Cond, MemOperand};

    #[test]
    fn loop_and_branch() {
        let mut asm = Asm::new();
        let (i, acc) = (asm.reg(), asm.reg());
        asm.mov_imm(i, 10);
        let top = asm.here();
        asm.addi(acc, acc, 3);
        asm.subi(i, i, 1);
        asm.br(Cond::Ne, i, 0, top);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut mem = DataMemory::new();
        let r = run(&p, &mut mem, 1000).unwrap();
        assert_eq!(r.regs[acc.index()], 30);
        assert!(r.halted);
    }

    #[test]
    fn pointer_chase_reads_memory() {
        let mut asm = Asm::new();
        let (v, base) = (asm.reg(), asm.reg());
        asm.mov_imm(base, 0x100);
        asm.load(v, MemOperand::base_disp(base, 0)); // v = mem[0x100] = 0x200
        asm.load(v, MemOperand::base_disp(v, 0)); // v = mem[0x200] = 7
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut mem = DataMemory::new();
        mem.write(0x100, 0x200);
        mem.write(0x200, 7);
        let r = run(&p, &mut mem, 100).unwrap();
        assert_eq!(r.regs[v.index()], 7);
        assert_eq!(
            r.mem_trace,
            vec![MemEvent::Load(0x100), MemEvent::Load(0x200)]
        );
    }

    #[test]
    fn stores_mutate_memory() {
        let mut asm = Asm::new();
        let r = asm.reg();
        asm.mov_imm(r, 42);
        asm.store(r, MemOperand::abs(0x8));
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut mem = DataMemory::new();
        run(&p, &mut mem, 100).unwrap();
        assert_eq!(mem.read(0x8), 42);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut asm = Asm::new();
        let top = asm.here();
        asm.jump(top);
        let p = asm.assemble().unwrap();
        let mut mem = DataMemory::new();
        assert_eq!(
            run(&p, &mut mem, 50),
            Err(InterpError::StepLimit { limit: 50 })
        );
    }

    #[test]
    fn falling_off_the_end_terminates_unhalted() {
        let mut asm = Asm::new();
        asm.nop();
        let p = asm.assemble().unwrap();
        let mut mem = DataMemory::new();
        let r = run(&p, &mut mem, 10).unwrap();
        assert!(!r.halted);
        assert_eq!(r.steps, 1);
    }

    #[test]
    fn untaken_branch_falls_through() {
        let mut asm = Asm::new();
        let r = asm.reg();
        let l = asm.fwd_label();
        asm.mov_imm(r, 5);
        asm.br(Cond::Eq, r, 0, l); // not taken
        asm.addi(r, r, 1);
        asm.bind(l);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut mem = DataMemory::new();
        let res = run(&p, &mut mem, 100).unwrap();
        assert_eq!(res.regs[r.index()], 6);
    }
}
