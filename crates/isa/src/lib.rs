//! # racer-isa — instruction set and assembler for the Hacky Racers simulator
//!
//! A small RISC-like virtual instruction set expressing exactly what the
//! paper's JavaScript threat model allows: *"simple arithmetic operations,
//! branches, loads, and coarse-grained timers"* (§1), plus a few privileged
//! operations (`flush`, `fence`) used only by baselines and test harnesses.
//!
//! The crate provides:
//!
//! * [`Instr`] / [`AluOp`] / [`Cond`] — the instruction forms;
//! * [`Program`] — a validated instruction sequence with resolved branch
//!   targets;
//! * [`decode`] — pre-decoded µop tables ([`DecodedProgram`]): the static
//!   facts (FU class, source list, destination, slot-mapped operands) every
//!   hot consumer used to re-derive per dynamic instruction, computed once
//!   per static instruction;
//! * [`Asm`] — a builder/assembler DSL with labels and a fresh-register
//!   allocator, used by `hacky-racers` to generate gadget code;
//! * [`deps`] — register dataflow analysis (the paper's §4 *chains* and
//!   *paths* are properties of this graph);
//! * [`interp`] — an architectural (timing-free) reference interpreter used
//!   for differential testing against the out-of-order core.
//!
//! ## Quickstart
//!
//! ```
//! use racer_isa::{Asm, DataMemory, interp};
//!
//! let mut asm = Asm::new();
//! let (a, b, c) = (asm.reg(), asm.reg(), asm.reg());
//! asm.mov_imm(a, 20);
//! asm.mov_imm(b, 22);
//! asm.add(c, a, b);
//! asm.halt();
//! let prog = asm.assemble().expect("valid program");
//!
//! let mut mem = DataMemory::new();
//! let result = interp::run(&prog, &mut mem, 1_000).expect("terminates");
//! assert_eq!(result.regs[c.index()], 42);
//! ```

pub mod asm;
pub mod decode;
pub mod deps;
pub mod instr;
pub mod interp;
pub mod mem;
pub mod program;
pub mod reg;

pub use asm::Asm;
pub use decode::{DecodedInstr, DecodedMem, DecodedOp, DecodedProgram, SrcRef};
pub use instr::{AluOp, Cond, FuClass, Instr, MemOperand, Operand};
pub use mem::DataMemory;
pub use program::{Label, Program, ProgramError};
pub use reg::{Reg, NUM_REGS};
