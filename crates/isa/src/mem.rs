//! Architectural data memory (values only — timing lives in `racer-mem`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for the address-keyed memory map. Every load and
/// store the pipeline issues reads or writes this map, so the default
/// SipHash (DoS-resistant, but ~10× the work for an 8-byte key) is on the
/// simulator's hottest path for memory-bound workloads; simulated addresses
/// are not attacker-controlled hash-flooding inputs, so a single
/// Fibonacci-style multiply is the right trade.
#[derive(Clone, Copy, Debug, Default)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold arbitrary bytes for safety.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits; hashbrown
        // keys buckets off them after a rotate-free mix, so xor-fold them
        // down for good low-bit spread too.
        self.0 ^ (self.0 >> 32)
    }
}

/// Sparse 64-bit-word memory keyed by byte address.
///
/// Reads of unwritten locations return `0` (convenient for gadget setup:
/// `array[0] = 0` is the paper's favourite synchronization value, and
/// wrong-path Spectre loads of arbitrary addresses must not trap).
///
/// Words are keyed by their *exact* byte address; the simulator does not
/// model sub-word aliasing, which the gadgets never rely on.
///
/// ```
/// use racer_isa::DataMemory;
/// let mut m = DataMemory::new();
/// assert_eq!(m.read(0x1000), 0);
/// m.write(0x1000, 7);
/// assert_eq!(m.read(0x1000), 7);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataMemory {
    map: HashMap<u64, u64, BuildHasherDefault<AddrHasher>>,
}

impl DataMemory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the word at `addr` (0 if never written).
    #[inline]
    pub fn read(&self, addr: u64) -> u64 {
        self.map.get(&addr).copied().unwrap_or(0)
    }

    /// Write `value` at `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        self.map.insert(addr, value);
    }

    /// Write `values` at `base`, `base + stride`, `base + 2*stride`, ….
    pub fn write_array(&mut self, base: u64, stride: u64, values: &[u64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write(base.wrapping_add(i as u64 * stride), v);
        }
    }

    /// Read `count` words from `base` at `stride` spacing.
    pub fn read_array(&self, base: u64, stride: u64, count: usize) -> Vec<u64> {
        (0..count as u64)
            .map(|i| self.read(base.wrapping_add(i * stride)))
            .collect()
    }

    /// Number of explicitly written words.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no word was ever written.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = DataMemory::new();
        assert_eq!(m.read(u64::MAX), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = DataMemory::new();
        m.write(8, 1);
        m.write(8, 2); // overwrite
        assert_eq!(m.read(8), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn arrays() {
        let mut m = DataMemory::new();
        m.write_array(0x100, 8, &[10, 20, 30]);
        assert_eq!(m.read(0x108), 20);
        assert_eq!(m.read_array(0x100, 8, 3), vec![10, 20, 30]);
    }
}
