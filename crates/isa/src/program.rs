//! Validated instruction sequences.

use crate::instr::Instr;
use crate::reg::NUM_REGS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A label handle returned by [`Asm::fwd_label`](crate::Asm::fwd_label) before its
/// position is known.
#[derive(Copy, Clone, Debug, Eq, PartialEq, Hash, Serialize, Deserialize)]
pub struct Label(pub(crate) usize);

/// Errors produced when assembling or validating a [`Program`].
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum ProgramError {
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A label was referenced but never bound to a position.
    UnboundLabel {
        /// The unbound label id.
        label: usize,
    },
    /// The program is empty.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
            ProgramError::UnboundLabel { label } => {
                write!(f, "label {label} referenced but never placed")
            }
            ProgramError::Empty => f.write_str("program has no instructions"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated, immutable instruction sequence with resolved branch targets.
///
/// Build one with the [`Asm`](crate::Asm) assembler, or from raw
/// instructions via [`Program::from_instrs`].
#[derive(Clone, Debug, Eq, PartialEq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Validate `instrs` and wrap them as a program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the sequence is empty or any control-flow
    /// target is out of range.
    pub fn from_instrs(instrs: Vec<Instr>) -> Result<Self, ProgramError> {
        if instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        for (at, i) in instrs.iter().enumerate() {
            let target = match i {
                Instr::Branch { target, .. } | Instr::Jump { target } => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                if t >= instrs.len() {
                    return Err(ProgramError::TargetOutOfRange { at, target: t });
                }
            }
            if let Some(d) = i.dst() {
                debug_assert!(d.index() < NUM_REGS);
            }
        }
        Ok(Program { instrs })
    }

    /// The instructions, in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Instruction at `pc`, if in range.
    pub fn get(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// A human-readable listing with instruction indices.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            let _ = writeln!(s, "{i:5}: {instr}");
        }
        s
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand};
    use crate::reg::Reg;

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::from_instrs(vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn out_of_range_target_rejected() {
        let prog = Program::from_instrs(vec![Instr::Jump { target: 5 }, Instr::Halt]);
        assert_eq!(
            prog,
            Err(ProgramError::TargetOutOfRange { at: 0, target: 5 })
        );
    }

    #[test]
    fn valid_program_accessors() {
        let r0 = Reg::new(0);
        let p = Program::from_instrs(vec![
            Instr::Alu {
                op: AluOp::Add,
                dst: r0,
                a: Operand::Imm(1),
                b: Operand::Imm(2),
            },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(matches!(p.get(1), Some(Instr::Halt)));
        assert!(p.get(2).is_none());
        assert!(p.listing().contains("halt"));
    }

    #[test]
    fn error_display() {
        let e = ProgramError::TargetOutOfRange { at: 3, target: 9 };
        assert!(e.to_string().contains("out-of-range"));
        assert!(!ProgramError::Empty.to_string().is_empty());
    }
}
