//! Architectural registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural registers.
///
/// Deliberately generous: generated gadget code is register-hungry (every
/// chain link gets a fresh name to avoid false dependencies), and renaming in
/// the out-of-order core removes any cost to a large architectural file.
pub const NUM_REGS: usize = 256;

/// An architectural register identifier (`r0` … `r255`).
///
/// ```
/// use racer_isa::Reg;
/// let r = Reg::new(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(
    Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Reg(u16);

impl Reg {
    /// Register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    pub fn new(index: usize) -> Self {
        assert!(index < NUM_REGS, "register index {index} out of range");
        Reg(index as u16)
    }

    /// Numeric index, suitable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        for i in [0usize, 1, 100, NUM_REGS - 1] {
            assert_eq!(Reg::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = Reg::new(NUM_REGS);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::new(42).to_string(), "r42");
    }
}
