//! Property-based tests for the ISA layer: assembler/label correctness and
//! dataflow-analysis invariants over randomized programs.

use proptest::prelude::*;
use racer_isa::{deps, interp, AluOp, Asm, Cond, DataMemory, Instr, MemOperand, Operand, Reg};

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Mul),
        Just(AluOp::Div),
    ]
}

proptest! {
    /// ALU evaluation is total (no panics) and deterministic.
    #[test]
    fn alu_eval_is_total_and_deterministic(
        op in arb_alu_op(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let x = op.eval(a, b);
        let y = op.eval(a, b);
        prop_assert_eq!(x, y);
    }

    /// Division never panics, even by zero, and matches wrapping semantics.
    #[test]
    #[allow(clippy::manual_checked_ops)]
    fn division_semantics(a in any::<u64>(), b in any::<u64>()) {
        let q = AluOp::Div.eval(a, b);
        if b == 0 {
            prop_assert_eq!(q, u64::MAX);
        } else {
            prop_assert_eq!(q, a / b);
        }
    }

    /// Branch conditions partition: exactly one of Eq/Ne holds, and exactly
    /// one of Lt/Ge holds.
    #[test]
    fn cond_partitions(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_ne!(Cond::Eq.eval(a, b), Cond::Ne.eval(a, b));
        prop_assert_ne!(Cond::Lt.eval(a, b), Cond::Ge.eval(a, b));
    }

    /// Every instruction's `srcs()` lists exactly the registers that can
    /// influence its result: renaming any unlisted register leaves the
    /// interpreter's outcome unchanged.
    #[test]
    fn srcs_are_complete(
        op in arb_alu_op(),
        d in 0usize..8,
        a in 0usize..8,
        b in 0usize..8,
        values in proptest::collection::vec(any::<u64>(), 8),
        poison in any::<u64>(),
        victim in 8usize..16,
    ) {
        let instr = Instr::Alu {
            op,
            dst: Reg::new(d),
            a: Operand::Reg(Reg::new(a)),
            b: Operand::Reg(Reg::new(b)),
        };
        let srcs = instr.srcs();
        prop_assume!(!srcs.contains(&Reg::new(victim)));

        let run = |poisoned: bool| {
            let mut asm = Asm::new();
            let regs = asm.regs(16);
            for (i, &v) in values.iter().enumerate() {
                asm.mov_imm(regs[i], v as i64);
            }
            if poisoned {
                asm.mov_imm(regs[victim], poison as i64);
            }
            asm.emit(instr);
            asm.halt();
            let prog = asm.assemble().unwrap();
            let mut mem = DataMemory::new();
            interp::run(&prog, &mut mem, 1000).unwrap().regs[d]
        };
        prop_assert_eq!(run(false), run(true), "unlisted register affected the result");
    }

    /// Label fixups always resolve to the bound position, wherever the
    /// label is bound.
    #[test]
    fn labels_resolve_to_bound_positions(pre in 0usize..20, post in 0usize..20) {
        let mut asm = Asm::new();
        let r = asm.reg();
        let target = asm.fwd_label();
        asm.br(Cond::Eq, r, 0i64, target);
        for _ in 0..pre {
            asm.nop();
        }
        asm.bind(target);
        for _ in 0..post {
            asm.nop();
        }
        asm.halt();
        let prog = asm.assemble().unwrap();
        match prog.instrs()[0] {
            Instr::Branch { target, .. } => prop_assert_eq!(target, 1 + pre),
            ref other => prop_assert!(false, "expected branch, got {}", other),
        }
    }

    /// `critical_path_length` is monotone: appending an instruction never
    /// shortens the critical path.
    #[test]
    fn critical_path_is_monotone(lens in proptest::collection::vec(1usize..6, 1..8)) {
        let mut asm = Asm::new();
        let seed = asm.reg();
        let mut prev = seed;
        for _ in &lens {
            let n = asm.reg();
            asm.add(n, prev, 1i64);
            prev = n;
        }
        asm.halt();
        let prog = asm.assemble().unwrap();
        let lat = |_: &Instr| 1u64;
        let mut last = 0;
        for end in 1..prog.len() {
            let cp = deps::critical_path_length(&prog, 0..end, lat);
            prop_assert!(cp >= last);
            last = cp;
        }
    }

    /// Memory-operand evaluation matches its algebraic definition.
    #[test]
    fn mem_operand_algebra(
        base_v in any::<u64>(),
        idx_v in any::<u64>(),
        scale in prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        disp in any::<i32>(),
    ) {
        let mut regs = vec![0u64; 4];
        regs[1] = base_v;
        regs[2] = idx_v;
        let m = MemOperand::base_index(Reg::new(1), Reg::new(2), scale, disp as i64);
        let expect = base_v
            .wrapping_add(idx_v.wrapping_mul(scale as u64))
            .wrapping_add(disp as i64 as u64);
        prop_assert_eq!(m.eval(&regs), expect);
    }
}
