//! `racer-lab` binary: see [`racer_lab::cli`].
//!
//! Exit codes are the documented taxonomy in [`racer_lab::error`]:
//! 0 success, 1 perf gate failed, 2 usage, 3 io, 4 parse, 5 param,
//! 6 scenario-panic, 7 timeout, 8 checkpoint-conflict, 9 partial
//! success (`report --keep-going`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match racer_lab::cli::dispatch(&args) {
        Ok(racer_lab::cli::Outcome::Ok) => {}
        Ok(racer_lab::cli::Outcome::GateFailed) => std::process::exit(1),
        Ok(racer_lab::cli::Outcome::Partial) => std::process::exit(9),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
