//! `racer-lab` binary: see [`racer_lab::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match racer_lab::cli::dispatch(&args) {
        Ok(racer_lab::cli::Outcome::Ok) => {}
        Ok(racer_lab::cli::Outcome::GateFailed) => std::process::exit(1),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
