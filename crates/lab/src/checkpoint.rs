//! The checkpoint journal: crash-safe run resumption.
//!
//! `racer-lab run --checkpoint <dir>` journals every completed unit of
//! work (one scenario run — for trial-sharded sweeps, one shard) as an
//! append-only record in `<dir>`, written atomically via
//! [`crate::fsio::write_atomic`]. Re-running the same command resumes:
//! units whose record is already journaled are skipped and their reports
//! replayed byte-for-byte from the journal, so an interrupted sweep
//! resumed to completion produces output byte-identical to a run that
//! never failed.
//!
//! Records are keyed by the same identity idea the dashboard's
//! quick-vs-paper delta tables use (PR 5): not positional paths but the
//! *rendered values* that make a unit what it is — scenario name, scale,
//! seed, and the full resolved config (which includes the `shard` slice
//! for trial-sharded runs). Different keys journal side by side — that is
//! how one journal accumulates a sharded sweep's slices for
//! `merge --from-checkpoint`. A record that is unreadable, or whose
//! stored key disagrees with the file it sits in, is a
//! [`LabError::CheckpointConflict`]: the atomic-write protocol never
//! produces either state, so the journal is not ours to trust.
//!
//! One record file per unit (`<scenario>-<keyhash>.json`):
//!
//! ```json
//! {
//!   "schema": "racer-lab/checkpoint/v1",
//!   "scenario": "timer_mitigations_eval",
//!   "key": "timer_mitigations_eval|quick|seed=0|{...config...}",
//!   "report": { ...the full racer-lab/v1 report... }
//! }
//! ```
//!
//! Failed cells are deliberately *not* journaled: a resume re-attempts
//! them, which is what lets a fault-injected run converge to the
//! fault-free golden once the fault is gone.

use crate::error::LabError;
use crate::fault;
use crate::fsio;
use crate::params::{ResolvedParams, Scale};
use racer_results::Value;
use std::path::{Path, PathBuf};

/// The record envelope schema.
pub const SCHEMA: &str = "racer-lab/checkpoint/v1";

/// An open checkpoint journal directory.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    dir: PathBuf,
}

/// The identity key of one run unit: scenario + scale + seed + the full
/// resolved config, all by rendered value. Two invocations agree on the
/// key exactly when they would produce the same deterministic report.
pub fn identity_key(scenario: &str, scale: Scale, seed: u64, params: &ResolvedParams) -> String {
    let mut config = Value::object();
    for (name, value) in params.entries() {
        config.insert(name, value.to_value());
    }
    format!(
        "{scenario}|{}|seed={seed}|{}",
        scale.name(),
        config.to_compact()
    )
}

/// FNV-1a 64-bit, rendered as fixed-width hex — stable across platforms
/// and runs, used only to give each unit a distinct file name.
fn key_hash(key: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl Checkpoint {
    /// Open (creating if needed) the journal directory.
    pub fn open(dir: &Path) -> Result<Checkpoint, LabError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| LabError::io(format!("creating checkpoint dir {}", dir.display()), e))?;
        Ok(Checkpoint {
            dir: dir.to_path_buf(),
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn record_path(&self, scenario: &str, key: &str) -> PathBuf {
        self.dir.join(format!("{scenario}-{}.json", key_hash(key)))
    }

    /// Look up the journaled report for `key`. `Ok(None)` means the unit
    /// has not completed yet. A record that exists but does not parse, or
    /// whose stored key disagrees, is a [`LabError::CheckpointConflict`] —
    /// records are written atomically, so either state means the journal
    /// is not ours to reuse.
    pub fn load(&self, scenario: &str, key: &str) -> Result<Option<Value>, LabError> {
        let path = self.record_path(scenario, key);
        if !path.exists() {
            return Ok(None);
        }
        let doc = fsio::parse_json(&path).map_err(|e| {
            LabError::conflict(format!(
                "unreadable journal record {}: {e} (delete it to re-run the unit)",
                path.display()
            ))
        })?;
        if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
            return Err(LabError::conflict(format!(
                "{} is not a {SCHEMA} record",
                path.display()
            )));
        }
        let stored = doc.get("key").and_then(Value::as_str).unwrap_or("");
        if stored != key {
            return Err(LabError::conflict(format!(
                "journal record {} was written for a different run\n  journaled: {stored}\n  requested: {key}",
                path.display()
            )));
        }
        let report = doc
            .get("report")
            .cloned()
            .ok_or_else(|| LabError::conflict(format!("{} has no report", path.display())))?;
        Ok(Some(report))
    }

    /// Journal one completed unit. Fires the `checkpoint:<scenario>`
    /// fault site; the record write itself is atomic, so a crash here
    /// loses at most this one record (the unit re-runs on resume).
    pub fn record(&self, scenario: &str, key: &str, report: &Value) -> Result<(), LabError> {
        fault::hit_point(&format!("checkpoint:{scenario}"));
        let doc = Value::object()
            .with("schema", SCHEMA)
            .with("scenario", scenario)
            .with("key", key)
            .with("report", report.clone());
        fsio::write_atomic(&self.record_path(scenario, key), &doc.to_pretty())
    }

    /// Every journaled record, as `(file name, scenario, report)` sorted
    /// by file name. Unreadable records are conflicts, as in [`Self::load`].
    pub fn records(&self) -> Result<Vec<(String, String, Value)>, LabError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| LabError::io(format!("reading {}", self.dir.display()), e))?;
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json") && p.is_file())
            .collect();
        files.sort();
        let mut out = Vec::new();
        for path in files {
            let doc = fsio::parse_json(&path).map_err(|e| {
                LabError::conflict(format!("unreadable journal record {}: {e}", path.display()))
            })?;
            if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
                return Err(LabError::conflict(format!(
                    "{} is not a {SCHEMA} record",
                    path.display()
                )));
            }
            let scenario = doc
                .get("scenario")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let report = doc
                .get("report")
                .cloned()
                .ok_or_else(|| LabError::conflict(format!("{} has no report", path.display())))?;
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push((name, scenario, report));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSpec;

    fn params(trials: i64) -> ResolvedParams {
        let specs = [ParamSpec::int("trials", "t", trials, trials)];
        ResolvedParams::resolve(&specs, Scale::Quick, &[]).unwrap()
    }

    fn tmp(stem: &str) -> PathBuf {
        std::env::temp_dir().join(format!("racer-lab-ckpt-{stem}-{}", std::process::id()))
    }

    #[test]
    fn identity_keys_separate_config_seed_and_scale() {
        let a = identity_key("sc", Scale::Quick, 7, &params(3));
        assert_eq!(a, identity_key("sc", Scale::Quick, 7, &params(3)));
        assert_ne!(a, identity_key("sc", Scale::Quick, 8, &params(3)));
        assert_ne!(a, identity_key("sc", Scale::Paper, 7, &params(3)));
        assert_ne!(a, identity_key("sc", Scale::Quick, 7, &params(4)));
        assert_ne!(a, identity_key("sc2", Scale::Quick, 7, &params(3)));
    }

    #[test]
    fn journal_roundtrip_replays_the_exact_report() {
        let dir = tmp("roundtrip");
        let ckpt = Checkpoint::open(&dir).unwrap();
        let key = identity_key("sc", Scale::Quick, 1, &params(3));
        assert_eq!(ckpt.load("sc", &key).unwrap(), None);
        let report = Value::object().with("schema", "racer-lab/v1").with("x", 1);
        ckpt.record("sc", &key, &report).unwrap();
        assert_eq!(ckpt.load("sc", &key).unwrap(), Some(report.clone()));
        let records = ckpt.records().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1, "sc");
        assert_eq!(records[0].2, report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_mismatch_is_a_conflict() {
        let dir = tmp("conflict");
        let ckpt = Checkpoint::open(&dir).unwrap();
        let key = identity_key("sc", Scale::Quick, 1, &params(3));
        let other = identity_key("sc", Scale::Quick, 2, &params(3));
        ckpt.record("sc", &key, &Value::object()).unwrap();
        // Same unit name, different key hash: distinct record, no clash.
        assert_eq!(ckpt.load("sc", &other).unwrap(), None);
        // Tamper: rewrite the record under the other key's file name.
        let doc = Value::object()
            .with("schema", SCHEMA)
            .with("scenario", "sc")
            .with("key", key.as_str())
            .with("report", Value::object());
        crate::fsio::write_atomic(&ckpt.record_path("sc", &other), &doc.to_pretty()).unwrap();
        let err = ckpt.load("sc", &other).unwrap_err();
        assert_eq!(err.kind(), "checkpoint-conflict");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_records_are_conflicts_not_panics() {
        let dir = tmp("corrupt");
        let ckpt = Checkpoint::open(&dir).unwrap();
        std::fs::write(dir.join("sc-0000000000000000.json"), "{ truncated").unwrap();
        let key = "sc|quick|seed=0|{}";
        // load() only sees the record at its own hash; records() sees all.
        assert!(ckpt.records().is_err());
        let err = ckpt.records().unwrap_err();
        assert_eq!(err.kind(), "checkpoint-conflict");
        assert!(ckpt.load("sc", key).is_ok(), "other units stay loadable");
        std::fs::remove_dir_all(&dir).ok();
    }
}
