//! The `racer-lab` command-line interface.
//!
//! ```text
//! racer-lab list [--json | --names-json] [--shard K/N]
//! racer-lab describe <scenario>
//! racer-lab run <scenario>... | --all  [--quick|--paper] [--set k=v]...
//!                                      [--seed N] [--out DIR] [--quiet]
//!                                      [--shard K/N]
//! racer-lab report <out-dir> [results...]
//! racer-lab perf-check [--baseline PATH] [--tolerance F] [--quick|--paper]
//! ```
//!
//! Hand-rolled argument handling (the workspace builds offline, so no
//! clap); every parse error returns `Err` and the binary exits 2.

use crate::params::Scale;
use crate::registry::{registry, Scenario};
use crate::runner::{run_scenario, Report, RunOptions};
use racer_results::Value;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// CLI outcome: what `main` should do after `run`.
pub enum Outcome {
    /// Everything succeeded.
    Ok,
    /// A gate failed (perf regression): exit 1.
    GateFailed,
}

/// Entry point: dispatch on `args` (without the program name), printing to
/// stdout. Usage errors come back as `Err`.
pub fn dispatch(args: &[String]) -> Result<Outcome, String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            list(&args[1..])?;
            Ok(Outcome::Ok)
        }
        Some("describe") => {
            describe(&args[1..])?;
            Ok(Outcome::Ok)
        }
        Some("run") => {
            run(&args[1..])?;
            Ok(Outcome::Ok)
        }
        Some("merge") => {
            merge(&args[1..])?;
            Ok(Outcome::Ok)
        }
        Some("report") => {
            report(&args[1..])?;
            Ok(Outcome::Ok)
        }
        Some("perf-check") => perf_check(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{}", usage());
            Ok(Outcome::Ok)
        }
        Some(other) => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> &'static str {
    "racer-lab — registry-driven experiment runner\n\
     \n\
     USAGE:\n\
     \x20 racer-lab list [--json | --names-json] [--shard K/N]\n\
     \x20 racer-lab describe <scenario>\n\
     \x20 racer-lab run <scenario>... | --all  [--quick|--paper] [--set k=v]...\n\
     \x20                                      [--seed N] [--out DIR] [--quiet]\n\
     \x20                                      [--shard K/N]\n\
     \x20 racer-lab merge <out.json> <shard.json> <shard.json>...\n\
     \x20 racer-lab report <out-dir> [results...]\n\
     \x20 racer-lab perf-check [--baseline PATH] [--tolerance F] [--quick|--paper]\n\
     \n\
     --shard K/N keeps the K-th of N deterministic slices of the selected\n\
     scenario set (1-based; CI matrix legs use one slice each). Scenarios\n\
     with their own `shard` parameter (timer_mitigations_eval) slice one\n\
     sweep's trial axis instead: run each slice with --set shard=K/N into\n\
     its own --out dir, then fold the reports with `merge` (accuracies\n\
     combine by trial weight; provenance records the shard list).\n\
     Results are written to results/<scenario>.json (override with --out).\n\
     `report` renders report files (or directories of them; default:\n\
     results/) into a static HTML dashboard under <out-dir>."
}

/// Parse a `K/N` shard spec (1-based `K`, `1 <= K <= N`). Shared by the
/// scenario-set `--shard` flag and scenarios with an intra-scenario
/// `shard` parameter (e.g. `timer_mitigations_eval`'s trial axis).
pub(crate) fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let err = || format!("--shard expects K/N with 1 <= K <= N, got {spec:?}");
    let (k, n) = spec.split_once('/').ok_or_else(err)?;
    let k: usize = k.parse().map_err(|_| err())?;
    let n: usize = n.parse().map_err(|_| err())?;
    if k == 0 || n == 0 || k > n {
        return Err(err());
    }
    Ok((k, n))
}

/// Deterministic shard selection: order `scenarios` by registry index and
/// keep every `n`-th entry starting at position `k - 1`. The `n` slices of
/// any fixed selection are pairwise disjoint and their union is the whole
/// selection — the property the CLI tests pin — so CI matrix legs can each
/// run one slice and jointly cover everything exactly once.
pub fn shard_select(mut scenarios: Vec<Scenario>, k: usize, n: usize) -> Vec<Scenario> {
    let order: Vec<&str> = registry().iter().map(|s| s.name).collect();
    let idx = |name: &str| order.iter().position(|&o| o == name).unwrap_or(usize::MAX);
    scenarios.sort_by_key(|s| idx(s.name));
    scenarios
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % n == k - 1)
        .map(|(_, s)| s)
        .collect()
}

fn list(args: &[String]) -> Result<(), String> {
    let mut shard = None;
    let mut mode: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" | "--names-json" => match mode {
                None => mode = Some(arg.as_str()),
                Some(prev) => {
                    return Err(format!("{prev} and {arg} are mutually exclusive"));
                }
            },
            "--shard" => {
                let spec = it.next().ok_or("--shard needs a value")?;
                shard = Some(parse_shard(spec)?);
            }
            other => return Err(format!("unknown list flag {other:?}")),
        }
    }
    let scenarios = match shard {
        Some((k, n)) => shard_select(registry(), k, n),
        None => registry(),
    };
    match mode {
        Some("--json") => {
            let v = Value::Array(
                scenarios
                    .iter()
                    .map(|s| {
                        Value::object()
                            .with("name", s.name)
                            .with("title", s.title)
                            .with("description", s.description)
                            .with("deterministic", s.deterministic)
                            .with(
                                "params",
                                s.params
                                    .iter()
                                    .map(|p| p.name.to_string())
                                    .collect::<Vec<_>>(),
                            )
                    })
                    .collect(),
            );
            println!("{}", v.to_pretty().trim_end());
        }
        Some("--names-json") => {
            let v = Value::from(
                scenarios
                    .iter()
                    .map(|s| s.name.to_string())
                    .collect::<Vec<_>>(),
            );
            println!("{}", v.to_compact());
        }
        Some(other) => unreachable!("mode {other:?} filtered during parsing"),
        None => {
            println!("{} registered scenarios:\n", scenarios.len());
            let width = scenarios.iter().map(|s| s.name.len()).max().unwrap_or(0);
            for s in &scenarios {
                println!("  {:width$}  {:<14} {}", s.name, s.title, s.description);
            }
            println!("\nRun one with: racer-lab run <name> [--quick]");
        }
    }
    Ok(())
}

fn describe(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("describe: missing scenario name")?;
    let sc = crate::registry::find(name).ok_or_else(|| unknown_scenario(name))?;
    println!("{} — {}", sc.name, sc.title);
    println!("{}", sc.description);
    println!(
        "deterministic: {}   base seed: {:#x}",
        sc.deterministic, sc.seed
    );
    if sc.params.is_empty() {
        println!("parameters: none");
    } else {
        println!("parameters (override with --set name=value):");
        for p in &sc.params {
            println!(
                "  {:<18} {:<9} quick={:<24} paper={:<24} {}",
                p.name,
                p.quick.kind(),
                p.quick.to_string(),
                p.paper.to_string(),
                p.description
            );
        }
    }
    Ok(())
}

/// Parsed flags shared by `run` and `perf-check`.
struct RunFlags {
    opts: RunOptions,
    all: bool,
    out_dir: PathBuf,
    quiet: bool,
    names: Vec<String>,
    baseline: PathBuf,
    tolerance: f64,
    shard: Option<(usize, usize)>,
}

fn parse_run_flags(args: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags {
        opts: RunOptions::default(),
        all: false,
        out_dir: PathBuf::from("results"),
        quiet: false,
        names: Vec::new(),
        baseline: PathBuf::from("BENCH_pipeline.json"),
        tolerance: 0.30,
        shard: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => flags.opts.scale = Scale::Quick,
            "--paper" => flags.opts.scale = Scale::Paper,
            "--all" => flags.all = true,
            "--quiet" => flags.quiet = true,
            "--set" => {
                let kv = value_of("--set")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects name=value, got {kv:?}"))?;
                flags.opts.overrides.push((k.to_string(), v.to_string()));
            }
            "--seed" => {
                let v = value_of("--seed")?;
                // Seeds are recorded as JSON integers, which racer-results
                // keeps within i64 range; reject the unrepresentable half
                // of u64 here instead of panicking during report assembly.
                let seed: u64 = v
                    .parse()
                    .ok()
                    .filter(|&s| i64::try_from(s).is_ok())
                    .ok_or_else(|| {
                        format!("--seed expects an integer in [0, {}], got {v:?}", i64::MAX)
                    })?;
                flags.opts.seed = Some(seed);
            }
            "--out" => flags.out_dir = PathBuf::from(value_of("--out")?),
            "--shard" => flags.shard = Some(parse_shard(&value_of("--shard")?)?),
            "--baseline" => flags.baseline = PathBuf::from(value_of("--baseline")?),
            "--tolerance" => {
                let v = value_of("--tolerance")?;
                flags.tolerance = v
                    .parse()
                    .map_err(|_| format!("--tolerance expects a number, got {v:?}"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            name => flags.names.push(name.to_string()),
        }
    }
    Ok(flags)
}

fn unknown_scenario(name: &str) -> String {
    let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
    format!("unknown scenario {name:?}; available: {}", names.join(", "))
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_run_flags(args)?;
    let mut selected: Vec<Scenario> = if flags.all {
        if !flags.names.is_empty() {
            return Err("pass scenario names or --all, not both".into());
        }
        registry()
    } else if flags.names.is_empty() {
        return Err("run: pass at least one scenario name, or --all".into());
    } else {
        flags
            .names
            .iter()
            .map(|n| crate::registry::find(n).ok_or_else(|| unknown_scenario(n)))
            .collect::<Result<_, _>>()?
    };
    if let Some((k, n)) = flags.shard {
        selected = shard_select(selected, k, n);
        if selected.is_empty() {
            println!("# shard {k}/{n} selects no scenarios");
            return Ok(());
        }
    }

    // Each scenario is an independent simulation: fan out across host
    // cores. Reports come back in input order, so output stays stable.
    let opts = &flags.opts;
    let reports: Vec<Result<Report, String>> =
        racer_cpu::batch::par_map(&selected, |sc| run_scenario(sc, opts));

    let mut failures = Vec::new();
    for report in reports {
        match report {
            Ok(report) => {
                let path = report
                    .write(&flags.out_dir)
                    .map_err(|e| format!("writing {}: {e}", report.name))?;
                if !flags.quiet {
                    println!("{}", report.text.trim_end());
                }
                println!("# wrote {}", path.display());
            }
            Err(e) => failures.push(e),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// `racer-lab merge <out.json> <shard.json>...`: fold trial-axis shard
/// reports of one scenario into a single report (see [`crate::merge`]).
fn merge(args: &[String]) -> Result<(), String> {
    let (out, shards) = match args {
        [] | [_] | [_, _] => {
            return Err("merge: expected <out.json> and at least two shard files".into())
        }
        [out, shards @ ..] => (PathBuf::from(out), shards),
    };
    let docs: Vec<(String, Value)> = shards
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let doc = Value::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            Ok((path.clone(), doc))
        })
        .collect::<Result<_, String>>()?;
    let merged = crate::merge::merge_reports(&docs)?;
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&out, merged.to_pretty())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "# merged {} shard report(s) into {}",
        docs.len(),
        out.display()
    );
    Ok(())
}

/// `racer-lab report <out-dir> [results...]`: render report files (or
/// directories of them — each scanned one level deep for `*.json`,
/// sorted by file name) into a static HTML dashboard under `<out-dir>`.
/// With no inputs, `results/` is rendered. Parsing is strict
/// (`racer-results` + the `racer-lab/v1` envelope checks in
/// `racer-report`); any unreadable, unparseable or non-report input is a
/// usage error, as is an empty input set. The registry supplies page
/// order, titles and descriptions for every scenario it knows.
fn report(args: &[String]) -> Result<(), String> {
    let (out_dir, inputs) = match args {
        [] => return Err("report: missing <out-dir>".into()),
        [out, inputs @ ..] => (PathBuf::from(out), inputs),
    };
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("report takes no flags, got {flag:?}"));
    }
    let default_inputs = [String::from("results")];
    let inputs = if inputs.is_empty() {
        &default_inputs[..]
    } else {
        inputs
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for input in inputs {
        let path = PathBuf::from(input);
        let meta =
            std::fs::metadata(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        if meta.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "json") && p.is_file())
                .collect();
            // Directory iteration order is filesystem-dependent; the
            // dashboard must not be.
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err(format!(
            "report: no .json report files found under {}",
            inputs.join(", ")
        ));
    }

    let reports: Vec<racer_report::InputReport> = files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let doc =
                Value::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
            Ok(racer_report::InputReport {
                label: path.display().to_string(),
                doc,
            })
        })
        .collect::<Result<_, String>>()?;

    let meta: Vec<racer_report::ScenarioMeta> = registry()
        .iter()
        .enumerate()
        .map(|(order, s)| racer_report::ScenarioMeta {
            name: s.name.to_string(),
            title: s.title.to_string(),
            description: s.description.to_string(),
            order,
        })
        .collect();
    let pages = racer_report::render_dashboard(&reports, &meta).map_err(|e| e.to_string())?;

    for page in &pages {
        let path = out_dir.join(&page.path);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, &page.content)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    println!(
        "# rendered {} report(s) into {} ({} page(s), open {})",
        reports.len(),
        out_dir.display(),
        pages.len(),
        out_dir.join("index.html").display()
    );
    Ok(())
}

/// The CI perf gate: run the throughput baseline and compare per-workload
/// committed-instrs/sec against the committed `BENCH_pipeline.json`. Fails
/// (exit 1) when any workload regresses by more than `--tolerance`
/// (default 30%, tolerant of runner noise). A failing first measurement is
/// re-measured once and the per-workload best of the two runs is judged —
/// throughput noise is one-sided (preemption only slows a run down), so
/// taking the max filters noise without masking real regressions.
/// Workloads present in only one side are reported but do not fail the
/// gate.
fn perf_check(args: &[String]) -> Result<Outcome, String> {
    let mut flags = parse_run_flags(args)?;
    if !flags.names.is_empty() {
        return Err("perf-check takes no scenario names".into());
    }
    if flags.shard.is_some() {
        return Err("perf-check runs a single scenario; --shard does not apply".into());
    }
    // The gate defaults to quick scale: throughput is scale-independent
    // enough for a 30% gate, and CI minutes are not free.
    if args.iter().all(|a| a != "--paper") {
        flags.opts.scale = Scale::Quick;
    }

    let sc = crate::registry::find("perf_baseline").expect("perf_baseline is registered");
    let baseline_text = std::fs::read_to_string(&flags.baseline)
        .map_err(|e| format!("reading {}: {e}", flags.baseline.display()))?;
    let baseline = Value::parse(&baseline_text)
        .map_err(|e| format!("parsing {}: {e}", flags.baseline.display()))?;

    let measure = || -> Result<Value, String> {
        let report = run_scenario(&sc, &flags.opts)?;
        Ok(report
            .json
            .get("results")
            .expect("report has results")
            .clone())
    };
    let mut measured = measure()?;
    let mut verdicts = compare_throughput(&baseline, &measured, flags.tolerance)?;
    if verdicts.iter().any(|v| v.regressed) {
        println!("# first measurement regressed; re-measuring once (best of 2 counts)");
        measured = best_of(&measured, &measure()?);
        verdicts = compare_throughput(&baseline, &measured, flags.tolerance)?;
    }
    print!("{}", render_verdicts(&verdicts, flags.tolerance));
    // Surface the comparison on the workflow-run summary page when CI
    // provides one, so perf deltas are visible on every PR without
    // downloading artifacts.
    if let Some(path) = std::env::var_os("GITHUB_STEP_SUMMARY") {
        use std::io::Write as _;
        let md = render_verdicts_markdown(&verdicts, flags.tolerance);
        match std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
        {
            Ok(mut f) => {
                if let Err(e) = f.write_all(md.as_bytes()) {
                    eprintln!("# warning: could not append step summary: {e}");
                }
            }
            Err(e) => eprintln!("# warning: could not open step summary: {e}"),
        }
    }
    if verdicts.iter().any(|v| v.regressed) {
        Ok(Outcome::GateFailed)
    } else {
        Ok(Outcome::Ok)
    }
}

/// The perf-gate comparison as a GitHub-flavoured markdown table (one row
/// per workload), appended to `$GITHUB_STEP_SUMMARY` in CI.
pub fn render_verdicts_markdown(verdicts: &[PerfVerdict], tolerance: f64) -> String {
    let mut s = String::from(
        "## Perf gate: committed instrs/sec vs `BENCH_pipeline.json`\n\n\
         | workload | baseline | measured | ratio | verdict |\n\
         |---|---:|---:|---:|---|\n",
    );
    let fmt_ips = |x: Option<f64>| x.map_or("–".to_string(), |v| format!("{:.2}M", v / 1e6));
    for v in verdicts {
        let ratio = match (v.baseline_ips, v.measured_ips) {
            (Some(b), Some(m)) if b > 0.0 => format!("{:.2}×", m / b),
            _ => "–".to_string(),
        };
        let verdict = if v.regressed {
            "❌ **REGRESSED**"
        } else if v.baseline_ips.is_none() {
            "🆕 new (no baseline)"
        } else if v.measured_ips.is_none() {
            "⚠️ missing from run"
        } else {
            "✅ ok"
        };
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} |",
            v.workload,
            fmt_ips(v.baseline_ips),
            fmt_ips(v.measured_ips),
            ratio,
            verdict
        );
    }
    let failed = verdicts.iter().filter(|v| v.regressed).count();
    let _ = writeln!(
        s,
        "\n{} (tolerance: fail under {:.0}% of baseline)\n",
        if failed == 0 {
            "Gate **passed**.".to_string()
        } else {
            format!("Gate **FAILED**: {failed} workload(s) regressed.")
        },
        (1.0 - tolerance) * 100.0
    );
    s
}

/// Merge two perf payloads, keeping each workload's entry from the run
/// with the higher `event_driven_instrs_per_sec` (workloads missing from
/// `b` keep their `a` entry).
fn best_of(a: &Value, b: &Value) -> Value {
    let ips = |w: &Value| w.get("event_driven_instrs_per_sec").and_then(Value::as_f64);
    let (Some(wa), Some(wb)) = (
        a.get("workloads").and_then(Value::as_array),
        b.get("workloads").and_then(Value::as_array),
    ) else {
        return a.clone();
    };
    let merged: Vec<Value> = wa
        .iter()
        .map(|entry| {
            let name = entry.get("workload").and_then(Value::as_str);
            let other = wb
                .iter()
                .find(|w| w.get("workload").and_then(Value::as_str) == name);
            match other {
                Some(o) if ips(o) > ips(entry) => o.clone(),
                _ => entry.clone(),
            }
        })
        .collect();
    Value::object().with("workloads", Value::Array(merged))
}

/// One workload's gate outcome.
#[derive(Clone)]
pub struct PerfVerdict {
    /// Workload name.
    pub workload: String,
    /// Baseline committed-instrs/sec (None when newly added).
    pub baseline_ips: Option<f64>,
    /// Measured committed-instrs/sec (None when dropped).
    pub measured_ips: Option<f64>,
    /// Whether this workload fails the gate.
    pub regressed: bool,
}

/// Compare per-workload `event_driven_instrs_per_sec`; a workload
/// regresses when measured < baseline × (1 − tolerance).
pub fn compare_throughput(
    baseline: &Value,
    measured: &Value,
    tolerance: f64,
) -> Result<Vec<PerfVerdict>, String> {
    let list = |doc: &Value, which: &str| -> Result<Vec<(String, f64)>, String> {
        doc.get("workloads")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{which} document has no workloads array"))?
            .iter()
            .map(|w| {
                let name = w
                    .get("workload")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("{which} workload entry without a name"))?;
                let ips = w
                    .get("event_driven_instrs_per_sec")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{which} workload {name} without instrs/sec"))?;
                Ok((name.to_string(), ips))
            })
            .collect()
    };
    let base = list(baseline, "baseline")?;
    let meas = list(measured, "measured")?;

    let mut verdicts = Vec::new();
    for (name, b) in &base {
        let m = meas.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        verdicts.push(PerfVerdict {
            workload: name.clone(),
            baseline_ips: Some(*b),
            measured_ips: m,
            regressed: m.is_some_and(|m| m < b * (1.0 - tolerance)),
        });
    }
    for (name, m) in &meas {
        if !base.iter().any(|(n, _)| n == name) {
            verdicts.push(PerfVerdict {
                workload: name.clone(),
                baseline_ips: None,
                measured_ips: Some(*m),
                regressed: false,
            });
        }
    }
    Ok(verdicts)
}

fn render_verdicts(verdicts: &[PerfVerdict], tolerance: f64) -> String {
    let mut s = format!(
        "# perf gate: committed instrs/sec vs baseline (fail under {:.0}% of baseline)\n\
         # workload            baseline     measured     ratio   verdict\n",
        (1.0 - tolerance) * 100.0
    );
    for v in verdicts {
        let fmt_ips = |x: Option<f64>| x.map_or("-".to_string(), |v| format!("{:.2}M", v / 1e6));
        let ratio = match (v.baseline_ips, v.measured_ips) {
            (Some(b), Some(m)) if b > 0.0 => format!("{:.2}", m / b),
            _ => "-".to_string(),
        };
        let verdict = if v.regressed {
            "REGRESSED"
        } else if v.baseline_ips.is_none() {
            "new (no baseline)"
        } else if v.measured_ips.is_none() {
            "missing from run"
        } else {
            "ok"
        };
        let _ = writeln!(
            s,
            "{:<21} {:>10} {:>12} {:>9}   {}",
            v.workload,
            fmt_ips(v.baseline_ips),
            fmt_ips(v.measured_ips),
            ratio,
            verdict
        );
    }
    let failed = verdicts.iter().filter(|v| v.regressed).count();
    let _ = writeln!(
        s,
        "# {}",
        if failed == 0 {
            "gate passed".to_string()
        } else {
            format!("gate FAILED: {failed} workload(s) regressed")
        }
    );
    s
}

/// Legacy-binary compatibility shim: run one scenario with the old
/// `[--quick]` interface, print its text, write `results/<name>.json`, and
/// hand the report back (the perf binary also refreshes the committed
/// baseline from it).
pub fn shim(name: &str) -> Report {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    let sc = crate::registry::find(name)
        .unwrap_or_else(|| panic!("shim for unregistered scenario {name}"));
    let report = run_scenario(&sc, &opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!("{}", report.text.trim_end());
    match report.write(Path::new("results")) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# warning: could not write results file: {e}"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(name: &str, ips: f64) -> Value {
        Value::object()
            .with("workload", name)
            .with("event_driven_instrs_per_sec", ips)
    }

    fn doc(workloads: Vec<Value>) -> Value {
        Value::object().with("workloads", Value::Array(workloads))
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_past_it() {
        let baseline = doc(vec![wl("a", 100.0), wl("b", 100.0)]);
        let measured = doc(vec![wl("a", 71.0), wl("b", 69.0)]);
        let v = compare_throughput(&baseline, &measured, 0.30).unwrap();
        assert!(!v[0].regressed, "71% of baseline is inside a 30% gate");
        assert!(v[1].regressed, "69% of baseline is outside a 30% gate");
    }

    #[test]
    fn added_and_dropped_workloads_do_not_fail_the_gate() {
        let baseline = doc(vec![wl("gone", 100.0)]);
        let measured = doc(vec![wl("new", 5.0)]);
        let v = compare_throughput(&baseline, &measured, 0.30).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| !x.regressed));
    }

    #[test]
    fn best_of_keeps_the_faster_measurement_per_workload() {
        let a = doc(vec![wl("x", 100.0), wl("y", 50.0), wl("only-a", 7.0)]);
        let b = doc(vec![wl("x", 90.0), wl("y", 80.0)]);
        let m = best_of(&a, &b);
        let ws = m.get("workloads").and_then(Value::as_array).unwrap();
        let ips = |name: &str| {
            ws.iter()
                .find(|w| w.get("workload").and_then(Value::as_str) == Some(name))
                .and_then(|w| w.get("event_driven_instrs_per_sec"))
                .and_then(Value::as_f64)
                .unwrap()
        };
        assert_eq!(ips("x"), 100.0);
        assert_eq!(ips("y"), 80.0);
        assert_eq!(ips("only-a"), 7.0);
    }

    #[test]
    fn malformed_documents_are_errors() {
        let ok = doc(vec![wl("a", 1.0)]);
        assert!(compare_throughput(&Value::object(), &ok, 0.3).is_err());
        let nameless = doc(vec![
            Value::object().with("event_driven_instrs_per_sec", 1.0)
        ]);
        assert!(compare_throughput(&nameless, &ok, 0.3).is_err());
    }

    #[test]
    fn markdown_summary_renders_every_verdict_shape() {
        let verdicts = vec![
            PerfVerdict {
                workload: "ok-wl".into(),
                baseline_ips: Some(10e6),
                measured_ips: Some(12e6),
                regressed: false,
            },
            PerfVerdict {
                workload: "regressed-wl".into(),
                baseline_ips: Some(10e6),
                measured_ips: Some(5e6),
                regressed: true,
            },
            PerfVerdict {
                workload: "new-wl".into(),
                baseline_ips: None,
                measured_ips: Some(1e6),
                regressed: false,
            },
            PerfVerdict {
                workload: "gone-wl".into(),
                baseline_ips: Some(2e6),
                measured_ips: None,
                regressed: false,
            },
        ];
        let md = render_verdicts_markdown(&verdicts, 0.30);
        assert!(md.contains("| workload | baseline | measured | ratio | verdict |"));
        assert!(md.contains("| ok-wl | 10.00M | 12.00M | 1.20× | ✅ ok |"));
        assert!(md.contains("**REGRESSED**"));
        assert!(md.contains("new (no baseline)"));
        assert!(md.contains("missing from run"));
        assert!(md.contains("Gate **FAILED**: 1 workload(s) regressed."));
        let passed = render_verdicts_markdown(&verdicts[..1], 0.30);
        assert!(passed.contains("Gate **passed**."));
    }

    #[test]
    fn shard_select_partitions_in_registry_order() {
        let total = registry().len();
        for n in [1usize, 2, 4, total] {
            let mut seen = Vec::new();
            for k in 1..=n {
                let slice = shard_select(registry(), k, n);
                for s in &slice {
                    assert!(!seen.contains(&s.name), "{} in two shards", s.name);
                    seen.push(s.name);
                }
            }
            assert_eq!(seen.len(), total, "shards of {n} must cover the registry");
        }
        // Slices follow registry order round-robin.
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        let first = shard_select(registry(), 1, 2);
        let expect: Vec<&str> = names.iter().copied().step_by(2).collect();
        assert_eq!(first.iter().map(|s| s.name).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn shard_specs_validate() {
        assert_eq!(parse_shard("1/1").unwrap(), (1, 1));
        assert_eq!(parse_shard("3/7").unwrap(), (3, 7));
        for bad in ["0/2", "3/2", "a/2", "2", "2/", "/2", "2/0"] {
            assert!(parse_shard(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn flag_parsing_covers_the_surface() {
        let args: Vec<String> = [
            "fig08_granularity_add",
            "--quick",
            "--set",
            "step=2",
            "--seed",
            "7",
            "--out",
            "/tmp/x",
            "--quiet",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let f = parse_run_flags(&args).unwrap();
        assert_eq!(f.names, ["fig08_granularity_add"]);
        assert_eq!(f.opts.scale, Scale::Quick);
        assert_eq!(f.opts.overrides, [("step".to_string(), "2".to_string())]);
        assert_eq!(f.opts.seed, Some(7));
        assert!(f.quiet);
        assert_eq!(f.out_dir, PathBuf::from("/tmp/x"));

        assert!(parse_run_flags(&["--set".to_string()]).is_err());
        assert!(
            parse_run_flags(&["--seed".to_string(), "9223372036854775808".to_string()]).is_err(),
            "seeds beyond i64::MAX must be rejected at parse time"
        );
        assert!(parse_run_flags(&["--set".to_string(), "novalue".to_string()]).is_err());
        assert!(parse_run_flags(&["--bogus".to_string()]).is_err());
    }
}
