//! The `racer-lab` command-line interface.
//!
//! ```text
//! racer-lab list [--json | --names-json] [--shard K/N]
//! racer-lab describe <scenario>
//! racer-lab run <scenario>... | --all  [--quick|--paper] [--set k=v]...
//!                                      [--seed N] [--out DIR] [--quiet]
//!                                      [--shard K/N] [--checkpoint DIR]
//!                                      [--timeout-secs N]
//! racer-lab report <out-dir> [results...] [--keep-going]
//! racer-lab perf-check [--baseline PATH] [--tolerance F] [--quick|--paper]
//! ```
//!
//! Hand-rolled argument handling (the workspace builds offline, so no
//! clap). Every failure is a typed [`LabError`] and the binary exits with
//! its documented code (see [`crate::error`]); plain usage errors exit 2.

use crate::checkpoint::Checkpoint;
use crate::error::LabError;
use crate::params::Scale;
use crate::registry::{registry, Scenario};
use crate::runner::{failed_report, resolve_params, run_scenario, Report, RunOptions};
use racer_results::Value;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// CLI outcome: what `main` should do after `run`.
pub enum Outcome {
    /// Everything succeeded.
    Ok,
    /// A gate failed (perf regression): exit 1.
    GateFailed,
    /// Partial success (`report --keep-going` skipped inputs): exit 9.
    Partial,
}

/// Entry point: dispatch on `args` (without the program name), printing to
/// stdout. Failures come back as typed [`LabError`]s; `main` exits with
/// [`LabError::exit_code`].
pub fn dispatch(args: &[String]) -> Result<Outcome, LabError> {
    match args.first().map(String::as_str) {
        Some("list") => {
            list(&args[1..]).map_err(LabError::usage)?;
            Ok(Outcome::Ok)
        }
        Some("describe") => {
            describe(&args[1..]).map_err(LabError::usage)?;
            Ok(Outcome::Ok)
        }
        Some("run") => run(&args[1..]),
        Some("merge") => {
            merge(&args[1..])?;
            Ok(Outcome::Ok)
        }
        Some("report") => report(&args[1..]),
        Some("perf-check") => perf_check(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{}", usage());
            Ok(Outcome::Ok)
        }
        Some(other) => Err(LabError::usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

fn usage() -> &'static str {
    "racer-lab — registry-driven experiment runner\n\
     \n\
     USAGE:\n\
     \x20 racer-lab list [--json | --names-json] [--shard K/N]\n\
     \x20 racer-lab describe <scenario>\n\
     \x20 racer-lab run <scenario>... | --all  [--quick|--paper] [--set k=v]...\n\
     \x20                                      [--seed N] [--out DIR] [--quiet]\n\
     \x20                                      [--shard K/N] [--checkpoint DIR]\n\
     \x20                                      [--timeout-secs N]\n\
     \x20 racer-lab merge <out.json> <shard.json> <shard.json>...\n\
     \x20 racer-lab merge <out.json> --from-checkpoint <dir>\n\
     \x20 racer-lab report <out-dir> [results...] [--keep-going]\n\
     \x20 racer-lab perf-check [--baseline PATH] [--tolerance F] [--quick|--paper]\n\
     \n\
     --shard K/N keeps the K-th of N deterministic slices of the selected\n\
     scenario set (1-based; CI matrix legs use one slice each). Scenarios\n\
     with their own `shard` parameter (timer_mitigations_eval) slice one\n\
     sweep's trial axis instead: run each slice with --set shard=K/N into\n\
     its own --out dir, then fold the reports with `merge` (accuracies\n\
     combine by trial weight; provenance records the shard list).\n\
     Results are written to results/<scenario>.json (override with --out);\n\
     all writes are atomic (tmp sibling + rename).\n\
     --checkpoint DIR journals each completed scenario; re-running the same\n\
     command resumes, replaying journaled reports byte-for-byte. `merge\n\
     --from-checkpoint` folds a journal's records into one report.\n\
     A panicking or timed-out (--timeout-secs) scenario is isolated and\n\
     recorded as a status:\"failed\" report cell; the run exits with the\n\
     documented code for the first failure (see docs/ARCHITECTURE.md).\n\
     `report` renders report files (or directories of them; default:\n\
     results/) into a static HTML dashboard under <out-dir>; --keep-going\n\
     skips unreadable inputs with a warning and exits 9 if any were skipped."
}

/// Parse a `K/N` shard spec (1-based `K`, `1 <= K <= N`). Shared by the
/// scenario-set `--shard` flag and scenarios with an intra-scenario
/// `shard` parameter (e.g. `timer_mitigations_eval`'s trial axis).
pub(crate) fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let err = || format!("--shard expects K/N with 1 <= K <= N, got {spec:?}");
    let (k, n) = spec.split_once('/').ok_or_else(err)?;
    let k: usize = k.parse().map_err(|_| err())?;
    let n: usize = n.parse().map_err(|_| err())?;
    if k == 0 || n == 0 || k > n {
        return Err(err());
    }
    Ok((k, n))
}

/// Deterministic shard selection: order `scenarios` by registry index and
/// keep every `n`-th entry starting at position `k - 1`. The `n` slices of
/// any fixed selection are pairwise disjoint and their union is the whole
/// selection — the property the CLI tests pin — so CI matrix legs can each
/// run one slice and jointly cover everything exactly once.
pub fn shard_select(mut scenarios: Vec<Scenario>, k: usize, n: usize) -> Vec<Scenario> {
    let order: Vec<&str> = registry().iter().map(|s| s.name).collect();
    let idx = |name: &str| order.iter().position(|&o| o == name).unwrap_or(usize::MAX);
    scenarios.sort_by_key(|s| idx(s.name));
    scenarios
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % n == k - 1)
        .map(|(_, s)| s)
        .collect()
}

fn list(args: &[String]) -> Result<(), String> {
    let mut shard = None;
    let mut mode: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" | "--names-json" => match mode {
                None => mode = Some(arg.as_str()),
                Some(prev) => {
                    return Err(format!("{prev} and {arg} are mutually exclusive"));
                }
            },
            "--shard" => {
                let spec = it.next().ok_or("--shard needs a value")?;
                shard = Some(parse_shard(spec)?);
            }
            other => return Err(format!("unknown list flag {other:?}")),
        }
    }
    let scenarios = match shard {
        Some((k, n)) => shard_select(registry(), k, n),
        None => registry(),
    };
    match mode {
        Some("--json") => {
            let v = Value::Array(
                scenarios
                    .iter()
                    .map(|s| {
                        Value::object()
                            .with("name", s.name)
                            .with("title", s.title)
                            .with("description", s.description)
                            .with("deterministic", s.deterministic)
                            .with(
                                "params",
                                s.params
                                    .iter()
                                    .map(|p| p.name.to_string())
                                    .collect::<Vec<_>>(),
                            )
                    })
                    .collect(),
            );
            println!("{}", v.to_pretty().trim_end());
        }
        Some("--names-json") => {
            let v = Value::from(
                scenarios
                    .iter()
                    .map(|s| s.name.to_string())
                    .collect::<Vec<_>>(),
            );
            println!("{}", v.to_compact());
        }
        Some(other) => unreachable!("mode {other:?} filtered during parsing"),
        None => {
            println!("{} registered scenarios:\n", scenarios.len());
            let width = scenarios.iter().map(|s| s.name.len()).max().unwrap_or(0);
            for s in &scenarios {
                println!("  {:width$}  {:<14} {}", s.name, s.title, s.description);
            }
            println!("\nRun one with: racer-lab run <name> [--quick]");
        }
    }
    Ok(())
}

fn describe(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("describe: missing scenario name")?;
    let sc = crate::registry::find(name).ok_or_else(|| unknown_scenario(name))?;
    println!("{} — {}", sc.name, sc.title);
    println!("{}", sc.description);
    println!(
        "deterministic: {}   base seed: {:#x}",
        sc.deterministic, sc.seed
    );
    if sc.params.is_empty() {
        println!("parameters: none");
    } else {
        println!("parameters (override with --set name=value):");
        for p in &sc.params {
            println!(
                "  {:<18} {:<9} quick={:<24} paper={:<24} {}",
                p.name,
                p.quick.kind(),
                p.quick.to_string(),
                p.paper.to_string(),
                p.description
            );
        }
    }
    Ok(())
}

/// Parsed flags shared by `run` and `perf-check`.
struct RunFlags {
    opts: RunOptions,
    all: bool,
    out_dir: PathBuf,
    quiet: bool,
    names: Vec<String>,
    baseline: PathBuf,
    tolerance: f64,
    shard: Option<(usize, usize)>,
    checkpoint: Option<PathBuf>,
}

fn parse_run_flags(args: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags {
        opts: RunOptions::default(),
        all: false,
        out_dir: PathBuf::from("results"),
        quiet: false,
        names: Vec::new(),
        baseline: PathBuf::from("BENCH_pipeline.json"),
        tolerance: 0.30,
        shard: None,
        checkpoint: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => flags.opts.scale = Scale::Quick,
            "--paper" => flags.opts.scale = Scale::Paper,
            "--all" => flags.all = true,
            "--quiet" => flags.quiet = true,
            "--set" => {
                let kv = value_of("--set")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects name=value, got {kv:?}"))?;
                flags.opts.overrides.push((k.to_string(), v.to_string()));
            }
            "--seed" => {
                let v = value_of("--seed")?;
                // Seeds are recorded as JSON integers, which racer-results
                // keeps within i64 range; reject the unrepresentable half
                // of u64 here instead of panicking during report assembly.
                let seed: u64 = v
                    .parse()
                    .ok()
                    .filter(|&s| i64::try_from(s).is_ok())
                    .ok_or_else(|| {
                        format!("--seed expects an integer in [0, {}], got {v:?}", i64::MAX)
                    })?;
                flags.opts.seed = Some(seed);
            }
            "--out" => flags.out_dir = PathBuf::from(value_of("--out")?),
            "--shard" => flags.shard = Some(parse_shard(&value_of("--shard")?)?),
            "--checkpoint" => flags.checkpoint = Some(PathBuf::from(value_of("--checkpoint")?)),
            "--timeout-secs" => {
                let v = value_of("--timeout-secs")?;
                let secs: u64 = v.parse().ok().filter(|&s| s > 0).ok_or_else(|| {
                    format!("--timeout-secs expects a positive integer, got {v:?}")
                })?;
                flags.opts.timeout_secs = Some(secs);
            }
            "--baseline" => flags.baseline = PathBuf::from(value_of("--baseline")?),
            "--tolerance" => {
                let v = value_of("--tolerance")?;
                flags.tolerance = v
                    .parse()
                    .map_err(|_| format!("--tolerance expects a number, got {v:?}"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            name => flags.names.push(name.to_string()),
        }
    }
    Ok(flags)
}

fn unknown_scenario(name: &str) -> String {
    let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
    format!("unknown scenario {name:?}; available: {}", names.join(", "))
}

fn run(args: &[String]) -> Result<Outcome, LabError> {
    let flags = parse_run_flags(args).map_err(LabError::usage)?;
    let mut selected: Vec<Scenario> = if flags.all {
        if !flags.names.is_empty() {
            return Err(LabError::usage("pass scenario names or --all, not both"));
        }
        registry()
    } else if flags.names.is_empty() {
        return Err(LabError::usage(
            "run: pass at least one scenario name, or --all",
        ));
    } else {
        flags
            .names
            .iter()
            .map(|n| crate::registry::find(n).ok_or_else(|| LabError::usage(unknown_scenario(n))))
            .collect::<Result<_, _>>()?
    };
    if let Some((k, n)) = flags.shard {
        selected = shard_select(selected, k, n);
        if selected.is_empty() {
            println!("# shard {k}/{n} selects no scenarios");
            return Ok(Outcome::Ok);
        }
    }
    let opts = &flags.opts;

    // Fail fast on bad parameters for *any* selected scenario before any
    // compute starts: a typo'd --set aborts the sweep up front (exit 5)
    // instead of after minutes of sibling work.
    let resolved: Vec<crate::params::ResolvedParams> = selected
        .iter()
        .map(|sc| resolve_params(sc, opts))
        .collect::<Result<_, _>>()?;

    // Open the checkpoint journal and replay already-completed units.
    // A journaled record whose key disagrees with this invocation is a
    // conflict (exit 8) — resuming under different parameters would mix
    // two experiments into one output directory.
    let ckpt = match &flags.checkpoint {
        Some(dir) => Some(Checkpoint::open(dir)?),
        None => None,
    };
    let keys: Vec<String> = selected
        .iter()
        .zip(&resolved)
        .map(|(sc, params)| {
            crate::checkpoint::identity_key(
                sc.name,
                opts.scale,
                opts.seed.unwrap_or(sc.seed),
                params,
            )
        })
        .collect();
    let mut journaled: Vec<Option<Value>> = vec![None; selected.len()];
    if let Some(ckpt) = &ckpt {
        for (i, sc) in selected.iter().enumerate() {
            journaled[i] = ckpt.load(sc.name, &keys[i])?;
        }
    }

    // Each remaining scenario is an independent simulation: fan out
    // across host cores through the crash-isolated driver. Results come
    // back in input order, so output stays stable. A panicking trial is
    // caught twice over (run_scenario's boundary, then try_par_map's) and
    // becomes a labelled failed cell; siblings are unaffected. Completed
    // units are journaled before anything is printed, so a crash loses at
    // most the in-flight scenarios.
    let work: Vec<(usize, &Scenario)> = selected
        .iter()
        .enumerate()
        .filter(|(i, _)| journaled[*i].is_none())
        .collect();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // failures are reported as cells below
    let outcomes = racer_cpu::batch::try_par_map(&work, |&(i, sc)| -> Result<Report, LabError> {
        let report = run_scenario(sc, opts)?;
        if let Some(ckpt) = &ckpt {
            ckpt.record(sc.name, &keys[i], &report.json)?;
        }
        Ok(report)
    });
    std::panic::set_hook(prev_hook);
    let outcomes: Vec<(usize, Result<Report, LabError>)> = work
        .iter()
        .zip(outcomes)
        .map(|(&(i, sc), r)| {
            let flat = match r {
                Ok(inner) => inner,
                // A panic that escaped run_scenario's own boundary
                // (envelope assembly, journaling) still only costs its
                // own cell.
                Err(panic_msg) => Err(LabError::scenario_panic(sc.name, panic_msg)),
            };
            (i, flat)
        })
        .collect();

    let mut results: Vec<Option<Result<Report, LabError>>> =
        (0..selected.len()).map(|_| None).collect();
    for (i, r) in outcomes {
        results[i] = Some(r);
    }

    let mut failures: Vec<LabError> = Vec::new();
    for (i, sc) in selected.iter().enumerate() {
        if let Some(doc) = &journaled[i] {
            let path = flags.out_dir.join(format!("{}.json", sc.name));
            crate::fsio::write_atomic(&path, &doc.to_pretty())?;
            println!(
                "# resumed {} from checkpoint record, wrote {}",
                sc.name,
                path.display()
            );
            continue;
        }
        match results[i].take().expect("every non-journaled unit ran") {
            Ok(report) => {
                let path = report.write(&flags.out_dir)?;
                if !flags.quiet {
                    println!("{}", report.text.trim_end());
                }
                println!("# wrote {}", path.display());
            }
            Err(e) => {
                // The failure is preserved twice: a machine-readable
                // failed cell in the output directory and a stderr note.
                // Failed cells are never journaled — a resume re-attempts
                // them.
                let report = failed_report(sc, opts, &e);
                let path = report.write(&flags.out_dir)?;
                eprintln!("# {}: failed ({}): {}", sc.name, e.kind(), e.message());
                println!("# wrote {} (failed cell)", path.display());
                failures.push(e);
            }
        }
    }
    match failures.into_iter().next() {
        // Exit with the first failure's documented code; every sibling
        // report and failed cell above is already on disk.
        Some(first) => Err(first),
        None => Ok(Outcome::Ok),
    }
}

/// `racer-lab merge <out.json> <shard.json>...`: fold trial-axis shard
/// reports of one scenario into a single report (see [`crate::merge`]).
/// `merge <out.json> --from-checkpoint <dir>` folds the completed records
/// of a (possibly partial) checkpoint journal instead, stamping
/// `provenance.resumed` lineage on the result.
fn merge(args: &[String]) -> Result<(), LabError> {
    if args.iter().any(|a| a == "--from-checkpoint") {
        return merge_from_checkpoint(args);
    }
    let (out, shards) = match args {
        [] | [_] | [_, _] => {
            return Err(LabError::usage(
                "merge: expected <out.json> and at least two shard files \
                 (or <out.json> --from-checkpoint <dir>)",
            ))
        }
        [out, shards @ ..] => (PathBuf::from(out), shards),
    };
    let docs: Vec<(String, Value)> = shards
        .iter()
        .map(|path| Ok((path.clone(), crate::fsio::parse_json(Path::new(path))?)))
        .collect::<Result<_, LabError>>()?;
    let merged = crate::merge::merge_reports(&docs).map_err(LabError::usage)?;
    crate::fsio::write_atomic(&out, &merged.to_pretty())?;
    println!(
        "# merged {} shard report(s) into {}",
        docs.len(),
        out.display()
    );
    Ok(())
}

fn merge_from_checkpoint(args: &[String]) -> Result<(), LabError> {
    let (out, dir) = match args {
        [out, flag, dir] if flag == "--from-checkpoint" => (PathBuf::from(out), PathBuf::from(dir)),
        _ => {
            return Err(LabError::usage(
                "merge: expected <out.json> --from-checkpoint <dir>",
            ))
        }
    };
    if !dir.is_dir() {
        return Err(LabError::io(
            format!("reading checkpoint dir {}", dir.display()),
            "not a directory",
        ));
    }
    let ckpt = Checkpoint::open(&dir)?;
    let records = ckpt.records()?;
    let merged = crate::merge::merge_checkpoint(&dir.display().to_string(), &records)
        .map_err(LabError::usage)?;
    crate::fsio::write_atomic(&out, &merged.to_pretty())?;
    println!(
        "# merged {} checkpoint record(s) into {}",
        records.len(),
        out.display()
    );
    Ok(())
}

/// `racer-lab report <out-dir> [results...] [--keep-going]`: render
/// report files (or directories of them — each scanned one level deep for
/// `*.json`, sorted by file name) into a static HTML dashboard under
/// `<out-dir>`. With no inputs, `results/` is rendered. Parsing is strict
/// (`racer-results` + the `racer-lab/v1` envelope checks in
/// `racer-report`); an unreadable input is an IO error (exit 3), an
/// unparseable or non-report input a parse error (exit 4), an empty input
/// set a usage error (exit 2). With `--keep-going`, bad inputs are
/// skipped with a stderr warning instead and the command exits 9 when
/// anything was skipped (2 if nothing usable remains). The registry
/// supplies page order, titles and descriptions for every scenario it
/// knows.
fn report(args: &[String]) -> Result<Outcome, LabError> {
    let mut keep_going = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--keep-going" => keep_going = true,
            flag if flag.starts_with('-') => {
                return Err(LabError::usage(format!(
                    "report takes no flags except --keep-going, got {flag:?}"
                )))
            }
            p => positional.push(p.to_string()),
        }
    }
    let (out_dir, inputs) = match &positional[..] {
        [] => return Err(LabError::usage("report: missing <out-dir>")),
        [out, inputs @ ..] => (PathBuf::from(out), inputs),
    };
    let default_inputs = [String::from("results")];
    let inputs = if inputs.is_empty() {
        &default_inputs[..]
    } else {
        inputs
    };

    let mut skipped = 0usize;
    let mut skip_or = |err: LabError| -> Result<(), LabError> {
        if keep_going {
            eprintln!("# warning: skipping input: {err}");
            skipped += 1;
            Ok(())
        } else {
            Err(err)
        }
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for input in inputs {
        let path = PathBuf::from(input);
        let meta = match std::fs::metadata(&path) {
            Ok(meta) => meta,
            Err(e) => {
                skip_or(LabError::io(format!("reading {}", path.display()), e))?;
                continue;
            }
        };
        if meta.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&path)
                .map_err(|e| LabError::io(format!("reading {}", path.display()), e))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "json") && p.is_file())
                .collect();
            // Directory iteration order is filesystem-dependent; the
            // dashboard must not be.
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() && !keep_going {
        return Err(LabError::usage(format!(
            "report: no .json report files found under {}",
            inputs.join(", ")
        )));
    }

    let mut reports: Vec<racer_report::InputReport> = Vec::new();
    for path in &files {
        let doc = match crate::fsio::parse_json(path) {
            Ok(doc) => doc,
            Err(e) => {
                skip_or(e)?;
                continue;
            }
        };
        let input = racer_report::InputReport {
            label: path.display().to_string(),
            doc,
        };
        // Envelope validation up front, so --keep-going can skip a
        // structurally invalid report instead of failing the render.
        if let Err(e) = racer_report::check_input(&input) {
            skip_or(LabError::parse(path.display().to_string(), e))?;
            continue;
        }
        reports.push(input);
    }
    if reports.is_empty() {
        return Err(LabError::usage(format!(
            "report: no usable report files under {} ({skipped} skipped)",
            inputs.join(", ")
        )));
    }

    let meta: Vec<racer_report::ScenarioMeta> = registry()
        .iter()
        .enumerate()
        .map(|(order, s)| racer_report::ScenarioMeta {
            name: s.name.to_string(),
            title: s.title.to_string(),
            description: s.description.to_string(),
            order,
        })
        .collect();
    let pages = racer_report::render_dashboard(&reports, &meta)
        .map_err(|e| LabError::parse("dashboard inputs", e))?;

    for page in &pages {
        let path = out_dir.join(&page.path);
        crate::fsio::write_atomic(&path, &page.content)?;
    }
    println!(
        "# rendered {} report(s) into {} ({} page(s), open {})",
        reports.len(),
        out_dir.display(),
        pages.len(),
        out_dir.join("index.html").display()
    );
    if skipped > 0 {
        println!("# {skipped} input(s) skipped (--keep-going); exit 9 signals partial success");
        return Ok(Outcome::Partial);
    }
    Ok(Outcome::Ok)
}

/// The CI perf gate: run the throughput baseline and compare per-workload
/// committed-instrs/sec against the committed `BENCH_pipeline.json`. Fails
/// (exit 1) when any workload regresses by more than `--tolerance`
/// (default 30%, tolerant of runner noise). A failing first measurement is
/// re-measured once and the per-workload best of the two runs is judged —
/// throughput noise is one-sided (preemption only slows a run down), so
/// taking the max filters noise without masking real regressions.
/// Workloads present in only one side are reported but do not fail the
/// gate.
fn perf_check(args: &[String]) -> Result<Outcome, LabError> {
    let mut flags = parse_run_flags(args).map_err(LabError::usage)?;
    if !flags.names.is_empty() {
        return Err(LabError::usage("perf-check takes no scenario names"));
    }
    if flags.shard.is_some() {
        return Err(LabError::usage(
            "perf-check runs a single scenario; --shard does not apply",
        ));
    }
    if flags.checkpoint.is_some() {
        return Err(LabError::usage(
            "perf-check re-measures every time; --checkpoint does not apply",
        ));
    }
    // The gate defaults to quick scale: throughput is scale-independent
    // enough for a 30% gate, and CI minutes are not free.
    if args.iter().all(|a| a != "--paper") {
        flags.opts.scale = Scale::Quick;
    }

    let sc = crate::registry::find("perf_baseline").expect("perf_baseline is registered");
    let baseline = crate::fsio::parse_json(&flags.baseline)?;

    let measure = || -> Result<Value, LabError> {
        let report = run_scenario(&sc, &flags.opts)?;
        Ok(report
            .json
            .get("results")
            .expect("report has results")
            .clone())
    };
    let compare = |measured: &Value| {
        compare_throughput(&baseline, measured, flags.tolerance)
            .map_err(|e| LabError::parse(flags.baseline.display().to_string(), e))
    };
    let mut measured = measure()?;
    let mut verdicts = compare(&measured)?;
    if verdicts.iter().any(|v| v.regressed) {
        println!("# first measurement regressed; re-measuring once (best of 2 counts)");
        measured = best_of(&measured, &measure()?);
        verdicts = compare(&measured)?;
    }
    print!("{}", render_verdicts(&verdicts, flags.tolerance));
    // Surface the comparison on the workflow-run summary page when CI
    // provides one, so perf deltas are visible on every PR without
    // downloading artifacts.
    if let Some(path) = std::env::var_os("GITHUB_STEP_SUMMARY") {
        use std::io::Write as _;
        let md = render_verdicts_markdown(&verdicts, flags.tolerance);
        match std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
        {
            Ok(mut f) => {
                if let Err(e) = f.write_all(md.as_bytes()) {
                    eprintln!("# warning: could not append step summary: {e}");
                }
            }
            Err(e) => eprintln!("# warning: could not open step summary: {e}"),
        }
    }
    if verdicts.iter().any(|v| v.regressed) {
        Ok(Outcome::GateFailed)
    } else {
        Ok(Outcome::Ok)
    }
}

/// The perf-gate comparison as a GitHub-flavoured markdown table (one row
/// per workload), appended to `$GITHUB_STEP_SUMMARY` in CI.
pub fn render_verdicts_markdown(verdicts: &[PerfVerdict], tolerance: f64) -> String {
    let mut s = String::from(
        "## Perf gate: committed instrs/sec vs `BENCH_pipeline.json`\n\n\
         | workload | baseline | measured | ratio | verdict |\n\
         |---|---:|---:|---:|---|\n",
    );
    let fmt_ips = |x: Option<f64>| x.map_or("–".to_string(), |v| format!("{:.2}M", v / 1e6));
    for v in verdicts {
        let ratio = match (v.baseline_ips, v.measured_ips) {
            (Some(b), Some(m)) if b > 0.0 => format!("{:.2}×", m / b),
            _ => "–".to_string(),
        };
        let verdict = if v.regressed {
            "❌ **REGRESSED**"
        } else if v.baseline_ips.is_none() {
            "🆕 new (no baseline)"
        } else if v.measured_ips.is_none() {
            "⚠️ missing from run"
        } else {
            "✅ ok"
        };
        let _ = writeln!(
            s,
            "| {} | {} | {} | {} | {} |",
            v.workload,
            fmt_ips(v.baseline_ips),
            fmt_ips(v.measured_ips),
            ratio,
            verdict
        );
    }
    let failed = verdicts.iter().filter(|v| v.regressed).count();
    let _ = writeln!(
        s,
        "\n{} (tolerance: fail under {:.0}% of baseline)\n",
        if failed == 0 {
            "Gate **passed**.".to_string()
        } else {
            format!("Gate **FAILED**: {failed} workload(s) regressed.")
        },
        (1.0 - tolerance) * 100.0
    );
    s
}

/// Merge two perf payloads, keeping each workload's entry from the run
/// with the higher `event_driven_instrs_per_sec` (workloads missing from
/// `b` keep their `a` entry).
fn best_of(a: &Value, b: &Value) -> Value {
    let ips = |w: &Value| w.get("event_driven_instrs_per_sec").and_then(Value::as_f64);
    let (Some(wa), Some(wb)) = (
        a.get("workloads").and_then(Value::as_array),
        b.get("workloads").and_then(Value::as_array),
    ) else {
        return a.clone();
    };
    let merged: Vec<Value> = wa
        .iter()
        .map(|entry| {
            let name = entry.get("workload").and_then(Value::as_str);
            let other = wb
                .iter()
                .find(|w| w.get("workload").and_then(Value::as_str) == name);
            match other {
                Some(o) if ips(o) > ips(entry) => o.clone(),
                _ => entry.clone(),
            }
        })
        .collect();
    Value::object().with("workloads", Value::Array(merged))
}

/// One workload's gate outcome.
#[derive(Clone)]
pub struct PerfVerdict {
    /// Workload name.
    pub workload: String,
    /// Baseline committed-instrs/sec (None when newly added).
    pub baseline_ips: Option<f64>,
    /// Measured committed-instrs/sec (None when dropped).
    pub measured_ips: Option<f64>,
    /// Whether this workload fails the gate.
    pub regressed: bool,
}

/// Compare per-workload `event_driven_instrs_per_sec`; a workload
/// regresses when measured < baseline × (1 − tolerance).
pub fn compare_throughput(
    baseline: &Value,
    measured: &Value,
    tolerance: f64,
) -> Result<Vec<PerfVerdict>, String> {
    let list = |doc: &Value, which: &str| -> Result<Vec<(String, f64)>, String> {
        doc.get("workloads")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{which} document has no workloads array"))?
            .iter()
            .map(|w| {
                let name = w
                    .get("workload")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("{which} workload entry without a name"))?;
                let ips = w
                    .get("event_driven_instrs_per_sec")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{which} workload {name} without instrs/sec"))?;
                Ok((name.to_string(), ips))
            })
            .collect()
    };
    let base = list(baseline, "baseline")?;
    let meas = list(measured, "measured")?;

    let mut verdicts = Vec::new();
    for (name, b) in &base {
        let m = meas.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        verdicts.push(PerfVerdict {
            workload: name.clone(),
            baseline_ips: Some(*b),
            measured_ips: m,
            regressed: m.is_some_and(|m| m < b * (1.0 - tolerance)),
        });
    }
    for (name, m) in &meas {
        if !base.iter().any(|(n, _)| n == name) {
            verdicts.push(PerfVerdict {
                workload: name.clone(),
                baseline_ips: None,
                measured_ips: Some(*m),
                regressed: false,
            });
        }
    }
    Ok(verdicts)
}

fn render_verdicts(verdicts: &[PerfVerdict], tolerance: f64) -> String {
    let mut s = format!(
        "# perf gate: committed instrs/sec vs baseline (fail under {:.0}% of baseline)\n\
         # workload            baseline     measured     ratio   verdict\n",
        (1.0 - tolerance) * 100.0
    );
    for v in verdicts {
        let fmt_ips = |x: Option<f64>| x.map_or("-".to_string(), |v| format!("{:.2}M", v / 1e6));
        let ratio = match (v.baseline_ips, v.measured_ips) {
            (Some(b), Some(m)) if b > 0.0 => format!("{:.2}", m / b),
            _ => "-".to_string(),
        };
        let verdict = if v.regressed {
            "REGRESSED"
        } else if v.baseline_ips.is_none() {
            "new (no baseline)"
        } else if v.measured_ips.is_none() {
            "missing from run"
        } else {
            "ok"
        };
        let _ = writeln!(
            s,
            "{:<21} {:>10} {:>12} {:>9}   {}",
            v.workload,
            fmt_ips(v.baseline_ips),
            fmt_ips(v.measured_ips),
            ratio,
            verdict
        );
    }
    let failed = verdicts.iter().filter(|v| v.regressed).count();
    let _ = writeln!(
        s,
        "# {}",
        if failed == 0 {
            "gate passed".to_string()
        } else {
            format!("gate FAILED: {failed} workload(s) regressed")
        }
    );
    s
}

/// Legacy-binary compatibility shim: run one scenario with the old
/// `[--quick]` interface, print its text, write `results/<name>.json`, and
/// hand the report back (the perf binary also refreshes the committed
/// baseline from it).
pub fn shim(name: &str) -> Report {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    let sc = crate::registry::find(name)
        .unwrap_or_else(|| panic!("shim for unregistered scenario {name}"));
    let report = run_scenario(&sc, &opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    });
    println!("{}", report.text.trim_end());
    match report.write(Path::new("results")) {
        Ok(path) => println!("# wrote {}", path.display()),
        Err(e) => eprintln!("# warning: could not write results file: {e}"),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(name: &str, ips: f64) -> Value {
        Value::object()
            .with("workload", name)
            .with("event_driven_instrs_per_sec", ips)
    }

    fn doc(workloads: Vec<Value>) -> Value {
        Value::object().with("workloads", Value::Array(workloads))
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_past_it() {
        let baseline = doc(vec![wl("a", 100.0), wl("b", 100.0)]);
        let measured = doc(vec![wl("a", 71.0), wl("b", 69.0)]);
        let v = compare_throughput(&baseline, &measured, 0.30).unwrap();
        assert!(!v[0].regressed, "71% of baseline is inside a 30% gate");
        assert!(v[1].regressed, "69% of baseline is outside a 30% gate");
    }

    #[test]
    fn added_and_dropped_workloads_do_not_fail_the_gate() {
        let baseline = doc(vec![wl("gone", 100.0)]);
        let measured = doc(vec![wl("new", 5.0)]);
        let v = compare_throughput(&baseline, &measured, 0.30).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| !x.regressed));
    }

    #[test]
    fn best_of_keeps_the_faster_measurement_per_workload() {
        let a = doc(vec![wl("x", 100.0), wl("y", 50.0), wl("only-a", 7.0)]);
        let b = doc(vec![wl("x", 90.0), wl("y", 80.0)]);
        let m = best_of(&a, &b);
        let ws = m.get("workloads").and_then(Value::as_array).unwrap();
        let ips = |name: &str| {
            ws.iter()
                .find(|w| w.get("workload").and_then(Value::as_str) == Some(name))
                .and_then(|w| w.get("event_driven_instrs_per_sec"))
                .and_then(Value::as_f64)
                .unwrap()
        };
        assert_eq!(ips("x"), 100.0);
        assert_eq!(ips("y"), 80.0);
        assert_eq!(ips("only-a"), 7.0);
    }

    #[test]
    fn malformed_documents_are_errors() {
        let ok = doc(vec![wl("a", 1.0)]);
        assert!(compare_throughput(&Value::object(), &ok, 0.3).is_err());
        let nameless = doc(vec![
            Value::object().with("event_driven_instrs_per_sec", 1.0)
        ]);
        assert!(compare_throughput(&nameless, &ok, 0.3).is_err());
    }

    #[test]
    fn markdown_summary_renders_every_verdict_shape() {
        let verdicts = vec![
            PerfVerdict {
                workload: "ok-wl".into(),
                baseline_ips: Some(10e6),
                measured_ips: Some(12e6),
                regressed: false,
            },
            PerfVerdict {
                workload: "regressed-wl".into(),
                baseline_ips: Some(10e6),
                measured_ips: Some(5e6),
                regressed: true,
            },
            PerfVerdict {
                workload: "new-wl".into(),
                baseline_ips: None,
                measured_ips: Some(1e6),
                regressed: false,
            },
            PerfVerdict {
                workload: "gone-wl".into(),
                baseline_ips: Some(2e6),
                measured_ips: None,
                regressed: false,
            },
        ];
        let md = render_verdicts_markdown(&verdicts, 0.30);
        assert!(md.contains("| workload | baseline | measured | ratio | verdict |"));
        assert!(md.contains("| ok-wl | 10.00M | 12.00M | 1.20× | ✅ ok |"));
        assert!(md.contains("**REGRESSED**"));
        assert!(md.contains("new (no baseline)"));
        assert!(md.contains("missing from run"));
        assert!(md.contains("Gate **FAILED**: 1 workload(s) regressed."));
        let passed = render_verdicts_markdown(&verdicts[..1], 0.30);
        assert!(passed.contains("Gate **passed**."));
    }

    #[test]
    fn shard_select_partitions_in_registry_order() {
        let total = registry().len();
        for n in [1usize, 2, 4, total] {
            let mut seen = Vec::new();
            for k in 1..=n {
                let slice = shard_select(registry(), k, n);
                for s in &slice {
                    assert!(!seen.contains(&s.name), "{} in two shards", s.name);
                    seen.push(s.name);
                }
            }
            assert_eq!(seen.len(), total, "shards of {n} must cover the registry");
        }
        // Slices follow registry order round-robin.
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        let first = shard_select(registry(), 1, 2);
        let expect: Vec<&str> = names.iter().copied().step_by(2).collect();
        assert_eq!(first.iter().map(|s| s.name).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn shard_specs_validate() {
        assert_eq!(parse_shard("1/1").unwrap(), (1, 1));
        assert_eq!(parse_shard("3/7").unwrap(), (3, 7));
        for bad in ["0/2", "3/2", "a/2", "2", "2/", "/2", "2/0"] {
            assert!(parse_shard(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn flag_parsing_covers_the_surface() {
        let args: Vec<String> = [
            "fig08_granularity_add",
            "--quick",
            "--set",
            "step=2",
            "--seed",
            "7",
            "--out",
            "/tmp/x",
            "--quiet",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let f = parse_run_flags(&args).unwrap();
        assert_eq!(f.names, ["fig08_granularity_add"]);
        assert_eq!(f.opts.scale, Scale::Quick);
        assert_eq!(f.opts.overrides, [("step".to_string(), "2".to_string())]);
        assert_eq!(f.opts.seed, Some(7));
        assert!(f.quiet);
        assert_eq!(f.out_dir, PathBuf::from("/tmp/x"));

        assert!(parse_run_flags(&["--set".to_string()]).is_err());
        assert!(
            parse_run_flags(&["--seed".to_string(), "9223372036854775808".to_string()]).is_err(),
            "seeds beyond i64::MAX must be rejected at parse time"
        );
        assert!(parse_run_flags(&["--set".to_string(), "novalue".to_string()]).is_err());
        assert!(parse_run_flags(&["--bogus".to_string()]).is_err());

        let args: Vec<String> = ["--checkpoint", "ckpt-dir", "--timeout-secs", "30"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_run_flags(&args).unwrap();
        assert_eq!(f.checkpoint, Some(PathBuf::from("ckpt-dir")));
        assert_eq!(f.opts.timeout_secs, Some(30));
        assert!(
            parse_run_flags(&["--timeout-secs".to_string(), "0".to_string()]).is_err(),
            "a zero timeout would fail every scenario"
        );
    }
}
