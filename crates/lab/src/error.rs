//! The typed error taxonomy of the lab pipeline.
//!
//! Every failure the `racer-lab` CLI can hit is one of the [`LabError`]
//! kinds below, and every kind maps to a stable, documented exit code
//! (see [`LabError::exit_code`]). CI and scripts key off the codes; the
//! JSON `error.kind` strings recorded in failed-cell reports key off
//! [`LabError::kind`]. Both are part of the pipeline's contract — add new
//! kinds at the end, never renumber.
//!
//! | exit | kind | meaning |
//! |---:|---|---|
//! | 0 | – | success |
//! | 1 | – | perf gate failed (regression past tolerance) |
//! | 2 | `usage` | bad flags, unknown command/scenario, invalid merge input |
//! | 3 | `io` | filesystem read/write failure |
//! | 4 | `parse` | malformed JSON in a report/baseline file |
//! | 5 | `param` | invalid scenario parameter (`--set`, shard spec) |
//! | 6 | `scenario-panic` | a trial panicked; isolated and recorded as a failed cell |
//! | 7 | `timeout` | a trial exceeded `--timeout-secs`; recorded as a failed cell |
//! | 8 | `checkpoint-conflict` | checkpoint journal disagrees with the requested run |
//! | 9 | – | partial success (`report --keep-going` skipped inputs) |

use std::fmt;

/// One pipeline failure, carrying enough context to be actionable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabError {
    /// Bad command line: unknown command, malformed flags, invalid merge
    /// input sets.
    Usage(String),
    /// Filesystem failure. `context` names the operation and path.
    Io {
        /// What was being read or written, e.g. `writing results/x.json`.
        context: String,
        /// The underlying OS error text.
        message: String,
    },
    /// A file that should hold JSON did not parse.
    Parse {
        /// The offending file (or input label).
        label: String,
        /// Parser diagnostic, including the byte offset.
        message: String,
    },
    /// An invalid scenario parameter (preset override or shard spec).
    Param {
        /// The scenario whose parameters were being resolved.
        scenario: String,
        /// What was wrong.
        message: String,
    },
    /// A scenario trial panicked. The panic was caught at the isolation
    /// boundary and recorded as a `status: "failed"` cell; the rest of
    /// the run completed.
    ScenarioPanic {
        /// The panicking scenario.
        scenario: String,
        /// The panic payload message.
        message: String,
    },
    /// A scenario trial exceeded the configured wall-clock budget.
    Timeout {
        /// The timed-out scenario.
        scenario: String,
        /// The budget that was exceeded.
        seconds: u64,
    },
    /// The checkpoint journal holds a record the atomic-write protocol
    /// could never have produced: unreadable JSON, a foreign schema, or a
    /// stored key that disagrees with the file it sits in. (A different
    /// params/seed/scale run is *not* a conflict — it journals side by
    /// side under its own key.)
    CheckpointConflict(String),
}

impl LabError {
    /// Usage-error constructor.
    pub fn usage(message: impl Into<String>) -> LabError {
        LabError::Usage(message.into())
    }

    /// IO-error constructor; `context` should read like `reading <path>`.
    pub fn io(context: impl Into<String>, err: impl fmt::Display) -> LabError {
        LabError::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }

    /// Parse-error constructor for a labelled input.
    pub fn parse(label: impl Into<String>, err: impl fmt::Display) -> LabError {
        LabError::Parse {
            label: label.into(),
            message: err.to_string(),
        }
    }

    /// Parameter-error constructor.
    pub fn param(scenario: impl Into<String>, message: impl Into<String>) -> LabError {
        LabError::Param {
            scenario: scenario.into(),
            message: message.into(),
        }
    }

    /// Caught-panic constructor.
    pub fn scenario_panic(scenario: impl Into<String>, message: impl Into<String>) -> LabError {
        LabError::ScenarioPanic {
            scenario: scenario.into(),
            message: message.into(),
        }
    }

    /// Timeout constructor.
    pub fn timeout(scenario: impl Into<String>, seconds: u64) -> LabError {
        LabError::Timeout {
            scenario: scenario.into(),
            seconds,
        }
    }

    /// Checkpoint-conflict constructor.
    pub fn conflict(message: impl Into<String>) -> LabError {
        LabError::CheckpointConflict(message.into())
    }

    /// Stable machine-readable kind, recorded as `error.kind` in
    /// failed-cell reports.
    pub fn kind(&self) -> &'static str {
        match self {
            LabError::Usage(_) => "usage",
            LabError::Io { .. } => "io",
            LabError::Parse { .. } => "parse",
            LabError::Param { .. } => "param",
            LabError::ScenarioPanic { .. } => "scenario-panic",
            LabError::Timeout { .. } => "timeout",
            LabError::CheckpointConflict(_) => "checkpoint-conflict",
        }
    }

    /// The documented process exit code for this kind (see the module
    /// table). Exit codes are a stable contract with CI.
    pub fn exit_code(&self) -> i32 {
        match self {
            LabError::Usage(_) => 2,
            LabError::Io { .. } => 3,
            LabError::Parse { .. } => 4,
            LabError::Param { .. } => 5,
            LabError::ScenarioPanic { .. } => 6,
            LabError::Timeout { .. } => 7,
            LabError::CheckpointConflict(_) => 8,
        }
    }

    /// One-line human message without the `error:` prefix (what
    /// [`fmt::Display`] renders).
    pub fn message(&self) -> String {
        match self {
            LabError::Usage(m) => m.clone(),
            LabError::Io { context, message } => format!("{context}: {message}"),
            LabError::Parse { label, message } => format!("parsing {label}: {message}"),
            LabError::Param { scenario, message } => format!("{scenario}: {message}"),
            LabError::ScenarioPanic { scenario, message } => {
                format!("scenario {scenario} panicked: {message}")
            }
            LabError::Timeout { scenario, seconds } => {
                format!("scenario {scenario} exceeded the {seconds}s trial timeout")
            }
            LabError::CheckpointConflict(m) => format!("checkpoint conflict: {m}"),
        }
    }
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for LabError {}

/// Legacy bridge: plain-string errors from older call sites are usage
/// errors (exit 2), matching the pre-taxonomy behaviour.
impl From<String> for LabError {
    fn from(message: String) -> LabError {
        LabError::Usage(message)
    }
}

impl From<&str> for LabError {
    fn from(message: &str) -> LabError {
        LabError::Usage(message.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_and_distinct() {
        let all = [
            LabError::usage("x"),
            LabError::io("reading x", "denied"),
            LabError::parse("x.json", "bad"),
            LabError::param("sc", "bad"),
            LabError::scenario_panic("sc", "boom"),
            LabError::timeout("sc", 5),
            LabError::conflict("key mismatch"),
        ];
        let codes: Vec<i32> = all.iter().map(LabError::exit_code).collect();
        assert_eq!(codes, [2, 3, 4, 5, 6, 7, 8]);
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "exit codes must be distinct");
    }

    #[test]
    fn kinds_match_the_documented_taxonomy() {
        assert_eq!(LabError::io("w", "e").kind(), "io");
        assert_eq!(LabError::parse("l", "e").kind(), "parse");
        assert_eq!(LabError::param("s", "e").kind(), "param");
        assert_eq!(LabError::scenario_panic("s", "e").kind(), "scenario-panic");
        assert_eq!(LabError::timeout("s", 1).kind(), "timeout");
        assert_eq!(LabError::conflict("e").kind(), "checkpoint-conflict");
    }

    #[test]
    fn messages_carry_context() {
        let e = LabError::io("writing results/x.json", "no space");
        assert_eq!(e.to_string(), "writing results/x.json: no space");
        let e = LabError::timeout("perf_baseline", 30);
        assert!(e.to_string().contains("30s"));
    }
}
