//! Deterministic fault injection for the robustness test-suite.
//!
//! The fault-tolerance invariants (no corrupt JSON on disk, resume
//! converges to the fault-free report, failed cells are labelled) are only
//! worth anything if they are *proved* under injected failure. This module
//! is the injection side: a [`FaultPlan`] parsed once from the
//! `RACER_FAULT_PLAN` environment variable, consulted at a handful of
//! named sites in the pipeline. With the variable unset (every production
//! run) the plan is empty and every hook is a branch on an empty slice.
//!
//! Plan grammar — comma-separated directives, each `action@site[=arg]`:
//!
//! | directive | effect at the named site |
//! |---|---|
//! | `panic@<site>` | panic with a deterministic message |
//! | `io@<site>` | the write fails with an injected IO error |
//! | `trunc@<site>` | half the bytes land in the `.tmp` file, then the write fails (simulated crash mid-write; the final file is never touched) |
//! | `sleep@<site>=<ms>` | sleep `ms` milliseconds (drives `--timeout-secs` trials) |
//! | `kill@<site>` | abort the process on the spot (simulated SIGKILL) |
//!
//! Sites fired today: `scenario:<name>` (inside the crash-isolation
//! boundary, before the scenario body), `write:<file-name>` (inside
//! [`crate::fsio::write_atomic`]), and `checkpoint:<scenario>` (before a
//! journal record is written). Unknown sites are legal in a plan — they
//! simply never fire — so one plan can target any future site.

use std::sync::OnceLock;

/// One parsed directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Directive {
    /// What to do when the site fires.
    pub action: Action,
    /// The site this directive arms.
    pub site: String,
}

/// The failure a directive injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Panic with a deterministic message.
    Panic,
    /// Fail the write with an injected IO error.
    Io,
    /// Write a truncated `.tmp` file, then fail (crash mid-write).
    Truncate,
    /// Sleep for the given number of milliseconds.
    Sleep(u64),
    /// Abort the process (simulated SIGKILL).
    Kill,
}

/// A set of armed directives.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    directives: Vec<Directive>,
}

impl FaultPlan {
    /// Parse a plan string (the `RACER_FAULT_PLAN` format). Empty input
    /// is the empty plan.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut directives = Vec::new();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (action, site) = part
                .split_once('@')
                .ok_or_else(|| format!("fault directive {part:?} is not action@site"))?;
            let (site, arg) = match site.split_once('=') {
                Some((s, a)) => (s, Some(a)),
                None => (site, None),
            };
            if site.is_empty() {
                return Err(format!("fault directive {part:?} has an empty site"));
            }
            let action = match (action, arg) {
                ("panic", None) => Action::Panic,
                ("io", None) => Action::Io,
                ("trunc", None) => Action::Truncate,
                ("kill", None) => Action::Kill,
                ("sleep", Some(ms)) => Action::Sleep(
                    ms.parse()
                        .map_err(|_| format!("sleep argument {ms:?} is not a millisecond count"))?,
                ),
                ("sleep", None) => return Err("sleep@<site> needs =<ms>".to_string()),
                (other, _) => return Err(format!("unknown fault action {other:?}")),
            };
            directives.push(Directive {
                action,
                site: site.to_string(),
            });
        }
        Ok(FaultPlan { directives })
    }

    /// Whether the plan has no directives (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// All directives armed for `site`.
    fn at<'a>(&'a self, site: &'a str) -> impl Iterator<Item = &'a Directive> {
        self.directives.iter().filter(move |d| d.site == site)
    }
}

/// The process-wide plan, parsed from `RACER_FAULT_PLAN` on first use.
/// A malformed plan is a hard error: silently running fault-free when the
/// harness asked for faults would make the whole suite vacuous.
pub fn plan() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(|| match std::env::var("RACER_FAULT_PLAN") {
        Ok(text) => match FaultPlan::parse(&text) {
            Ok(plan) => plan,
            Err(e) => panic!("RACER_FAULT_PLAN: {e}"),
        },
        Err(_) => FaultPlan::default(),
    })
}

/// Fire a non-write site: may sleep, abort, or panic (in that order of
/// precedence so `sleep` + `panic` plans sleep first). IO/truncate
/// directives are ignored here — they only make sense inside a write.
pub fn hit_point(site: &str) {
    let plan = plan();
    if plan.is_empty() {
        return;
    }
    for d in plan.at(site) {
        match d.action {
            Action::Sleep(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            Action::Kill => {
                eprintln!("# fault injection: kill at {site}");
                std::process::abort();
            }
            Action::Panic => panic!("injected panic at {site}"),
            Action::Io | Action::Truncate => {}
        }
    }
}

/// The write-shaped fault armed for `site`, if any: consulted by
/// [`crate::fsio::write_atomic`] once per write. `Panic`/`Kill`/`Sleep`
/// directives on a write site also take effect (via [`hit_point`]
/// semantics) before the write fault is reported.
pub fn write_fault(site: &str) -> Option<Action> {
    let plan = plan();
    if plan.is_empty() {
        return None;
    }
    hit_point(site);
    plan.at(site)
        .map(|d| d.action)
        .find(|a| matches!(a, Action::Io | Action::Truncate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_action() {
        let p = FaultPlan::parse(
            "panic@scenario:x, io@write:y.json,trunc@write:z.json,sleep@scenario:w=250,kill@checkpoint:v",
        )
        .unwrap();
        let actions: Vec<Action> = p.directives.iter().map(|d| d.action).collect();
        assert_eq!(
            actions,
            [
                Action::Panic,
                Action::Io,
                Action::Truncate,
                Action::Sleep(250),
                Action::Kill,
            ]
        );
        assert_eq!(p.directives[0].site, "scenario:x");
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_directives() {
        for bad in [
            "panic",
            "panic@",
            "sleep@x",
            "sleep@x=soon",
            "explode@x",
            "io@w=arg-not-allowed@", // unknown action once split
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn sites_select_directives() {
        let p = FaultPlan::parse("io@write:a.json,trunc@write:b.json").unwrap();
        assert_eq!(
            p.at("write:a.json").map(|d| d.action).collect::<Vec<_>>(),
            [Action::Io]
        );
        assert!(p.at("write:c.json").next().is_none());
    }

    #[test]
    fn empty_plan_hooks_are_inert() {
        // `plan()` reads the environment once; in the test process the
        // variable is unset, so the hooks must be no-ops.
        hit_point("scenario:anything");
        assert_eq!(write_fault("write:anything"), None);
    }
}
