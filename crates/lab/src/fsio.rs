//! Crash-safe filesystem primitives for the pipeline.
//!
//! Every result artefact (`results/*.json`, checkpoint records, merged
//! reports, dashboard HTML, `BENCH_pipeline.json`) goes through
//! [`write_atomic`]: bytes land in a `<name>.tmp` sibling first and reach
//! the final name only via `rename(2)`, which is atomic on POSIX
//! filesystems. A process killed at any instant therefore leaves either
//! the old file, no file, or the complete new file — never a truncated
//! one. Orphaned `.tmp` files are possible after a kill and are harmless:
//! nothing in the pipeline reads them (report/checkpoint scans match
//! `*.json` only), and the next successful write of the same artefact
//! replaces them.
//!
//! Reads go through [`read_to_string`]/[`parse_json`], which wrap the
//! failure in the matching [`LabError`] kind so exit codes stay honest.

use crate::error::LabError;
use crate::fault;
use racer_results::Value;
use std::path::Path;

/// Atomically replace `path` with `text` (tmp sibling + rename), creating
/// parent directories as needed. The fault-injection site
/// `write:<file-name>` fires inside this function, before the final
/// rename — an injected failure can corrupt or orphan the `.tmp` file but
/// never the destination.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), LabError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| LabError::io(format!("creating {}", dir.display()), e))?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| LabError::io(format!("writing {}", path.display()), "no file name"))?
        .to_string_lossy()
        .into_owned();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);

    match fault::write_fault(&format!("write:{file_name}")) {
        None => {}
        Some(fault::Action::Io) => {
            return Err(LabError::io(
                format!("writing {}", path.display()),
                "injected IO error",
            ));
        }
        Some(fault::Action::Truncate) => {
            // Simulated crash mid-write: half the payload reaches the tmp
            // file, the destination is untouched, and the caller sees an
            // IO error. The orphaned tmp file is the worst on-disk state
            // the real protocol can produce.
            let half = &text.as_bytes()[..text.len() / 2];
            std::fs::write(&tmp, half)
                .map_err(|e| LabError::io(format!("writing {}", tmp.display()), e))?;
            return Err(LabError::io(
                format!("writing {}", path.display()),
                "injected truncated write",
            ));
        }
        Some(_) => {}
    }

    std::fs::write(&tmp, text)
        .map_err(|e| LabError::io(format!("writing {}", tmp.display()), e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        // Leave no half-written artefact behind on rename failure.
        std::fs::remove_file(&tmp).ok();
        LabError::io(format!("renaming {} into place", path.display()), e)
    })
}

/// Read a whole file, wrapping failures as [`LabError::Io`].
pub fn read_to_string(path: &Path) -> Result<String, LabError> {
    std::fs::read_to_string(path)
        .map_err(|e| LabError::io(format!("reading {}", path.display()), e))
}

/// Read and strictly parse a JSON file ([`LabError::Io`] /
/// [`LabError::Parse`]).
pub fn parse_json(path: &Path) -> Result<Value, LabError> {
    let text = read_to_string(path)?;
    Value::parse(&text).map_err(|e| LabError::parse(path.display().to_string(), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(stem: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("racer-lab-fsio-{stem}-{}", std::process::id()))
    }

    #[test]
    fn writes_land_atomically_and_leave_no_tmp() {
        let dir = tmp_dir("ok");
        let path = dir.join("nested/report.json");
        write_atomic(&path, "{\"k\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"k\": 1}\n");
        assert!(
            !path.with_extension("json.tmp").exists(),
            "tmp sibling must be renamed away"
        );
        // Overwrite replaces the content wholesale.
        write_atomic(&path, "{\"k\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"k\": 2}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_errors_are_typed() {
        let missing = tmp_dir("missing").join("nope.json");
        let err = read_to_string(&missing).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(err.to_string().contains("nope.json"));
    }

    #[test]
    fn parse_errors_are_typed() {
        let dir = tmp_dir("parse");
        let path = dir.join("bad.json");
        write_atomic(&path, "{ nope").unwrap();
        let err = parse_json(&path).unwrap_err();
        assert_eq!(err.kind(), "parse");
        assert!(err.to_string().contains("bad.json"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
