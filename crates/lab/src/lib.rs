//! `racer-lab` — the registry-driven experiment runner.
//!
//! The paper's evaluation is a grid of figures and tables; this crate
//! makes every cell of that grid an addressable, enumerable, reproducible
//! unit. Each experiment registers a [`registry::Scenario`]: a stable
//! name, a parameter schema with quick/paper presets, and a run function
//! producing both plot-ready text and a structured
//! [`racer_results::Value`]. One CLI drives them all:
//!
//! ```text
//! racer-lab list                       # enumerate scenarios
//! racer-lab describe fig10_reorder_distribution
//! racer-lab run fig08_granularity_add --quick
//! racer-lab run --all --quick          # the CI matrix, in parallel
//! racer-lab report site results        # static HTML dashboard from reports
//! racer-lab perf-check                 # throughput gate vs BENCH_pipeline.json
//! ```
//!
//! Every run writes `results/<scenario>.json`: a versioned report
//! (`racer-lab/v1`) carrying the resolved config, the seed, git-describe
//! provenance and the structured results. Reports from deterministic
//! scenarios are byte-identical across runs — CI diffs them, and the
//! golden tests in `tests/golden.rs` enforce it.
//!
//! Scenario fan-out uses [`racer_cpu::batch::par_map`], so `run --all`
//! saturates host cores while keeping output order stable.
//!
//! `report` feeds the written reports through `racer-report`, which
//! renders a deterministic static HTML dashboard (inline-SVG plots per
//! scenario, provenance blocks, quick-vs-paper deltas) — the registry
//! supplies page order and titles.
//!
//! The legacy `racer-bench` binaries survive as one-line [`shim`]s over
//! this registry, so existing plotting workflows keep working.
//!
//! The pipeline is fault-tolerant end to end: every failure is a typed
//! [`error::LabError`] with a documented exit code, panicking trials are
//! crash-isolated into labelled failed cells ([`runner`]), all artefacts
//! are written atomically ([`fsio`]), interrupted sweeps resume from a
//! [`checkpoint`] journal, and the whole story is proved under injected
//! failure by the [`fault`] harness (`RACER_FAULT_PLAN`).

pub mod checkpoint;
pub mod cli;
pub mod error;
pub mod fault;
pub mod fsio;
pub mod merge;
pub mod params;
pub mod provenance;
pub mod registry;
pub mod runner;
pub mod scenarios;

pub use checkpoint::Checkpoint;
pub use cli::{shard_select, shim};
pub use error::LabError;
pub use fsio::write_atomic;
pub use params::{ParamSpec, ParamValue, Scale};
pub use registry::{find, registry, RunContext, Scenario, ScenarioOutput};
pub use runner::{run_scenario, Report, RunOptions};
