//! Folding sharded scenario reports back into one.
//!
//! A paper-scale sweep sharded across CI legs (e.g.
//! `timer_mitigations_eval --set shard=K/N`) produces N `racer-lab/v1`
//! reports whose `results.points` arrays each cover the *same cells* with
//! a disjoint slice of the trial axis. `racer-lab merge <out> <shards...>`
//! folds them: points that agree on every member except `accuracy` and
//! `trials` combine into one point whose accuracy is the trial-weighted
//! mean and whose `trials` is the sum. Provenance records the source
//! files and each shard's `config.shard` spec, so a merged report is
//! self-describing (and visibly *not* byte-identical to an unsharded run:
//! a threshold fitted per shard is not the jointly fitted one).

use racer_results::Value;

/// Fold sharded reports (each `(label, document)`) into one merged
/// document. Labels are recorded in provenance — file paths at the CLI,
/// anything descriptive in tests.
pub fn merge_reports(docs: &[(String, Value)]) -> Result<Value, String> {
    if docs.len() < 2 {
        return Err("merge needs at least two shard reports".into());
    }
    let first = &docs[0].1;
    let field = |doc: &Value, key: &str, label: &String| -> Result<String, String> {
        doc.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{label}: report has no {key:?} member"))
    };
    let scenario = field(first, "scenario", &docs[0].0)?;
    let schema = field(first, "schema", &docs[0].0)?;
    let scale = field(first, "scale", &docs[0].0)?;
    for (label, doc) in docs {
        for (key, expect) in [
            ("scenario", &scenario),
            ("schema", &schema),
            ("scale", &scale),
        ] {
            let got = field(doc, key, label)?;
            if &got != expect {
                return Err(format!(
                    "{label}: {key} is {got:?} but the first shard has {expect:?}"
                ));
            }
        }
    }

    // Same-sweep guards: a duplicate shard index double-counts one slice
    // of the trial axis, disagreeing shard counts mean the slices are not
    // slices of the same sweep, and shards run with different sweep
    // parameters produce cells that silently fail to fold — all would
    // merge into a wrong but plausible-looking report. Specs are compared
    // numerically ("1/2" and "01/2" are the same slice), which is why
    // they are parsed rather than string-matched.
    let mut seen_specs: Vec<((usize, usize), &String)> = Vec::new();
    for (label, doc) in docs {
        let spec = doc
            .get("config")
            .and_then(|c| c.get("shard"))
            .and_then(Value::as_str)
            .unwrap_or("1/1");
        let (k, n) = crate::cli::parse_shard(spec)
            .map_err(|e| format!("{label}: invalid shard spec in config: {e}"))?;
        if let Some(((_, expect_n), other)) = seen_specs.first() {
            if n != *expect_n {
                return Err(format!(
                    "{label}: shard count {n} disagrees with {other}'s {expect_n} — \
                     these are not slices of the same sweep"
                ));
            }
        }
        if let Some((_, other)) = seen_specs.iter().find(|((sk, _), _)| *sk == k) {
            return Err(format!(
                "{label}: shard {spec:?} already merged from {other} — \
                 the same trial-axis slice cannot be counted twice"
            ));
        }
        seen_specs.push(((k, n), label));
    }
    let config_minus_shard = |doc: &Value| -> Value {
        match doc.get("config") {
            Some(Value::Object(members)) => Value::Object(
                members
                    .iter()
                    .filter(|(k, _)| k != "shard")
                    .cloned()
                    .collect(),
            ),
            _ => Value::Null,
        }
    };
    let expect_config = config_minus_shard(first);
    for (label, doc) in &docs[1..] {
        if config_minus_shard(doc) != expect_config {
            return Err(format!(
                "{label}: sweep parameters differ from the first shard's \
                 (configs must match in everything but \"shard\")"
            ));
        }
    }

    // Concatenate every shard's points, in shard order.
    let mut all_points: Vec<Value> = Vec::new();
    for (label, doc) in docs {
        let points = doc
            .get("results")
            .and_then(|r| r.get("points"))
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{label}: report has no results.points array"))?;
        all_points.extend(points.iter().cloned());
    }
    let folded = fold_points(&all_points)?;

    // Rebuild the first report with folded points, a combined shard spec
    // in config, and merge provenance.
    let shard_specs: Vec<String> = docs
        .iter()
        .map(|(_, d)| {
            d.get("config")
                .and_then(|c| c.get("shard"))
                .and_then(Value::as_str)
                .unwrap_or("1/1")
                .to_string()
        })
        .collect();
    let sources = Value::from(docs.iter().map(|(l, _)| l.clone()).collect::<Vec<_>>());

    let Value::Object(members) = first else {
        return Err("report root is not an object".into());
    };
    let mut merged = Value::object();
    for (key, value) in members {
        let rebuilt = match key.as_str() {
            "results" => {
                let Value::Object(rmembers) = value else {
                    return Err("results is not an object".into());
                };
                let mut r = Value::object();
                for (rkey, rvalue) in rmembers {
                    if rkey == "points" {
                        r.insert("points", Value::Array(folded.clone()));
                    } else {
                        r.insert(rkey, rvalue.clone());
                    }
                }
                r
            }
            "config" => {
                let Value::Object(cmembers) = value else {
                    return Err("config is not an object".into());
                };
                let mut c = Value::object();
                for (ckey, cvalue) in cmembers {
                    if ckey == "shard" {
                        c.insert("shard", shard_specs.join("+"));
                    } else {
                        c.insert(ckey, cvalue.clone());
                    }
                }
                c
            }
            "provenance" => value.clone().with(
                "merged",
                Value::object()
                    .with("sources", sources.clone())
                    .with("shards", Value::from(shard_specs.clone())),
            ),
            _ => value.clone(),
        };
        merged.insert(key, rebuilt);
    }
    Ok(merged)
}

/// Fold the completed records of a checkpoint journal (see
/// [`crate::checkpoint`]) into one report with `provenance.resumed`
/// lineage. All records must belong to one scenario (a sharded sweep's
/// slices); a single record passes through with lineage only, two or
/// more fold through [`merge_reports`]. An empty journal is an error —
/// there is nothing to resume.
pub fn merge_checkpoint(
    checkpoint: &str,
    records: &[(String, String, Value)],
) -> Result<Value, String> {
    if records.is_empty() {
        return Err(format!(
            "checkpoint {checkpoint} holds no completed records — nothing to merge"
        ));
    }
    let scenario0 = &records[0].1;
    if let Some((file, scenario, _)) = records.iter().find(|(_, s, _)| s != scenario0) {
        return Err(format!(
            "checkpoint {checkpoint} mixes scenarios ({scenario0:?} and {scenario:?} in {file}); \
             merge folds one scenario's shards"
        ));
    }
    let sources: Vec<String> = records.iter().map(|(f, _, _)| f.clone()).collect();
    let merged = if records.len() == 1 {
        records[0].2.clone()
    } else {
        let docs: Vec<(String, Value)> = records
            .iter()
            .map(|(f, _, doc)| (f.clone(), doc.clone()))
            .collect();
        merge_reports(&docs)?
    };
    Ok(add_resumed(merged, checkpoint, &sources))
}

/// Stamp `provenance.resumed { checkpoint, records }` onto a report.
fn add_resumed(doc: Value, checkpoint: &str, sources: &[String]) -> Value {
    let Value::Object(members) = &doc else {
        return doc;
    };
    let mut out = Value::object();
    for (key, value) in members {
        if key == "provenance" {
            out.insert(
                "provenance",
                value.clone().with(
                    "resumed",
                    Value::object()
                        .with("checkpoint", checkpoint)
                        .with("records", Value::from(sources.to_vec())),
                ),
            );
        } else {
            out.insert(key, value.clone());
        }
    }
    out
}

/// Group points by every member except `accuracy`/`trials`; combine each
/// group into one point with the trial-weighted mean accuracy and summed
/// trials. Points without a `trials` member must be globally unique (no
/// fold weight exists for them).
fn fold_points(points: &[Value]) -> Result<Vec<Value>, String> {
    /// Deterministic group key: the rendered non-folded members, in
    /// first-seen member order.
    fn key_of(point: &Value) -> Result<String, String> {
        let Value::Object(members) = point else {
            return Err("results.points entries must be objects".into());
        };
        let mut key = String::new();
        for (k, v) in members {
            if k != "accuracy" && k != "trials" {
                key.push_str(k);
                key.push('=');
                key.push_str(&v.to_compact());
                key.push('\u{1f}');
            }
        }
        Ok(key)
    }

    // Insertion-ordered fold, so the merged points keep the first shard's
    // cell order (every shard enumerates cells identically).
    let mut order: Vec<String> = Vec::new();
    let mut groups: Vec<Vec<&Value>> = Vec::new();
    for p in points {
        let key = key_of(p)?;
        match order.iter().position(|k| *k == key) {
            Some(i) => groups[i].push(p),
            None => {
                order.push(key);
                groups.push(vec![p]);
            }
        }
    }

    let mut out = Vec::new();
    for group in groups {
        let first = group[0];
        if group.len() == 1 && first.get("trials").is_none() {
            out.push(first.clone());
            continue;
        }
        let mut weight_sum = 0i64;
        let mut acc_sum = 0.0f64;
        for p in &group {
            let trials = p
                .get("trials")
                .and_then(Value::as_i64)
                .ok_or("duplicate points without a \"trials\" member cannot be folded")?;
            let accuracy = p
                .get("accuracy")
                .and_then(Value::as_f64)
                .ok_or("foldable points need an \"accuracy\" member")?;
            weight_sum += trials;
            acc_sum += accuracy * trials as f64;
        }
        // All-zero-weight groups (a cell no shard owned trials of) stay at
        // chance, mirroring the sharded sweep's own convention.
        let accuracy = if weight_sum == 0 {
            0.5
        } else {
            acc_sum / weight_sum as f64
        };
        let Value::Object(members) = first else {
            unreachable!("key_of accepted only objects");
        };
        let mut folded = Value::object();
        for (k, v) in members {
            match k.as_str() {
                "accuracy" => folded.insert("accuracy", accuracy),
                "trials" => folded.insert("trials", weight_sum),
                _ => folded.insert(k, v.clone()),
            }
        }
        out.push(folded);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(timer: &str, rounds: i64, accuracy: f64, trials: i64) -> Value {
        Value::object()
            .with("timer", timer)
            .with("rounds", rounds)
            .with("accuracy", accuracy)
            .with("trials", trials)
    }

    fn report(shard: &str, points: Vec<Value>) -> Value {
        Value::object()
            .with("schema", "racer-lab/v1")
            .with("scenario", "timer_mitigations_eval")
            .with("scale", "paper")
            .with("config", Value::object().with("shard", shard))
            .with("provenance", Value::object().with("generator", "racer-lab"))
            .with(
                "results",
                Value::object().with("points", Value::Array(points)),
            )
    }

    #[test]
    fn folds_cells_by_trial_weight() {
        let a = report(
            "1/2",
            vec![point("5us", 500, 1.0, 2), point("1ms", 500, 0.5, 2)],
        );
        let b = report(
            "2/2",
            vec![point("5us", 500, 0.5, 1), point("1ms", 500, 0.9, 3)],
        );
        let merged = merge_reports(&[("a.json".into(), a), ("b.json".into(), b)]).unwrap();
        let points = merged
            .get("results")
            .and_then(|r| r.get("points"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(points.len(), 2, "same cells fold, they do not duplicate");
        let five = &points[0];
        assert_eq!(five.get("timer").and_then(Value::as_str), Some("5us"));
        let acc = five.get("accuracy").and_then(Value::as_f64).unwrap();
        assert!((acc - (1.0 * 2.0 + 0.5) / 3.0).abs() < 1e-12);
        assert_eq!(five.get("trials").and_then(Value::as_i64), Some(3));
        let ms = &points[1];
        let acc = ms.get("accuracy").and_then(Value::as_f64).unwrap();
        assert!((acc - (0.5 * 2.0 + 0.9 * 3.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn provenance_records_sources_and_shards() {
        let a = report("1/2", vec![point("5us", 500, 1.0, 1)]);
        let b = report("2/2", vec![point("5us", 500, 1.0, 1)]);
        let merged = merge_reports(&[("x.json".into(), a), ("y.json".into(), b)]).unwrap();
        let prov = merged.get("provenance").unwrap();
        let m = prov.get("merged").unwrap();
        let sources = m.get("sources").and_then(Value::as_array).unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0].as_str(), Some("x.json"));
        let shards = m.get("shards").and_then(Value::as_array).unwrap();
        assert_eq!(shards[0].as_str(), Some("1/2"));
        assert_eq!(shards[1].as_str(), Some("2/2"));
        assert_eq!(
            merged
                .get("config")
                .and_then(|c| c.get("shard"))
                .and_then(Value::as_str),
            Some("1/2+2/2")
        );
    }

    #[test]
    fn zero_weight_cells_stay_at_chance() {
        let a = report("1/2", vec![point("5us", 500, 0.5, 0)]);
        let b = report("2/2", vec![point("5us", 500, 0.5, 0)]);
        let merged = merge_reports(&[("a".into(), a), ("b".into(), b)]).unwrap();
        let p = &merged
            .get("results")
            .and_then(|r| r.get("points"))
            .and_then(Value::as_array)
            .unwrap()[0];
        assert_eq!(p.get("accuracy").and_then(Value::as_f64), Some(0.5));
        assert_eq!(p.get("trials").and_then(Value::as_i64), Some(0));
    }

    #[test]
    fn mismatched_reports_are_rejected() {
        let a = report("1/2", vec![point("5us", 500, 1.0, 1)]);
        let mut b = report("2/2", vec![point("5us", 500, 1.0, 1)]);
        // Same shape, different scenario.
        if let Value::Object(members) = &mut b {
            for (k, v) in members.iter_mut() {
                if k == "scenario" {
                    *v = Value::Str("noise_sensitivity_eval".into());
                }
            }
        }
        let err = merge_reports(&[("a".into(), a.clone()), ("b".into(), b)]).unwrap_err();
        assert!(err.contains("scenario"), "{err}");
        let err = merge_reports(&[("a".into(), a)]).unwrap_err();
        assert!(err.contains("at least two"), "{err}");
    }

    #[test]
    fn duplicate_shard_specs_are_rejected() {
        let a = report("1/2", vec![point("5us", 500, 1.0, 1)]);
        let b = report("1/2", vec![point("5us", 500, 0.8, 1)]);
        let err = merge_reports(&[("a".into(), a), ("b".into(), b)]).unwrap_err();
        assert!(err.contains("counted twice"), "{err}");
        // Numerically equal specs are duplicates even when the strings
        // differ — the old string comparison let "01/2" slip past "1/2".
        let a = report("1/2", vec![point("5us", 500, 1.0, 1)]);
        let b = report("01/2", vec![point("5us", 500, 0.8, 1)]);
        let err = merge_reports(&[("a".into(), a), ("b".into(), b)]).unwrap_err();
        assert!(err.contains("counted twice"), "{err}");
    }

    #[test]
    fn malformed_and_inconsistent_shard_specs_are_rejected() {
        let a = report("1/oops", vec![point("5us", 500, 1.0, 1)]);
        let b = report("2/2", vec![point("5us", 500, 0.8, 1)]);
        let err = merge_reports(&[("a".into(), a), ("b".into(), b)]).unwrap_err();
        assert!(err.contains("invalid shard spec"), "{err}");
        // 1/2 and 2/3 are disjoint as strings but slices of different
        // sweep shapes; folding them silently drops a third of the trials.
        let a = report("1/2", vec![point("5us", 500, 1.0, 1)]);
        let b = report("2/3", vec![point("5us", 500, 0.8, 1)]);
        let err = merge_reports(&[("a".into(), a), ("b".into(), b)]).unwrap_err();
        assert!(err.contains("shard count"), "{err}");
    }

    #[test]
    fn checkpoint_fold_stamps_resumed_lineage() {
        let a = report("1/2", vec![point("5us", 500, 1.0, 2)]);
        let b = report("2/2", vec![point("5us", 500, 0.5, 2)]);
        let records = vec![
            (
                "sc-aaaa.json".to_string(),
                "timer_mitigations_eval".to_string(),
                a,
            ),
            (
                "sc-bbbb.json".to_string(),
                "timer_mitigations_eval".to_string(),
                b,
            ),
        ];
        let merged = merge_checkpoint("ckpt", &records).unwrap();
        let resumed = merged.get("provenance").unwrap().get("resumed").unwrap();
        assert_eq!(
            resumed.get("checkpoint").and_then(Value::as_str),
            Some("ckpt")
        );
        let files = resumed.get("records").and_then(Value::as_array).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].as_str(), Some("sc-aaaa.json"));
        let acc = merged
            .get("results")
            .and_then(|r| r.get("points"))
            .and_then(Value::as_array)
            .unwrap()[0]
            .get("accuracy")
            .and_then(Value::as_f64)
            .unwrap();
        assert!((acc - 0.75).abs() < 1e-12, "trial-weighted fold");
    }

    #[test]
    fn checkpoint_fold_handles_single_and_degenerate_journals() {
        let a = report("1/1", vec![point("5us", 500, 1.0, 2)]);
        let one = vec![(
            "sc-aaaa.json".to_string(),
            "timer_mitigations_eval".to_string(),
            a.clone(),
        )];
        let merged = merge_checkpoint("ckpt", &one).unwrap();
        // Single record: the report passes through untouched except for
        // the lineage stamp.
        assert_eq!(merged.get("results"), a.get("results"));
        assert!(merged.get("provenance").unwrap().get("resumed").is_some());

        let err = merge_checkpoint("ckpt", &[]).unwrap_err();
        assert!(err.contains("no completed records"), "{err}");

        let mixed = vec![
            one[0].clone(),
            (
                "other-bbbb.json".to_string(),
                "noise_sensitivity_eval".to_string(),
                report("2/2", vec![point("5us", 500, 0.5, 2)]),
            ),
        ];
        let err = merge_checkpoint("ckpt", &mixed).unwrap_err();
        assert!(err.contains("mixes scenarios"), "{err}");
    }

    #[test]
    fn mismatched_sweep_parameters_are_rejected() {
        let mk = |shard: &str, trials: i64| {
            Value::object()
                .with("schema", "racer-lab/v1")
                .with("scenario", "timer_mitigations_eval")
                .with("scale", "paper")
                .with(
                    "config",
                    Value::object().with("trials", trials).with("shard", shard),
                )
                .with("provenance", Value::object().with("generator", "racer-lab"))
                .with(
                    "results",
                    Value::object().with("points", Value::Array(vec![point("5us", 500, 1.0, 1)])),
                )
        };
        let err =
            merge_reports(&[("a".into(), mk("1/2", 8)), ("b".into(), mk("2/2", 4))]).unwrap_err();
        assert!(err.contains("sweep parameters differ"), "{err}");
        // Same params, different shard slices: fine.
        assert!(merge_reports(&[("a".into(), mk("1/2", 8)), ("b".into(), mk("2/2", 8))]).is_ok());
    }

    #[test]
    fn points_without_trials_must_be_unique() {
        let bare = Value::object().with("x", 1).with("accuracy", 0.9);
        let a = report("1/2", vec![bare.clone()]);
        let b = report("2/2", vec![bare]);
        let err = merge_reports(&[("a".into(), a), ("b".into(), b)]).unwrap_err();
        assert!(err.contains("trials"), "{err}");
        // A unique point without trials passes through untouched.
        let a = report(
            "1/2",
            vec![Value::object().with("x", 1).with("accuracy", 0.9)],
        );
        let b = report(
            "2/2",
            vec![Value::object().with("x", 2).with("accuracy", 0.8)],
        );
        let merged = merge_reports(&[("a".into(), a), ("b".into(), b)]).unwrap();
        let points = merged
            .get("results")
            .and_then(|r| r.get("points"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(points.len(), 2);
    }
}
